"""Ablation: the OLD renderer's chunk size (section 3.1).

The task size trades spatial locality (big chunks) against load balance
(small chunks); the paper determines it empirically per configuration.
Sweep it and report time, miss rate and imbalance.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import combined_stats, format_table
from repro.parallel.execution import simulate_animation

N_PROCS = 16
CHUNKS = (1, 2, 4, 8, 16)


def run() -> str:
    machine = machine_for("simulator", SCALE)
    headers = ["chunk", "total_time", "miss%", "sync%"]
    rows = []
    for chunk in CHUNKS:
        frames = record_frames(HEADLINE, "old", N_PROCS, scale=SCALE, chunk=chunk)
        rep = simulate_animation(list(frames), machine)
        stats = combined_stats(rep)
        rows.append((chunk, rep.total_time,
                     100 * stats.miss_rate(include_cold=False),
                     100 * rep.fractions()["sync"]))
    table = format_table(headers, rows, width=14)
    return emit("ablation_chunk_size", table)


test_ablation_chunk_size = one_round(run)

if __name__ == "__main__":
    run()
