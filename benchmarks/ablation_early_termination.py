"""Ablation: the serial renderer's coherence optimizations (section 2).

Early ray termination (opaque-pixel skipping) is one of the two
optimizations that make shear-warp fast; disabling it (opacity
threshold > 1) shows how much compositing work it saves on the
mostly-opaque-after-a-few-slices medical data.
"""

from __future__ import annotations

from common import SCALE, emit, one_round

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_VIEW, get_renderer
from repro.core.profiling import scanline_cost
from repro.render import IntermediateImage, WorkCounters
from repro.render.compositing import composite_frame
from repro.render.warp import warp_frame
from repro.render.image import FinalImage

DATASET = "mri512"


def run() -> str:
    renderer = get_renderer(DATASET, SCALE)
    view = renderer.view_from_angles(*DEFAULT_VIEW)
    fact = renderer.factorize_view(view)
    rle = renderer.rle_for(fact)

    headers = ["early_term", "resamples", "pixels_skipped", "busy_cycles"]
    rows = []
    for et, thr in (("on", 0.95), ("off", 2.0)):
        img = IntermediateImage(fact.intermediate_shape, opaque_threshold=thr)
        c = WorkCounters()
        composite_frame(img, rle, fact, counters=c)
        warp_frame(FinalImage(fact.final_shape), img, fact, counters=c)
        rows.append((et, c.resample_ops, c.pixels_skipped, scanline_cost(c)))
    table = format_table(headers, rows, width=16)
    on, off = rows[0][3], rows[1][3]
    table += f"\n\nearly termination saves {100 * (1 - on / off):.0f}% of compositing cycles"
    return emit("ablation_early_termination", table)


test_ablation_early_termination = one_round(run)

if __name__ == "__main__":
    run()
