"""Ablation: what each ingredient of the new algorithm contributes.

Four variants of the contiguous-partition renderer, isolating the
paper's design decisions (sections 4.2-4.4):

* uniform partition, no stealing   — contiguity alone;
* uniform partition + stealing     — stealing fixes static imbalance;
* profiled partition, no stealing  — prediction alone;
* profiled partition + stealing    — the paper's full algorithm.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_VIEW, ROTATION_STEP, get_renderer
from repro.core import NewParallelShearWarp
from repro.parallel.execution import simulate_animation

N_PROCS = 16
VARIANTS = (
    ("uniform", False),
    ("uniform", True),
    ("profile", False),
    ("profile", True),
)


def run() -> str:
    renderer = get_renderer(HEADLINE, SCALE)
    machine = machine_for("simulator", SCALE)
    rx, ry, rz = DEFAULT_VIEW
    views = [renderer.view_from_angles(rx, ry + i * ROTATION_STEP, rz)
             for i in range(3)]
    headers = ["partition", "stealing", "total_time", "sync%", "steals"]
    rows = []
    for partition, stealing in VARIANTS:
        new = NewParallelShearWarp(
            renderer, N_PROCS, partition=partition, stealing=stealing,
            mem_per_line_touch=machine.mem_per_line_touch,
        )
        frames = [new.render_frame(v) for v in views]
        rep = simulate_animation(frames, machine)
        rows.append((partition, str(stealing), rep.total_time,
                     100 * rep.fractions()["sync"],
                     sum(p.steals for p in rep.composite.sched.procs)))
    table = format_table(headers, rows, width=13)
    return emit("ablation_partition_strategy", table)


test_ablation_partition_strategy = one_round(run)

if __name__ == "__main__":
    run()
