"""Ablation: profiling period k (section 4.2).

Profiling every frame costs 10-15 % extra compositing; profiling rarely
risks stale predictions as the viewpoint rotates away.  The paper
refreshes every ~15 degrees.  Sweep the period over a longer animation
and report the averaged frame time.
"""

from __future__ import annotations

import numpy as np

from common import HEADLINE, SCALE, emit, machine_for, one_round

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_VIEW, ROTATION_STEP, get_renderer
from repro.core import NewParallelShearWarp, ProfileSchedule
from repro.parallel.execution import simulate_animation

N_PROCS = 8
N_FRAMES = 8
PERIODS = (1, 2, 5, 100)


def run() -> str:
    renderer = get_renderer(HEADLINE, SCALE)
    machine = machine_for("simulator", SCALE)
    rx, ry, rz = DEFAULT_VIEW
    views = [renderer.view_from_angles(rx, ry + i * ROTATION_STEP, rz)
             for i in range(N_FRAMES)]
    headers = ["period", "profiled_frames", "mean_busy", "last_total"]
    rows = []
    for period in PERIODS:
        new = NewParallelShearWarp(
            renderer, N_PROCS, profile_schedule=ProfileSchedule(period=period),
            mem_per_line_touch=machine.mem_per_line_touch,
        )
        frames = [new.render_frame(v) for v in views]
        rep = simulate_animation(frames, machine)
        busy = np.mean([f.composite_cost_total for f in frames])
        rows.append((period, sum(f.profiled for f in frames), busy, rep.total_time))
    table = format_table(headers, rows, width=16)
    table += "\n(period 1: every frame pays the 12% profiling tax; large period: stale partitions)"
    return emit("ablation_profile_period", table)


test_ablation_profile_period = one_round(run)

if __name__ == "__main__":
    run()
