"""Ablation: stealing granularity (section 4.4).

The paper initially stole single scanlines and saw ~10x the old
algorithm's synchronization overhead, then switched to chunks.  Sweep
the steal-chunk size for the new renderer and report total steal/lock
overhead and frame time.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.parallel.execution import simulate_animation

N_PROCS = 16
CHUNKS = (1, 2, 4, 8)


def run() -> str:
    machine = machine_for("simulator", SCALE)
    headers = ["steal_chunk", "steals", "steal_cycles", "total_time"]
    rows = []
    for chunk in CHUNKS:
        frames = record_frames(HEADLINE, "new", N_PROCS, scale=SCALE,
                               steal_chunk=chunk,
                               mem_per_line_touch=machine.mem_per_line_touch)
        rep = simulate_animation(list(frames), machine)
        steals = sum(p.steals for p in rep.composite.sched.procs)
        rows.append((chunk, steals, float(rep.composite.steal.sum()),
                     rep.total_time))
    table = format_table(headers, rows, width=14)
    return emit("ablation_steal_chunk", table)


test_ablation_steal_chunk = one_round(run)

if __name__ == "__main__":
    run()
