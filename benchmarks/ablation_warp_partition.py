"""Ablation: what the identical cross-phase partition buys (section 4.1).

Isolates the paper's core claim by comparing the warp phase alone:
the old scheme (round-robin final-image tiles, reading intermediate
lines composited by other processors) vs the new scheme (each processor
warps its own partition).  Reports warp-phase misses and stall cycles.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.parallel.execution import simulate_animation

N_PROCS = 16


def run() -> str:
    machine = machine_for("simulator", SCALE)
    headers = ["algorithm", "warp_true", "warp_repl", "warp_stall", "warp_busy"]
    rows = []
    for alg in ("old", "new"):
        frames = record_frames(
            HEADLINE, alg, N_PROCS, scale=SCALE,
            mem_per_line_touch=machine.mem_per_line_touch if alg == "new" else None,
        )
        rep = simulate_animation(list(frames), machine)
        st = rep.warp.stats
        rows.append((
            alg,
            sum(st.misses[p]["true"] for p in range(N_PROCS)),
            sum(st.misses[p]["replacement"] for p in range(N_PROCS)),
            float(rep.warp.mem.sum()),
            float(rep.warp.busy.sum()),
        ))
    table = format_table(headers, rows, width=13)
    return emit("ablation_warp_partition", table)


test_ablation_warp_partition = one_round(run)

if __name__ == "__main__":
    run()
