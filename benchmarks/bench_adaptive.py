"""Uniform vs profile-balanced partitioning in the real worker pool.

The paper's central claim (sections 4.2-4.3) is that sizing each
processor's contiguous scanline block from a measured per-scanline cost
profile removes the load imbalance a uniform split suffers on skewed
views.  This benchmark measures that claim on the *real*
``multiprocessing`` backend with a deliberately lopsided input: the
:func:`repro.datasets.density_wedge` phantom, whose material occupancy
(and hence per-scanline compositing cost) ramps steeply across
scanlines.

A short rotation animation is rendered twice through
:class:`repro.parallel.MPRenderPool` — once with ``profile_period=0``
(always-uniform split) and once with the profile feedback loop on — and
for every frame the pool reports each worker's busy time (compositing +
warp, barrier waits excluded).  Reported per mode:

* wall-clock seconds for the whole animation;
* per-worker busy-time *spread*, ``(max - min) / mean``, averaged over
  the frames rendered from a measured profile (the first frame of each
  run is profile-less by construction and excluded);
* bit-identity of the two modes' images (the partition only moves work
  between workers, never changes the arithmetic).

Task stealing is pinned *off* in both modes: stealing would flatten both
spreads dynamically and blur the static-partitioning claim this
benchmark isolates (the stealing-on comparison is ``bench_steal.py``).

Results are published as ``BENCH_adaptive.json`` at the repository
root.  The non-smoke run fails if the adaptive spread is not below the
uniform spread.

Run:  python benchmarks/bench_adaptive.py [--smoke] [--procs N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import Stopwatch, host_cpu_info, save_bench_json  # noqa: E402

from repro.datasets import density_wedge  # noqa: E402
from repro.parallel.mp_backend import MPRenderPool  # noqa: E402
from repro.render import ShearWarpRenderer  # noqa: E402
from repro.volume import mri_transfer_function  # noqa: E402

SHAPE = (48, 48, 32)
SMOKE_SHAPE = (24, 24, 16)
PROFILE_PERIOD = 4


def run_animation(
    renderer: ShearWarpRenderer,
    views: list[np.ndarray],
    n_procs: int,
    profile_period: int,
    kernel: str,
) -> dict:
    """Render the animation once; return timings, spreads and images."""
    # stealing=False isolates the static-partition claim (see module doc).
    with MPRenderPool(renderer, n_procs=n_procs, kernel=kernel,
                      profile_period=profile_period, stealing=False) as pool:
        pool.render(views[0])  # warm up fork + first slice decodes
        with Stopwatch() as sw:
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
        wall = sw.seconds

    # busy_spread is the shared (max-min)/mean imbalance scalar from
    # repro.obs.metrics, surfaced per result by MPRenderResult.
    spreads = [res.busy_spread for res in results[1:]  # frame 0 has no profile
               if res.busy_s is not None and res.busy_s.mean() > 0]
    return {
        "wall_s": wall,
        "ms_per_frame": wall / len(views) * 1e3,
        "busy_spread_mean": float(np.mean(spreads)),
        "busy_spread_per_frame": [round(s, 4) for s in spreads],
        "boundaries_last": [int(b) for b in results[-1].boundaries],
        "images": [(r.final.color, r.final.alpha) for r in results],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volume, short animation (CI smoke test)")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args(argv)

    shape = SMOKE_SHAPE if args.smoke else SHAPE
    n_frames = args.frames if args.frames else (5 if args.smoke else 12)
    renderer = ShearWarpRenderer(density_wedge(shape), mri_transfer_function())
    # Rotation stays well inside one principal-axis octant: an axis
    # switch (correctly) invalidates the profile mid-animation, which is
    # a separate behavior from the steady-state balance measured here.
    views = [renderer.view_from_angles(18, 8 + 2.5 * i, 0) for i in range(n_frames)]

    report = {
        "benchmark": "adaptive_partition",
        "smoke": args.smoke,
        **host_cpu_info(),
        "phantom": {"name": "density_wedge", "shape": list(shape)},
        "n_procs": args.procs,
        "n_frames": n_frames,
        "profile_period": PROFILE_PERIOD,
        "kernels": {},
    }
    print(f"density_wedge {shape}, {args.procs} workers, {n_frames} frames "
          f"(profile period {PROFILE_PERIOD}):")
    ok = True
    for kernel in ("scanline", "block"):
        uniform = run_animation(renderer, views, args.procs,
                                profile_period=0, kernel=kernel)
        adaptive = run_animation(renderer, views, args.procs,
                                 profile_period=PROFILE_PERIOD, kernel=kernel)
        exact = all(
            np.array_equal(cu, ca) and np.array_equal(au, aa)
            for (cu, au), (ca, aa) in zip(uniform.pop("images"),
                                          adaptive.pop("images"))
        )
        improved = adaptive["busy_spread_mean"] < uniform["busy_spread_mean"]
        report["kernels"][kernel] = {
            "uniform": {k: round(v, 4) if isinstance(v, float) else v
                        for k, v in uniform.items()},
            "adaptive": {k: round(v, 4) if isinstance(v, float) else v
                         for k, v in adaptive.items()},
            "exact_equal": exact,
            "spread_improved": improved,
        }
        for mode, row in (("uniform", uniform), ("adaptive", adaptive)):
            print(f"  {kernel:8s} {mode:8s}: {row['ms_per_frame']:7.1f} ms/frame, "
                  f"busy spread (max-min)/mean = {row['busy_spread_mean']:.3f}, "
                  f"last boundaries {row['boundaries_last']}")
        print(f"  {kernel:8s} images bit-identical: {exact}; "
              f"spread reduced: {improved}")
        ok &= exact
        # The scanline kernel's per-scanline costs mirror the paper's
        # granularity, so its spread reduction is the enforced claim; the
        # block kernel's inherent imbalance is far smaller (vectorized
        # per-slice work dominates), so its spread is recorded only.
        if not args.smoke and kernel == "scanline":
            ok &= improved

    out_path = save_bench_json("adaptive", report)
    print(f"wrote {out_path}")

    if not ok:
        print("FAILED: bit-identity or scanline spread criterion not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
