"""Cost of the pool's fault tolerance: healthy overhead and recovery latency.

The supervised pool (worker sentinels, per-frame deadlines, frame retry)
must be close to free when nothing fails — the paper's whole point is
that the partitioned design wins on *throughput*, so supervision cannot
tax the healthy path.  Two measurements on the real multiprocessing
backend:

* **healthy overhead** — the same short animation rendered with the
  default supervision cadence (``poll_s=0.05``) and with the health
  checks effectively parked (``poll_s=60``: done messages are still
  consumed immediately, only the sentinel/deadline sweeps stop).  The
  relative wall-clock difference is the price of supervision; the
  target is < 2%.
* **recovery latency** — the same animation with a deterministic
  SIGKILL injected into one worker mid-animation (the ``_TEST_FAULT``
  hook, the monkeypatch twin of ``REPRO_MP_FAULT``).  Reported: total
  wall clock vs healthy, the supervisor's measured ``pool/recovery_s``
  (terminate + respawn + re-dispatch), restart/retry counters, and
  bit-identity of every frame against the healthy run.

Results are published as ``BENCH_faults.json`` at the repository root.
The non-smoke run fails if the healthy overhead exceeds the 2% target
(with a noise allowance), if recovery did not actually happen, or if
any recovered frame's image differs.

Run:  python benchmarks/bench_faults.py [--smoke] [--procs N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import Stopwatch, best_of, host_cpu_info, save_bench_json  # noqa: E402

import repro.parallel.mp_backend as mpb  # noqa: E402
from repro.datasets import mri_brain  # noqa: E402
from repro.parallel.mp_backend import MPRenderPool, PoolConfig  # noqa: E402
from repro.render import ShearWarpRenderer  # noqa: E402
from repro.volume import mri_transfer_function  # noqa: E402

SHAPE = (48, 48, 32)
SMOKE_SHAPE = (24, 24, 16)
#: Overhead reps: best-of filters host noise from a sub-percent signal.
REPS = 5
SMOKE_REPS = 2
#: Allowance on top of the 2% target for wall-clock noise at this scale.
NOISE_MARGIN = 0.02


def animate(renderer, views, cfg: PoolConfig) -> dict:
    """Render the animation once; return wall time, images, counters."""
    with MPRenderPool(renderer, config=cfg) as pool:
        pool.render(views[0])  # warm up fork + first slice decodes
        with Stopwatch() as sw:
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
        counters = pool.fault_counters()
        recovery = pool.metrics.snapshot()["histograms"].get("pool/recovery_s")
    return {
        "wall_s": sw.seconds,
        "images": [(r.final.color, r.final.alpha) for r in results],
        "retries": [r.retries for r in results],
        "degraded": [r.degraded for r in results],
        "counters": counters,
        "recovery_s": recovery,
    }


def timed_animations(renderer, views, configs: dict, reps: int) -> dict:
    """Best-of wall clock per config, reps *interleaved* across configs.

    Back-to-back blocks of identical runs pick up slow drifts in host
    load as a phantom config effect (several % at this scale — larger
    than the signal); alternating the configs rep by rep exposes every
    config to the same noise.
    """

    def run(cfg):
        with MPRenderPool(renderer, config=cfg) as pool:
            pool.render(views[0])
            handles = [pool.submit(v) for v in views]
            for h in handles:
                pool.result(h)

    best = {name: float("inf") for name in configs}
    for _ in range(max(1, reps)):
        for name, cfg in configs.items():
            best[name] = min(best[name], best_of(lambda: run(cfg), 1))
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volume, short animation (CI smoke test)")
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args(argv)

    shape = SMOKE_SHAPE if args.smoke else SHAPE
    n_frames = args.frames if args.frames else (4 if args.smoke else 12)
    reps = SMOKE_REPS if args.smoke else REPS
    renderer = ShearWarpRenderer(mri_brain(shape), mri_transfer_function())
    views = [renderer.view_from_angles(20, 30 + 3 * i, 0)
             for i in range(n_frames)]
    base = PoolConfig(n_procs=args.procs, profile_period=0)

    # Healthy overhead: default cadence vs health checks parked.  Both
    # configs run the supervisor thread and consume done messages the
    # same way; only the sentinel/deadline sweep frequency differs.
    timings = timed_animations(
        renderer, views,
        {"supervised": base, "parked": base.replace(poll_s=60.0)}, reps,
    )
    t_supervised, t_parked = timings["supervised"], timings["parked"]
    overhead = (t_supervised - t_parked) / t_parked if t_parked > 0 else 0.0

    # Recovery latency: kill worker 0 mid-animation (frame 1), compare
    # against an unfaulted run of the identical animation.
    healthy = animate(renderer, views, base)
    mpb._TEST_FAULT = (0, 1, "kill", "composite")
    try:
        faulted = animate(renderer, views, base)
    finally:
        mpb._TEST_FAULT = None

    exact = all(
        np.array_equal(hc, fc) and np.array_equal(ha, fa)
        for (hc, ha), (fc, fa) in zip(healthy["images"], faulted["images"])
    )
    recovered = (faulted["counters"]["worker_restarts"] >= 1
                 and sum(faulted["retries"]) >= 1
                 and not any(faulted["degraded"]))
    recovery_hist = faulted["recovery_s"]

    report = {
        "benchmark": "faults",
        "smoke": args.smoke,
        **host_cpu_info(),
        "phantom": {"name": "mri_brain", "shape": list(shape)},
        "n_procs": args.procs,
        "n_frames": n_frames,
        "reps": reps,
        "healthy": {
            "supervised_ms_per_frame": round(t_supervised / n_frames * 1e3, 3),
            "parked_ms_per_frame": round(t_parked / n_frames * 1e3, 3),
            "supervision_overhead": round(overhead, 4),
            "target": 0.02,
        },
        "faulted": {
            "wall_s": round(faulted["wall_s"], 4),
            "healthy_wall_s": round(healthy["wall_s"], 4),
            "recovery_s": recovery_hist,
            "counters": faulted["counters"],
            "frame_retries": faulted["retries"],
        },
        "exact_equal_after_recovery": exact,
        "recovered": recovered,
    }

    print(f"mri_brain {shape}, {args.procs} workers, {n_frames} frames, "
          f"best of {reps}:")
    print(f"  healthy: supervised {t_supervised / n_frames * 1e3:7.2f} "
          f"ms/frame vs parked {t_parked / n_frames * 1e3:7.2f} ms/frame "
          f"-> overhead {overhead * 100:+.2f}% (target < 2%)")
    rec_mean = (recovery_hist or {}).get("mean", 0.0)
    print(f"  faulted: {faulted['wall_s']:.3f} s wall "
          f"(healthy {healthy['wall_s']:.3f} s), recovery "
          f"{rec_mean * 1e3:.1f} ms, counters {faulted['counters']}")
    print(f"  images bit-identical after recovery: {exact}; "
          f"recovered without degradation: {recovered}")

    out_path = save_bench_json("faults", report)
    print(f"wrote {out_path}")

    ok = exact and recovered
    if not args.smoke:
        # Smoke skips the overhead gate: sub-percent wall-clock deltas
        # are pure noise at smoke scale and on loaded CI hosts.
        ok &= overhead < 0.02 + NOISE_MARGIN
    if not ok:
        print("FAILED: overhead / recovery / bit-identity criterion not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
