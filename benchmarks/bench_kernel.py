"""Compositing-kernel benchmark: scanline vs block vs fast, serial and parallel.

Unlike the ``fig*`` benchmarks (simulated 1997 machines), this measures
*wall-clock* time on the current host — the perf trajectory of the real
execution path.  Three serial configurations composite one frame:

* ``scanline`` — the instrumented per-scanline reference kernel;
* ``block``    — the vectorized block kernel over the whole frame;
* ``fast``     — ``composite_frame_fast`` (the degenerate whole-frame
  block call, kept separate to catch wiring regressions);

then the parallel backends render a short animation at 1-4 workers with
both kernels and four dispatch protocols:

* ``oneshot``  — fork + setup every frame (the worst case);
* ``perframe`` — persistent :class:`MPRenderPool`, classic per-frame
  submit/result round-trips (``doorbell=False, pipeline=False``);
* ``batched``  — one queue message per worker for the whole animation,
  shm-doorbell completion, cross-frame pipelining (the defaults);
* ``threaded`` — the no-copy :class:`ThreadRenderPool`, batched.

A traced pass splits the per-frame dispatch *tax* (wait + barrier +
doorbell + parent dispatch span time) out of the block-kernel runs so
the overhead the batching work attacks is measured, not inferred.  The
report carries two headline booleans: ``parallel_beats_serial_1proc``
(a 1-worker pooled/threaded frame costs no more than the serial block
composite) and ``parallel_beats_serial`` (some >= 2-worker config beats
serial outright — only reachable on a multi-core host, see
``host_cpus_available``).  Results land in ``BENCH_kernel.json`` at the
repository root.

Run:  python benchmarks/bench_kernel.py [--smoke] [--reps N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import best_of, host_cpu_info, save_bench_json  # noqa: E402

from repro.datasets import ct_head, mri_brain  # noqa: E402
from repro.parallel.mp_backend import (  # noqa: E402
    MPRenderPool,
    PoolConfig,
    render_parallel_mp,
)
from repro.parallel.thread_backend import ThreadRenderPool  # noqa: E402
from repro.render import (  # noqa: E402
    IntermediateImage,
    ShearWarpRenderer,
    composite_image_scanline,
    composite_scanline_block,
)
from repro.render.fast import composite_frame_fast  # noqa: E402
from repro.volume import ct_transfer_function, mri_transfer_function  # noqa: E402

#: The default MRI proxy of the acceptance criterion: 64^3-class volume
#: with the paper's 0.65 z-elongation (matches examples/multicore_speedup).
MRI_SHAPE = (64, 64, 42)
CT_SHAPE = (64, 64, 64)
SMOKE_MRI_SHAPE = (28, 28, 20)
SMOKE_CT_SHAPE = (24, 24, 24)

#: Span phases that are dispatch tax rather than compute: queue waits,
#: the inter-phase barrier, buffer-release gate spins, and the parent's
#: plan+enqueue work.
OVERHEAD_PHASES = ("wait", "barrier", "doorbell", "dispatch")


def bench_serial(renderer: ShearWarpRenderer, view: np.ndarray, reps: int) -> dict:
    fact = renderer.factorize_view(view)
    rle = renderer.rle_for(fact)
    n_v = fact.intermediate_shape[0]

    def run_scanline() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        for v in range(n_v):
            composite_image_scanline(img, v, rle, fact)
        return img

    def run_block() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        composite_scanline_block(img, 0, n_v, rle, fact)
        return img

    def run_fast() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        composite_frame_fast(img, rle, fact)
        return img

    ref = run_scanline()
    got = run_block()  # also warms the decoded-slice cache
    exact = bool(
        np.array_equal(ref.opacity, got.opacity)
        and np.array_equal(ref.color, got.color)
    )
    times = {
        "scanline": best_of(run_scanline, reps),
        "block": best_of(run_block, reps),
        "fast": best_of(run_fast, reps),
    }
    return {
        "composite_ms": {k: round(v * 1e3, 3) for k, v in times.items()},
        "block_speedup_vs_scanline": round(times["scanline"] / times["block"], 2),
        "exact_equal": exact,
    }


def _perframe_animation(pool, views) -> None:
    handles = [pool.submit(v) for v in views]
    for h in handles:
        pool.result(h)


def bench_parallel(
    renderer: ShearWarpRenderer,
    views: list[np.ndarray],
    procs: tuple[int, ...],
    reps: int,
) -> dict:
    out: dict = {}
    for n in procs:
        out[str(n)] = {}
        for kernel in ("scanline", "block"):
            oneshot = best_of(
                lambda: render_parallel_mp(renderer, views[0], n_procs=n, kernel=kernel),
                reps,
            )
            # Classic per-frame protocol: one submit/result round-trip,
            # pickled done messages — the pre-batching baseline.
            cfg = PoolConfig(n_procs=n, kernel=kernel,
                             doorbell=False, pipeline=False)
            with MPRenderPool(renderer, config=cfg) as pool:
                pool.render(views[0])  # warm up fork + decodes
                perframe = best_of(
                    lambda: _perframe_animation(pool, views), reps
                ) / len(views)
            # Batched + doorbell + pipelined (the defaults).
            with MPRenderPool(renderer, n_procs=n, kernel=kernel) as pool:
                pool.render(views[0])
                batched = best_of(
                    lambda: pool.render_animation(views), reps
                ) / len(views)
            # The no-copy thread pool, batched.
            with ThreadRenderPool(renderer, n_procs=n, kernel=kernel) as pool:
                pool.render(views[0])
                threaded = best_of(
                    lambda: pool.render_animation(views), reps
                ) / len(views)
            out[str(n)][kernel] = {
                "oneshot_ms": round(oneshot * 1e3, 3),
                "pooled_ms_per_frame": round(perframe * 1e3, 3),
                "batched_ms_per_frame": round(batched * 1e3, 3),
                "threaded_ms_per_frame": round(threaded * 1e3, 3),
            }
    return out


def _traced_overhead(pool, run, views) -> dict:
    """Per-frame dispatch-tax split of one traced animation run."""
    pool.render(views[0])  # warm up; frame 0's spans are discarded below
    warm_frames = len(pool.timelines)
    run()
    timelines = pool.timelines[warm_frames:]
    n = max(1, len(timelines))
    totals: dict[str, float] = {}
    for tl in timelines:
        for phase, s in tl.phase_seconds().items():
            totals[phase] = totals.get(phase, 0.0) + s
    overhead = sum(totals.get(p, 0.0) for p in OVERHEAD_PHASES)
    return {
        "overhead_ms_per_frame": round(overhead / n * 1e3, 3),
        "composite_ms_per_frame": round(totals.get("composite", 0.0) / n * 1e3, 3),
        "phases_ms_per_frame": {
            p: round(totals.get(p, 0.0) / n * 1e3, 3) for p in OVERHEAD_PHASES
        },
    }


def bench_dispatch_overhead(
    renderer: ShearWarpRenderer, views: list[np.ndarray], n: int
) -> dict:
    """Span-measured dispatch tax, per-frame vs batched, block kernel.

    The arithmetic difference ``pooled_ms_per_frame - serial block
    composite_ms`` says overhead exists; the spans say where it goes.
    Traced pools run separately from the timed ones so ring recording
    never pollutes the headline timings.
    """
    out: dict = {}
    cfg_pf = PoolConfig(n_procs=n, trace=True, doorbell=False, pipeline=False)
    with MPRenderPool(renderer, config=cfg_pf) as pool:
        out["perframe"] = _traced_overhead(
            pool, lambda: _perframe_animation(pool, views), views
        )
    cfg_b = PoolConfig(n_procs=n, trace=True)
    with MPRenderPool(renderer, config=cfg_b) as pool:
        out["batched"] = _traced_overhead(
            pool, lambda: pool.render_animation(views), views
        )
    with ThreadRenderPool(renderer, config=cfg_b) as pool:
        out["threaded"] = _traced_overhead(
            pool, lambda: pool.render_animation(views), views
        )
    pf = out["perframe"]["overhead_ms_per_frame"]
    ba = out["batched"]["overhead_ms_per_frame"]
    out["reduction_x"] = round(pf / ba, 2) if ba > 0 else float("inf")
    # The pure dispatch span (queue round-trips + worker wake-up) is the
    # cost batching actually attacks; wait/barrier also land in the
    # aggregate above but are dominated by CPU timesharing when the host
    # has fewer cores than workers, so report the component separately.
    pf_d = out["perframe"]["phases_ms_per_frame"]["dispatch"]
    ba_d = out["batched"]["phases_ms_per_frame"]["dispatch"]
    out["dispatch_reduction_x"] = (
        round(pf_d / ba_d, 2) if ba_d > 0 else float("inf")
    )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volumes, minimal reps (CI smoke test)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)
    procs = (1, 2) if args.smoke else (1, 2, 4)
    n_anim = 2 if args.smoke else 6
    datasets = {
        "mri_brain": (mri_brain, SMOKE_MRI_SHAPE if args.smoke else MRI_SHAPE,
                      mri_transfer_function()),
        "ct_head": (ct_head, SMOKE_CT_SHAPE if args.smoke else CT_SHAPE,
                    ct_transfer_function()),
    }

    report: dict = {
        "benchmark": "kernel",
        "smoke": args.smoke,
        **host_cpu_info(),
        "datasets": {},
    }
    multi_core = report["host_cpus_available"] >= 2
    ok = True
    beats_1proc = False
    beats_serial = False
    for name, (factory, shape, tf) in datasets.items():
        renderer = ShearWarpRenderer(factory(shape), tf)
        views = [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n_anim)]
        serial = bench_serial(renderer, views[0], reps)
        par = bench_parallel(renderer, views, procs, reps)
        overhead = bench_dispatch_overhead(renderer, views, max(procs))
        report["datasets"][name] = {
            "shape": list(shape),
            "serial": serial,
            "mp": par,
            "dispatch_overhead": overhead,
        }

        serial_block = serial["composite_ms"]["block"]
        c = serial["composite_ms"]
        print(f"{name} {shape}: composite scanline {c['scanline']:.1f} ms, "
              f"block {c['block']:.1f} ms "
              f"({serial['block_speedup_vs_scanline']:.1f}x), "
              f"fast {c['fast']:.1f} ms, "
              f"exact_equal={serial['exact_equal']}")
        for n in procs:
            row = par[str(n)]["block"]
            print(f"  {n} proc(s) block: one-shot {row['oneshot_ms']:.1f} ms; "
                  f"per-frame {row['pooled_ms_per_frame']:.1f}, "
                  f"batched {row['batched_ms_per_frame']:.1f}, "
                  f"threaded {row['threaded_ms_per_frame']:.1f} ms/frame "
                  f"(serial block {serial_block:.1f} ms)")
            best = min(row["batched_ms_per_frame"], row["threaded_ms_per_frame"])
            if n == 1 and best <= serial_block:
                beats_1proc = True
            if n >= 2 and best < serial_block:
                beats_serial = True
        print(f"  dispatch tax at {max(procs)} procs (block, span-split): "
              f"per-frame {overhead['perframe']['overhead_ms_per_frame']:.2f} ms"
              f" -> batched {overhead['batched']['overhead_ms_per_frame']:.2f} ms"
              f" ({overhead['reduction_x']}x lower), "
              f"threaded {overhead['threaded']['overhead_ms_per_frame']:.2f} ms; "
              f"dispatch span alone {overhead['dispatch_reduction_x']}x lower")
        ok &= serial["exact_equal"]
        if not args.smoke and name == "mri_brain":
            ok &= serial["block_speedup_vs_scanline"] >= 3.0

    report["parallel_beats_serial_1proc"] = beats_1proc
    # Only claimable where >= 2 workers can actually run concurrently.
    report["parallel_beats_serial"] = beats_serial
    report["multi_core_host"] = multi_core
    print(f"\nparallel_beats_serial_1proc={beats_1proc}  "
          f"parallel_beats_serial={beats_serial}  "
          f"(host: {report['host_cpus']} cpus, "
          f"{report['host_cpus_available']} available)")

    out_path = save_bench_json("kernel", report)
    print(f"wrote {out_path}")
    if not ok:
        print("FAILED: exact-equality or speedup criterion not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
