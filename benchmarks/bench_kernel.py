"""Compositing-kernel benchmark: scanline vs block vs fast, serial and MP.

Unlike the ``fig*`` benchmarks (simulated 1997 machines), this measures
*wall-clock* time on the current host — the perf trajectory of the real
execution path.  Three serial configurations composite one frame:

* ``scanline`` — the instrumented per-scanline reference kernel;
* ``block``    — the vectorized block kernel over the whole frame;
* ``fast``     — ``composite_frame_fast`` (the degenerate whole-frame
  block call, kept separate to catch wiring regressions);

then the shared-memory backend renders a short animation at 1-4 worker
processes with both kernels, one-shot (fork + setup every frame) and
through a persistent :class:`MPRenderPool`.  Results are published as
``BENCH_kernel.json`` at the repository root.

Run:  python benchmarks/bench_kernel.py [--smoke] [--reps N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import best_of, save_bench_json  # noqa: E402

from repro.datasets import ct_head, mri_brain  # noqa: E402
from repro.parallel.mp_backend import MPRenderPool, render_parallel_mp  # noqa: E402
from repro.render import (  # noqa: E402
    IntermediateImage,
    ShearWarpRenderer,
    composite_image_scanline,
    composite_scanline_block,
)
from repro.render.fast import composite_frame_fast  # noqa: E402
from repro.volume import ct_transfer_function, mri_transfer_function  # noqa: E402

#: The default MRI proxy of the acceptance criterion: 64^3-class volume
#: with the paper's 0.65 z-elongation (matches examples/multicore_speedup).
MRI_SHAPE = (64, 64, 42)
CT_SHAPE = (64, 64, 64)
SMOKE_MRI_SHAPE = (28, 28, 20)
SMOKE_CT_SHAPE = (24, 24, 24)


def bench_serial(renderer: ShearWarpRenderer, view: np.ndarray, reps: int) -> dict:
    fact = renderer.factorize_view(view)
    rle = renderer.rle_for(fact)
    n_v = fact.intermediate_shape[0]

    def run_scanline() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        for v in range(n_v):
            composite_image_scanline(img, v, rle, fact)
        return img

    def run_block() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        composite_scanline_block(img, 0, n_v, rle, fact)
        return img

    def run_fast() -> IntermediateImage:
        img = IntermediateImage(fact.intermediate_shape)
        composite_frame_fast(img, rle, fact)
        return img

    ref = run_scanline()
    got = run_block()  # also warms the decoded-slice cache
    exact = bool(
        np.array_equal(ref.opacity, got.opacity)
        and np.array_equal(ref.color, got.color)
    )
    times = {
        "scanline": best_of(run_scanline, reps),
        "block": best_of(run_block, reps),
        "fast": best_of(run_fast, reps),
    }
    return {
        "composite_ms": {k: round(v * 1e3, 3) for k, v in times.items()},
        "block_speedup_vs_scanline": round(times["scanline"] / times["block"], 2),
        "exact_equal": exact,
    }


def bench_mp(
    renderer: ShearWarpRenderer,
    views: list[np.ndarray],
    procs: tuple[int, ...],
    reps: int,
) -> dict:
    out: dict = {}
    for n in procs:
        out[str(n)] = {}
        for kernel in ("scanline", "block"):
            oneshot = best_of(
                lambda: render_parallel_mp(renderer, views[0], n_procs=n, kernel=kernel),
                reps,
            )
            with MPRenderPool(renderer, n_procs=n, kernel=kernel) as pool:
                pool.render(views[0])  # warm up fork + decodes

                def run_animation() -> None:
                    handles = [pool.submit(v) for v in views]
                    for h in handles:
                        pool.result(h)

                pooled = best_of(run_animation, reps) / len(views)
            out[str(n)][kernel] = {
                "oneshot_ms": round(oneshot * 1e3, 3),
                "pooled_ms_per_frame": round(pooled * 1e3, 3),
            }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volumes, minimal reps (CI smoke test)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)
    procs = (1, 2) if args.smoke else (1, 2, 4)
    n_anim = 2 if args.smoke else 6
    datasets = {
        "mri_brain": (mri_brain, SMOKE_MRI_SHAPE if args.smoke else MRI_SHAPE,
                      mri_transfer_function()),
        "ct_head": (ct_head, SMOKE_CT_SHAPE if args.smoke else CT_SHAPE,
                    ct_transfer_function()),
    }

    report: dict = {
        "benchmark": "kernel",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "datasets": {},
    }
    ok = True
    for name, (factory, shape, tf) in datasets.items():
        renderer = ShearWarpRenderer(factory(shape), tf)
        views = [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n_anim)]
        serial = bench_serial(renderer, views[0], reps)
        mp = bench_mp(renderer, views, procs, reps)
        report["datasets"][name] = {"shape": list(shape), "serial": serial, "mp": mp}

        c = serial["composite_ms"]
        print(f"{name} {shape}: composite scanline {c['scanline']:.1f} ms, "
              f"block {c['block']:.1f} ms "
              f"({serial['block_speedup_vs_scanline']:.1f}x), "
              f"fast {c['fast']:.1f} ms, "
              f"exact_equal={serial['exact_equal']}")
        for n in procs:
            row = mp[str(n)]
            print(f"  {n} proc(s): one-shot scanline {row['scanline']['oneshot_ms']:.1f} ms"
                  f" / block {row['block']['oneshot_ms']:.1f} ms;  pooled scanline "
                  f"{row['scanline']['pooled_ms_per_frame']:.1f} ms"
                  f" / block {row['block']['pooled_ms_per_frame']:.1f} ms per frame")
        ok &= serial["exact_equal"]
        if not args.smoke and name == "mri_brain":
            ok &= serial["block_speedup_vs_scanline"] >= 3.0

    out_path = save_bench_json("kernel", report)
    print(f"\nwrote {out_path}")
    if not ok:
        print("FAILED: exact-equality or speedup criterion not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
