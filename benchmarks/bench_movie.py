"""Movie pipeline: stage-overlap measurement over the RenderBackend seam.

The movie pipeline renders frames on a pool's workers while the parent
encodes finished frames into an image sequence — MovieMaker's
render/encode stage split collapsed onto one host.  This benchmark
measures how much of the encode stage the render stage actually hides:

1. **Overlapped vs serialized.**  The same beating_heart movie runs
   through :class:`MoviePipeline` (encode interleaved with collection,
   workers running ahead through the pool's buffer-release cursors) and
   through a deliberately serialized baseline (collect *every* frame,
   then encode them all).  Reported per backend: wall time, total
   encode time, the overlapped share (every frame's encode but the
   last, which has no in-flight successor to hide behind), and the
   wall-clock delta.

2. **Time-varying overheads.**  The per-frame timestep switch costs a
   slice-cache refill on the next decode; ``timestep_switches`` and the
   pool's cache hit/miss counters quantify it against a static-volume
   run of the same frame count.

Honesty: this host reports ``host_cpu_info`` / ``multi_core_host`` in
the JSON; on a single-CPU host the workers and the encoding parent
time-share one core, so the overlap measured here is a *structural*
property (encode landing inside the workers' frame window), not an
end-to-end speedup claim — no speedup numbers are published unless
``multi_core_host`` is true.

Bit-identity is asserted before anything is timed: every movie frame
must equal the per-timestep serial render on every backend measured.

Results are published as ``BENCH_movie.json`` at the repository root.

Run:  python benchmarks/bench_movie.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import host_cpu_info, save_bench_json  # noqa: E402

import repro  # noqa: E402
from repro.movie import (  # noqa: E402
    MoviePipeline,
    beating_heart_renderer,
    movie_frame_specs,
    write_png,
)
from repro.render.fast import render_fast  # noqa: E402

SCALE, FRAMES, TIMESTEPS = 1.0, 12, 4
SMOKE_SCALE, SMOKE_FRAMES, SMOKE_TIMESTEPS = 0.5, 4, 2

BACKENDS = [
    ("thread", dict(n_procs=2, backend="thread", profile_period=0)),
    ("mp", dict(n_procs=2, profile_period=0)),
    ("shard", dict(n_procs=1, shards=2, profile_period=0)),
]


def assert_bit_identical(renderer, specs, out_dir, n_frames):
    for i in range(n_frames):
        ref = render_fast(renderer, specs[i].view, timestep=specs[i].timestep)
        with tempfile.NamedTemporaryFile(suffix=".png") as tmp:
            write_png(tmp.name, np.asarray(ref.final.color))
            ref_blob = open(tmp.name, "rb").read()
        got = open(os.path.join(out_dir, f"frame_{i:04d}.png"), "rb").read()
        if got != ref_blob:
            raise AssertionError(f"frame {i} differs from serial reference")


def serialized_baseline(pool, specs, out_dir):
    """Collect everything, then encode everything: no overlap at all."""
    t0 = time.perf_counter()
    ids = pool.submit_batch(specs)
    results = [pool.result(f) for f in ids]
    t_collect = time.perf_counter() - t0
    t1 = time.perf_counter()
    for i, res in enumerate(results):
        write_png(os.path.join(out_dir, f"frame_{i:04d}.png"),
                  np.asarray(res.final.color))
    t_encode = time.perf_counter() - t1
    return {"wall_s": time.perf_counter() - t0,
            "collect_s": t_collect, "encode_s": t_encode}


def run_backend(name, overrides, renderer, specs, tmp_root):
    out_a = os.path.join(tmp_root, f"{name}_overlap")
    out_b = os.path.join(tmp_root, f"{name}_serialized")
    os.makedirs(out_b, exist_ok=True)
    with repro.open_pool(renderer, **overrides) as pool:
        pipe = MoviePipeline(pool, out_a, fmt="png")
        manifest = pipe.run(specs)
        baseline = serialized_baseline(pool, specs, out_b)
    assert_bit_identical(renderer, specs, out_a, len(specs))
    assert_bit_identical(renderer, specs, out_b, len(specs))
    ov = manifest["stage_overlap"]
    return {
        "overlapped": ov,
        "serialized": baseline,
        "overlapped_encode_share": (
            ov["overlapped_encode_s"] / ov["encode_s"]
            if ov["encode_s"] > 0 else 0.0
        ),
        "wall_delta_s": baseline["wall_s"] - ov["wall_s"],
    }


def timestep_switch_overheads(scale, frames, timesteps):
    """Moving vs frozen volume: what the per-frame switch costs."""
    out = {}
    for label, steps in (("time_varying", timesteps), ("static", 1)):
        r = beating_heart_renderer(scale, timesteps=max(1, steps))
        specs = movie_frame_specs(r, frames, timesteps=max(1, steps))
        with repro.open_pool(r, n_procs=1, backend="thread",
                             profile_period=0) as pool:
            for fid in pool.submit_batch(specs):
                pool.result(fid)
        caches = [enc.slice_cache
                  for per_step in r.timeline.encodings
                  for enc in per_step.values()]
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        out[label] = {
            "frames": frames,
            "timestep_switches": int(getattr(r, "timestep_switches", 0)),
            "cache_hits": hits,
            "cache_misses": misses,
        }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny volume and frame count (CI)")
    args = ap.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else SCALE
    frames = SMOKE_FRAMES if args.smoke else FRAMES
    timesteps = SMOKE_TIMESTEPS if args.smoke else TIMESTEPS

    renderer = beating_heart_renderer(scale, timesteps=timesteps)
    specs = movie_frame_specs(renderer, frames, timesteps=timesteps)
    report = {
        "bench": "movie",
        "smoke": bool(args.smoke),
        "volume_shape": list(renderer.shape),
        "frames": frames,
        "timesteps": timesteps,
        **host_cpu_info(),
        "backends": {},
    }
    with tempfile.TemporaryDirectory() as tmp_root:
        for name, overrides in BACKENDS:
            report["backends"][name] = run_backend(
                name, overrides, renderer, specs, tmp_root
            )
            ov = report["backends"][name]["overlapped"]
            print(f"{name:>7}: wall {ov['wall_s'] * 1e3:7.1f} ms, "
                  f"encode {ov['encode_s'] * 1e3:6.1f} ms "
                  f"({report['backends'][name]['overlapped_encode_share']:.0%}"
                  f" overlapped), bit-identical ok")
    report["timestep_overheads"] = timestep_switch_overheads(
        scale, frames, timesteps
    )
    if not report["multi_core_host"]:
        report["note"] = (
            "single-CPU host: overlap figures are structural "
            "(encode inside the workers' frame window), not a "
            "speedup claim"
        )
    path = save_bench_json("movie", report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
