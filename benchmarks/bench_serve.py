"""Latency/throughput of the render service under concurrent clients.

``repro.serve`` turns the persistent worker pools into a shared service;
this benchmark measures what the serving layer itself buys.  A
:class:`~repro.serve.server.RenderServer` is started in-process over
loopback TCP and driven by fleets of real protocol clients at several
concurrency levels.  Every client walks the *same* short orbit of views
(a dashboard of viewers watching one volume), which is exactly the
traffic the front end is built for: concurrent identical requests
coalesce onto one pool render, repeated views are served from the
content-addressed frame cache, and only the residue reaches a pool.

Reported per concurrency level: client-observed latency (p50/p99),
throughput, and the serve-counter deltas (pool renders vs cache hits vs
coalesced followers) that explain them.  The frame cache is cleared
between levels so each level pays its own cold renders.

Honesty: the host facts from ``host_cpu_info`` ride along, and on a
single-core host (``multi_core_host: false``) the gains shown here are
*work elimination* (caching + coalescing), not parallel speedup — the
pools behind the server cannot overlap compositing on one core.

Results are published as ``BENCH_serve.json`` at the repository root.

Run:  python benchmarks/bench_serve.py [--smoke] [--procs N] [--backend B]
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from time import perf_counter

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import Stopwatch, host_cpu_info, save_bench_json  # noqa: E402

from repro.parallel.mp_backend import PoolConfig  # noqa: E402
from repro.serve import RenderClient, RenderServer, ServeConfig  # noqa: E402

#: Client fleet sizes (the >= 3 levels the report commits to).
LEVELS = (1, 4, 8)
SMOKE_LEVELS = (1, 2)
#: Distinct views in the shared orbit — small enough that a level's
#: second lap is all cache hits, the serving layer's bread and butter.
DISTINCT_VIEWS = 6
#: Per-client request counts — kept above ``DISTINCT_VIEWS`` (smoke
#: included) so every level's second lap exercises the cache.
REQUESTS_PER_CLIENT = 12
SMOKE_REQUESTS_PER_CLIENT = 8


async def run_level(
    address: tuple[str, int], n_clients: int, n_requests: int
) -> tuple[list[float], float]:
    """One fleet: every client renders the same orbit; returns
    (per-request latencies, wall seconds)."""
    host, port = address
    clients = [
        await RenderClient.connect(host, port) for _ in range(n_clients)
    ]
    latencies: list[float] = []

    async def drive(ci: int, client: RenderClient) -> None:
        for i in range(n_requests):
            ry = 30.0 + 3.0 * (i % DISTINCT_VIEWS)
            t0 = perf_counter()
            resp = await client.request(
                {"op": "render", "ry": ry, "client": f"c{ci}"}
            )
            latencies.append(perf_counter() - t0)
            if resp["status"] != "ok":
                raise RuntimeError(
                    f"request failed: {resp.get('error')}: "
                    f"{resp.get('detail')}"
                )

    with Stopwatch() as sw:
        await asyncio.gather(
            *(drive(i, c) for i, c in enumerate(clients))
        )
    for c in clients:
        await c.close()
    return latencies, sw.seconds


async def bench(args: argparse.Namespace, levels, n_requests) -> dict:
    config = ServeConfig(
        default_dataset=args.dataset,
        default_scale=args.scale,
        # Sized so the benchmark measures service latency, not rejection:
        # the backpressure path has its own tests.
        max_inflight=max(levels) + 1,
        pool=PoolConfig(n_procs=args.procs, backend=args.backend,
                        profile_period=0),
    )
    server = RenderServer(config)
    await server.start()
    rows = []
    try:
        for n_clients in levels:
            # Each level pays its own cold renders.
            server.cache.clear()
            before = {k: c.value for k, c in server.metrics.counters.items()}
            lats, wall = await run_level(
                server.address, n_clients, n_requests
            )
            after = {k: c.value for k, c in server.metrics.counters.items()}
            delta = {
                k: int(after[k] - before.get(k, 0))
                for k in sorted(after)
                if after[k] != before.get(k, 0)
            }
            lat_ms = np.asarray(lats) * 1e3
            rows.append({
                "n_clients": n_clients,
                "requests": len(lats),
                "wall_s": round(wall, 4),
                "throughput_rps": round(len(lats) / wall, 2),
                "latency_ms_p50": round(float(np.percentile(lat_ms, 50)), 3),
                "latency_ms_p99": round(float(np.percentile(lat_ms, 99)), 3),
                "latency_ms_max": round(float(lat_ms.max()), 3),
                "counters": delta,
            })
    finally:
        await server.close()
    return {"rows": rows, "config": {
        "max_inflight": config.max_inflight,
        "cache_frames": config.cache_frames,
    }}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="two small levels (CI smoke test)")
    parser.add_argument("--dataset", default="mri128")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--backend", choices=["mp", "thread"], default="mp")
    args = parser.parse_args(argv)

    levels = SMOKE_LEVELS if args.smoke else LEVELS
    n_requests = (SMOKE_REQUESTS_PER_CLIENT if args.smoke
                  else REQUESTS_PER_CLIENT)
    result = asyncio.run(bench(args, levels, n_requests))
    rows = result["rows"]

    host = host_cpu_info()
    report = {
        "benchmark": "serve",
        "smoke": args.smoke,
        **host,
        "workload": {
            "dataset": args.dataset, "scale": args.scale,
            "distinct_views": DISTINCT_VIEWS,
            "requests_per_client": n_requests,
        },
        "pool": {"n_procs": args.procs, "backend": args.backend},
        "serve": result["config"],
        "levels": rows,
        # On a single-core host the multi-client gains below come from
        # caching and coalescing (fewer renders), not parallel rendering.
        "gains_are_work_elimination": not host["multi_core_host"],
    }

    print(f"{args.dataset} scale {args.scale}, {args.procs}-proc "
          f"{args.backend} pool, {DISTINCT_VIEWS}-view orbit, "
          f"{n_requests} requests/client "
          f"(multi_core_host={host['multi_core_host']}):")
    for row in rows:
        c = row["counters"]
        print(f"  {row['n_clients']:2d} client(s): "
              f"{row['throughput_rps']:7.1f} req/s, "
              f"p50 {row['latency_ms_p50']:7.2f} ms, "
              f"p99 {row['latency_ms_p99']:7.2f} ms  "
              f"[pool renders {c.get('serve/pool_renders', 0)}, "
              f"cache hits {c.get('serve/cache_hits', 0)}, "
              f"coalesced {c.get('serve/coalesced', 0)}]")

    out_path = save_bench_json("serve", report)
    print(f"wrote {out_path}")

    # The signals that the serving machinery is alive: repeats hit the
    # cache at every level, and a multi-client fleet coalesced at least
    # once or hit the cache on every duplicated request.
    ok = all(r["counters"].get("serve/cache_hits", 0) > 0 for r in rows)
    multi = [r for r in rows if r["n_clients"] > 1]
    ok &= any(
        r["counters"].get("serve/coalesced", 0) > 0
        or r["counters"].get("serve/cache_hits", 0)
        > r["counters"].get("serve/pool_renders", 0)
        for r in multi
    )
    if not ok:
        print("FAILED: cache/coalescing never engaged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
