"""Sharded multi-pool rendering: merge-tree overhead and re-shard convergence.

Two questions about the shard layer, measured on the real backends:

1. **What does the distributed framebuffer cost?**  The same animation
   is rendered with 1, 2 and 4 shards and the per-frame wall clock is
   broken down into worker busy time, sort-last merge time (the masked
   copies through the shard framebuffers, straight off the service's
   ``shard/merge_s`` histogram) and residual dispatch/gather overhead.
   Bit-identity across all shard counts is asserted — the merge tree is
   pure plumbing and must never touch a pixel value.

2. **Does the shard-level feedback loop converge interference away?**
   One worker of shard 0 is slowed by a deterministic per-row CPU burn
   (``REPRO_SHARD_ROW_DELAY`` — the shard-scoped twin of the stealing
   benchmark's knob).  Per-scanline op counts are content-derived and
   cannot see this, but the service calibrates each shard's stitched
   profile slice by the shard's *measured busy seconds*, so the next
   re-shard hands the slow shard a smaller band.  Reported: cross-shard
   busy spread ``(max - min) / mean`` before feedback (frame 0, uniform
   shard split) and after (every later frame), with and without the
   feedback loop; the run fails unless feedback drops the spread.

Honesty: this host runs the whole fleet on however many CPUs it
actually has (``host_cpu_info`` / ``multi_core_host`` in the report).
On a single-CPU host shards add overhead rather than speed — the
numbers published here are the *overhead* and *balance* measurements,
which are meaningful on any host; end-to-end speedup claims are not
made unless ``multi_core_host`` is true.

Results are published as ``BENCH_shard.json`` at the repository root.

Run:  python benchmarks/bench_shard.py [--smoke] [--procs N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import Stopwatch, host_cpu_info, save_bench_json  # noqa: E402

from repro.datasets import density_wedge  # noqa: E402
from repro.parallel.mp_backend import PoolConfig  # noqa: E402
from repro.render import ShearWarpRenderer  # noqa: E402
from repro.shard import ShardedRenderService  # noqa: E402
from repro.volume import mri_transfer_function  # noqa: E402

SHAPE = (48, 48, 32)
SMOKE_SHAPE = (24, 24, 16)
PROFILE_PERIOD = 2
#: CPU seconds burned per scanline composited by shard 0's worker 0 in
#: the convergence experiment — large enough to dominate the phantom's
#: own per-row cost, so the spread we measure is the interference.
ROW_DELAY_S = 0.004
SMOKE_ROW_DELAY_S = 0.003


def run_fleet(renderer, views, *, shards, n_procs, profile_period,
              warmup=True) -> dict:
    """Render the animation through one shard fleet; return measurements."""
    cfg = PoolConfig(n_procs=n_procs, shards=shards, stealing=False,
                     profile_period=profile_period)
    with ShardedRenderService(renderer, cfg) as svc:
        if warmup:
            svc.render(views[0])  # fork + first slice decodes off the clock
        with Stopwatch() as sw:
            results = svc.render_animation(views)
        wall = sw.seconds
        merge_h = svc.metrics.histogram("shard/merge_s")
        # The warmup frame also merged: take the timed frames' share.
        merge_per_frame = merge_h.total / merge_h.count if merge_h.count else 0.0
        merges = int(svc.metrics.counter("shard/merges").value)
        reshards = int(svc.metrics.counter("shard/reshards").value)

    n = len(views)
    busy = [float(np.asarray(r.busy_s).sum()) for r in results]
    spreads = [float(r.busy_spread) for r in results
               if r.busy_s is not None and np.asarray(r.busy_s).mean() > 0]
    frac0 = [
        float(int(r.boundaries[1]) - int(r.boundaries[0]))
        / max(1, int(r.boundaries[-1]) - int(r.boundaries[0]))
        for r in results
    ]
    return {
        "ms_per_frame": wall / n * 1e3,
        "busy_ms_per_frame": float(np.mean(busy)) * 1e3,
        "merge_ms_per_frame": merge_per_frame * 1e3,
        "dispatch_ms_per_frame": max(
            0.0, (wall / n - np.mean(busy) - merge_per_frame) * 1e3
        ),
        "merges_per_frame": merges / (n + (1 if warmup else 0)),
        "reshards": reshards,
        "shard_busy_spread_per_frame": [round(s, 4) for s in spreads],
        "shard0_band_fraction_per_frame": [round(f, 4) for f in frac0],
        "images": [(r.final.color, r.final.alpha) for r in results],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volume, short animation (CI smoke test)")
    parser.add_argument("--procs", type=int, default=2,
                        help="workers per shard pool")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args(argv)

    shape = SMOKE_SHAPE if args.smoke else SHAPE
    n_frames = args.frames if args.frames else (6 if args.smoke else 10)
    delay = SMOKE_ROW_DELAY_S if args.smoke else ROW_DELAY_S
    renderer = ShearWarpRenderer(density_wedge(shape), mri_transfer_function())
    views = [renderer.view_from_angles(18, 8 + 2.5 * i, 0)
             for i in range(n_frames)]

    # -- experiment 1: merge overhead breakdown across shard counts ------
    os.environ.pop("REPRO_SHARD_ROW_DELAY", None)
    overhead = {}
    for shards in (1, 2, 4):
        row = run_fleet(renderer, views, shards=shards, n_procs=args.procs,
                        profile_period=PROFILE_PERIOD)
        overhead[shards] = row
    images = {s: row.pop("images") for s, row in overhead.items()}
    exact = all(
        np.array_equal(c1, cs) and np.array_equal(a1, as_)
        for s in (2, 4)
        for (c1, a1), (cs, as_) in zip(images[1], images[s])
    )

    # -- experiment 2: interference convergence via busy feedback --------
    os.environ["REPRO_SHARD_ROW_DELAY"] = f"0:0:{delay}"
    try:
        # No warmup: frame 0 *is* the "before feedback" measurement
        # (uniform shard split, profile not yet stitched).
        no_fb = run_fleet(renderer, views, shards=2, n_procs=args.procs,
                          profile_period=0, warmup=False)
        fb = run_fleet(renderer, views, shards=2, n_procs=args.procs,
                       profile_period=PROFILE_PERIOD, warmup=False)
    finally:
        del os.environ["REPRO_SHARD_ROW_DELAY"]
    fb_images, no_fb_images = fb.pop("images"), no_fb.pop("images")
    exact_interfered = all(
        np.array_equal(ca, cb) and np.array_equal(aa, ab)
        for (ca, aa), (cb, ab) in zip(fb_images, no_fb_images)
    )
    # Frame 0 is excluded on both sides: its busy time is dominated by
    # the first RLE slice decodes, which pad every shard about equally
    # and mask the interference.  "Before" is the warm uniform-shard
    # steady state (the no-feedback run — feedback's own frame 0 runs on
    # the same uniform split); "after" is the feedback run's trailing
    # half, i.e. the re-sharded steady state after convergence.
    tail = max(2, (n_frames - 1) // 2)
    spread_before = float(np.mean(no_fb["shard_busy_spread_per_frame"][1:]))
    spread_after = float(np.mean(fb["shard_busy_spread_per_frame"][-tail:]))
    converged = spread_after < spread_before

    report = {
        "benchmark": "shard",
        "smoke": args.smoke,
        **host_cpu_info(),
        "phantom": {"name": "density_wedge", "shape": list(shape)},
        "procs_per_shard": args.procs,
        "n_frames": n_frames,
        "profile_period": PROFILE_PERIOD,
        "merge_overhead_by_shards": {
            str(s): {k: round(v, 4) if isinstance(v, float) else v
                     for k, v in row.items()}
            for s, row in overhead.items()
        },
        "interference": {
            "injected_row_delay_s": delay,
            "injected_on": "shard 0, worker 0",
            "spread_before_feedback": round(spread_before, 4),
            "spread_after_feedback": round(spread_after, 4),
            "feedback": {k: v for k, v in fb.items()},
            "no_feedback": {k: v for k, v in no_fb.items()},
        },
        "exact_equal_across_shard_counts": exact,
        "exact_equal_under_interference": exact_interfered,
        "spread_converged": converged,
    }

    print(f"density_wedge {shape}, {args.procs} procs/shard, "
          f"{n_frames} frames:")
    for s, row in overhead.items():
        print(f"  shards={s}: {row['ms_per_frame']:7.1f} ms/frame "
              f"(busy {row['busy_ms_per_frame']:.1f}, "
              f"merge {row['merge_ms_per_frame']:.2f}, "
              f"dispatch {row['dispatch_ms_per_frame']:.1f}); "
              f"{row['merges_per_frame']:.0f} merges/frame")
    print(f"  interference ({delay * 1e3:.0f} ms/row on shard 0): spread "
          f"{spread_before:.3f} before feedback -> {spread_after:.3f} after; "
          f"shard 0 band {fb['shard0_band_fraction_per_frame'][0]:.2f} -> "
          f"{fb['shard0_band_fraction_per_frame'][-1]:.2f}")
    print(f"  bit-identical across shard counts: {exact}; "
          f"under interference: {exact_interfered}; "
          f"spread converged: {converged}")

    out_path = save_bench_json("shard", report)
    print(f"wrote {out_path}")

    if not (exact and exact_interfered and converged):
        print("FAILED: bit-identity / spread-convergence criterion not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
