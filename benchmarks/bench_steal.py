"""Chunked task stealing vs static partitioning in the real worker pool.

The paper's section 4.4 layers *dynamic* chunked task stealing on top of
the static profile-balanced partition: the profile predicts most of the
load, and stealing mops up whatever the prediction missed — an occluder
that moved, a processor slowed by interference.  This benchmark measures
that claim on the real ``multiprocessing`` backend under *injected*
interference: worker 0 is slowed by a deterministic CPU burn per
scanline it composites (the ``_TEST_ROW_DELAY`` hook, the same knob the
test suite uses), a disturbance no static profile can predict because it
depends on which worker gets the rows, not on the rows themselves.

A short rotation animation over the skewed ``density_wedge`` phantom is
rendered three ways through :class:`repro.parallel.MPRenderPool`:

* ``uniform``   — uniform split, no profile, no stealing;
* ``profiled``  — the section 4.2-4.3 profile feedback loop, no stealing;
* ``stealing``  — the same feedback loop plus chunked task stealing.

Reported per mode: wall-clock per frame, per-worker busy-time spread
``(max - min) / mean`` (frame 0 excluded — it is profile-less by
construction), total steals and stolen scanlines, and bit-identity of
all three modes' images (scheduling moves work between workers, never
changes the arithmetic).

Results are published as ``BENCH_steal.json`` at the repository root.
The non-smoke run fails unless stealing both actually happened
(``steals > 0``) and beat the profiled-only busy spread — the profile
cannot see the injected interference, the thief can.

Run:  python benchmarks/bench_steal.py [--smoke] [--procs N]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import Stopwatch, host_cpu_info, save_bench_json  # noqa: E402

import repro.parallel.mp_backend as mpb  # noqa: E402
from repro.datasets import density_wedge  # noqa: E402
from repro.parallel.mp_backend import DEFAULT_STEAL_CHUNK, MPRenderPool  # noqa: E402
from repro.render import ShearWarpRenderer  # noqa: E402
from repro.volume import mri_transfer_function  # noqa: E402

SHAPE = (48, 48, 32)
SMOKE_SHAPE = (24, 24, 16)
PROFILE_PERIOD = 4
#: CPU seconds burned per scanline composited by worker 0 — large enough
#: to dominate the phantom's own skew, so the rebalancing we measure is
#: unambiguously the thief's doing.
ROW_DELAY_S = 0.002
SMOKE_ROW_DELAY_S = 0.001

MODES = {
    "uniform": dict(profile_period=0, stealing=False),
    "profiled": dict(profile_period=PROFILE_PERIOD, stealing=False),
    "stealing": dict(profile_period=PROFILE_PERIOD, stealing=True),
}


def run_animation(
    renderer: ShearWarpRenderer,
    views: list[np.ndarray],
    n_procs: int,
    steal_chunk: int,
    **pool_kwargs,
) -> dict:
    """Render the animation once; return timings, spreads and images."""
    with MPRenderPool(renderer, n_procs=n_procs, steal_chunk=steal_chunk,
                      **pool_kwargs) as pool:
        pool.render(views[0])  # warm up fork + first slice decodes
        with Stopwatch() as sw:
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
        wall = sw.seconds

    spreads = [res.busy_spread for res in results[1:]  # frame 0 has no profile
               if res.busy_s is not None and res.busy_s.mean() > 0]
    return {
        "wall_s": wall,
        "ms_per_frame": wall / len(views) * 1e3,
        "busy_spread_mean": float(np.mean(spreads)),
        "busy_spread_per_frame": [round(s, 4) for s in spreads],
        "steals": sum(r.steals for r in results),
        "steal_rows": sum(r.steal_rows for r in results),
        "images": [(r.final.color, r.final.alpha) for r in results],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small volume, short animation (CI smoke test)")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--chunk", type=int, default=DEFAULT_STEAL_CHUNK,
                        help="scanlines per claim/steal")
    args = parser.parse_args(argv)

    shape = SMOKE_SHAPE if args.smoke else SHAPE
    n_frames = args.frames if args.frames else (4 if args.smoke else 10)
    delay = SMOKE_ROW_DELAY_S if args.smoke else ROW_DELAY_S
    chunk = 2 if args.smoke else args.chunk  # few scanlines at smoke size
    renderer = ShearWarpRenderer(density_wedge(shape), mri_transfer_function())
    views = [renderer.view_from_angles(18, 8 + 2.5 * i, 0) for i in range(n_frames)]

    # Slow worker 0 down for *every* mode: the hook reaches the workers
    # through fork, so it must be set before each pool is constructed.
    mpb._TEST_ROW_DELAY = (0, delay)
    try:
        rows = {
            mode: run_animation(renderer, views, args.procs, chunk, **kwargs)
            for mode, kwargs in MODES.items()
        }
    finally:
        mpb._TEST_ROW_DELAY = None

    images = {mode: row.pop("images") for mode, row in rows.items()}
    exact = all(
        np.array_equal(cu, cs) and np.array_equal(au, as_)
        for other in ("profiled", "stealing")
        for (cu, au), (cs, as_) in zip(images["uniform"], images[other])
    )
    stole = rows["stealing"]["steals"] > 0
    improved = (rows["stealing"]["busy_spread_mean"]
                < rows["profiled"]["busy_spread_mean"])

    report = {
        "benchmark": "steal",
        "smoke": args.smoke,
        **host_cpu_info(),
        "phantom": {"name": "density_wedge", "shape": list(shape)},
        "n_procs": args.procs,
        "n_frames": n_frames,
        "profile_period": PROFILE_PERIOD,
        "steal_chunk": chunk,
        "injected_row_delay_s": delay,
        "modes": {
            mode: {k: round(v, 4) if isinstance(v, float) else v
                   for k, v in row.items()}
            for mode, row in rows.items()
        },
        "exact_equal": exact,
        "stealing_happened": stole,
        "spread_improved_vs_profiled": improved,
    }

    print(f"density_wedge {shape}, {args.procs} workers, {n_frames} frames, "
          f"worker 0 slowed {delay * 1e3:.1f} ms/row, chunk {chunk}:")
    for mode, row in rows.items():
        print(f"  {mode:9s}: {row['ms_per_frame']:7.1f} ms/frame, "
              f"busy spread (max-min)/mean = {row['busy_spread_mean']:.3f}, "
              f"steals {row['steals']} ({row['steal_rows']} rows)")
    print(f"  images bit-identical across modes: {exact}; "
          f"steals happened: {stole}; spread beat profiled-only: {improved}")

    out_path = save_bench_json("steal", report)
    print(f"wrote {out_path}")

    ok = exact and (args.smoke or (stole and improved))
    if args.smoke:
        # Smoke still requires the thief to have fired at least once —
        # that is the CI signal that the dynamic path is alive.
        ok &= stole
    if not ok:
        print("FAILED: bit-identity / steals>0 / spread criterion not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
