"""Shared infrastructure for the figure-reproduction benchmarks.

Every ``fig*.py`` module reproduces one figure of the paper's evaluation:
it builds the figure's workload through :mod:`repro.analysis.harness`
(memoized, so related figures share rendered frames), prints the same
rows/series the paper plots, and archives the table under
``benchmarks/results/``.

Run one figure directly (``python benchmarks/fig04_old_speedups.py``) or
the whole suite (``pytest benchmarks/ --benchmark-only``).  Absolute
numbers come from simulated 1997 machines driven by proxy-scaled
volumes; the *shapes* are what reproduce the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

# Allow `python benchmarks/figXX.py` from any cwd.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.analysis.breakdown import format_table, miss_breakdown  # noqa: E402
from repro.analysis.harness import (  # noqa: E402
    DEFAULT_SCALE,
    machine_for,
    record_frames,
    simulate,
    speedup_curve,
)
from repro.obs import Stopwatch, busy_spread  # noqa: E402,F401

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
#: Repository root — the wall-clock ``BENCH_*.json`` reports are published
#: here (tracked, diffable across PRs) rather than buried in results/.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Processor counts for speedup figures (paper: up to 32 on DASH and the
#: simulator, 16 on Challenge/Origin2000).
PROCS = (1, 2, 4, 8, 16, 32)
#: Default proxy scale (see EXPERIMENTS.md for the scaling rules).
SCALE = DEFAULT_SCALE
#: The paper's headline input: the 511x511x333 MRI brain.
HEADLINE = "mri512"
#: The three MRI resolutions of Figures 6/12/13/20.
MRI_SETS = ("mri128", "mri256", "mri512")


def host_cpu_info() -> dict:
    """Host CPU facts every ``BENCH_*.json`` report should carry.

    ``os.cpu_count()`` is the machine's CPU count, but containers and
    batch schedulers routinely pin the process to a subset — speedup
    claims are only interpretable against the *affinity* count, so both
    are recorded.  ``sched_getaffinity`` is Linux-only (absent on
    macOS/Windows) and can fail even where present (NotImplementedError
    on exotic platforms, OSError in restricted sandboxes), so every
    failure mode falls back to ``cpu_count`` instead of crashing the
    benchmark report.  ``multi_core_host`` is the honesty flag the
    reports key speedup claims on: parallel-beats-serial headlines are
    only meaningful when it is true.
    """
    cpus = os.cpu_count() or 1
    getaffinity = getattr(os, "sched_getaffinity", None)
    affinity = cpus
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0)) or cpus
        except (OSError, NotImplementedError):
            pass
    return {
        "host_cpus": cpus,
        "host_cpus_available": affinity,
        "multi_core_host": affinity > 1,
    }


def save_result(name: str, text: str) -> None:
    """Archive a figure's table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def save_bench_json(name: str, report: dict) -> str:
    """Publish a wall-clock benchmark report as ``<repo>/BENCH_<name>.json``.

    Returns the path written.  These land at the repository root so the
    perf trajectory of the real execution path is visible (and reviewed)
    next to the code that moves it.
    """
    import json

    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return path


def emit(name: str, text: str) -> str:
    """Print and archive a figure's output; returns the text."""
    print(text)
    save_result(name, text)
    return text


def speedup_table(
    dataset: str, machines: tuple[str, ...], algorithms: tuple[str, ...],
    procs: tuple[int, ...] = PROCS, scale: float = SCALE,
) -> str:
    """Rows of P x (machine, algorithm) self-relative speedups."""
    curves = {}
    for m in machines:
        for alg in algorithms:
            pts = speedup_curve(dataset, alg, m, procs=procs, scale=scale)
            curves[(m, alg)] = {p.n_procs: p.speedup for p in pts}
    headers = ["P"] + [f"{m}/{a}" for m in machines for a in algorithms]
    rows = []
    for p in procs:
        row = [p]
        for m in machines:
            for a in algorithms:
                row.append(curves[(m, a)].get(p, float("nan")))
        rows.append(tuple(row))
    return format_table(headers, rows, width=14)


def breakdown_table(
    dataset: str, machine: str, algorithm: str,
    procs: tuple[int, ...], scale: float = SCALE,
) -> str:
    """Rows of P x (busy%, memory%, sync%) — the stacked bars of Fig 5/14."""
    headers = ["P", "busy%", "memory%", "sync%"]
    rows = []
    for p in procs:
        if p > machine_for(machine, scale).max_procs:
            continue
        rep = simulate(dataset, algorithm, machine, p, scale=scale)
        f = rep.fractions()
        rows.append((p, 100 * f["busy"], 100 * f["memory"], 100 * f["sync"]))
    return format_table(headers, rows)


def best_of(fn, reps: int) -> float:
    """Best wall-clock seconds over ``reps`` runs (min filters host noise).

    The one timing helper every wall-clock benchmark shares, backed by
    :class:`repro.obs.Stopwatch` so they all use the same clock as the
    tracing layer.
    """
    best = float("inf")
    for _ in range(max(1, reps)):
        with Stopwatch() as sw:
            fn()
        best = min(best, sw.seconds)
    return best


def one_round(fn):
    """pytest-benchmark adapter: run the figure exactly once."""

    def test(benchmark):
        benchmark.pedantic(fn, rounds=1, iterations=1)

    return test


_SVM_CACHE: dict[tuple, object] = {}


def svm_simulate(dataset: str, algorithm: str, n_procs: int, scale: float = SCALE):
    """Steady-state SVM timing (last frame of a short animation)."""
    from repro.memsim.svm import SVMConfig, SVMSimulator, simulate_frame_svm

    key = (dataset, algorithm, n_procs, scale)
    if key not in _SVM_CACHE:
        cfg = SVMConfig().scaled(scale)
        frames = record_frames(dataset, algorithm, n_procs, scale=scale)
        sim = SVMSimulator(cfg, n_procs)
        rep = None
        for f in frames:
            rep = simulate_frame_svm(f, cfg, sim)
        _SVM_CACHE[key] = rep
    return _SVM_CACHE[key]


def svm_speedup_rows(dataset: str, procs: tuple[int, ...] = PROCS, scale: float = SCALE):
    """(P, old speedup, new speedup) rows for the SVM platform."""
    rows = []
    base = {alg: svm_simulate(dataset, alg, 1, scale).total_time
            for alg in ("old", "new")}
    for p in procs:
        rows.append((
            p,
            base["old"] / svm_simulate(dataset, "old", p, scale).total_time,
            base["new"] / svm_simulate(dataset, "new", p, scale).total_time,
        ))
    return rows
