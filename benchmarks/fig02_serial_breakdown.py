"""Figure 2: serial rendering-time breakdown, ray caster vs shear warper.

The paper decomposes uniprocessor rendering time into "looping"
(control overhead + coherence-data-structure traversal while searching
for the next voxel) and actual rendering work, for an MRI brain: the
ray caster's time is dominated by looping (octree traversal and
per-voxel addressing), while the shear warper traverses its run-length
structures linearly and spends its time compositing — ending up ~4-7x
faster overall.

We reproduce the breakdown from instrumented op counts converted with
the calibrated per-op cycle weights.
"""

from __future__ import annotations

from common import SCALE, emit, one_round

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_VIEW, get_renderer
from repro.core.profiling import scanline_cost
from repro.render import WorkCounters
from repro.render.raycast import RayCastRenderer, render_raycast

# Ray-caster per-op cycle weights, consistent with the shear-warp
# calibration in repro.core.profiling (a trilinear resample does ~2x the
# arithmetic of the shear-warper's constant-weight bilinear resample).
W_RAY_SAMPLE = 90.0
W_OCTREE_VISIT = 14.0
W_RAY_LOOP = 22.0

#: Smaller proxy than the experiment default: the faithful per-ray
#: renderer is a pure Python loop.
FIG2_SCALE = 0.09
DATASET = "mri256"  # the paper uses the 256x256x167 MRI brain here


def run() -> str:
    renderer = get_renderer(DATASET, FIG2_SCALE)
    view = renderer.view_from_angles(*DEFAULT_VIEW)

    # --- shear warper ---
    sw = WorkCounters()
    renderer.render(view, counters=sw)
    sw_loop = 20.0 * sw.loop_iters + 6.0 * sw.run_entries + 1.0 * sw.pixels_skipped
    sw_render = 48.0 * sw.resample_ops
    sw_warp = 10.0 * sw.warp_pixels
    sw_total = sw_loop + sw_render + sw_warp

    # --- ray caster (same volume, same view, classified identically) ---
    from repro.render.octree import MinMaxOctree

    rc = RayCastRenderer(renderer.classified,
                         MinMaxOctree.build(renderer.classified.opacity))
    c = WorkCounters()
    render_raycast(rc, view, counters=c)
    rc_loop = W_OCTREE_VISIT * c.octree_visits + W_RAY_LOOP * c.loop_iters
    rc_render = W_RAY_SAMPLE * c.ray_steps
    rc_total = rc_loop + rc_render

    headers = ["renderer", "looping%", "rendering%", "warp%", "cycles"]
    rows = [
        ("ray-caster", 100 * rc_loop / rc_total, 100 * rc_render / rc_total,
         0.0, rc_total),
        ("shear-warp", 100 * sw_loop / sw_total, 100 * sw_render / sw_total,
         100 * sw_warp / sw_total, sw_total),
    ]
    table = format_table(headers, rows, width=13)
    ratio = rc_total / sw_total
    table += f"\n\nshear-warp speedup over ray-casting: {ratio:.1f}x (paper: 4-7x)"
    return emit("fig02_serial_breakdown", table)


test_fig02 = one_round(run)

if __name__ == "__main__":
    run()
