"""Figure 4: speedups of the OLD parallel shear warper, 511x511x333 MRI.

The paper plots self-relative speedup vs processor count on DASH, the
Challenge, and the simulated CC-NUMA: speedups flatten well below
linear, worst on the distributed-memory DASH.
"""

from __future__ import annotations

from common import HEADLINE, PROCS, emit, one_round, speedup_table


def run() -> str:
    table = speedup_table(HEADLINE, ("dash", "challenge", "simulator"), ("old",))
    return emit("fig04_old_speedups", table)


test_fig04 = one_round(run)

if __name__ == "__main__":
    run()
