"""Figure 5: cumulative rendering-time breakdown of the OLD renderer.

busy / memory-stall / synchronization fractions vs processor count on
the distributed-memory platforms (DASH and the simulator): memory time
dominates the decline (paper: ~50 % of execution on 32-processor DASH
vs 18 % serial).
"""

from __future__ import annotations

from common import HEADLINE, PROCS, breakdown_table, emit, one_round


def run() -> str:
    parts = []
    for machine in ("dash", "simulator"):
        parts.append(f"--- {machine} (old algorithm, {HEADLINE}) ---")
        parts.append(breakdown_table(HEADLINE, machine, "old", PROCS))
    table = "\n".join(parts)
    return emit("fig05_old_breakdown", table)


test_fig05 = one_round(run)

if __name__ == "__main__":
    run()
