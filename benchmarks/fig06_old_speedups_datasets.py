"""Figure 6: OLD-renderer speedups across data-set sizes.

Speedups for the 128^3 / 256^3 / 512^3 MRI sets on the Challenge and
DASH.  Paper shapes: Challenge beats DASH everywhere; on DASH the
*intermediate* (256^3) set speeds up best — small sets lack concurrency,
the large set's working set blows DASH's cache (section 3.4.4).
"""

from __future__ import annotations

from common import MRI_SETS, PROCS, emit, one_round, speedup_table


def run() -> str:
    parts = []
    for dataset in MRI_SETS:
        parts.append(f"--- {dataset} (old algorithm) ---")
        parts.append(speedup_table(dataset, ("challenge", "dash"), ("old",)))
    table = "\n".join(parts)
    return emit("fig06_old_speedups_datasets", table)


test_fig06 = one_round(run)

if __name__ == "__main__":
    run()
