"""Figure 7: cache-miss breakdown vs processor count (OLD, simulator).

Misses per class (replacement / true sharing / false sharing, cold
omitted as in the paper) as P grows on the simulated CC-NUMA.  Paper
shapes: replacement + true sharing dominate; true sharing grows with P
(the compositing/warp interface communication); the overall rate does
not explode, but the remote fraction does.
"""

from __future__ import annotations

from common import HEADLINE, emit, one_round, simulate

from repro.analysis.breakdown import combined_stats, format_table, miss_breakdown


def run() -> str:
    headers = ["P", "true%", "false%", "repl%", "total%", "remote_frac"]
    rows = []
    for p in (1, 2, 4, 8, 16, 32):
        rep = simulate(HEADLINE, "old", "simulator", p)
        mb = miss_breakdown(rep)
        stats = combined_stats(rep)
        rows.append((
            p, mb["true"], mb["false"], mb["replacement"],
            mb["true"] + mb["false"] + mb["replacement"],
            stats.remote_fraction(),
        ))
    table = format_table(headers, rows)
    return emit("fig07_old_miss_breakdown", table)


test_fig07 = one_round(run)

if __name__ == "__main__":
    run()
