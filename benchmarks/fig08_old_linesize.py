"""Figure 8: miss breakdown vs cache-line size (OLD, 32 processors).

The parallel shear warper keeps the serial algorithm's spatial
locality: every miss class drops as lines grow to 256 bytes, and false
sharing never takes over (section 3.4.3) — DASH's 16-byte lines are why
it suffers the highest miss rates.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.analysis.workingset import line_size_sweep
from repro.parallel.execution import simulate_animation

N_PROCS = 32
LINES = (16, 32, 64, 128, 256)


def run() -> str:
    machine = machine_for("simulator", SCALE)
    frames = record_frames(HEADLINE, "old", N_PROCS, scale=SCALE)
    pts = line_size_sweep(frames, machine, lines=LINES)
    headers = ["line_B", "true%", "false%", "repl%", "total%"]
    rows = [
        (s.value, s.breakdown["true"], s.breakdown["false"],
         s.breakdown["replacement"], s.miss_rate)
        for s in pts
    ]
    table = format_table(headers, rows)
    return emit("fig08_old_linesize", table)


test_fig08 = one_round(run)

if __name__ == "__main__":
    run()
