"""Figure 9: miss rate vs cache size — the OLD renderer's working sets.

The knees of the curves are the working sets: for the old program they
grow with the data-set size (~n^2: a plane through the volume) and stay
independent of the processor count.
"""

from __future__ import annotations

from common import MRI_SETS, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.analysis.workingset import cache_for_rate, cache_size_sweep

N_PROCS = 32
SIZES = tuple(2**k for k in range(9, 17, 2)) + (2**16,)  # ~1 KB..1 MB analogue


def run() -> str:
    machine = machine_for("simulator", SCALE)
    curves = {}
    knees = {}
    for ds in MRI_SETS:
        frames = record_frames(ds, "old", N_PROCS, scale=SCALE)
        pts = cache_size_sweep(frames, machine, sizes=SIZES)
        curves[ds] = {p.value: p.miss_rate for p in pts}
        knees[ds] = cache_for_rate(pts, target_rate=1.5)
    headers = ["cache_B"] + list(MRI_SETS)
    rows = [
        tuple([size] + [curves[ds][size] for ds in MRI_SETS]) for size in SIZES
    ]
    table = format_table(headers, rows)
    table += "\n\ncache needed for <=1.5% miss rate (bytes): " + ", ".join(
        f"{ds}={knees[ds]}" for ds in MRI_SETS
    )
    table += "\n(paper shape: knee grows with data-set size, ~n^2)"
    return emit("fig09_old_workingset", table)


test_fig09 = one_round(run)

if __name__ == "__main__":
    run()
