"""Figure 10: per-scanline cost profile for one frame (256^3 MRI brain).

The profile of compositing cost over intermediate-image scanlines: zero
at the empty top and bottom margins (which the new algorithm skips
entirely) and strongly non-uniform over the content — the shape the
contiguous partitioner balances.  The paper notes a 326x326 intermediate
image for the 256x256x167 input; the factorization here reproduces that
geometry at proxy scale.
"""

from __future__ import annotations

import numpy as np

from common import SCALE, emit, one_round

from repro.analysis.harness import DEFAULT_VIEW, get_renderer
from repro.core import NewParallelShearWarp

DATASET = "mri256"
N_BINS = 24


def run() -> str:
    renderer = get_renderer(DATASET, SCALE)
    new = NewParallelShearWarp(renderer, n_procs=1)
    view = renderer.view_from_angles(*DEFAULT_VIEW)
    frame = new.render_frame(view)
    prof = frame.profile
    n_v = frame.intermediate.n_v

    lines = [
        f"volume {renderer.shape} -> intermediate image "
        f"{frame.intermediate.shape} (paper: 256x256x167 -> 326x326)",
        f"non-empty scanlines: [{prof.v_lo}, {prof.v_hi}) of {n_v}",
        f"total profiled cost: {prof.total:.0f} cycles",
        "",
        "scanline-bin cost histogram (* = relative cost):",
    ]
    # Down-sample the profile into bins for a text rendering of the curve.
    costs = np.zeros(n_v)
    costs[prof.v_lo : prof.v_hi] = prof.costs
    bins = np.array_split(costs, N_BINS)
    peak = max(b.sum() for b in bins) or 1.0
    start = 0
    for b in bins:
        bar = "*" * int(round(40 * b.sum() / peak))
        lines.append(f"v[{start:4d}:{start + len(b):4d}) {b.sum():12.0f} {bar}")
        start += len(b)
    return emit("fig10_profile", "\n".join(lines))


test_fig10 = one_round(run)

if __name__ == "__main__":
    run()
