"""Figure 11: cumulative profile -> contiguous balanced partition.

The parallel-prefix construction of section 4.3: the cumulative cost
curve is split into equal areas and each split point binary-searched to
a scanline; shown for 4 processors as in the figure.
"""

from __future__ import annotations

import numpy as np

from common import SCALE, emit, one_round

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_VIEW, ROTATION_STEP, get_renderer
from repro.core import NewParallelShearWarp

DATASET = "mri256"
N_PROCS = 4


def run() -> str:
    renderer = get_renderer(DATASET, SCALE)
    new = NewParallelShearWarp(renderer, n_procs=N_PROCS)
    view0 = renderer.view_from_angles(*DEFAULT_VIEW)
    new.render_frame(view0)  # profiled frame
    rx, ry, rz = DEFAULT_VIEW
    frame = new.render_frame(renderer.view_from_angles(rx, ry + ROTATION_STEP, rz))

    prof = new.last_profile
    cum = prof.cumulative()
    bounds = frame.boundaries
    headers = ["proc", "v_range", "scanlines", "measured_cost", "share%"]
    rows = []
    for p in range(N_PROCS):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        cost = sum(frame.composite_units[v].cost for v in range(lo, hi))
        rows.append((p, f"[{lo},{hi})", hi - lo, cost,
                     100 * cost / max(1e-9, frame.composite_cost_total)))
    table = format_table(headers, rows, width=16)
    ideal = 100.0 / N_PROCS
    worst = max(abs(r[4] - ideal) for r in rows)
    table += (f"\n\ncumulative curve total: {cum[-1]:.0f}; ideal share {ideal:.1f}% "
              f"per processor; worst deviation {worst:.1f} points")
    return emit("fig11_partition", table)


test_fig11 = one_round(run)

if __name__ == "__main__":
    run()
