"""Figure 12: OLD vs NEW speedups for the MRI sets on DASH.

Paper shape: the new algorithm's speedups are better, especially for
larger data sets and processor counts.  (Known proxy-scale deviation:
at the highest processor counts the contiguous partitions hold too few
scanlines for the profile balancer, and DASH's crossover can invert —
see EXPERIMENTS.md.)
"""

from __future__ import annotations

from common import MRI_SETS, emit, one_round, speedup_table


def run() -> str:
    parts = []
    for dataset in MRI_SETS:
        parts.append(f"--- {dataset} on DASH ---")
        parts.append(speedup_table(dataset, ("dash",), ("old", "new")))
    return emit("fig12_new_vs_old_dash", "\n".join(parts))


test_fig12 = one_round(run)

if __name__ == "__main__":
    run()
