"""Figure 13: OLD vs NEW speedups for the MRI sets on the simulator."""

from __future__ import annotations

from common import MRI_SETS, emit, one_round, speedup_table


def run() -> str:
    parts = []
    for dataset in MRI_SETS:
        parts.append(f"--- {dataset} on the simulated CC-NUMA ---")
        parts.append(speedup_table(dataset, ("simulator",), ("old", "new")))
    return emit("fig13_new_vs_old_sim", "\n".join(parts))


test_fig13 = one_round(run)

if __name__ == "__main__":
    run()
