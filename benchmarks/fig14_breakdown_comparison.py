"""Figure 14: time breakdowns, OLD vs NEW, on DASH and the simulator.

Four panels: (a) old/DASH, (b) new/DASH, (c) old/simulator,
(d) new/simulator.  Paper shape: the major difference is the
memory-stall share, which stops dominating under the new algorithm.
"""

from __future__ import annotations

from common import HEADLINE, PROCS, breakdown_table, emit, one_round


def run() -> str:
    parts = []
    for machine in ("dash", "simulator"):
        for alg in ("old", "new"):
            parts.append(f"--- {alg} on {machine} ({HEADLINE}) ---")
            parts.append(breakdown_table(HEADLINE, machine, alg, PROCS))
    return emit("fig14_breakdown_comparison", "\n".join(parts))


test_fig14 = one_round(run)

if __name__ == "__main__":
    run()
