"""Figure 15: OLD vs NEW speedups with the 511^3 CT head.

The CT input classifies sparser than MRI (bone only), changing the
run-length statistics; the comparison between algorithms must still
hold (section 5.1).
"""

from __future__ import annotations

from common import emit, one_round, speedup_table

DATASET = "ct512"


def run() -> str:
    parts = [f"--- {DATASET} on distributed-memory platforms ---",
             speedup_table(DATASET, ("dash", "simulator"), ("old", "new"))]
    return emit("fig15_ct_speedups", "\n".join(parts))


test_fig15 = one_round(run)

if __name__ == "__main__":
    run()
