"""Figure 16: miss breakdown, OLD vs NEW, on the simulator.

Paper shape: the new algorithm greatly decreases the sharing misses —
particularly true sharing (the compositing/warp interface) — and trims
false sharing via the far fewer partition borders.
"""

from __future__ import annotations

from common import HEADLINE, emit, one_round, simulate

from repro.analysis.breakdown import combined_stats, format_table, miss_breakdown

N_PROCS = 16  # granularity-safe processor count at the default scale


def run() -> str:
    headers = ["algorithm", "true%", "false%", "repl%", "misses_abs", "stall_cyc"]
    rows = []
    for alg in ("old", "new"):
        rep = simulate(HEADLINE, alg, "simulator", N_PROCS)
        mb = miss_breakdown(rep)
        stats = combined_stats(rep)
        stall = rep.composite.mem.sum() + rep.warp.mem.sum()
        rows.append((alg, mb["true"], mb["false"], mb["replacement"],
                     stats.total_misses() - stats.total_misses("cold"), stall))
    table = format_table(headers, rows, width=13)
    return emit("fig16_miss_comparison", table)


test_fig16 = one_round(run)

if __name__ == "__main__":
    run()
