"""Figure 17: spatial locality, OLD vs NEW (miss rate vs line size).

Paper shape: the new algorithm benefits even more from longer cache
lines, because each processor owns longer contiguous stretches of the
intermediate image.
"""

from __future__ import annotations

from common import HEADLINE, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.analysis.workingset import line_size_sweep

N_PROCS = 16
LINES = (16, 32, 64, 128, 256)


def run() -> str:
    machine = machine_for("simulator", SCALE)
    curves = {}
    for alg in ("old", "new"):
        frames = record_frames(
            HEADLINE, alg, N_PROCS, scale=SCALE,
            mem_per_line_touch=machine.mem_per_line_touch if alg == "new" else None,
        )
        pts = line_size_sweep(frames, machine, lines=LINES)
        curves[alg] = {p.value: p.miss_rate for p in pts}
    headers = ["line_B", "old_total%", "new_total%", "new/old"]
    rows = []
    for line in LINES:
        o, n = curves["old"][line], curves["new"][line]
        rows.append((line, o, n, n / o if o else float("nan")))
    table = format_table(headers, rows)
    return emit("fig17_linesize_comparison", table)


test_fig17 = one_round(run)

if __name__ == "__main__":
    run()
