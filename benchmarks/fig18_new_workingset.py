"""Figure 18: working sets of the NEW renderer.

(a) vs processor count for the 512^3 set — unlike the old program, the
working set *shrinks* (slowly) as P grows, because each processor's
contiguous block contracts (~n^2/P);
(b) vs data set at 32 processors — even 512^3 fits a small cache.
"""

from __future__ import annotations

from common import HEADLINE, MRI_SETS, SCALE, emit, machine_for, one_round, record_frames

from repro.analysis.breakdown import format_table
from repro.analysis.workingset import cache_size_sweep, working_set_size

SIZES = tuple(2**k for k in range(9, 17, 2)) + (2**16,)


def _sweep(dataset, n_procs, machine):
    frames = record_frames(dataset, "new", n_procs, scale=SCALE,
                           mem_per_line_touch=machine.mem_per_line_touch)
    return cache_size_sweep(frames, machine, sizes=SIZES)


def run() -> str:
    machine = machine_for("simulator", SCALE)
    parts = [f"(a) working set vs processors ({HEADLINE}, new algorithm)"]
    rows = []
    for p in (1, 8, 32):
        pts = _sweep(HEADLINE, p, machine)
        rows.append((p, working_set_size(pts), pts[0].miss_rate, pts[-1].miss_rate))
    parts.append(format_table(["P", "knee_B", "rate@min%", "rate@max%"], rows))

    parts.append("\n(b) working set vs data set (32 processors)")
    rows = []
    for ds in MRI_SETS:
        pts = _sweep(ds, 32, machine)
        rows.append((ds, working_set_size(pts), pts[0].miss_rate, pts[-1].miss_rate))
    parts.append(format_table(["dataset", "knee_B", "rate@min%", "rate@max%"], rows))
    parts.append("(paper shape: (a) knee shrinks with P; (b) stays small even at 512^3)")
    return emit("fig18_new_workingset", "\n".join(parts))


test_fig18 = one_round(run)

if __name__ == "__main__":
    run()
