"""Figure 19: OLD vs NEW speedups on the SGI Origin2000 (up to 16 procs)."""

from __future__ import annotations

from common import HEADLINE, emit, one_round, speedup_table


def run() -> str:
    table = speedup_table(HEADLINE, ("origin2000",), ("old", "new"),
                          procs=(1, 2, 4, 8, 16))
    return emit("fig19_origin", table)


test_fig19 = one_round(run)

if __name__ == "__main__":
    run()
