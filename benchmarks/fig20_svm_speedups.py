"""Figure 20: OLD vs NEW speedups on the page-based SVM platform.

Paper shape: the new algorithm substantially outperforms the old one —
page-granularity coherence punishes the old scheme's interleaved small
chunks (false sharing + fragmented communication) and its inter-phase
barrier, which contention makes very expensive.
"""

from __future__ import annotations

from common import MRI_SETS, emit, one_round, svm_speedup_rows

from repro.analysis.breakdown import format_table


def run() -> str:
    parts = []
    for dataset in MRI_SETS:
        parts.append(f"--- {dataset} on the SVM platform ---")
        rows = svm_speedup_rows(dataset)
        parts.append(format_table(["P", "old", "new"], rows))
    return emit("fig20_svm_speedups", "\n".join(parts))


test_fig20 = one_round(run)

if __name__ == "__main__":
    run()
