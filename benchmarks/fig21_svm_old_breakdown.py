"""Figure 21: execution-time breakdown of the OLD renderer on SVM.

Paper shape: extremely high data-wait (remote page faults) and barrier
time; the inter-phase barrier is expensive not because of the barrier
operation but because communication-induced contention delays its
messages.
"""

from __future__ import annotations

from common import HEADLINE, PROCS, emit, one_round, svm_simulate

from repro.analysis.breakdown import format_table


def run(algorithm: str = "old", name: str = "fig21_svm_old_breakdown") -> str:
    headers = ["P", "compute%", "data%", "barrier%", "lock%", "contention"]
    rows = []
    for p in PROCS:
        rep = svm_simulate(HEADLINE, algorithm, p)
        f = rep.fractions()
        rows.append((p, 100 * f["compute"], 100 * f["data"],
                     100 * f["barrier"], 100 * f["lock"], rep.contention))
    return emit(name, format_table(headers, rows))


test_fig21 = one_round(run)

if __name__ == "__main__":
    run()
