"""Figure 22: execution-time breakdown of the NEW renderer on SVM.

Paper shape: data and barrier wait collapse relative to Figure 21 (the
identical partitioning eliminates the inter-phase barrier; coarse
contiguous access patterns suit page-grain coherence); lock overhead can
tick up slightly from the finer stealing chunks.
"""

from __future__ import annotations

from common import one_round

from fig21_svm_old_breakdown import run as _run_old


def run() -> str:
    return _run_old(algorithm="new", name="fig22_svm_new_breakdown")


test_fig22 = one_round(run)

if __name__ == "__main__":
    run()
