"""Animation: the paper's target scenario — rotating viewpoints.

Renders a rotation sequence with the NEW parallel algorithm, showing
the profile-driven partitioning adapt across frames, and estimates the
frame rate each modeled platform would achieve at full 511x511x333
resolution (cycles scale with the voxel count, n^3).

Run:  python examples/animated_rotation.py [n_frames]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.analysis.harness import DEFAULT_SCALE, get_renderer, machine_for
from repro.core import NewParallelShearWarp, ProfileSchedule
from repro.datasets import PAPER_DATASETS
from repro.parallel.execution import simulate_animation


def main(n_frames: int = 6) -> None:
    dataset = "mri512"
    scale = DEFAULT_SCALE
    renderer = get_renderer(dataset, scale)
    print(f"Proxy volume {renderer.shape} for the paper's "
          f"{PAPER_DATASETS[dataset].paper_shape} MRI brain\n")

    n_procs = 16
    new = NewParallelShearWarp(
        renderer, n_procs,
        profile_schedule=ProfileSchedule.from_rotation(degrees_per_frame=3.0),
    )
    print(f"Rendering {n_frames} frames, 3 deg/frame, {n_procs} processors "
          f"(profile refresh every {new.schedule.period} frames = ~15 deg)...")
    frames = []
    for i in range(n_frames):
        view = renderer.view_from_angles(20, 30 + 3 * i, 0)
        t0 = time.perf_counter()
        frame = new.render_frame(view)
        frames.append(frame)
        sizes = np.diff(frame.boundaries)
        print(f"  frame {i}: {'profiled,' if frame.profiled else 'predicted,'} "
              f"partitions {sizes.min()}-{sizes.max()} lines, "
              f"{time.perf_counter() - t0:.2f}s host time")

    print("\nSteady-state frame times on the modeled platforms")
    print("(cycles scaled n^3 back to full 511x511x333 resolution):")
    voxel_ratio = (1.0 / scale) ** 3
    for name in ("challenge", "origin2000", "simulator"):
        machine = machine_for(name, scale)
        if n_procs > machine.max_procs:
            continue
        rep = simulate_animation(frames, machine)
        full_cycles = rep.total_time * voxel_ratio
        seconds = machine.cycles_to_seconds(full_cycles)
        print(f"  {machine.name:12s} {n_procs} procs: "
              f"{seconds:6.2f} s/frame  ({1 / seconds:5.2f} fps)")
    print("\n(paper: ~1 s/frame serial at 256^3 on a 150 MHz machine; "
          "interactive rates need ~10-15 fps)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
