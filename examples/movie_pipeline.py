"""Movie pipeline: a beating heart rendered and encoded in one pass.

Builds the time-varying ``beating_heart`` phantom (a density wedge
swinging through the volume), streams its per-timestep RLE encodings
through a render pool via the ``RenderBackend`` protocol, and encodes
the frames into a PNG sequence *while the workers composite ahead* —
MovieMaker's render/encode stage overlap on one host.  Every frame is
bit-identical to the per-timestep serial render; the script checks one
to prove it.

Run:  python examples/movie_pipeline.py [n_frames] [out_dir]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.movie import (
    MoviePipeline,
    beating_heart_renderer,
    movie_frame_specs,
)
from repro.render.fast import render_fast


def main(n_frames: int = 8, out_dir: str = "movie_frames") -> None:
    renderer = beating_heart_renderer(scale=1.0, timesteps=4)
    print(f"beating_heart {renderer.shape}, {renderer.n_timesteps} timesteps, "
          f"{n_frames} frames -> {out_dir}/")

    specs = movie_frame_specs(renderer, n_frames)
    # Any backend works here — swap in backend="thread" or shards=2 and
    # the pipeline (and the pixels) do not change.
    with repro.open_pool(renderer, n_procs=2, profile_period=2) as pool:
        pipe = MoviePipeline(pool, out_dir, fmt="png")
        manifest = pipe.run(specs)

    ov = manifest["stage_overlap"]
    print(f"\nencoded {manifest['n_frames']} frames "
          f"({ov['encode_s'] * 1e3:.1f} ms encode, "
          f"{ov['overlapped_encode_s'] * 1e3:.1f} ms of it overlapped "
          f"with in-flight renders; wall {ov['wall_s']:.3f} s)")
    print(f"timestep switches seen by the renderer: "
          f"{renderer.timestep_switches}")

    # The contract: frame i equals the serial render of timestep i % T.
    i = n_frames - 1
    ref = render_fast(renderer, specs[i].view, timestep=specs[i].timestep)
    from repro.movie import encode_png, to_gray8

    blob = open(f"{out_dir}/frame_{i:04d}.png", "rb").read()
    same = blob == encode_png(to_gray8(np.asarray(ref.final.color)))
    print(f"frame {i} byte-identical to serial reference: {same}")
    if not same:
        raise SystemExit(1)


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 8,
        sys.argv[2] if len(sys.argv) > 2 else "movie_frames",
    )
