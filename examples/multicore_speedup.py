"""Real shared-memory parallel rendering on this machine.

Runs the new algorithm's partitioning with actual worker processes
sharing the image buffers through multiprocessing.shared_memory, and
measures wall-clock time vs worker count.  (On a single-core host the
parallel runs add process overhead without speedup — the 1997-platform
results come from the simulator, not from this demo.)

Run:  python examples/multicore_speedup.py [size]
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.datasets import mri_brain
from repro.parallel.mp_backend import render_parallel_mp
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


def main(size: int = 64) -> None:
    cores = os.cpu_count() or 1
    print(f"Host has {cores} core(s).")
    volume = mri_brain((size, size, int(size * 0.65)))
    renderer = ShearWarpRenderer(volume, mri_transfer_function())
    view = renderer.view_from_angles(20, 30, 0)

    t0 = time.perf_counter()
    ref = renderer.render(view)
    serial = time.perf_counter() - t0
    print(f"serial render:        {serial:6.2f}s")

    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        res = render_parallel_mp(renderer, view, n_procs=workers)
        dt = time.perf_counter() - t0
        ok = np.allclose(res.final.color, ref.final.color, atol=1e-5)
        print(f"{workers} worker process(es): {dt:6.2f}s  "
              f"speedup {serial / dt:4.2f}x  image {'OK' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
