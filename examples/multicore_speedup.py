"""Real shared-memory parallel rendering on this machine.

Runs the new algorithm's partitioning with actual worker processes
sharing the image buffers through multiprocessing.shared_memory, and
measures wall-clock time vs worker count — both as a sequence of
one-shot renders (fork + setup every frame, how the backend used to
work) and through a persistent :class:`MPRenderPool` rendering a short
animation, where fork, shared-memory setup and slice decoding are paid
once.  The ``--kernel`` flag switches every worker between the
per-scanline reference kernel and the vectorized block kernel; both
produce bit-identical images.

(On a single-core host the parallel runs add process overhead without
speedup — the 1997-platform results come from the simulator, not from
this demo.)

The final section turns on the paper's profile feedback loop
(``profile_period``): frames marked by the schedule measure per-scanline
costs, and following frames split the intermediate image so each worker
gets equal *measured* work instead of equal scanline counts — same
images, tighter per-worker busy times on lopsided views.

Run:  python examples/multicore_speedup.py [size] [--kernel block|scanline]
                                           [--profile-period K]
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

import repro
from repro.datasets import mri_brain
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function

N_FRAMES = 8  # animation length for the pooled runs


def main(size: int = 64, kernel: str = "block", profile_period: int = 4) -> None:
    cores = os.cpu_count() or 1
    print(f"Host has {cores} core(s); compositing kernel: {kernel}.")
    volume = mri_brain((size, size, int(size * 0.65)))
    renderer = ShearWarpRenderer(volume, mri_transfer_function())
    views = [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(N_FRAMES)]
    view = views[0]
    # One config describes the whole study; each run varies one knob.
    base = repro.PoolConfig(kernel=kernel, profile_period=0)

    t0 = time.perf_counter()
    ref = renderer.render(view)
    serial = time.perf_counter() - t0
    print(f"serial render (scanline kernel): {serial * 1e3:7.1f} ms/frame")

    print("\none-shot renders (fork + shared-memory setup every frame):")
    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        res = repro.render_frame(renderer, view,
                                 config=base.replace(n_procs=workers))
        dt = time.perf_counter() - t0
        ok = np.array_equal(res.final.color, ref.final.color)
        print(f"  {workers} worker(s): {dt * 1e3:7.1f} ms/frame  "
              f"speedup {serial / dt:5.2f}x  image {'OK' if ok else 'MISMATCH'}")

    print(f"\npersistent pool, {N_FRAMES}-frame animation (setup amortized, "
          "segments double-buffered, uniform split):")
    for workers in (1, 2, 4):
        with repro.open_pool(renderer,
                             config=base.replace(n_procs=workers)) as pool:
            pool.render(views[0])  # warm up: fork + first slice decodes
            t0 = time.perf_counter()
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
            dt = (time.perf_counter() - t0) / N_FRAMES
        ok = np.array_equal(results[0].final.color, ref.final.color)
        print(f"  {workers} worker(s): {dt * 1e3:7.1f} ms/frame  "
              f"speedup {serial / dt:5.2f}x  image {'OK' if ok else 'MISMATCH'}")

    print(f"\nsame pool with the profile feedback loop "
          f"(re-profile every {profile_period} frames):")
    for workers in (2, 4):
        with repro.open_pool(
            renderer,
            config=base.replace(n_procs=workers,
                                profile_period=profile_period),
        ) as pool:
            pool.render(views[0])  # warm up (also measures frame 0's profile)
            t0 = time.perf_counter()
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
            dt = (time.perf_counter() - t0) / N_FRAMES
        ok = np.array_equal(results[0].final.color, ref.final.color)
        # Spread of per-worker busy times on the last frame: the load
        # balance the profile-sized partitions buy.
        busy = results[-1].busy_s
        spread = (busy.max() - busy.min()) / busy.mean() if busy.mean() else 0.0
        print(f"  {workers} worker(s): {dt * 1e3:7.1f} ms/frame  "
              f"speedup {serial / dt:5.2f}x  busy spread {spread:5.2f}  "
              f"image {'OK' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("size", nargs="?", type=int, default=64)
    parser.add_argument("--kernel", default="block",
                        choices=["scanline", "block"])
    parser.add_argument("--profile-period", type=int, default=4,
                        help="re-profile every K frames in the adaptive run")
    args = parser.parse_args()
    main(args.size, args.kernel, args.profile_period)
