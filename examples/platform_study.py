"""Platform study: OLD vs NEW partitioning across the paper's machines.

A condensed version of the paper's headline evaluation: self-relative
speedups of both parallel algorithms on every modeled platform,
including the SVM cluster, printed side by side.

Run:  python examples/platform_study.py [dataset] [scale]
"""

from __future__ import annotations

import sys

from repro.analysis.breakdown import format_table
from repro.analysis.harness import DEFAULT_SCALE, machine_for, speedup_curve
from repro.memsim.svm import SVMConfig, SVMSimulator, simulate_frame_svm
from repro.analysis.harness import record_frames

PROCS = (1, 2, 4, 8, 16)


def svm_speedups(dataset: str, scale: float) -> dict[str, dict[int, float]]:
    cfg = SVMConfig().scaled(scale)
    out: dict[str, dict[int, float]] = {}
    for alg in ("old", "new"):
        times = {}
        for p in PROCS:
            sim = SVMSimulator(cfg, p)
            rep = None
            for f in record_frames(dataset, alg, p, scale=scale):
                rep = simulate_frame_svm(f, cfg, sim)
            times[p] = rep.total_time
        out[alg] = {p: times[1] / times[p] for p in PROCS}
    return out


def main(dataset: str = "mri512", scale: float = DEFAULT_SCALE) -> None:
    print(f"Old vs new parallel shear-warp, {dataset} proxy at scale {scale}\n")
    for machine in ("challenge", "dash", "simulator", "origin2000"):
        curves = {}
        for alg in ("old", "new"):
            pts = speedup_curve(dataset, alg, machine, procs=PROCS, scale=scale)
            curves[alg] = {p.n_procs: p.speedup for p in pts}
        rows = [
            (p, curves["old"].get(p, float("nan")), curves["new"].get(p, float("nan")))
            for p in PROCS if p <= machine_for(machine, scale).max_procs
        ]
        print(f"--- {machine} ---")
        print(format_table(["P", "old", "new"], rows))
        print()

    print("--- SVM cluster (page-grain software coherence) ---")
    sp = svm_speedups(dataset, scale)
    rows = [(p, sp["old"][p], sp["new"][p]) for p in PROCS]
    print(format_table(["P", "old", "new"], rows))
    print("\n(paper: the new algorithm's advantage grows as communication "
          "gets more expensive, largest on SVM)")


if __name__ == "__main__":
    ds = sys.argv[1] if len(sys.argv) > 1 else "mri512"
    sc = float(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_SCALE
    main(ds, sc)
