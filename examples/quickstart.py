"""Quickstart: render a synthetic MRI brain with the shear-warp renderer.

Shows the minimal pipeline: phantom volume -> transfer function ->
renderer -> one frame from an oblique viewpoint, plus a crude ASCII
rendering of the result so you can *see* it — and the same frame again
through the real multiprocessing backend via the top-level facade
(``repro.PoolConfig`` + ``repro.render_frame``), bit-identical.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.datasets import mri_brain
from repro.render import ShearWarpRenderer, WorkCounters
from repro.volume import mri_transfer_function


def ascii_image(image: np.ndarray, width: int = 70) -> str:
    """Downsample a float image to ASCII luminance art."""
    ny, nx = image.shape
    step = max(1, nx // width)
    rows = []
    ramp = " .:-=+*#%@"
    for y in range(0, ny, 2 * step):
        row = image[y : y + 2 * step, :]
        cells = [
            row[:, x : x + step].mean() for x in range(0, nx, step)
        ]
        peak = image.max() or 1.0
        rows.append("".join(ramp[min(9, int(9 * c / peak))] for c in cells))
    return "\n".join(rows)


def main() -> None:
    print("Generating a 96x96x64 synthetic MRI brain...")
    volume = mri_brain((96, 96, 64))

    print("Classifying + run-length encoding (once per volume)...")
    t0 = time.perf_counter()
    renderer = ShearWarpRenderer(volume, mri_transfer_function())
    print(f"  done in {time.perf_counter() - t0:.2f}s; "
          f"{renderer.classified.transparent_fraction:.0%} of voxels transparent "
          f"(paper: 70-95% for medical data)")
    for axis, rle in renderer.rle_by_axis.items():
        print(f"  axis {axis}: RLE compresses {rle.compression_ratio:.1f}x")

    print("\nRendering one frame (20deg, 30deg oblique view)...")
    view = renderer.view_from_angles(20, 30, 0)
    counters = WorkCounters()
    t0 = time.perf_counter()
    result = renderer.render(view, counters=counters)
    dt = time.perf_counter() - t0
    print(f"  {dt:.2f}s: intermediate {result.intermediate.shape}, "
          f"final {result.final.shape}")
    print(f"  {counters.resample_ops} resamples, "
          f"{counters.pixels_skipped} pixels skipped by early termination, "
          f"{counters.warp_pixels} final pixels warped")

    print("\nSame frame through the parallel backend (2 worker processes)...")
    cfg = repro.PoolConfig(n_procs=2)
    t0 = time.perf_counter()
    par = repro.render_frame(renderer, view, config=cfg)
    dt = time.perf_counter() - t0
    same = np.array_equal(par.final.color, result.final.color)
    print(f"  {dt:.2f}s: image {'bit-identical to serial' if same else 'MISMATCH'}")

    print("\nFinal image:")
    print(ascii_image(result.final.color))


if __name__ == "__main__":
    main()
