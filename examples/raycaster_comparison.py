"""Shear-warp vs ray casting: the serial comparison behind Figure 2.

Renders the same classified brain with both algorithms from the same
viewpoint, checks the images agree, and reports the op-count structure
(the ray caster drowns in looping/addressing; the shear warper streams).

Run:  python examples/raycaster_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import mri_brain
from repro.render import ShearWarpRenderer, WorkCounters
from repro.render.octree import MinMaxOctree
from repro.render.raycast import RayCastRenderer, render_raycast
from repro.volume import mri_transfer_function


def main() -> None:
    volume = mri_brain((40, 40, 28))
    tf = mri_transfer_function()
    view_angles = (15, 25, 0)

    sw = ShearWarpRenderer(volume, tf)
    view = sw.view_from_angles(*view_angles)

    c_sw = WorkCounters()
    t0 = time.perf_counter()
    sw_result = sw.render(view, counters=c_sw)
    t_sw = time.perf_counter() - t0

    rc = RayCastRenderer(sw.classified, MinMaxOctree.build(sw.classified.opacity))
    c_rc = WorkCounters()
    t0 = time.perf_counter()
    rc_final = render_raycast(rc, view, counters=c_rc)
    t_rc = time.perf_counter() - t0

    print("shear-warp:")
    print(f"  {t_sw:.2f}s host; {c_sw.resample_ops} resamples, "
          f"{c_sw.run_entries} run entries, {c_sw.loop_iters} loop iterations")
    print("ray caster:")
    print(f"  {t_rc:.2f}s host; {c_rc.ray_steps} samples, "
          f"{c_rc.octree_visits} octree visits, {c_rc.loop_iters} rays")

    # Same scene from the same view: projected alpha mass should agree.
    m_sw = sw_result.final.alpha.sum()
    m_rc = rc_final.alpha.sum()
    print(f"\nprojected alpha mass: shear-warp {m_sw:.0f} vs ray-cast {m_rc:.0f} "
          f"({100 * abs(m_sw - m_rc) / m_sw:.1f}% apart)")
    print(f"octree visits per sample: {c_rc.octree_visits / max(1, c_rc.ray_steps):.1f} "
          "(the 'looping' overhead the shear-warper avoids)")


if __name__ == "__main__":
    main()
