"""The paper's methodological arc: climbing down the tool hierarchy.

Section by section, the paper uses increasingly detailed tools until the
bottleneck is identifiable:

1. coarse time breakdown (Pixie + timers): "memory time dominates";
2. hardware counters (Origin2000): miss counts, but no classes;
3. the simulator: miss *classification* — true sharing at the
   compositing/warp interface — which finally points at the algorithm.

This example replays that narrative on one workload.

Run:  python examples/tool_hierarchy.py
"""

from __future__ import annotations

from repro.analysis.breakdown import combined_stats, miss_breakdown
from repro.analysis.harness import DEFAULT_SCALE, machine_for, record_frames
from repro.memsim.perfcounters import sample_counters
from repro.parallel.execution import simulate_animation

N_PROCS = 16
DATASET = "mri512"


def main() -> None:
    machine = machine_for("origin2000", DEFAULT_SCALE)
    frames = record_frames(DATASET, "old", N_PROCS, scale=DEFAULT_SCALE)
    report = simulate_animation(list(frames), machine)

    print("LEVEL 1 - coarse execution-time breakdown (Pixie + timing calls)")
    f = report.fractions()
    print(f"  busy {100 * f['busy']:.0f}%  memory {100 * f['memory']:.0f}%  "
          f"sync {100 * f['sync']:.0f}%")
    print("  -> conclusion: the memory system dominates the decline.  But why?\n")

    print("LEVEL 2 - hardware performance counters (R10000-style)")
    print(sample_counters(report).summary())
    print()

    print("LEVEL 3 - detailed simulation (miss classification)")
    mb = miss_breakdown(report)
    stats = combined_stats(report)
    print(f"  true sharing {mb['true']:.2f}%  false sharing {mb['false']:.2f}%  "
          f"replacement {mb['replacement']:.2f}% of references")
    print(f"  {100 * stats.remote_fraction():.0f}% of misses satisfied remotely")
    wt = report.warp.stats
    warp_true = sum(wt.misses[p]["true"] for p in range(N_PROCS))
    print(f"  warp-phase true-sharing misses: {warp_true} — processors read "
          "intermediate-image lines other processors composited")
    print("  -> conclusion: restructure the partitioning so each processor "
          "warps what it composited (the paper's new algorithm).")


if __name__ == "__main__":
    main()
