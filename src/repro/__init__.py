"""repro — reproduction of Jiang & Singh, "Improving Parallel Shear-Warp
Volume Rendering on Shared Address Space Multiprocessors" (PPoPP 1997).

Top-level facade
----------------
The stable entry points for rendering with the real multiprocessing
backend live here, so callers configure everything through one
:class:`PoolConfig` instead of threading keyword arguments through
three layers::

    import repro

    cfg = repro.PoolConfig(n_procs=4, profile_period=5)
    res = repro.render_frame(renderer, view, config=cfg)   # one frame

    with repro.open_pool(renderer, config=cfg) as pool:    # animation
        handles = [pool.submit(v) for v in views]
        results = [pool.result(h) for h in handles]

Everything is imported lazily: ``import repro`` stays cheap and pulls
in numpy-heavy modules only when a facade symbol is first touched.

Subpackages
-----------
``transforms``   shear-warp factorization of viewing matrices
``datasets``     synthetic MRI/CT phantom volumes (paper-input proxies)
``volume``       classification + run-length encoding
``render``       serial shear-warp renderer and ray-casting baseline
``core``         the paper's contribution: old vs new parallel partitioning
``parallel``     execution models (event-driven simulator, multiprocessing)
``memsim``       trace-driven multiprocessor memory-system simulator
``analysis``     speedups, time breakdowns, working-set analyses
``obs``          span tracing, Chrome trace export, metrics
"""

__version__ = "1.1.0"

#: Facade symbols re-exported (lazily) from :mod:`repro.parallel.mp_backend`.
_POOL_EXPORTS = (
    "PoolConfig",
    "MPRenderPool",
    "MPRenderResult",
    "MPPoolError",
    "FrameFailed",
    "FrameTimeout",
    "WorkerDied",
    "PoolClosed",
    "PoolUnrecoverable",
)

#: Facade symbols re-exported (lazily) from :mod:`repro.parallel.backend`.
_BACKEND_EXPORTS = (
    "RenderBackend",
    "BackendCapabilities",
    "FrameSpec",
)

#: Facade symbols re-exported (lazily) from :mod:`repro.shard`.
_SHARD_EXPORTS = (
    "ShardConfig",
    "ShardedRenderService",
)

#: Facade symbols re-exported (lazily) from :mod:`repro.movie`.
_MOVIE_EXPORTS = (
    "TimeVaryingVolume",
    "TimeVaryingRenderer",
    "MoviePipeline",
)

__all__ = [
    "__version__", "open_pool", "render_frame", *_POOL_EXPORTS,
    *_BACKEND_EXPORTS, *_SHARD_EXPORTS, *_MOVIE_EXPORTS,
]


def open_pool(renderer, config=None, **overrides):
    """Open a persistent render pool (use as a context manager).

    ``config`` is a :class:`PoolConfig`; keyword overrides build one
    (``open_pool(r, n_procs=4)``) or refine a given config
    (``open_pool(r, cfg, trace=True)``).  ``config.backend`` selects
    the pool class: ``"mp"`` (default) opens the fork-based
    :class:`MPRenderPool`, ``"thread"`` the no-copy
    :class:`~repro.parallel.thread_backend.ThreadRenderPool` — both
    expose the same ``submit``/``submit_batch``/``render_animation``/
    ``result`` API and produce bit-identical images.

    ``config.shards > 1`` (``open_pool(r, shards=4)``) opens a
    :class:`~repro.shard.ShardedRenderService` instead — a fleet of
    pools, one per contiguous scanline shard, merged sort-last into
    bit-identical frames behind the same pool API.  A
    :class:`~repro.shard.ShardConfig` may be passed as ``config`` for
    heterogeneous fleets.
    """
    from .parallel.mp_backend import MPRenderPool, PoolConfig
    from .shard import ShardConfig

    if isinstance(config, ShardConfig):
        from .shard import ShardedRenderService

        return ShardedRenderService(renderer, config, **overrides)
    if config is None:
        config = PoolConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    if config.shards > 1:
        from .shard import ShardedRenderService

        return ShardedRenderService(renderer, config)
    if config.backend == "thread":
        from .parallel.thread_backend import ThreadRenderPool

        return ThreadRenderPool(renderer, config=config)
    return MPRenderPool(renderer, config=config)


def render_frame(renderer, view, config=None, **overrides):
    """Render one frame through a transient pool of the configured backend.

    The one-shot counterpart of :func:`open_pool`: ``profile_period``
    defaults to 0 here (a single frame has no next frame for its profile
    to balance) and the mp pool runs with a single image buffer.
    """
    from .parallel.mp_backend import PoolConfig, render_parallel_mp
    from .shard import ShardConfig

    if (
        isinstance(config, ShardConfig)
        or (config is not None and config.shards > 1)
        or overrides.get("shards", 1) > 1
    ):
        with open_pool(renderer, config, **overrides) as svc:
            return svc.render(view)
    if config is None:
        config = PoolConfig(profile_period=0, **overrides)
    elif overrides:
        config = config.replace(**overrides)
    if config.backend == "thread":
        from .parallel.thread_backend import render_parallel_threads

        return render_parallel_threads(renderer, view, config=config)
    return render_parallel_mp(renderer, view, config=config)


def __getattr__(name: str):
    if name in _POOL_EXPORTS:
        from . import parallel

        return getattr(parallel.mp_backend, name)
    if name in _BACKEND_EXPORTS:
        from .parallel import backend

        return getattr(backend, name)
    if name in _SHARD_EXPORTS:
        from . import shard

        return getattr(shard, name)
    if name in _MOVIE_EXPORTS:
        from . import movie

        return getattr(movie, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
