"""repro — reproduction of Jiang & Singh, "Improving Parallel Shear-Warp
Volume Rendering on Shared Address Space Multiprocessors" (PPoPP 1997).

Subpackages
-----------
``transforms``   shear-warp factorization of viewing matrices
``datasets``     synthetic MRI/CT phantom volumes (paper-input proxies)
``volume``       classification + run-length encoding
``render``       serial shear-warp renderer and ray-casting baseline
``core``         the paper's contribution: old vs new parallel partitioning
``parallel``     execution models (event-driven simulator, multiprocessing)
``memsim``       trace-driven multiprocessor memory-system simulator
``analysis``     speedups, time breakdowns, working-set analyses
"""

__version__ = "1.0.0"
