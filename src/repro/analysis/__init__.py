"""Experiment harness, time/miss breakdowns, and working-set analyses."""

from .breakdown import combined_stats, format_table, miss_breakdown, time_breakdown_rows
from .harness import (
    DEFAULT_ELONGATE,
    DEFAULT_SCALE,
    get_renderer,
    machine_for,
    record_frames,
    simulate,
    speedup_curve,
    steady_frame,
)
from .report import collect_results, render_report
from .workingset import SweepPoint, cache_size_sweep, line_size_sweep, working_set_size

__all__ = [
    "combined_stats",
    "format_table",
    "miss_breakdown",
    "time_breakdown_rows",
    "DEFAULT_ELONGATE",
    "DEFAULT_SCALE",
    "get_renderer",
    "machine_for",
    "record_frames",
    "simulate",
    "speedup_curve",
    "steady_frame",
    "collect_results",
    "render_report",
    "SweepPoint",
    "cache_size_sweep",
    "line_size_sweep",
    "working_set_size",
]
