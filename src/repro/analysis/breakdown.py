"""Time-breakdown and miss-breakdown reporting helpers.

These produce the row data of the paper's stacked-bar figures:
busy / memory / sync execution-time splits (Figures 5, 14) and
cold / replacement / true-sharing / false-sharing miss splits
(Figures 7, 8, 16, 17).
"""

from __future__ import annotations

from ..memsim.coherence import MISS_CLASSES, MissStats
from ..parallel.execution import FrameReport

__all__ = [
    "combined_stats",
    "miss_breakdown",
    "time_breakdown_rows",
    "format_table",
]


def combined_stats(report: FrameReport) -> MissStats:
    """Merge compositing- and warp-phase miss statistics of a frame."""
    a, b = report.composite.stats, report.warp.stats
    out = MissStats(a.n_procs)
    for p in range(a.n_procs):
        out.refs[p] = a.refs[p] + b.refs[p]
        for c in MISS_CLASSES:
            out.misses[p][c] = a.misses[p][c] + b.misses[p][c]
        for k in a.kinds[p]:
            out.kinds[p][k] = a.kinds[p][k] + b.kinds[p][k]
        out.upgrades[p] = a.upgrades[p] + b.upgrades[p]
        out.home_bytes[p] = a.home_bytes[p] + b.home_bytes[p]
    out.invalidations = a.invalidations + b.invalidations
    return out


def miss_breakdown(report: FrameReport, include_cold: bool = False) -> dict[str, float]:
    """Frame-wide miss rate per class, in percent of references.

    The paper's miss-breakdown figures omit cold misses; pass
    ``include_cold=True`` to keep them.
    """
    stats = combined_stats(report)
    out = {c: 100.0 * stats.miss_rate(c) for c in MISS_CLASSES}
    if not include_cold:
        out.pop("cold")
    return out


def time_breakdown_rows(
    reports: dict[int, FrameReport]
) -> list[tuple[int, float, float, float]]:
    """Rows ``(P, busy%, memory%, sync%)`` for a breakdown-vs-P figure."""
    rows = []
    for p in sorted(reports):
        f = reports[p].fractions()
        rows.append((p, 100 * f["busy"], 100 * f["memory"], 100 * f["sync"]))
    return rows


def format_table(headers: list[str], rows: list[tuple], width: int = 12) -> str:
    """Plain fixed-width table used by the benchmark scripts' output."""
    def fmt(x) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    lines = ["".join(h.ljust(width) for h in headers)]
    lines.append("-" * (width * len(headers)))
    for row in rows:
        lines.append("".join(fmt(x).ljust(width) for x in row))
    return "\n".join(lines)
