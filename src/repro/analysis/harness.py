"""Shared experiment harness: datasets -> frames -> simulated timings.

Every figure benchmark needs the same pipeline: build a renderer for a
(proxy-scaled) paper data set, record animation frames with one of the
two parallel algorithms, and simulate them on a (cache-scaled) machine.
Frame recording is the expensive step and depends only on
(dataset, scale, algorithm, P, frame index, task-size knobs), so results
are memoized process-wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.frame import ParallelFrame
from ..core.new_renderer import DEFAULT_STEAL_CHUNK, NewParallelShearWarp
from ..core.old_renderer import DEFAULT_CHUNK, DEFAULT_TILE, OldParallelShearWarp
from ..core.profiling import ProfileSchedule
from ..datasets import load
from ..memsim.machine import MACHINES, MachineConfig, cache_scale_for
from ..parallel.execution import FrameReport, simulate_animation
from ..render.serial import ShearWarpRenderer
from ..volume import ct_transfer_function, mri_transfer_function

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_ELONGATE",
    "DEFAULT_VIEW",
    "ROTATION_STEP",
    "get_renderer",
    "record_frames",
    "traced_frames",
    "steady_frame",
    "machine_for",
    "simulate",
    "speedup_curve",
]

#: Default proxy scale for experiments (3/16 of paper resolution).
DEFAULT_SCALE = 0.1875
#: Elongation of the scanline (y) axis (see datasets.registry).  The
#: default is isotropic: elongation would shrink the gap between the old
#: algorithm's plane-sized working set and the new algorithm's per-
#: processor block, which is the separation the paper's results ride on.
DEFAULT_ELONGATE = 1.0
#: Base viewing angles (degrees) — an oblique view exercising shear.
DEFAULT_VIEW = (20.0, 30.0, 0.0)
#: Animation step between frames (degrees about y), as in the paper's
#: small-angle rotation sequences.
ROTATION_STEP = 3.0


@lru_cache(maxsize=16)
def get_renderer(
    dataset: str, scale: float = DEFAULT_SCALE, elongate: float = DEFAULT_ELONGATE
) -> ShearWarpRenderer:
    """Renderer (classification + RLE done once) for a paper data set."""
    vol = load(dataset, scale, elongate)
    tf = ct_transfer_function() if dataset.startswith("ct") else mri_transfer_function()
    return ShearWarpRenderer(vol, tf)


def _views(renderer: ShearWarpRenderer, n_frames: int) -> list[np.ndarray]:
    rx, ry, rz = DEFAULT_VIEW
    return [
        renderer.view_from_angles(rx, ry + i * ROTATION_STEP, rz)
        for i in range(n_frames)
    ]


@lru_cache(maxsize=256)
def record_frames(
    dataset: str,
    algorithm: str,
    n_procs: int,
    n_frames: int = 3,
    scale: float = DEFAULT_SCALE,
    chunk: int = DEFAULT_CHUNK,
    tile: int = DEFAULT_TILE,
    steal_chunk: int = DEFAULT_STEAL_CHUNK,
    profile_period: int = 5,
    mem_per_line_touch: float | None = None,
    kernel: str = "scanline",
) -> tuple[ParallelFrame, ...]:
    """Record ``n_frames`` animation frames with one parallel algorithm.

    ``mem_per_line_touch`` tunes the new algorithm's profile the way
    running natively on a machine would (its profile measures elapsed
    time there); pass the target machine's coefficient.
    ``kernel="block"`` records through the vectorized block kernel —
    much faster, same images/counters/costs, but the frames carry no
    memory traces and cannot be fed to :func:`simulate`.
    """
    renderer = get_renderer(dataset, scale)
    views = _views(renderer, n_frames)
    if algorithm == "old":
        factory = OldParallelShearWarp(
            renderer, n_procs, chunk=chunk, tile=tile, kernel=kernel
        )
        return tuple(factory.render_frame(v) for v in views)
    if algorithm == "new":
        kw = {}
        if mem_per_line_touch is not None:
            kw["mem_per_line_touch"] = mem_per_line_touch
        factory = NewParallelShearWarp(
            renderer, n_procs, steal_chunk=steal_chunk,
            profile_schedule=ProfileSchedule(period=profile_period),
            kernel=kernel, **kw,
        )
        return tuple(factory.render_frame(v) for v in views)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def traced_frames(
    dataset: str,
    algorithm: str,
    n_procs: int,
    n_frames: int = 3,
    scale: float = DEFAULT_SCALE,
    kernel: str = "scanline",
    profile_period: int = 5,
):
    """Record frames with wall-clock phase spans attached.

    Like :func:`record_frames` but threads a
    :class:`repro.obs.SpanRecorder` through the frame factory and
    returns ``(frames, timelines)`` — one
    :class:`repro.obs.FrameTimeline` per frame with native
    decode/composite/profile/warp timings of the recording pass.  Not
    memoized: the wall-clock spans are the output.
    """
    from ..obs import RingReader, SpanRecorder, assemble_timelines

    recorder = SpanRecorder.in_memory()
    reader = RingReader(recorder.cursor, recorder.records, pid=0)
    renderer = get_renderer(dataset, scale)
    views = _views(renderer, n_frames)
    if algorithm == "old":
        factory = OldParallelShearWarp(renderer, n_procs, kernel=kernel,
                                       recorder=recorder)
    elif algorithm == "new":
        factory = NewParallelShearWarp(
            renderer, n_procs, kernel=kernel, recorder=recorder,
            profile_schedule=ProfileSchedule(period=profile_period),
        )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    frames = tuple(factory.render_frame(v) for v in views)
    return frames, assemble_timelines([reader])


def steady_frame(
    dataset: str, algorithm: str, n_procs: int, scale: float = DEFAULT_SCALE, **kw
) -> ParallelFrame:
    """A steady-state frame: the last of a short animation."""
    return record_frames(dataset, algorithm, n_procs, scale=scale, **kw)[-1]


def machine_for(name: str, scale: float = DEFAULT_SCALE) -> MachineConfig:
    """Machine preset with caches scaled to match the proxy volumes."""
    return MACHINES[name]().scaled(cache_scale_for(scale))


_SIM_CACHE: dict[tuple, FrameReport] = {}


def simulate(
    dataset: str,
    algorithm: str,
    machine_name: str,
    n_procs: int,
    scale: float = DEFAULT_SCALE,
    **kw,
) -> FrameReport:
    """Steady-state animation timing on one machine (last-frame report).

    Simulates a short animation so cache/directory state is warm — the
    inter-frame sharing is where the old algorithm's phase-interface
    communication becomes visible (see ``simulate_animation``).
    """
    if kw.get("kernel", "scanline") != "scanline":
        raise ValueError(
            "simulate() needs memory traces — only kernel='scanline' frames "
            "carry them (block-kernel frames are for wall-clock runs)"
        )
    key = (dataset, algorithm, machine_name, n_procs, scale, tuple(sorted(kw.items())))
    if key not in _SIM_CACHE:
        machine = machine_for(machine_name, scale)
        kw.setdefault("mem_per_line_touch", machine.mem_per_line_touch)
        frames = record_frames(dataset, algorithm, n_procs, scale=scale, **kw)
        _SIM_CACHE[key] = simulate_animation(list(frames), machine)
    return _SIM_CACHE[key]


@dataclass
class SpeedupPoint:
    n_procs: int
    time: float
    speedup: float
    report: FrameReport


def speedup_curve(
    dataset: str,
    algorithm: str,
    machine_name: str,
    procs: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    scale: float = DEFAULT_SCALE,
    **kw,
) -> list[SpeedupPoint]:
    """Self-relative speedups T(1)/T(P) on one machine."""
    machine = machine_for(machine_name, scale)
    procs = tuple(p for p in procs if p <= machine.max_procs)
    base = None
    out: list[SpeedupPoint] = []
    for p in procs:
        report = simulate(dataset, algorithm, machine_name, p, scale=scale, **kw)
        if base is None:
            base = simulate(dataset, algorithm, machine_name, 1, scale=scale, **kw).total_time
        out.append(
            SpeedupPoint(
                n_procs=p,
                time=report.total_time,
                speedup=base / report.total_time if report.total_time else 0.0,
                report=report,
            )
        )
    return out
