"""Assemble archived benchmark outputs into one markdown report.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module stitches the per-figure tables into
a single document (``python -m repro.analysis.report > report.md``),
ordered as in the paper's evaluation section.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["FIGURE_ORDER", "collect_results", "render_report"]

#: Paper presentation order with section headers.
FIGURE_ORDER: tuple[tuple[str, str], ...] = (
    ("fig02_serial_breakdown", "Figure 2 — serial ray-caster vs shear-warper"),
    ("fig04_old_speedups", "Figure 4 — old-algorithm speedups (512^3 MRI)"),
    ("fig05_old_breakdown", "Figure 5 — old-algorithm time breakdown"),
    ("fig06_old_speedups_datasets", "Figure 6 — old speedups across data sets"),
    ("fig07_old_miss_breakdown", "Figure 7 — miss classes vs processors"),
    ("fig08_old_linesize", "Figure 8 — miss classes vs line size"),
    ("fig09_old_workingset", "Figure 9 — old-algorithm working sets"),
    ("fig10_profile", "Figure 10 — per-scanline cost profile"),
    ("fig11_partition", "Figure 11 — cumulative-profile partitioning"),
    ("fig12_new_vs_old_dash", "Figure 12 — old vs new on DASH"),
    ("fig13_new_vs_old_sim", "Figure 13 — old vs new on the simulator"),
    ("fig14_breakdown_comparison", "Figure 14 — breakdown comparison"),
    ("fig15_ct_speedups", "Figure 15 — CT head speedups"),
    ("fig16_miss_comparison", "Figure 16 — miss breakdown comparison"),
    ("fig17_linesize_comparison", "Figure 17 — spatial-locality comparison"),
    ("fig18_new_workingset", "Figure 18 — new-algorithm working sets"),
    ("fig19_origin", "Figure 19 — Origin2000 speedups"),
    ("fig20_svm_speedups", "Figure 20 — SVM speedups"),
    ("fig21_svm_old_breakdown", "Figure 21 — SVM breakdown (old)"),
    ("fig22_svm_new_breakdown", "Figure 22 — SVM breakdown (new)"),
    ("ablation_steal_chunk", "Ablation — stealing granularity"),
    ("ablation_chunk_size", "Ablation — old-algorithm chunk size"),
    ("ablation_profile_period", "Ablation — profiling period"),
    ("ablation_warp_partition", "Ablation — warp-phase partitioning"),
    ("ablation_partition_strategy", "Ablation — partition strategy matrix"),
    ("ablation_early_termination", "Ablation — early ray termination"),
)


def default_results_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def collect_results(results_dir: str | Path | None = None) -> dict[str, str]:
    """Read every archived table; returns ``{bench name: table text}``."""
    d = Path(results_dir) if results_dir else default_results_dir()
    out: dict[str, str] = {}
    if not d.is_dir():
        return out
    for path in sorted(d.glob("*.txt")):
        out[path.stem] = path.read_text().rstrip()
    return out


def render_report(results_dir: str | Path | None = None) -> str:
    """The full markdown report (missing figures are flagged)."""
    results = collect_results(results_dir)
    lines = [
        "# Reproduction report — Jiang & Singh, PPoPP 1997",
        "",
        "Generated from benchmarks/results/.  See EXPERIMENTS.md for the",
        "paper-vs-measured discussion and scaling rules.",
    ]
    for name, title in FIGURE_ORDER:
        lines += ["", f"## {title}", ""]
        if name in results:
            lines += ["```", results[name], "```"]
        else:
            lines.append(f"*missing — run `python benchmarks/{name}.py`*")
    extras = sorted(set(results) - {n for n, _ in FIGURE_ORDER})
    for name in extras:
        lines += ["", f"## {name}", "", "```", results[name], "```"]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(render_report(), end="")
