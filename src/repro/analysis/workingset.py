"""Working-set and spatial-locality sweeps (Figures 8, 9, 17, 18).

The paper measures working sets by running the program on the simulator
with per-processor cache sizes swept in powers of two and locating the
knees of the miss-rate-vs-cache-size curve; spatial locality by sweeping
the cache line size.  Both sweeps re-simulate the same recorded frame
with a modified machine, so the renderer/scheduler work is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.frame import ParallelFrame
from ..memsim.machine import MachineConfig
from ..parallel.execution import simulate_animation, simulate_frame
from .breakdown import combined_stats, miss_breakdown


def _simulate(frame_or_frames, machine):
    """One frame -> cold simulation; a sequence -> steady-state animation.

    Sweeps skip the two-pass schedule refinement (refine=0): it only
    sharpens timing, not the miss statistics the sweeps report.
    """
    if isinstance(frame_or_frames, ParallelFrame):
        return simulate_frame(frame_or_frames, machine, refine=0)
    return simulate_animation(list(frame_or_frames), machine, refine=0)

__all__ = ["SweepPoint", "cache_size_sweep", "cache_for_rate", "line_size_sweep", "working_set_size"]


@dataclass
class SweepPoint:
    """One sweep sample: parameter value and resulting miss statistics."""

    value: int  # cache bytes or line bytes
    miss_rate: float  # percent, cold misses excluded
    breakdown: dict[str, float]  # percent per class (no cold)


def cache_size_sweep(
    frame: ParallelFrame,
    machine: MachineConfig,
    sizes: tuple[int, ...] = tuple(2**k for k in range(10, 21)),
) -> list[SweepPoint]:
    """Miss rate vs per-processor cache size (paper: 1 KB .. 1 MB).

    ``frame`` may be a single frame (cold caches) or a frame sequence
    (steady-state animation, as the paper measures).
    """
    out = []
    for size in sizes:
        m = replace(machine, cache_bytes=int(size))
        report = _simulate(frame, m)
        stats = combined_stats(report)
        out.append(
            SweepPoint(
                value=int(size),
                miss_rate=100.0 * stats.miss_rate(include_cold=False),
                breakdown=miss_breakdown(report),
            )
        )
    return out


def line_size_sweep(
    frame: ParallelFrame,
    machine: MachineConfig,
    lines: tuple[int, ...] = (16, 32, 64, 128, 256),
) -> list[SweepPoint]:
    """Miss rate vs cache line size at fixed capacity (Figures 8/17)."""
    out = []
    for line in lines:
        m = replace(machine, line_bytes=int(line))
        report = _simulate(frame, m)
        stats = combined_stats(report)
        out.append(
            SweepPoint(
                value=int(line),
                miss_rate=100.0 * stats.miss_rate(include_cold=False),
                breakdown=miss_breakdown(report),
            )
        )
    return out


def working_set_size(points: list[SweepPoint], knee_ratio: float = 0.5) -> int:
    """Locate the working set: smallest cache whose miss rate is within
    ``knee_ratio`` of the way down from the worst to the best rate.

    A crude but robust knee detector for monotone miss-rate curves.
    """
    if not points:
        raise ValueError("empty sweep")
    pts = sorted(points, key=lambda s: s.value)
    worst = pts[0].miss_rate
    best = pts[-1].miss_rate
    threshold = best + (worst - best) * (1.0 - knee_ratio)
    for s in pts:
        if s.miss_rate <= threshold:
            return s.value
    return pts[-1].value


def cache_for_rate(points: list[SweepPoint], target_rate: float = 1.5) -> int:
    """Smallest cache whose miss rate is at or below ``target_rate`` (%).

    A more robust working-set size measure than knee detection when the
    sweep grid is coarse or the curve declines smoothly; returns the
    largest swept size if the target is never reached.
    """
    if not points:
        raise ValueError("empty sweep")
    for s in sorted(points, key=lambda s: s.value):
        if s.miss_rate <= target_rate:
            return s.value
    return max(points, key=lambda s: s.value).value
