"""Command-line interface: render volumes and run paper experiments.

Examples::

    python -m repro.cli render --dataset mri256 --scale 0.2 --out brain.npz
    python -m repro.cli speedup --dataset mri512 --machine simulator
    python -m repro.cli info
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .datasets import PAPER_DATASETS
    from .memsim import MACHINES

    print(f"repro {__version__} — parallel shear-warp volume rendering "
          "(Jiang & Singh, PPoPP 1997)")
    print("\ndata sets (paper resolutions):")
    for name, spec in PAPER_DATASETS.items():
        print(f"  {name:8s} {spec.modality.upper():3s} {spec.paper_shape}")
    print("\nmodeled platforms:")
    for name, factory in MACHINES.items():
        m = factory()
        print(f"  {name:12s} {m.cache_bytes // 1024:5d} KB cache, "
              f"{m.line_bytes:3d} B lines, "
              f"{'bus' if m.centralized else 'NUMA'}, "
              f"max {m.max_procs} procs")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    import time

    from .analysis.harness import get_renderer
    from .render.fast import render_fast

    renderer = get_renderer(args.dataset, args.scale)
    view = renderer.view_from_angles(args.rx, args.ry, args.rz)
    frames = max(1, args.frames)
    t0 = time.perf_counter()
    if frames > 1:
        # Animation through a persistent pool: this is the path where
        # --profile-period matters (profiles measured on one frame
        # balance the partitions of the following frames).
        from .parallel.mp_backend import MPRenderPool

        views = [renderer.view_from_angles(args.rx, args.ry + i * args.ry_step,
                                           args.rz)
                 for i in range(frames)]
        with MPRenderPool(renderer, n_procs=max(1, args.procs),
                          kernel=args.kernel,
                          profile_period=args.profile_period) as pool:
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
        result = results[-1]
        split = (f"profile-balanced k={args.profile_period}"
                 if args.profile_period > 0 else "uniform split")
        how = (f"{frames} frames, {max(1, args.procs)} procs, "
               f"{args.kernel} kernel, {split}")
    elif args.procs > 1:
        from .parallel.mp_backend import render_parallel_mp

        result = render_parallel_mp(renderer, view, n_procs=args.procs,
                                    kernel=args.kernel,
                                    profile_period=args.profile_period)
        how = f"{args.procs} procs, {args.kernel} kernel"
    elif args.kernel == "scanline":
        result = renderer.render(view)
        how = "serial, scanline kernel"
    else:
        result = render_fast(renderer, view)
        how = "serial, block kernel"
    dt = (time.perf_counter() - t0) / frames
    print(f"rendered {args.dataset} proxy {renderer.shape} -> "
          f"final image {result.final.shape}, "
          f"alpha mass {result.final.alpha.sum():.0f} "
          f"({how}, {dt * 1e3:.1f} ms/frame)")
    if args.out:
        np.savez_compressed(args.out, color=result.final.color,
                            alpha=result.final.alpha)
        print(f"saved image arrays to {args.out}")
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .analysis.breakdown import format_table
    from .analysis.harness import speedup_curve

    procs = tuple(int(p) for p in args.procs.split(","))
    curves = {}
    for alg in ("old", "new"):
        pts = speedup_curve(args.dataset, alg, args.machine,
                            procs=procs, scale=args.scale)
        curves[alg] = {p.n_procs: p.speedup for p in pts}
    rows = [(p, curves["old"].get(p, float("nan")),
             curves["new"].get(p, float("nan")))
            for p in procs if p in curves["old"]]
    print(f"{args.dataset} on {args.machine} (scale {args.scale}):")
    print(format_table(["P", "old", "new"], rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list data sets and platforms")

    p = sub.add_parser("render", help="render one frame of a proxy data set")
    p.add_argument("--dataset", default="mri256")
    p.add_argument("--scale", type=float, default=0.1875)
    p.add_argument("--rx", type=float, default=20.0)
    p.add_argument("--ry", type=float, default=30.0)
    p.add_argument("--rz", type=float, default=0.0)
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes (>1 uses the shared-memory backend)")
    p.add_argument("--kernel", default="block", choices=["scanline", "block"],
                   help="compositing kernel (scanline = instrumented reference)")
    p.add_argument("--frames", type=int, default=1,
                   help="render an animation of this many frames through a "
                        "persistent worker pool (rotating by --ry-step)")
    p.add_argument("--ry-step", type=float, default=3.0,
                   help="per-frame y-rotation increment for --frames > 1")
    p.add_argument("--profile-period", type=int, default=5,
                   help="re-profile every k frames and balance partitions "
                        "from the measured per-scanline costs (paper "
                        "section 4.2-4.3); 0 = uniform split")
    p.add_argument("--out", default=None, help="save image arrays to .npz")

    p = sub.add_parser("speedup", help="old-vs-new speedup curve on one machine")
    p.add_argument("--dataset", default="mri512")
    p.add_argument("--machine", default="simulator",
                   choices=["dash", "challenge", "simulator", "origin2000"])
    p.add_argument("--scale", type=float, default=0.1875)
    p.add_argument("--procs", default="1,2,4,8,16")

    args = parser.parse_args(argv)
    return {"info": _cmd_info, "render": _cmd_render, "speedup": _cmd_speedup}[
        args.command
    ](args)


if __name__ == "__main__":
    sys.exit(main())
