"""Command-line interface: render volumes and run paper experiments.

Examples::

    python -m repro.cli render --dataset mri256 --scale 0.2 --out brain.npz
    python -m repro.cli speedup --dataset mri512 --machine simulator
    python -m repro.cli info
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .datasets import PAPER_DATASETS
    from .memsim import MACHINES

    print(f"repro {__version__} — parallel shear-warp volume rendering "
          "(Jiang & Singh, PPoPP 1997)")
    print("\ndata sets (paper resolutions):")
    for name, spec in PAPER_DATASETS.items():
        print(f"  {name:8s} {spec.modality.upper():3s} {spec.paper_shape}")
    print("\nmodeled platforms:")
    for name, factory in MACHINES.items():
        m = factory()
        print(f"  {name:12s} {m.cache_bytes // 1024:5d} KB cache, "
              f"{m.line_bytes:3d} B lines, "
              f"{'bus' if m.centralized else 'NUMA'}, "
              f"max {m.max_procs} procs")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .parallel.mp_backend import MPPoolError

    try:
        return _run_render(args)
    except MPPoolError as exc:
        # Typed pool failures (FrameFailed, FrameTimeout, WorkerDied,
        # ServerBusy, ...) exit non-zero with the error *name* — the
        # contract scripts and the serve layer's operators key on.  The
        # pool context managers have already torn down and unlinked
        # every shm segment by the time the error propagates here.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _run_render(args: argparse.Namespace) -> int:
    import time

    from .analysis.harness import get_renderer
    from .render.fast import render_fast

    from .parallel.mp_backend import DEFAULT_STEAL_CHUNK, PoolConfig

    frames = max(1, args.frames)
    tracing = bool(args.trace_out)
    if args.steal_chunk is None:
        args.steal_chunk = DEFAULT_STEAL_CHUNK
    # One PoolConfig drives both parallel paths (PoolConfig is the
    # canonical pool API; the per-call kwargs are a legacy shim).
    cfg = PoolConfig(
        n_procs=max(1, args.procs),
        kernel=args.kernel,
        profile_period=args.profile_period,
        stealing=args.stealing == "on",
        steal_chunk=args.steal_chunk,
        trace=tracing,
        timeout_s=args.timeout_s,
        degrade_to_serial=args.degrade == "on",
        backend=args.backend,
        doorbell=args.doorbell == "on",
        pipeline=args.batch == "on",
        shards=max(1, args.shards),
        **({} if args.max_retries is None else
           {"max_retries": args.max_retries}),
    )
    if args.movie:
        return _run_movie(args, cfg, frames)
    renderer = get_renderer(args.dataset, args.scale)
    view = renderer.view_from_angles(args.rx, args.ry, args.rz)
    fault_counters = None
    t0 = time.perf_counter()
    if frames > 1 or cfg.shards > 1:
        # Animation through a persistent pool: this is the path where
        # --profile-period matters (profiles measured on one frame
        # balance the partitions of the following frames).  --batch on
        # (the default) submits the whole animation as one batch per
        # worker; --backend picks processes or threads; --shards > 1
        # opens a sharded fleet of pools merged sort-last (the facade
        # dispatches on cfg.shards — same pool API either way).
        from . import open_pool

        views = [renderer.view_from_angles(args.rx, args.ry + i * args.ry_step,
                                           args.rz)
                 for i in range(frames)]
        with open_pool(renderer, config=cfg) as pool:
            results = pool.render_animation(views)
            fault_counters = pool.fault_counters()
            if tracing:
                pool.export_chrome_trace(args.trace_out,
                                         metadata={"dataset": args.dataset,
                                                   "scale": args.scale})
        result = results[-1]
        split = (f"profile-balanced k={args.profile_period}"
                 if args.profile_period > 0 else "uniform split")
        steals = sum(r.steals for r in results)
        steal_rows = sum(r.steal_rows for r in results)
        dyn = (f"stealing chunk={args.steal_chunk} "
               f"({steals} steals, {steal_rows} rows)"
               if cfg.stealing and args.procs > 1 else "no stealing")
        fleet = (f"{cfg.shards} shards x {max(1, args.procs)} procs"
                 if cfg.shards > 1 else f"{max(1, args.procs)} procs")
        how = (f"{frames} frames, {fleet}, "
               f"{args.backend} backend, {args.kernel} kernel, "
               f"{'batched' if cfg.pipeline else 'per-frame'}, {split}, {dyn}")
    elif args.procs > 1:
        from .obs import export_chrome_trace

        if cfg.backend == "thread":
            from .parallel.thread_backend import (
                render_parallel_threads as _render_one,
            )
        else:
            from .parallel.mp_backend import render_parallel_mp as _render_one

        result = _render_one(renderer, view, config=cfg)
        if tracing:
            export_chrome_trace(
                args.trace_out,
                [result.timeline] if result.timeline is not None else [],
                metadata={"dataset": args.dataset, "scale": args.scale,
                          "n_procs": args.procs, "kernel": args.kernel},
            )
        how = f"{args.procs} procs, {args.backend} backend, {args.kernel} kernel"
    else:
        recorder = None
        if tracing:
            from .obs import SpanRecorder

            recorder = SpanRecorder.in_memory()
        if args.kernel == "scanline":
            result = renderer.render(view, recorder=recorder)
            how = "serial, scanline kernel"
        else:
            result = render_fast(renderer, view, recorder=recorder)
            how = "serial, block kernel"
        if tracing:
            from .obs import (RingReader, assemble_timelines,
                              export_chrome_trace)

            reader = RingReader(recorder.cursor, recorder.records, pid=0)
            export_chrome_trace(
                args.trace_out, assemble_timelines([reader]),
                metadata={"dataset": args.dataset, "scale": args.scale,
                          "n_procs": 1, "kernel": args.kernel},
                process_name="repro serial render",
            )
    dt = (time.perf_counter() - t0) / frames
    print(f"rendered {args.dataset} proxy {renderer.shape} -> "
          f"final image {result.final.shape}, "
          f"alpha mass {result.final.alpha.sum():.0f} "
          f"({how}, {dt * 1e3:.1f} ms/frame)")
    if fault_counters and any(fault_counters.values()):
        print("pool recovery: "
              + ", ".join(f"{k}={v}" for k, v in sorted(fault_counters.items())))
    if tracing:
        print(f"wrote Chrome trace to {args.trace_out} "
              "(load in Perfetto or chrome://tracing)")
    if args.out:
        np.savez_compressed(args.out, color=result.final.color,
                            alpha=result.final.alpha)
        print(f"saved image arrays to {args.out}")
    return 0


def _run_movie(args: argparse.Namespace, cfg, frames: int) -> int:
    """``repro render --movie``: the stage-overlapped movie pipeline.

    Renders a rotation sweep over the time-varying ``beating_heart``
    phantom (or a static registry data set, frozen in time) through
    whatever backend ``cfg`` selects — mp, thread, or a shard fleet —
    and encodes a real PNG/NPZ image sequence in the parent while the
    workers composite ahead.
    """
    import json

    from . import open_pool
    from .movie import MoviePipeline, movie_frame_specs

    timesteps = max(1, args.timesteps)
    if args.dataset == "beating_heart":
        from .movie import beating_heart_renderer

        renderer = beating_heart_renderer(args.scale, timesteps=timesteps)
    else:
        from .analysis.harness import get_renderer

        renderer = get_renderer(args.dataset, args.scale)
    out_dir = args.movie_out or "movie_frames"
    specs = movie_frame_specs(
        renderer, frames, rot_x=args.rx, rot_y=args.ry, rot_z=args.rz,
        step_y=args.ry_step,
    )
    with open_pool(renderer, config=cfg) as pool:
        pipe = MoviePipeline(pool, out_dir, fmt=args.movie_format,
                             trace=bool(args.trace_out))
        manifest = pipe.run(specs)
        if args.trace_out:
            pipe.export_chrome_trace(
                args.trace_out,
                metadata={"dataset": args.dataset, "scale": args.scale},
            )
        if args.metrics_out:
            with open(args.metrics_out, "w") as f:
                json.dump(pipe.metrics_snapshot(), f, indent=2, sort_keys=True)
        fault_counters = pool.fault_counters()
    ov = manifest["stage_overlap"]
    n_steps = getattr(renderer, "n_timesteps", 1)
    fleet = (f"{cfg.shards} shards x {cfg.n_procs} procs"
             if cfg.shards > 1 else f"{cfg.n_procs} procs")
    print(f"movie: {manifest['n_frames']} frames over {n_steps} timestep(s) "
          f"-> {out_dir}/ ({args.movie_format} sequence, {fleet}, "
          f"{args.backend} backend)")
    print(f"stage overlap: encode {ov['encode_s'] * 1e3:.1f} ms total, "
          f"{ov['overlapped_encode_s'] * 1e3:.1f} ms of it while later "
          f"frames were in flight; parent blocked in result() "
          f"{ov['wait_s'] * 1e3:.1f} ms; wall {ov['wall_s']:.3f} s")
    if fault_counters and any(fault_counters.values()):
        print("pool recovery: "
              + ", ".join(f"{k}={v}" for k, v in sorted(fault_counters.items())))
    if args.trace_out:
        print(f"wrote Chrome trace to {args.trace_out} "
              "(load in Perfetto or chrome://tracing)")
    if args.metrics_out:
        print(f"wrote metrics snapshot to {args.metrics_out} "
              "(render with `repro stats`)")
    return 0


def _print_metrics_snapshot(path: str, snap: dict) -> int:
    """Render a ``repro serve --metrics-out`` snapshot (serve + pool
    counters).  Counters print as ``name=value`` so scripts and CI can
    grep e.g. ``serve/coalesced=[1-9]`` the same way they grep
    ``pool/batch_frames=`` off trace summaries."""
    cfg = snap.get("config") or {}
    desc = ", ".join(f"{k}={v}" for k, v in sorted(cfg.items()))
    kind = snap.get("kind", "metrics")
    print(f"{path}: {kind} snapshot" + (f" ({desc})" if desc else ""))
    histograms = snap.get("histograms") or {}
    if histograms:
        rows = [
            (name, s["count"], s["total"] * 1e3, s["mean"] * 1e3,
             s["p50"] * 1e3, s["p90"] * 1e3, s["max"] * 1e3)
            for name, s in sorted(histograms.items())
        ]
        name_w = max(len("histogram"),
                     *(len(name) for name in histograms)) + 2
        print("\nhistograms (ms):")
        header = "histogram".ljust(name_w) + "".join(
            h.rjust(10) for h in ("count", "total", "mean", "p50", "p90", "max")
        )
        print(header)
        print("-" * len(header))
        for name, count, total, mean, p50, p90, mx in rows:
            print(name.ljust(name_w)
                  + f"{count:10d}" + "".join(
                      f"{v:10.2f}" for v in (total, mean, p50, p90, mx)))
    counters = snap.get("counters") or {}
    if counters:
        print("\ncounters:")
        for name, value in sorted(counters.items()):
            print(f"{name}={value:g}")
    gauges = snap.get("gauges") or {}
    if gauges:
        print("\ngauges:")
        for name, g in sorted(gauges.items()):
            print(f"{name}: last {g['value']:g}, max {g['max']:g}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .analysis.breakdown import format_table
    from .obs import (busy_spread, load_chrome_trace, summarize_trace,
                      validate_chrome_trace)

    # Two file kinds share this command: Chrome traces from render
    # --trace-out, and metrics snapshots from `repro serve
    # --metrics-out` / the protocol's stats op (serve counters live
    # there — a service has no single trace).
    with open(args.trace) as f:
        payload = json.load(f)
    if "traceEvents" not in payload and (
        "counters" in payload or "histograms" in payload
    ):
        return _print_metrics_snapshot(args.trace, payload)

    trace = load_chrome_trace(args.trace)
    problems = validate_chrome_trace(trace)
    if problems:
        print(f"{args.trace}: INVALID trace ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    summary = summarize_trace(trace)
    meta = trace.get("otherData", {})
    desc = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    print(f"{args.trace}: valid, {summary['n_tracks']} worker track(s)"
          + (f" ({desc})" if desc else ""))
    rows = [
        (name, st["count"], st["total_s"] * 1e3, st["mean_s"] * 1e3,
         st["max_s"] * 1e3)
        for name, st in sorted(summary["phases"].items(),
                               key=lambda kv: -kv[1]["total_s"])
    ]
    print("\nper-phase spans (ms):")
    print(format_table(["phase", "count", "total", "mean", "max"], rows))
    counters = summary.get("counters") or {}
    if counters:
        print("\ncounters (summed over workers and frames):")
        print(format_table(
            ["counter", "total"],
            [(name, int(total)) for name, total in sorted(counters.items())],
            width=14,
        ))
    frames = summary["frames"]
    phases = summary["phases"]
    n_frames = max(1, len(frames))
    comp_s = phases.get("composite", {}).get("total_s", 0.0)
    over_phases = [p for p in ("wait", "barrier", "doorbell", "dispatch")
                   if p in phases]
    if not over_phases:
        # Serial traces and doorbell=off runs record no dispatch-side
        # spans at all — the split below would be 0-vs-0 noise.
        print("\ndispatch overhead: n/a (no wait/barrier/doorbell/dispatch "
              "spans in this trace)")
    else:
        over_s = sum(phases[p]["total_s"] for p in over_phases)
        # The dispatch tax the batching/doorbell work attacks: time spent
        # waiting on queues/barriers/buffer-release gates plus parent-side
        # dispatch, against actual compositing time.
        ratio = (f"{over_s / comp_s:.2f}x composite" if comp_s > 0
                 else "no composite spans")
        print(f"\ndispatch overhead (wait+barrier+doorbell+dispatch): "
              f"{over_s / n_frames * 1e3:.2f} ms vs composite "
              f"{comp_s / n_frames * 1e3:.2f} ms per frame ({ratio}; "
              f"pool/batch_frames={meta.get('batch_frames', 0)})")
    if frames:
        spreads = [busy_spread(list(busy.values()))
                   for busy in frames.values() if busy]
        mean_spread = sum(spreads) / len(spreads) if spreads else 0.0
        print(f"\nload imbalance (busy-spread, (max-min)/mean over workers): "
              f"mean {mean_spread:.3f} over {len(frames)} frame(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .parallel.mp_backend import PoolConfig
    from .serve import ServeConfig, run_server

    cfg = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        cache_frames=args.cache_frames,
        default_dataset=args.dataset,
        default_scale=args.scale,
        idle_pool_s=args.idle_pool_s,
        pool=PoolConfig(n_procs=max(1, args.procs), backend=args.backend,
                        kernel=args.kernel, profile_period=0,
                        shards=max(1, args.shards)),
    )

    def ready(address: tuple[str, int]) -> None:
        host, port = address
        # One parseable line scripts can wait on before connecting.
        print(f"repro serve listening on {host}:{port} "
              f"(procs={cfg.pool.n_procs}, backend={cfg.pool.backend}, "
              f"max_inflight={cfg.max_inflight}, "
              f"cache_frames={cfg.cache_frames})", flush=True)

    try:
        asyncio.run(run_server(cfg, metrics_out=args.metrics_out, ready=ready))
    except KeyboardInterrupt:
        return 130
    if args.metrics_out:
        print(f"wrote metrics snapshot to {args.metrics_out} "
              "(summarize with `repro stats`)")
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .analysis.breakdown import format_table
    from .analysis.harness import speedup_curve

    procs = tuple(int(p) for p in args.procs.split(","))
    curves = {}
    for alg in ("old", "new"):
        pts = speedup_curve(args.dataset, alg, args.machine,
                            procs=procs, scale=args.scale)
        curves[alg] = {p.n_procs: p.speedup for p in pts}
    rows = [(p, curves["old"].get(p, float("nan")),
             curves["new"].get(p, float("nan")))
            for p in procs if p in curves["old"]]
    print(f"{args.dataset} on {args.machine} (scale {args.scale}):")
    print(format_table(["P", "old", "new"], rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list data sets and platforms")

    p = sub.add_parser("render", help="render one frame of a proxy data set")
    p.add_argument("--dataset", default="mri256")
    p.add_argument("--scale", type=float, default=0.1875)
    p.add_argument("--rx", type=float, default=20.0)
    p.add_argument("--ry", type=float, default=30.0)
    p.add_argument("--rz", type=float, default=0.0)
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes (>1 uses the shared-memory backend)")
    p.add_argument("--kernel", default="block", choices=["scanline", "block"],
                   help="compositing kernel (scanline = instrumented reference)")
    p.add_argument("--frames", type=int, default=1,
                   help="render an animation of this many frames through a "
                        "persistent worker pool (rotating by --ry-step)")
    p.add_argument("--ry-step", type=float, default=3.0,
                   help="per-frame y-rotation increment for --frames > 1")
    p.add_argument("--profile-period", type=int, default=5,
                   help="re-profile every k frames and balance partitions "
                        "from the measured per-scanline costs (paper "
                        "section 4.2-4.3); 0 = uniform split")
    p.add_argument("--stealing", choices=["on", "off"], default="on",
                   help="chunked task stealing between workers on top of "
                        "the static partition (paper section 4.4)")
    p.add_argument("--steal-chunk", type=int, default=None, metavar="N",
                   help="scanlines per claim/steal (default 8)")
    p.add_argument("--timeout-s", type=float, default=None, metavar="S",
                   help="per-frame deadline: a frame still incomplete after "
                        "S seconds is treated as a fault and recovered "
                        "(default: no deadline; dead workers are detected "
                        "either way)")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="re-dispatch a lost frame up to N times after a "
                        "worker death/hang/exception (default 2)")
    p.add_argument("--degrade", choices=["on", "off"], default="on",
                   help="after retries are exhausted, render the frame "
                        "serially in the parent (bit-identical) instead of "
                        "failing it")
    p.add_argument("--backend", choices=["mp", "thread"], default="mp",
                   help="parallel backend: forked worker processes over "
                        "shared memory (mp) or a no-copy thread pool "
                        "exploiting numpy's GIL release (thread); "
                        "bit-identical images either way")
    p.add_argument("--batch", choices=["on", "off"], default="on",
                   help="submit a --frames animation as one batch per "
                        "worker (pipelined, amortized dispatch) instead "
                        "of per-frame submit/result round-trips")
    p.add_argument("--doorbell", choices=["on", "off"], default="on",
                   help="mp backend: report frame completion through "
                        "shared-memory cells instead of pickled "
                        "done-queue messages")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="split the intermediate image into N contiguous "
                        "scanline shards, each rendered by its own pool "
                        "of --procs workers and merged sort-last "
                        "(bit-identical to --shards 1)")
    p.add_argument("--movie", action="store_true",
                   help="render --frames as a movie: stream timesteps of a "
                        "time-varying volume through the pool and encode a "
                        "PNG/NPZ image sequence in the parent while workers "
                        "composite ahead (frame i uses timestep i mod "
                        "--timesteps)")
    p.add_argument("--timesteps", type=int, default=4, metavar="T",
                   help="timesteps of the beating_heart phantom "
                        "(--movie with --dataset beating_heart; default 4)")
    p.add_argument("--movie-out", default=None, metavar="DIR",
                   help="directory for the movie image sequence "
                        "(default movie_frames/)")
    p.add_argument("--movie-format", default="png", choices=["png", "npz"],
                   help="movie frame format: png (grayscale color plane) or "
                        "npz (lossless float32 color+alpha)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="with --movie: write the pipeline+pool metrics "
                        "snapshot as JSON (render with `repro stats`)")
    p.add_argument("--out", default=None, help="save image arrays to .npz")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Chrome trace-event JSON of per-worker phase "
                        "spans (open in Perfetto or chrome://tracing)")

    p = sub.add_parser("stats", help="summarize a trace written by render "
                                     "--trace-out or a metrics snapshot "
                                     "written by serve --metrics-out")
    p.add_argument("trace", help="path to a Chrome trace-event JSON file "
                                 "or a repro-metrics snapshot JSON file")

    p = sub.add_parser("serve", help="serve renders to concurrent clients "
                                     "over a length-prefixed JSON/TCP "
                                     "protocol (asyncio front end over the "
                                     "worker pools)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks an ephemeral port (printed on start)")
    p.add_argument("--dataset", default="mri128",
                   help="default data set for requests that omit one")
    p.add_argument("--scale", type=float, default=0.12,
                   help="default proxy scale for requests that omit one")
    p.add_argument("--procs", type=int, default=2,
                   help="worker count of each render pool")
    p.add_argument("--backend", choices=["mp", "thread"], default="mp")
    p.add_argument("--kernel", default="block", choices=["scanline", "block"],
                   help="default compositing kernel")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="admission bound: render jobs in flight beyond "
                        "this are rejected with ServerBusy")
    p.add_argument("--cache-frames", type=int, default=256,
                   help="whole-frame LRU capacity (frames)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="render through N-shard pool fleets instead of "
                        "single pools (sort-last merged, bit-identical)")
    p.add_argument("--idle-pool-s", type=float, default=None, metavar="S",
                   help="evict (close + unlink) a render pool after S "
                        "seconds with no renders; the next request for "
                        "its dataset re-creates it (default: never)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write a metrics snapshot JSON on shutdown "
                        "(summarize with `repro stats PATH`)")

    p = sub.add_parser("speedup", help="old-vs-new speedup curve on one machine")
    p.add_argument("--dataset", default="mri512")
    p.add_argument("--machine", default="simulator",
                   choices=["dash", "challenge", "simulator", "origin2000"])
    p.add_argument("--scale", type=float, default=0.1875)
    p.add_argument("--procs", default="1,2,4,8,16")

    args = parser.parse_args(argv)
    return {"info": _cmd_info, "render": _cmd_render, "stats": _cmd_stats,
            "serve": _cmd_serve, "speedup": _cmd_speedup}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
