"""The paper's contribution: old vs new parallel shear-warp partitioning."""

from .frame import COMPOSITE, WARP, ParallelFrame, TaskRecord
from .new_renderer import DEFAULT_STEAL_CHUNK, NewParallelShearWarp
from .old_renderer import DEFAULT_CHUNK, DEFAULT_TILE, OldParallelShearWarp
from .partition import (
    contiguous_partition,
    interleaved_chunks,
    line_ownership,
    partition_sizes,
    round_robin_tiles,
    uniform_contiguous_partition,
)
from .profiling import (
    PROFILING_OVERHEAD,
    ProfileSchedule,
    ScanlineProfile,
    scanline_cost,
)

__all__ = [
    "COMPOSITE",
    "WARP",
    "ParallelFrame",
    "TaskRecord",
    "DEFAULT_STEAL_CHUNK",
    "NewParallelShearWarp",
    "DEFAULT_CHUNK",
    "DEFAULT_TILE",
    "OldParallelShearWarp",
    "contiguous_partition",
    "interleaved_chunks",
    "line_ownership",
    "partition_sizes",
    "round_robin_tiles",
    "uniform_contiguous_partition",
    "PROFILING_OVERHEAD",
    "ProfileSchedule",
    "ScanlineProfile",
    "scanline_cost",
]
