"""Shared per-frame task bookkeeping for the parallel renderers.

Both parallel algorithms decompose a frame into **tasks**; each task is
executed once (deterministically — a task's cost and memory trace depend
only on the data, not on which processor runs it) and recorded as a
:class:`TaskRecord`.  The execution model then schedules the records on
P logical processors and feeds the per-processor trace streams to the
memory-system simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..render.image import FinalImage, IntermediateImage
from ..render.instrument import Region, WorkCounters
from ..transforms.factorization import ShearWarpFactorization
from ..volume.rle import BYTES_PER_RUN, BYTES_PER_VOXEL, RLEVolume

__all__ = ["TaskRecord", "ParallelFrame", "region_sizes", "COMPOSITE", "WARP"]

COMPOSITE = "composite"
WARP = "warp"


@dataclass
class TaskRecord:
    """One executed task: its cost, op counts, and memory trace."""

    uid: int
    phase: str
    pid0: int  # initially assigned processor
    cost: float  # scalar cost in cycle units (busy time)
    counters: WorkCounters
    #: Trace segments ``(key, records)``: compositing tasks have one
    #: segment per slice (key = slice index, in front-to-back visit
    #: order); warp tasks a single key-0 segment.  Records are
    #: ``(region, start_byte, n_bytes, is_write)``.
    trace: list[tuple[int, list[tuple[str, int, int, bool]]]]
    meta: Any = None  # scanline index, tile rectangle, ...

    @property
    def trace_bytes(self) -> int:
        """Total bytes touched — a machine-independent traffic measure."""
        return sum(r[2] for _, recs in self.trace for r in recs)

    @property
    def trace_line_touches(self) -> int:
        """Estimated cache-line touches: every range record starts a new
        line plus one per 64 bytes.  Distinguishes scanlines with many
        short scattered runs (high miss-per-byte) from dense streaming —
        the quantity per-scanline *time* estimates should scale with.
        """
        return sum(1 + r[2] // 64 for _, recs in self.trace for r in recs)

    def segment(self, key: int) -> list[tuple[str, int, int, bool]]:
        """Records of one segment (empty if the task skipped that slice)."""
        for k, recs in self.trace:
            if k == key:
                return recs
        return []


def region_sizes(
    rle: RLEVolume, img: IntermediateImage, final: FinalImage
) -> dict[str, int]:
    """Byte sizes of every traced data structure for this frame."""
    from ..render.image import BYTES_PER_PIXEL

    return {
        Region.RUN_TABLE: int(rle.run_lengths.size) * BYTES_PER_RUN,
        Region.VOXEL_DATA: int(rle.voxel_opacity.size) * BYTES_PER_VOXEL,
        Region.INTERMEDIATE: img.n_v * img.n_u * BYTES_PER_PIXEL,
        Region.FINAL: final.ny * final.nx * BYTES_PER_PIXEL,
        Region.PROFILE: img.n_v * 8,
    }


@dataclass
class ParallelFrame:
    """Everything recorded while rendering one frame with P processors."""

    algorithm: str  # "old" | "new"
    n_procs: int
    fact: ShearWarpFactorization
    intermediate: IntermediateImage
    final: FinalImage
    composite_units: dict[int, TaskRecord]
    composite_queues: list[list[int]]  # initial per-proc queues (uids)
    warp_tasks: dict[int, TaskRecord]
    warp_queues: list[list[int]]
    region_sizes: dict[str, int]
    #: Slice indices in front-to-back order: the global interleaving key
    #: order for slice-major replay of compositing traces.
    slice_order: tuple[int, ...]
    steal_chunk: int  # stealing granularity for the compositing phase
    composite_stealing: bool = True  # task stealing in the compositing phase
    warp_stealing: bool = False  # neither algorithm steals in the warp
    profiled: bool = False  # did this frame carry profiling overhead?
    profile: Any = None  # ScanlineProfile measured this frame (if any)
    boundaries: np.ndarray | None = None  # new algorithm's partition
    #: Compositing kernel the frame was recorded with.  "scanline" tasks
    #: carry memory traces and can be simulated; "block" frames are for
    #: wall-clock work (costs and counters only, empty traces).
    kernel: str = "scanline"

    @property
    def composite_cost_total(self) -> float:
        return sum(t.cost for t in self.composite_units.values())

    @property
    def warp_cost_total(self) -> float:
        return sum(t.cost for t in self.warp_tasks.values())

    def counters_total(self) -> WorkCounters:
        total = WorkCounters()
        for t in self.composite_units.values():
            total.merge(t.counters)
        for t in self.warp_tasks.values():
            total.merge(t.counters)
        return total
