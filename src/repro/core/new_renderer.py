"""The NEW parallel shear-warp algorithm (section 4 — the contribution).

Compositing: each processor receives one *contiguous* block of
intermediate-image scanlines, sized predictively from the per-scanline
cost profile of a previous frame (cumulative prefix + boundary search);
only the non-empty region of the image is composited (and profiled).
Idle processors steal chunks of scanlines — the chunk size is decoupled
from the initial assignment (section 4.4; single-scanline stealing blew
up synchronization cost ~10x).

Warp: the *same* intermediate-image partition is reused — each processor
warps exactly the scanlines it composited, so the data is already in its
cache and the inter-phase communication (and, on SVM, the inter-phase
barrier) disappears.  The scanline pair at each partition boundary is
assigned wholly to the neighbor with fewer lines, eliminating
final-image write sharing without locks (section 4.5).  No stealing in
the warp.
"""

from __future__ import annotations

import numpy as np

from ..render.block import BlockRowCounters, composite_scanline_block
from ..render.compositing import composite_image_scanline, nonempty_scanline_bounds
from ..render.image import FinalImage, IntermediateImage
from ..render.instrument import ListTraceSink, Region, SegmentedTraceSink, WorkCounters
from ..render.serial import ShearWarpRenderer
from ..render.warp import (
    final_pixel_source_lines,
    warp_coeffs,
    warp_rows_by_pid,
    warp_scanline,
)
from .frame import COMPOSITE, WARP, ParallelFrame, TaskRecord, region_sizes
from .old_renderer import warp_line_cost_estimate, warp_tile_cost
from .partition import contiguous_partition, line_ownership, uniform_contiguous_partition
from .profiling import (
    NOMINAL_MEM_PER_LINE_TOUCH,
    PROFILING_OVERHEAD,
    ProfileSchedule,
    ScanlineProfile,
    scanline_cost,
)

__all__ = ["NewParallelShearWarp", "DEFAULT_STEAL_CHUNK"]

#: Default stealing granularity (scanlines per steal); the paper sizes it
#: from the data set, processor count and cache line size.
DEFAULT_STEAL_CHUNK = 2


class NewParallelShearWarp:
    """Frame factory for the paper's improved parallel algorithm.

    Stateful across frames: the profile measured on frame ``f`` (when the
    :class:`ProfileSchedule` says so) drives the partition of frames
    ``f+1 ...`` until the next profiled frame.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        n_procs: int,
        steal_chunk: int = DEFAULT_STEAL_CHUNK,
        profile_schedule: ProfileSchedule | None = None,
        mem_per_line_touch: float = NOMINAL_MEM_PER_LINE_TOUCH,
        partition: str = "profile",
        stealing: bool = True,
        kernel: str = "scanline",
        recorder=None,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one processor")
        if partition not in ("profile", "uniform"):
            raise ValueError("partition must be 'profile' or 'uniform'")
        if kernel not in ("scanline", "block"):
            raise ValueError("kernel must be 'scanline' or 'block'")
        # kernel='block' composites each processor's partition through
        # the vectorized block kernel: identical image, identical work
        # counters and costs, but no memory traces (frames can feed the
        # profile-driven partitioner and cost analyses, not the memory
        # simulator).
        self.kernel = kernel
        # Ablation knobs: 'uniform' disables the predictive profile
        # (equal-count contiguous split, no profiling overhead);
        # stealing=False isolates what dynamic stealing contributes.
        self.partition_mode = partition
        self.stealing = stealing
        self.renderer = renderer
        self.n_procs = n_procs
        self.steal_chunk = steal_chunk
        self.schedule = profile_schedule or ProfileSchedule(period=5)
        # Traffic-to-time coefficient of the machine the renderer "runs
        # on": the paper's profile measures elapsed per-scanline time
        # natively; our machine-independent op counts are converted with
        # this (see MachineConfig.mem_per_line_touch).
        self.mem_per_line_touch = mem_per_line_touch
        self.last_profile: ScanlineProfile | None = None
        # Optional repro.obs.SpanRecorder: wall-clock phase spans of the
        # recording pass itself (frame id = frames rendered so far).
        self.recorder = recorder
        self._obs_frame = 0

    def _partition(self, v_lo: int, v_hi: int, warp_line_cost: float) -> np.ndarray:
        """Contiguous boundaries for the current frame.

        The partition balances each processor's whole frame — measured
        compositing profile plus the (roughly uniform) per-scanline warp
        cost.  Since the new algorithm has no barrier between the
        phases, a processor's completion time is the *sum* of its two
        phases, so that sum is what the split equalizes.  (At the
        paper's 26-scanlines-per-processor granularity the warp term is
        negligible, matching their compositing-only balancing; at proxy
        granularity the end processors would otherwise collect many
        cheap-to-composite but full-width-to-warp scanlines.)
        """
        prof = self.last_profile
        if prof is None or prof.total <= 0:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        prof = prof.trim_empty()
        if len(prof.costs) < self.n_procs:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        # The profile is in the previous frame's scanline coordinates; the
        # viewpoint moves a few degrees between frames, so using the same
        # indices is the paper's prediction step.  Clamp to this frame's
        # non-empty region.
        bounds = contiguous_partition(
            prof.costs + warp_line_cost, self.n_procs, v_lo=prof.v_lo
        )
        bounds = np.clip(bounds, v_lo, v_hi)
        bounds[0], bounds[-1] = v_lo, v_hi
        for p in range(1, self.n_procs + 1):
            bounds[p] = max(bounds[p], bounds[p - 1])
        return bounds

    def render_frame(self, view: np.ndarray) -> ParallelFrame:
        """Render one frame and advance the profile schedule."""
        obs, obs_frame = self.recorder, self._obs_frame
        self._obs_frame += 1
        fact = self.renderer.factorize_view(view)
        if obs is not None:
            t0 = obs.now()
        rle = self.renderer.rle_for(fact)
        if obs is not None:
            t1 = obs.now()
            obs.span(obs_frame, "decode", t0, t1)
        img = IntermediateImage(fact.intermediate_shape)
        final = FinalImage(fact.final_shape)

        # First optimization: find the non-empty scanline region up front.
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
        profiled = (self.partition_mode == "profile"
                    and (self.schedule.should_profile() or self.last_profile is None))
        if self.partition_mode == "uniform":
            self.last_profile = None
        boundaries = self._partition(
            v_lo, v_hi, warp_line_cost_estimate(img.n_u, self.mem_per_line_touch)
        )

        # ---- compositing: contiguous per-processor scanline blocks ----
        composite_units: dict[int, TaskRecord] = {}
        composite_queues: list[list[int]] = [[] for _ in range(self.n_procs)]
        costs = np.zeros(max(0, v_hi - v_lo), dtype=np.float64)
        for pid in range(self.n_procs):
            lo, hi = int(boundaries[pid]), int(boundaries[pid + 1])
            block_counters: BlockRowCounters | None = None
            if self.kernel == "block" and hi > lo:
                # One vectorized pass over the whole partition; the
                # per-row counters reproduce what the scanline loop
                # would have recorded (the tasks just carry no traces).
                block_counters = BlockRowCounters(lo, hi)
                composite_scanline_block(img, lo, hi, rle, fact,
                                         row_counters=block_counters)
            for v in range(lo, hi):
                if block_counters is not None:
                    sink = None
                    counters = block_counters.row(v)
                else:
                    sink = SegmentedTraceSink()
                    counters = WorkCounters()
                    composite_image_scanline(img, v, rle, fact,
                                             counters=counters, trace=sink)
                cost = scanline_cost(counters)
                if profiled:
                    # Profiling instructions inflate compositing by 10-15 %
                    # and write the per-scanline profile entry.
                    counters.profile_ops += int(cost * PROFILING_OVERHEAD)
                    cost *= 1.0 + PROFILING_OVERHEAD
                    if sink is not None:
                        sink.access(Region.PROFILE, v * 8, 8, write=True)
                rec = TaskRecord(
                    uid=v,
                    phase=COMPOSITE,
                    pid0=pid,
                    cost=cost,
                    counters=counters,
                    trace=sink.take_segments() if sink is not None else [],
                    meta=v,
                )
                # The profile predicts per-scanline *time*: instructions
                # plus a nominal memory term for the cache lines touched.
                costs[v - v_lo] = (
                    scanline_cost(counters)
                    + self.mem_per_line_touch * rec.trace_line_touches
                )
                composite_units[v] = rec
                composite_queues[pid].append(v)

        if obs is not None:
            t2 = obs.now()
            obs.span(obs_frame, "composite", t1, t2)
            obs.count(obs_frame, "rows", max(0, v_hi - v_lo))

        profile = None
        if profiled:
            profile = ScanlineProfile(v_lo, costs)
            self.last_profile = profile
        if obs is not None:
            t3 = obs.now()
            if profiled:
                # The cost collapse is fused into the scanline loop above;
                # this span marks the profile *assembly* (paper's write-out).
                obs.span(obs_frame, "profile", t2, t3)

        # ---- warp: same partition, boundary-pair ownership ----
        owner = line_ownership(boundaries, img.n_v)
        coeffs = warp_coeffs(fact)
        src_lines = final_pixel_source_lines(final.shape, fact, coeffs=coeffs)
        # Exact row lists: a processor touches final row y only if it
        # owns one of the intermediate scanlines the row samples.
        rows_by_pid = warp_rows_by_pid(src_lines, owner, self.n_procs)
        warp_tasks: dict[int, TaskRecord] = {}
        warp_queues: list[list[int]] = [[] for _ in range(self.n_procs)]
        for pid in range(self.n_procs):
            sink = None if self.kernel == "block" else ListTraceSink()
            counters = WorkCounters()
            for y in rows_by_pid[pid]:
                warp_scanline(final, int(y), img, fact, line_owner=owner,
                              pid=pid, counters=counters, trace=sink,
                              coeffs=coeffs)
            rec = TaskRecord(
                uid=pid,
                phase=WARP,
                pid0=pid,
                cost=warp_tile_cost(counters),
                counters=counters,
                trace=sink.take_segments() if sink is not None else [],
                meta=(int(boundaries[pid]), int(boundaries[pid + 1])),
            )
            warp_tasks[pid] = rec
            warp_queues[pid].append(pid)

        if obs is not None:
            obs.span(obs_frame, "warp", t3, obs.now())

        self.schedule.advance()
        return ParallelFrame(
            algorithm="new",
            n_procs=self.n_procs,
            fact=fact,
            intermediate=img,
            final=final,
            composite_units=composite_units,
            composite_queues=composite_queues,
            warp_tasks=warp_tasks,
            warp_queues=warp_queues,
            region_sizes=region_sizes(rle, img, final),
            slice_order=tuple(int(k) for k in fact.k_front_to_back),
            steal_chunk=self.steal_chunk,
            composite_stealing=self.stealing,
            profiled=profiled,
            profile=profile,
            boundaries=boundaries,
            kernel=self.kernel,
        )
