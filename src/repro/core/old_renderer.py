"""The ORIGINAL parallel shear-warp algorithm (section 3.1).

Compositing: the intermediate image's scanlines are grouped into
fixed-size chunks, dealt round-robin (interleaved) across processors;
idle processors steal chunks.  The whole image is composited "blindly"
from the first scanline to the last (no empty-region optimization).

Warp: the *final* image is divided into fixed-size square tiles, dealt
round-robin; no stealing.  A processor's warp tiles bear no relation to
the intermediate scanlines it composited — the true-sharing
communication at the phase interface that the paper diagnoses as the
scalability bottleneck.
"""

from __future__ import annotations

import numpy as np

from ..render.block import BlockRowCounters, composite_scanline_block
from ..render.compositing import composite_image_scanline
from ..render.image import FinalImage, IntermediateImage
from ..render.instrument import ListTraceSink, SegmentedTraceSink, WorkCounters
from ..render.serial import ShearWarpRenderer
from ..render.warp import warp_coeffs, warp_tile
from .frame import COMPOSITE, WARP, ParallelFrame, TaskRecord, region_sizes
from .partition import interleaved_chunks, round_robin_tiles
from .profiling import scanline_cost

__all__ = ["OldParallelShearWarp", "DEFAULT_CHUNK", "DEFAULT_TILE", "warp_tile_cost"]

#: Default chunk size (scanlines per task).  The paper determines the
#: optimal size empirically per configuration; callers can sweep it.
DEFAULT_CHUNK = 4
#: Default warp tile edge (pixels).
DEFAULT_TILE = 16

# Warp-phase cost weights (cycles per op), calibrated with the
# compositing weights in repro.core.profiling so the warp is ~10 % of
# serial frame time (Figure 2's proportions).
_W_WARP_PIXEL = 10.0
_W_WARP_ROW = 40.0


def warp_tile_cost(c: WorkCounters) -> float:
    """Scalar cost of a warp task from its op counts."""
    return _W_WARP_PIXEL * c.warp_pixels + _W_WARP_ROW * c.loop_iters


def warp_line_cost_estimate(n_u: int, mem_per_line_touch: float | None = None) -> float:
    """A priori warp *time* for one intermediate scanline's worth of
    final pixels.

    Each owned scanline implies roughly one final row of resampled
    pixels, whose bilinear reads touch two intermediate rows (partially
    re-read across adjacent final rows) plus the final-image writes —
    about 48 traffic bytes (3/4 of a 64-byte touch) per pixel on top of
    the per-pixel compute.
    """
    from .profiling import NOMINAL_MEM_PER_LINE_TOUCH

    mem = NOMINAL_MEM_PER_LINE_TOUCH if mem_per_line_touch is None else mem_per_line_touch
    return (_W_WARP_PIXEL + 0.75 * mem) * n_u + _W_WARP_ROW


class OldParallelShearWarp:
    """Frame factory for the original parallel algorithm.

    Produces :class:`ParallelFrame` records; timing comes from
    :mod:`repro.parallel.execution`.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        n_procs: int,
        chunk: int = DEFAULT_CHUNK,
        tile: int = DEFAULT_TILE,
        kernel: str = "scanline",
        recorder=None,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one processor")
        if kernel not in ("scanline", "block"):
            raise ValueError("kernel must be 'scanline' or 'block'")
        self.renderer = renderer
        self.n_procs = n_procs
        self.chunk = chunk
        self.tile = tile
        # kernel='block' composites each chunk through the vectorized
        # block kernel — same image and counters, no memory traces.
        self.kernel = kernel
        # Optional repro.obs.SpanRecorder: wall-clock phase spans of the
        # recording pass itself (frame id = frames rendered so far).
        self.recorder = recorder
        self._obs_frame = 0

    def render_frame(self, view: np.ndarray) -> ParallelFrame:
        """Render one frame, recording per-task costs and traces."""
        obs, obs_frame = self.recorder, self._obs_frame
        self._obs_frame += 1
        fact = self.renderer.factorize_view(view)
        if obs is not None:
            t0 = obs.now()
        rle = self.renderer.rle_for(fact)
        if obs is not None:
            t1 = obs.now()
            obs.span(obs_frame, "decode", t0, t1)
        img = IntermediateImage(fact.intermediate_shape)
        final = FinalImage(fact.final_shape)

        # ---- compositing: every scanline is an atomic unit ----
        n_v = img.n_v
        chunks = interleaved_chunks(0, n_v, self.chunk, self.n_procs)
        composite_units: dict[int, TaskRecord] = {}
        composite_queues: list[list[int]] = [[] for _ in range(self.n_procs)]
        for pid, chunk_list in enumerate(chunks):
            for (lo, hi) in chunk_list:
                block_counters: BlockRowCounters | None = None
                if self.kernel == "block":
                    block_counters = BlockRowCounters(lo, hi)
                    composite_scanline_block(img, lo, hi, rle, fact,
                                             row_counters=block_counters)
                for v in range(lo, hi):
                    if block_counters is not None:
                        counters = block_counters.row(v)
                        segments = []
                    else:
                        sink = SegmentedTraceSink()
                        counters = WorkCounters()
                        composite_image_scanline(img, v, rle, fact,
                                                 counters=counters, trace=sink)
                        segments = sink.take_segments()
                    rec = TaskRecord(
                        uid=v,
                        phase=COMPOSITE,
                        pid0=pid,
                        cost=scanline_cost(counters),
                        counters=counters,
                        trace=segments,
                        meta=v,
                    )
                    composite_units[v] = rec
                    composite_queues[pid].append(v)

        if obs is not None:
            t2 = obs.now()
            obs.span(obs_frame, "composite", t1, t2)
            obs.count(obs_frame, "rows", n_v)

        # ---- warp: round-robin tiles of the final image ----
        tiles = round_robin_tiles(final.shape, self.tile, self.n_procs)
        coeffs = warp_coeffs(fact)  # one 2x2 inverse for the whole frame
        warp_tasks: dict[int, TaskRecord] = {}
        warp_queues: list[list[int]] = [[] for _ in range(self.n_procs)]
        uid = 0
        for pid, tile_list in enumerate(tiles):
            for (y0, y1, x0, x1) in tile_list:
                sink = None if self.kernel == "block" else ListTraceSink()
                counters = WorkCounters()
                warp_tile(final, y0, y1, x0, x1, img, fact,
                          counters=counters, trace=sink, coeffs=coeffs)
                rec = TaskRecord(
                    uid=uid,
                    phase=WARP,
                    pid0=pid,
                    cost=warp_tile_cost(counters),
                    counters=counters,
                    trace=sink.take_segments() if sink is not None else [],
                    meta=(y0, y1, x0, x1),
                )
                warp_tasks[uid] = rec
                warp_queues[pid].append(uid)
                uid += 1

        if obs is not None:
            obs.span(obs_frame, "warp", t2, obs.now())

        return ParallelFrame(
            algorithm="old",
            n_procs=self.n_procs,
            fact=fact,
            intermediate=img,
            final=final,
            composite_units=composite_units,
            composite_queues=composite_queues,
            warp_tasks=warp_tasks,
            warp_queues=warp_queues,
            region_sizes=region_sizes(rle, img, final),
            slice_order=tuple(int(k) for k in fact.k_front_to_back),
            steal_chunk=self.chunk,
            kernel=self.kernel,
        )
