"""Partitioning strategies for the compositing and warp phases.

This module contains both partitioners the paper compares:

* the **old** scheme (Lacroute/Singh): intermediate-image scanlines in
  fixed-size chunks, assigned round-robin (interleaved) across
  processors for the compositing phase; fixed-size square tiles of the
  *final* image, assigned round-robin, for the warp phase;
* the **new** scheme (the paper's contribution): one *contiguous* block
  of intermediate-image scanlines per processor, sized from the
  cumulative per-scanline cost profile of a previous frame by a
  parallel-prefix + binary-search construction (section 4.3), and reused
  identically in the warp phase with the boundary-scanline-pair
  ownership rule of section 4.5.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interleaved_chunks",
    "round_robin_tiles",
    "contiguous_partition",
    "nested_contiguous_partition",
    "uniform_contiguous_partition",
    "line_ownership",
    "partition_sizes",
]


def interleaved_chunks(
    v_lo: int, v_hi: int, chunk: int, n_procs: int
) -> list[list[tuple[int, int]]]:
    """Old scheme: chunks of ``chunk`` scanlines, dealt round-robin.

    Returns, per processor, the list of ``(start, stop)`` scanline
    chunks initially assigned to it.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    if n_procs < 1:
        raise ValueError("need at least one processor")
    out: list[list[tuple[int, int]]] = [[] for _ in range(n_procs)]
    for idx, start in enumerate(range(v_lo, v_hi, chunk)):
        out[idx % n_procs].append((start, min(start + chunk, v_hi)))
    return out


def round_robin_tiles(
    final_shape: tuple[int, int], tile: int, n_procs: int
) -> list[list[tuple[int, int, int, int]]]:
    """Old scheme's warp partition: square tiles dealt round-robin.

    Returns, per processor, a list of ``(y0, y1, x0, x1)`` tiles.
    """
    if tile < 1:
        raise ValueError("tile must be >= 1")
    ny, nx = final_shape
    out: list[list[tuple[int, int, int, int]]] = [[] for _ in range(n_procs)]
    idx = 0
    for y0 in range(0, ny, tile):
        for x0 in range(0, nx, tile):
            out[idx % n_procs].append((y0, min(y0 + tile, ny), x0, min(x0 + tile, nx)))
            idx += 1
    return out


def contiguous_partition(profile: np.ndarray, n_procs: int, v_lo: int = 0) -> np.ndarray:
    """New scheme: profile-balanced contiguous partition boundaries.

    Implements section 4.3: build the cumulative cost curve with a
    (parallel-prefix) scan, split the total area into ``n_procs`` equal
    parts, and binary-search each split point into the cumulative
    array.  ``profile[i]`` is the measured cost of scanline ``v_lo + i``.

    Returns ``boundaries`` of length ``n_procs + 1``: processor ``p``
    owns scanlines ``[boundaries[p], boundaries[p+1])`` (absolute
    scanline indices).  Boundaries are strictly increasing whenever
    enough scanlines exist, so no processor is starved.

    ``profile`` may be any real dtype — integer op counts or
    float32/float64 calibrated seconds; costs are accumulated in
    float64, so fractional costs are honored exactly (no silent int
    truncation) and the same split falls out whether a cost arrives as
    ``3`` or ``3.0``.  NaN costs are rejected: one NaN poisons the
    whole cumulative curve and would silently degenerate the split.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if np.isnan(profile).any():
        raise ValueError("cost profile contains NaN")
    if n_procs < 1:
        raise ValueError("need at least one processor")
    n = len(profile)
    if n == 0:
        return np.full(n_procs + 1, v_lo, dtype=np.int64)
    cum = np.cumsum(profile)
    total = cum[-1]
    if total <= 0:
        # Degenerate: no measured work; fall back to equal-count split.
        return uniform_contiguous_partition(v_lo, v_lo + n, n_procs)
    targets = total * np.arange(1, n_procs) / n_procs
    # The boundary scanline is the one whose cumulative cost is closest
    # to the target value (paper: "closest to the boundary values").
    right = np.searchsorted(cum, targets)
    left = np.maximum(right - 1, 0)
    right = np.minimum(right, n - 1)
    pick = np.where(
        np.abs(cum[left] - targets) <= np.abs(cum[right] - targets), left, right
    )
    bounds = np.empty(n_procs + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = pick + 1
    bounds[-1] = n
    # Enforce monotonicity when profiles are very skewed: push each
    # boundary past its predecessor from the left...
    for p in range(1, n_procs):
        bounds[p] = max(bounds[p], bounds[p - 1] + 1) if bounds[p - 1] < n else n
        bounds[p] = min(bounds[p], n)
    # ...then clamp from the right so boundary p leaves at least one
    # scanline for each of the n_procs - p partitions after it.  With
    # all the mass at the end of the profile the left-to-right pass
    # alone yields e.g. sizes [9 1 0 0], starving the trailing
    # processors; after this pass every partition is non-empty whenever
    # n >= n_procs.
    if n >= n_procs:
        for p in range(n_procs - 1, 0, -1):
            bounds[p] = min(bounds[p], n - (n_procs - p))
    return bounds + v_lo


def nested_contiguous_partition(
    profile: np.ndarray, n_outer: int, n_inner: int, v_lo: int = 0
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Two-level split: shards first, then scanlines within each shard.

    The shard service runs the section 4.3 construction one level up:
    the same cost profile first splits the band into ``n_outer``
    contiguous shards, then each shard's slice of the profile splits
    into ``n_inner`` per-worker blocks.  Returns ``(outer, inner)``
    where ``outer`` has length ``n_outer + 1`` and ``inner[s]`` has
    length ``n_inner + 1`` with ``inner[s][0] == outer[s]`` and
    ``inner[s][-1] == outer[s + 1]`` — together a cover of
    ``[v_lo, v_lo + len(profile))`` in which every scanline lands in
    exactly one (shard, block) cell.
    """
    profile = np.asarray(profile, dtype=np.float64)
    outer = contiguous_partition(profile, n_outer, v_lo=v_lo)
    inner = [
        contiguous_partition(
            profile[outer[s] - v_lo:outer[s + 1] - v_lo],
            n_inner,
            v_lo=int(outer[s]),
        )
        for s in range(n_outer)
    ]
    return outer, inner


def uniform_contiguous_partition(v_lo: int, v_hi: int, n_procs: int) -> np.ndarray:
    """Equal-count contiguous split (used before any profile exists)."""
    if n_procs < 1:
        raise ValueError("need at least one processor")
    return np.linspace(v_lo, v_hi, n_procs + 1).round().astype(np.int64)


def partition_sizes(boundaries: np.ndarray) -> np.ndarray:
    """Scanlines per processor for a boundary array."""
    return np.diff(np.asarray(boundaries, dtype=np.int64))


def line_ownership(boundaries: np.ndarray, n_v: int) -> np.ndarray:
    """Warp-phase ownership of intermediate scanlines (section 4.5).

    Returns ``owner[v0]`` — the processor that writes final pixels whose
    bilinear samples use intermediate scanlines ``(v0, v0 + 1)``.  By
    default the owner of ``v0`` is the partition containing it, but the
    pair straddling each internal boundary is assigned wholly to the
    neighbor with *fewer* scanlines, eliminating final-image
    write-sharing without synchronization.

    Scanlines outside all partitions (the empty image top/bottom) map to
    the nearest partition so no final pixel is orphaned.
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    n_procs = len(boundaries) - 1
    owner = np.empty(n_v, dtype=np.int64)
    sizes = partition_sizes(boundaries)
    for p in range(n_procs):
        lo = max(0, int(boundaries[p]))
        hi = min(n_v, int(boundaries[p + 1]))
        owner[lo:hi] = p
    # Outside the partitioned band the intermediate image is empty; the
    # corresponding final pixels are background writes.  Split each empty
    # margin into contiguous per-processor slices so the (cheap) clearing
    # work is spread without fragmenting any processor's row range.
    lo_band = max(0, int(boundaries[0]))
    hi_band = min(n_v, int(boundaries[-1]))
    if lo_band > 0:
        owner[:lo_band] = np.arange(lo_band) * n_procs // lo_band
    if hi_band < n_v:
        tail = n_v - hi_band
        owner[hi_band:] = np.arange(tail) * n_procs // tail
    # Boundary pair rule: line b-1 (owned by p, pair crosses into p+1).
    for p in range(n_procs - 1):
        b = int(boundaries[p + 1])
        if 1 <= b <= n_v:
            winner = p if sizes[p] <= sizes[p + 1] else p + 1
            owner[b - 1] = winner
    return owner
