"""Per-scanline cost profiling and the profile schedule (section 4.2).

The new algorithm inserts profiling instructions into the compositing
kernel to count, per intermediate-image scanline, the work done for the
current frame; the profile predicts the *next* frame's per-scanline
costs because successive animation viewpoints differ by a few degrees.
Profiling costs 10-15 % extra compositing time, so it runs only every
``k`` frames — the paper picks ``k`` so profiles refresh once every ~15
degrees of rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..render.instrument import WorkCounters

if TYPE_CHECKING:  # pragma: no cover
    from ..render.block import BlockRowCounters

__all__ = [
    "scanline_cost",
    "scanline_cost_rows",
    "PROFILING_OVERHEAD",
    "NOMINAL_MEM_PER_BYTE",
    "ScanlineProfile",
    "ProfileSchedule",
]

#: Fractional compositing-time overhead of a profiled frame (paper: 10-15 %).
PROFILING_OVERHEAD = 0.12

# Cost weights (cycles per counted operation) used to collapse a
# scanline's WorkCounters into one scalar "instructions executed" value,
# mirroring the basic-block instruction counts of the paper's profiler.
# Calibrated so the serial renderer's memory-stall fraction on the DASH
# model matches the paper's measurement (~18 % at P=1, section 3.4.1);
# see EXPERIMENTS.md for the calibration note.
_W_RESAMPLE = 48.0
_W_RUN = 6.0
_W_LOOP = 20.0
_W_SKIP = 1.0

#: Nominal memory cycles per byte of traffic (one ~100-cycle miss per
#: 64-byte line) used when a *time* estimate is needed before the
#: machine is known: profile-based partitioning and steal scheduling
#: must balance wall-clock time, which at these volume sizes is
#: measurably memory-dependent (unlike the paper's instruction-count
#: profile, which sufficed at ~18 % memory share).
NOMINAL_MEM_PER_BYTE = 1.5
#: Nominal memory cycles per estimated cache-line touch (see
#: ``TaskRecord.trace_line_touches``) — the preferred traffic-to-time
#: estimate, since scattered short runs miss once per *touch*, not per
#: byte.
NOMINAL_MEM_PER_LINE_TOUCH = 90.0


def scanline_cost(c: WorkCounters) -> float:
    """Scalar cost (cycle units) of one scanline's compositing work."""
    return (
        _W_RESAMPLE * c.resample_ops
        + _W_RUN * c.run_entries
        + _W_LOOP * c.loop_iters
        + _W_SKIP * c.pixels_skipped
    )


def scanline_cost_rows(rows: "BlockRowCounters") -> np.ndarray:
    """Per-scanline costs of a block-kernel band, collapsed in one shot.

    ``out[i]`` equals ``scanline_cost(rows.row(rows.v_lo + i))`` — the
    same weights applied to the per-row counter arrays the block kernel
    accumulates, so parallel renderers can build a
    :class:`ScanlineProfile` without re-materializing one
    :class:`WorkCounters` per scanline.
    """
    return (
        _W_RESAMPLE * rows.resample_ops
        + _W_RUN * rows.run_entries
        + _W_LOOP * rows.loop_iters
        + _W_SKIP * rows.pixels_skipped
    ).astype(np.float64)


@dataclass
class ScanlineProfile:
    """A measured per-scanline cost profile for one frame.

    ``costs[i]`` is the cost of absolute scanline ``v_lo + i``.  The
    cumulative curve (parallel prefix) is what the partitioner searches.
    """

    v_lo: int
    costs: np.ndarray

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=np.float64)
        if np.any(self.costs < 0):
            raise ValueError("scanline costs must be non-negative")

    @property
    def v_hi(self) -> int:
        return self.v_lo + len(self.costs)

    @property
    def total(self) -> float:
        return float(self.costs.sum())

    def cumulative(self) -> np.ndarray:
        """The parallel-prefix cumulative cost curve of Figure 11."""
        return np.cumsum(self.costs)

    def trim_empty(self) -> "ScanlineProfile":
        """Drop zero-cost scanlines at both ends (the empty image margins)."""
        nz = np.nonzero(self.costs > 0)[0]
        if len(nz) == 0:
            return ScanlineProfile(self.v_lo, self.costs[:0])
        lo, hi = int(nz[0]), int(nz[-1]) + 1
        return ScanlineProfile(self.v_lo + lo, self.costs[lo:hi])


@dataclass
class ProfileSchedule:
    """Decides which frames re-profile (every ``period`` frames).

    ``period`` corresponds to the paper's choice of k: with an animation
    stepping ``degrees_per_frame``, profiles refresh every
    ``refresh_degrees`` of rotation.
    """

    period: int = 5
    _frame: int = field(default=0, init=False)

    @classmethod
    def from_rotation(cls, degrees_per_frame: float, refresh_degrees: float = 15.0) -> "ProfileSchedule":
        if degrees_per_frame <= 0:
            raise ValueError("degrees_per_frame must be positive")
        return cls(period=max(1, int(round(refresh_degrees / degrees_per_frame))))

    def should_profile(self) -> bool:
        """True if the *current* frame must be profiled (always frame 0)."""
        return self._frame % self.period == 0

    def advance(self) -> None:
        self._frame += 1

    @property
    def frame(self) -> int:
        return self._frame
