"""Synthetic volume data sets standing in for the paper's MRI/CT scans."""

from .io import load_den, load_volume, save_den, save_volume
from .phantoms import (
    beating_heart,
    ct_head,
    density_wedge,
    empty_volume,
    mri_brain,
    random_blobs,
    solid_sphere,
)
from .registry import PAPER_DATASETS, DatasetSpec, load, proxy_shape
from .resample import downsample, resample, upsample

__all__ = [
    "load_den",
    "load_volume",
    "save_den",
    "save_volume",
    "beating_heart",
    "ct_head",
    "density_wedge",
    "empty_volume",
    "mri_brain",
    "random_blobs",
    "solid_sphere",
    "PAPER_DATASETS",
    "DatasetSpec",
    "load",
    "proxy_shape",
    "downsample",
    "resample",
    "upsample",
]
