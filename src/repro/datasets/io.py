"""Volume file I/O: npz archives and VolPack-style ``.den`` raw volumes.

The original shear-warp distribution shipped volumes as raw "density"
files: a tiny header of three little-endian 16-bit extents followed by
``nx*ny*nz`` bytes in x-fastest order.  We read and write that format
(so real VolPack data drops in if you have it) alongside a richer npz
container that also carries metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["save_volume", "load_volume", "save_den", "load_den"]

_DEN_HEADER_DTYPE = np.dtype("<u2")


def save_volume(path: str | Path, volume: np.ndarray, **metadata) -> None:
    """Save a uint8 volume plus JSON-encodable metadata to ``.npz``."""
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError("expected a 3-D volume")
    np.savez_compressed(
        path,
        volume=volume.astype(np.uint8),
        metadata=json.dumps(metadata),
    )


def load_volume(path: str | Path) -> tuple[np.ndarray, dict]:
    """Load a volume saved by :func:`save_volume`; returns (volume, meta)."""
    with np.load(path, allow_pickle=False) as data:
        volume = data["volume"]
        meta = json.loads(str(data["metadata"]))
    return volume, meta


def save_den(path: str | Path, volume: np.ndarray) -> None:
    """Write a VolPack-style raw density file."""
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError("expected a 3-D volume")
    if max(volume.shape) >= 1 << 16:
        raise ValueError("extents must fit 16 bits")
    with open(path, "wb") as f:
        np.asarray(volume.shape, dtype=_DEN_HEADER_DTYPE).tofile(f)
        # x-fastest storage: our arrays are [x, y, z] C-order (z fastest),
        # so transpose before flattening.
        volume.astype(np.uint8).transpose(2, 1, 0).tofile(f)


def load_den(path: str | Path) -> np.ndarray:
    """Read a VolPack-style raw density file into an ``[x, y, z]`` array."""
    with open(path, "rb") as f:
        shape = np.fromfile(f, dtype=_DEN_HEADER_DTYPE, count=3)
        if len(shape) != 3 or np.any(shape == 0):
            raise ValueError(f"{path}: bad .den header")
        nx, ny, nz = (int(s) for s in shape)
        data = np.fromfile(f, dtype=np.uint8, count=nx * ny * nz)
    if data.size != nx * ny * nz:
        raise ValueError(f"{path}: truncated voxel data")
    return data.reshape(nz, ny, nx).transpose(2, 1, 0)
