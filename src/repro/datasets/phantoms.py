"""Procedural volume phantoms standing in for the paper's scan data.

The paper's inputs are MRI scans of a human brain (128**3,
256x256x167, 511x511x333, 640x640x417) and CT scans of a human head
(128**3, 256**3, 511**3).  Those data sets are not redistributable, so
this module synthesizes phantoms with the *statistics that matter* for
the paper's experiments:

* after classification, 70-95 % of voxels are transparent (the paper's
  stated range for medical data), concentrated in a roughly convex
  head-shaped region — this drives the run-length-encoding win and the
  empty top/bottom intermediate-image scanlines of Figure 10;
* the interesting material forms nested shells (scalp/skull/brain for
  MRI; soft tissue/bone for CT) with smooth intensity gradients, so
  per-scanline compositing cost is smooth but strongly non-uniform
  across scanlines — the property the profiling-based partitioner
  exploits;
* small-scale texture makes runs fragment realistically instead of
  forming one run per scanline.

Voxels are ``uint8`` intensities, as in VolPack's raw volumes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mri_brain",
    "ct_head",
    "solid_sphere",
    "empty_volume",
    "random_blobs",
    "density_wedge",
    "beating_heart",
]


def _coord_grids(shape: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalized coordinates in [-1, 1] per axis, indexed (x, y, z)."""
    nx, ny, nz = shape
    x = np.linspace(-1.0, 1.0, nx).reshape(nx, 1, 1)
    y = np.linspace(-1.0, 1.0, ny).reshape(1, ny, 1)
    z = np.linspace(-1.0, 1.0, nz).reshape(1, 1, nz)
    return x, y, z


def _smooth_noise(shape: tuple[int, int, int], rng: np.random.Generator, cells: int = 9) -> np.ndarray:
    """Band-limited noise in [0, 1]: trilinearly upsampled random lattice."""
    lat = rng.random((cells, cells, cells))
    idx = [np.linspace(0, cells - 1, n) for n in shape]
    i0 = [np.floor(ix).astype(np.intp) for ix in idx]
    i1 = [np.minimum(i + 1, cells - 1) for i in i0]
    f = [ix - i for ix, i in zip(idx, i0)]
    fx = f[0].reshape(-1, 1, 1)
    fy = f[1].reshape(1, -1, 1)
    fz = f[2].reshape(1, 1, -1)

    def g(ax, ay, az):
        return lat[np.ix_(ax, ay, az)]

    c000 = g(i0[0], i0[1], i0[2])
    c100 = g(i1[0], i0[1], i0[2])
    c010 = g(i0[0], i1[1], i0[2])
    c110 = g(i1[0], i1[1], i0[2])
    c001 = g(i0[0], i0[1], i1[2])
    c101 = g(i1[0], i0[1], i1[2])
    c011 = g(i0[0], i1[1], i1[2])
    c111 = g(i1[0], i1[1], i1[2])
    c00 = c000 * (1 - fx) + c100 * fx
    c10 = c010 * (1 - fx) + c110 * fx
    c01 = c001 * (1 - fx) + c101 * fx
    c11 = c011 * (1 - fx) + c111 * fx
    c0 = c00 * (1 - fy) + c10 * fy
    c1 = c01 * (1 - fy) + c11 * fy
    return c0 * (1 - fz) + c1 * fz


def mri_brain(shape: tuple[int, int, int] = (64, 64, 42), seed: int = 7) -> np.ndarray:
    """Synthetic MRI-brain-like volume of ``shape = (nx, ny, nz)``.

    Intensity bands (outer to inner): air ~0, scalp ~90, skull ~40,
    brain tissue 120-200 with cortical folds.  With the standard
    :func:`repro.volume.classify.mri_transfer_function`, roughly 75-90 %
    of the voxels classify as transparent.
    """
    x, y, z = _coord_grids(shape)
    rng = np.random.default_rng(seed)
    # Slightly eccentric head ellipsoid, flattened at the neck end.
    r = np.sqrt((x / 0.82) ** 2 + (y / 0.92) ** 2 + (z / 0.78) ** 2)
    r = r + 0.08 * (z + 1) ** 2 * (y < 0)
    noise = _smooth_noise(shape, rng, cells=11)
    folds = _smooth_noise(shape, rng, cells=17)

    vol = np.zeros(shape, dtype=np.float64)
    scalp = (r < 1.0) & (r >= 0.93)
    skull = (r < 0.93) & (r >= 0.85)
    brain = r < 0.85
    vol[scalp] = 90 + 25 * noise[scalp]
    vol[skull] = 40 + 15 * noise[skull]
    # Cortical folding: intensity undulates with a higher-frequency field.
    vol[brain] = 130 + 60 * folds[brain] + 15 * noise[brain]
    # Ventricle-like dark cavity near the centre.
    vent = np.sqrt((x / 0.18) ** 2 + (y / 0.22) ** 2 + (z / 0.14) ** 2) < 1.0
    vol[vent] = 15 + 10 * noise[vent]
    return np.clip(vol, 0, 255).astype(np.uint8)


def ct_head(shape: tuple[int, int, int] = (64, 64, 64), seed: int = 21) -> np.ndarray:
    """Synthetic CT-head-like volume: bright bone shell, dim soft tissue.

    CT classification typically keys on the bone band, making CT data
    even sparser than MRI after classification — which is why the paper
    uses CT heads as a supplementary input with different run-length
    statistics.
    """
    x, y, z = _coord_grids(shape)
    rng = np.random.default_rng(seed)
    r = np.sqrt((x / 0.85) ** 2 + (y / 0.9) ** 2 + (z / 0.8) ** 2)
    noise = _smooth_noise(shape, rng, cells=13)

    vol = np.zeros(shape, dtype=np.float64)
    tissue = (r < 1.0) & (r >= 0.9)
    skull = (r < 0.9) & (r >= 0.8)
    inner = r < 0.8
    vol[tissue] = 60 + 20 * noise[tissue]
    vol[skull] = 210 + 40 * noise[skull]
    vol[inner] = 70 + 25 * noise[inner]
    # Jaw / sinus voids make bone runs fragment.
    voids = noise > 0.78
    vol[voids & inner] = 20
    return np.clip(vol, 0, 255).astype(np.uint8)


def solid_sphere(shape: tuple[int, int, int] = (32, 32, 32), radius: float = 0.7, value: int = 200) -> np.ndarray:
    """Uniform sphere — handy for geometric correctness tests."""
    x, y, z = _coord_grids(shape)
    r = np.sqrt(x**2 + y**2 + z**2)
    vol = np.zeros(shape, dtype=np.uint8)
    vol[r < radius] = value
    return vol


def empty_volume(shape: tuple[int, int, int] = (16, 16, 16)) -> np.ndarray:
    """All-transparent volume (degenerate-case tests)."""
    return np.zeros(shape, dtype=np.uint8)


def random_blobs(shape: tuple[int, int, int] = (32, 32, 32), density: float = 0.2, seed: int = 3) -> np.ndarray:
    """Thresholded smooth noise: adversarial run-length structure."""
    rng = np.random.default_rng(seed)
    n = _smooth_noise(shape, rng, cells=7)
    vol = np.zeros(shape, dtype=np.uint8)
    mask = n > np.quantile(n, 1.0 - density)
    vol[mask] = (100 + 120 * n[mask]).astype(np.uint8)
    return vol


def density_wedge(
    shape: tuple[int, int, int] = (48, 48, 32),
    seed: int = 11,
    exponent: float = 2.0,
) -> np.ndarray:
    """Skewed-load phantom: material occupancy ramps steeply along ``+y``.

    Inside a near-full ellipsoidal body, the probability that a voxel
    holds (semi-transparent) material grows as ``((y+1)/2)**exponent``
    — a thin sprinkle at one end, nearly solid at the other.  With the
    standard MRI transfer function the material stays semi-transparent,
    so per-scanline compositing cost tracks occupancy instead of
    saturating: the per-scanline cost profile is maximally lopsided.
    This is the worst case for a uniform contiguous scanline split and
    the showcase input for the profile-balanced partitioner (it is also
    the load shape that starved trailing processors in
    ``contiguous_partition`` before boundaries were clamped from the
    right).
    """
    x, y, z = _coord_grids(shape)
    rng = np.random.default_rng(seed)
    body = np.broadcast_to(
        (x / 0.95) ** 2 + (y / 0.98) ** 2 + (z / 0.95) ** 2 < 1.0, shape
    )
    ramp = ((y + 1.0) / 2.0) ** exponent
    occupied = rng.random(shape) < np.broadcast_to(0.02 + 0.96 * ramp, shape)
    texture = _smooth_noise(shape, rng, cells=7)
    vol = np.where(body & occupied, 115.0 + 30.0 * texture, 0.0)
    return np.clip(vol, 0, 255).astype(np.uint8)


def beating_heart(
    shape: tuple[int, int, int] = (48, 48, 32),
    timesteps: int = 4,
    seed: int = 11,
    exponent: float = 2.0,
    swing: float = 0.9,
) -> list[np.ndarray]:
    """Time-varying phantom: :func:`density_wedge`'s dense end *moves*.

    Returns ``timesteps`` volumes forming one periodic "heartbeat": the
    occupancy ramp's dense end swings along ``y`` like a contracting
    chamber, following ``sin(2*pi*t/T)`` with amplitude ``swing``, and
    the body ellipsoid squeezes a few percent in counter-phase.  The
    noise fields are drawn once (same ``seed``) so consecutive timesteps
    differ only by the *motion* — exactly the frame-to-frame change a
    time-varying render has to track.

    Why this stresses the profile feedback loop: per-scanline
    compositing cost tracks occupancy, so each timestep's cost profile
    is the lopsided wedge profile *shifted* — a partition balanced from
    frame ``t``'s measured profile is mispredicted at frame ``t+1`` by
    exactly the wedge's motion, which is what the §4.2 loop must absorb
    frame to frame (and the pool's boundary-drift histogram makes
    visible).
    """
    if timesteps < 1:
        raise ValueError("need at least one timestep")
    x, y, z = _coord_grids(shape)
    rng = np.random.default_rng(seed)
    # One draw of the stochastic fields, shared by every timestep.
    occ_draw = rng.random(shape)
    texture = _smooth_noise(shape, rng, cells=7)
    vols: list[np.ndarray] = []
    for t in range(timesteps):
        phase = 2.0 * np.pi * t / timesteps
        centre = swing * np.sin(phase)
        squeeze = 1.0 - 0.06 * (1.0 + np.cos(phase)) / 2.0
        body = np.broadcast_to(
            (x / 0.95) ** 2 + (y / (0.98 * squeeze)) ** 2 + (z / 0.95) ** 2
            < 1.0,
            shape,
        )
        # Distance from the moving dense end, folded into [0, 1]: the
        # wedge ramp of density_wedge, recentred at ``centre``.
        dist = np.abs(y - centre) / 2.0
        ramp = np.clip(1.0 - dist, 0.0, 1.0) ** exponent
        occupied = occ_draw < np.broadcast_to(0.02 + 0.96 * ramp, shape)
        vol = np.where(body & occupied, 115.0 + 30.0 * texture, 0.0)
        vols.append(np.clip(vol, 0, 255).astype(np.uint8))
    return vols
