"""Named data sets matching the paper's inputs, with proxy scaling.

The paper's experiments use a fixed roster of inputs (section 3.3):

========  ===================  =========================================
name      paper shape          description
========  ===================  =========================================
mri128    128 x 128 x 128      MRI human brain
mri256    256 x 256 x 167      MRI human brain (the "256^3" set)
mri512    511 x 511 x 333      MRI human brain (the "512^3" set)
mri640    640 x 640 x 417      MRI human brain, up-sampled
ct128     128 x 128 x 128      CT human head
ct256     256 x 256 x 256      CT human head
ct512     511 x 511 x 511      CT human head
========  ===================  =========================================

Pure-Python trace-driven simulation cannot run 512^3 volumes in
reasonable time, so every experiment runs the same roster at a *proxy
scale*: ``load(name, scale=s)`` returns a phantom whose shape is the
paper shape times ``s`` (default 1/8), preserving the aspect ratios
(hence shear geometry) and relative sizes *between* data sets — which is
what the cross-data-set comparisons (Figures 6, 9, 12, 13, 18, 20)
depend on.  Machine cache sizes are scaled correspondingly by
:mod:`repro.memsim.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import phantoms
from .resample import resample

__all__ = ["DatasetSpec", "PAPER_DATASETS", "load", "proxy_shape"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named paper input: modality, full-resolution shape, seed."""

    name: str
    modality: str  # "mri" or "ct"
    paper_shape: tuple[int, int, int]
    seed: int


PAPER_DATASETS: dict[str, DatasetSpec] = {
    "mri128": DatasetSpec("mri128", "mri", (128, 128, 128), 7),
    "mri256": DatasetSpec("mri256", "mri", (256, 256, 167), 7),
    "mri512": DatasetSpec("mri512", "mri", (511, 511, 333), 7),
    "mri640": DatasetSpec("mri640", "mri", (640, 640, 417), 7),
    "ct128": DatasetSpec("ct128", "ct", (128, 128, 128), 21),
    "ct256": DatasetSpec("ct256", "ct", (256, 256, 256), 21),
    "ct512": DatasetSpec("ct512", "ct", (511, 511, 511), 21),
}


def proxy_shape(
    name: str, scale: float = 0.125, elongate: float = 1.0
) -> tuple[int, int, int]:
    """Shape of the proxy volume for data set ``name`` at ``scale``.

    ``elongate`` stretches the y axis only.  With the default oblique
    views, y is the intermediate image's *scanline* axis, so elongation
    restores a realistic ratio of scanlines to processors (the paper's
    511-wide sets give ~26 scanlines per processor at P=32; an isotropic
    1/8-scale proxy gives only ~2) while leaving the per-scanline
    working set (a plane ⊥ the intermediate image, ~x*z) and the shear
    geometry untouched.
    """
    spec = PAPER_DATASETS[name]
    f = (scale, scale * elongate, scale)
    return tuple(max(8, int(round(n * s))) for n, s in zip(spec.paper_shape, f))


def load(name: str, scale: float = 0.125, elongate: float = 1.0) -> np.ndarray:
    """Generate the proxy phantom for paper data set ``name``.

    The phantom is synthesized at (close to) the proxy resolution and
    resampled exactly to it, mirroring the paper's use of a resampling
    tool to construct the larger inputs.
    """
    if name not in PAPER_DATASETS:
        raise KeyError(f"unknown data set {name!r}; known: {sorted(PAPER_DATASETS)}")
    spec = PAPER_DATASETS[name]
    shape = proxy_shape(name, scale, elongate)
    gen = phantoms.mri_brain if spec.modality == "mri" else phantoms.ct_head
    vol = gen(shape, seed=spec.seed)
    if vol.shape != shape:
        vol = resample(vol, shape)
    return vol
