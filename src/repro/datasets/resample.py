"""Volume resampling — the paper's tool for generating 512^3 / 640^3 inputs.

The authors up-sampled the 256^3 raw MRI data along each dimension to
produce the larger data sets (section 3.3).  We reproduce that tool:
trilinear resampling of a ``uint8`` volume to an arbitrary target shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resample", "upsample", "downsample"]


def resample(vol: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Trilinearly resample ``vol`` to ``shape`` (any axis up or down).

    Sample positions are chosen so the volume's corner voxels map to the
    output's corner voxels (endpoint-aligned), matching what a simple
    up-sampling tool of the era would do.
    """
    vol = np.asarray(vol)
    if vol.ndim != 3:
        raise ValueError("expected a 3-D volume")
    src = vol.astype(np.float64)
    for axis, n_out in enumerate(shape):
        n_in = src.shape[axis]
        if n_out == n_in:
            continue
        if n_out < 1:
            raise ValueError(f"target shape must be positive, got {shape}")
        pos = np.linspace(0, n_in - 1, n_out) if n_out > 1 else np.array([0.0])
        i0 = np.floor(pos).astype(np.intp)
        i1 = np.minimum(i0 + 1, n_in - 1)
        f = pos - i0
        a = np.take(src, i0, axis=axis)
        b = np.take(src, i1, axis=axis)
        fshape = [1, 1, 1]
        fshape[axis] = n_out
        f = f.reshape(fshape)
        src = a * (1 - f) + b * f
    return np.clip(np.rint(src), 0, 255).astype(np.uint8)


def upsample(vol: np.ndarray, factor: float) -> np.ndarray:
    """Up-sample all three axes by ``factor`` (paper: 256^3 -> 512^3)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    shape = tuple(max(1, int(round(n * factor))) for n in vol.shape)
    return resample(vol, shape)


def downsample(vol: np.ndarray, factor: float) -> np.ndarray:
    """Down-sample all three axes by ``factor`` (> 1 shrinks)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    shape = tuple(max(1, int(round(n / factor))) for n in vol.shape)
    return resample(vol, shape)
