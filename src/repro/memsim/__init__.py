"""Trace-driven multiprocessor memory-system simulation."""

from .address import WORD_BYTES, AddressSpace
from .coherence import COST_KINDS, MISS_CLASSES, CoherentSystem, MissStats
from .costmodel import StallModel, memory_stalls
from .machine import (
    MACHINES,
    MachineConfig,
    cache_scale_for,
    ccnuma_sim,
    challenge,
    dash,
    origin2000,
    svm_cluster,
)
from .perfcounters import COUNTER_LIMITS, CounterReport, PhaseCounters, sample_counters
from .svm import SVMConfig, SVMFrameReport, SVMSimulator, simulate_frame_svm
from .trace import build_streams, replay_interleaved, stream_page_sets

__all__ = [
    "WORD_BYTES",
    "AddressSpace",
    "COST_KINDS",
    "MISS_CLASSES",
    "CoherentSystem",
    "MissStats",
    "StallModel",
    "memory_stalls",
    "MACHINES",
    "MachineConfig",
    "cache_scale_for",
    "ccnuma_sim",
    "challenge",
    "dash",
    "origin2000",
    "svm_cluster",
    "COUNTER_LIMITS",
    "CounterReport",
    "PhaseCounters",
    "sample_counters",
    "SVMConfig",
    "SVMFrameReport",
    "SVMSimulator",
    "simulate_frame_svm",
    "build_streams",
    "replay_interleaved",
    "stream_page_sets",
]
