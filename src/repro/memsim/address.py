"""Virtual address-space layout for traced data structures.

Range records from the renderers are region-relative; the simulator
needs flat addresses so cache lines and (round-robin) page homes can be
computed.  Each region is placed on a fresh page boundary with a guard
page between regions, so distinct structures never share a cache line
or page.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressSpace", "WORD_BYTES"]

WORD_BYTES = 4


@dataclass
class AddressSpace:
    """Maps (region, byte offset) to flat byte addresses."""

    bases: dict[str, int]
    limit: int
    page_bytes: int

    @classmethod
    def layout(cls, region_sizes: dict[str, int], page_bytes: int = 4096) -> "AddressSpace":
        bases: dict[str, int] = {}
        cursor = page_bytes  # keep address 0 unused
        for idx, region in enumerate(sorted(region_sizes)):
            # Stagger bases by an odd multiple of 32 bytes so distinct
            # structures do not systematically alias to the same cache
            # sets (page-aligned bases would all collide at offset 0,
            # which real allocators avoid).
            cursor += 544 * (idx + 1)
            bases[region] = cursor
            size = max(1, region_sizes[region])
            end = cursor + size
            cursor = (end + page_bytes - 1) // page_bytes * page_bytes + page_bytes
        return cls(bases=bases, limit=cursor, page_bytes=page_bytes)

    def resolve(self, region: str, start_byte: int, n_bytes: int) -> tuple[int, int]:
        """Flat ``(start_byte, n_bytes)`` for a region-relative range."""
        base = self.bases[region]
        return base + start_byte, n_bytes

    def page_of(self, byte_addr: int) -> int:
        return byte_addr // self.page_bytes

    def region_of(self, byte_addr: int) -> str:
        """Inverse lookup (diagnostics only)."""
        best = None
        for region, base in self.bases.items():
            if base <= byte_addr and (best is None or base > self.bases[best]):
                best = region
        if best is None:
            raise ValueError(f"address {byte_addr:#x} below all regions")
        return best
