"""Trace-driven multiprocessor cache-coherence simulator.

Models what the paper's Tango-Lite-based simulator measured: P
processors with private set-associative LRU caches kept coherent by a
directory invalidation protocol, round-robin page placement, and
Dubois/Woo-style miss classification:

``cold``
    first reference by this processor to the line;
``true``
    a word this access reads/writes was written by *another* processor
    since this processor last touched the line (inherent communication);
``false``
    the line was invalidated by another processor's write, but only to
    words this access does not touch (line-granularity artifact);
``replacement``
    the line was evicted for capacity/conflict reasons (the paper lumps
    capacity and conflict together as "replacement" misses).

Misses are also classified by *where* they are satisfied — ``local``
(home memory is the requester's node), ``remote2`` (clean at a remote
home), ``remote3`` (dirty in a third node) — which the cost model turns
into stall cycles.  On a centralized (bus) machine every miss is
``local``-class; the shared bus is handled by the contention model.

Accesses are *range records* (start, length, read/write): the simulator
walks the cache lines a range covers, one directory transaction per
line, while counting every word as a reference so miss *rates* match a
word-granularity trace of the same streaming access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .address import AddressSpace
from .machine import MachineConfig

__all__ = ["MissStats", "CoherentSystem", "MISS_CLASSES", "COST_KINDS"]

MISS_CLASSES = ("cold", "true", "false", "replacement")
COST_KINDS = ("local", "remote2", "remote3")


@dataclass
class MissStats:
    """Per-processor reference/miss accounting for one measurement scope."""

    n_procs: int
    refs: list[int] = field(default_factory=list)
    misses: list[dict[str, int]] = field(default_factory=list)
    kinds: list[dict[str, int]] = field(default_factory=list)
    upgrades: list[int] = field(default_factory=list)
    invalidations: int = 0
    home_bytes: list[int] = field(default_factory=list)  # per supplying node

    def __post_init__(self) -> None:
        self.refs = [0] * self.n_procs
        self.misses = [{c: 0 for c in MISS_CLASSES} for _ in range(self.n_procs)]
        self.kinds = [{k: 0 for k in COST_KINDS} for _ in range(self.n_procs)]
        self.upgrades = [0] * self.n_procs
        self.home_bytes = [0] * self.n_procs

    # -- aggregates ---------------------------------------------------------

    def total_refs(self) -> int:
        return sum(self.refs)

    def total_misses(self, klass: str | None = None) -> int:
        if klass is None:
            return sum(sum(m.values()) for m in self.misses)
        return sum(m[klass] for m in self.misses)

    def miss_rate(self, klass: str | None = None, include_cold: bool = True) -> float:
        """Misses per reference (optionally for one class, or sans cold)."""
        refs = self.total_refs()
        if refs == 0:
            return 0.0
        if klass is not None:
            return self.total_misses(klass) / refs
        total = self.total_misses()
        if not include_cold:
            total -= self.total_misses("cold")
        return total / refs

    def proc_misses(self, p: int) -> int:
        return sum(self.misses[p].values())

    def remote_fraction(self) -> float:
        """Fraction of misses not satisfied locally."""
        total = self.total_misses()
        if total == 0:
            return 0.0
        remote = sum(k["remote2"] + k["remote3"] for k in self.kinds)
        return remote / total

    def breakdown(self) -> dict[str, float]:
        """Miss rate per class — the stacked bars of Figures 7/8/16/17."""
        return {c: self.miss_rate(c) for c in MISS_CLASSES}


class _DirEntry:
    """Directory state for one cache line."""

    __slots__ = ("owner", "sharers", "writes", "last_access", "invalidated")

    def __init__(self) -> None:
        self.owner: int = -1  # processor holding the line dirty, or -1
        self.sharers: set[int] = set()
        self.writes: dict[int, tuple[int, int, int]] = {}  # p -> (t, lo, hi)
        self.last_access: dict[int, int] = {}
        self.invalidated: set[int] = set()  # procs whose copy died by coherence


class CoherentSystem:
    """P caches + directory over a flat address space."""

    def __init__(
        self,
        n_procs: int,
        machine: MachineConfig,
        addr_space: AddressSpace,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one processor")
        self.n_procs = n_procs
        self.machine = machine
        self.addr = addr_space
        self.line_bytes = machine.line_bytes
        self.assoc = max(1, machine.assoc)
        n_lines = max(1, machine.cache_bytes // machine.line_bytes)
        self.n_sets = max(1, n_lines // self.assoc)
        # caches[p][set] -> dict line_id -> None (dict order = LRU order).
        self.caches: list[list[dict[int, None]]] = [
            [dict() for _ in range(self.n_sets)] for _ in range(n_procs)
        ]
        self.directory: dict[int, _DirEntry] = {}
        self.clock = 0
        self.stats = MissStats(n_procs)
        self._lines_per_page = max(1, machine.page_bytes // machine.line_bytes)

    # -- state snapshot --------------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture cache + directory state (cheap structural copy)."""
        caches = [[dict(s) for s in proc] for proc in self.caches]
        directory = {}
        for line, e in self.directory.items():
            c = _DirEntry()
            c.owner = e.owner
            c.sharers = set(e.sharers)
            c.writes = dict(e.writes)
            c.last_access = dict(e.last_access)
            c.invalidated = set(e.invalidated)
            directory[line] = c
        return (caches, directory, self.clock)

    def restore(self, snap: tuple) -> None:
        """Restore state captured by :meth:`snapshot`."""
        caches, directory, clock = snap
        self.caches = [[dict(s) for s in proc] for proc in caches]
        self.directory = {}
        for line, e in directory.items():
            c = _DirEntry()
            c.owner = e.owner
            c.sharers = set(e.sharers)
            c.writes = dict(e.writes)
            c.last_access = dict(e.last_access)
            c.invalidated = set(e.invalidated)
            self.directory[line] = c
        self.clock = clock

    # -- measurement scopes --------------------------------------------------

    def new_scope(self) -> MissStats:
        """Start recording into a fresh stats object (state persists)."""
        self.stats = MissStats(self.n_procs)
        return self.stats

    # -- topology -------------------------------------------------------------

    def home_of(self, line: int) -> int:
        """Home node of a line: pages placed round-robin (section 3.4.2)."""
        return (line // self._lines_per_page) % self.n_procs

    # -- the access path -------------------------------------------------------

    def access_range(self, p: int, byte_lo: int, n_bytes: int, write: bool = False) -> None:
        """One sequential access to ``[byte_lo, byte_lo + n_bytes)``."""
        if n_bytes <= 0:
            return
        lb = self.line_bytes
        line_lo = byte_lo // lb
        line_hi = (byte_lo + n_bytes - 1) // lb
        stats = self.stats
        words = max(1, n_bytes // 4)
        stats.refs[p] += words
        for line in range(line_lo, line_hi + 1):
            lo = max(byte_lo, line * lb)
            hi = min(byte_lo + n_bytes, (line + 1) * lb)
            self._access_line(p, line, lo // 4, (hi + 3) // 4, write)

    def _access_line(self, p: int, line: int, w_lo: int, w_hi: int, write: bool) -> None:
        self.clock += 1
        t = self.clock
        stats = self.stats
        entry = self.directory.get(line)
        if entry is None:
            entry = _DirEntry()
            self.directory[line] = entry

        was_owner = entry.owner == p
        cache_set = self.caches[p][line % self.n_sets]
        if line in cache_set:
            # Hit.  Refresh LRU position.
            del cache_set[line]
            cache_set[line] = None
            if write and entry.owner != p:
                # Write upgrade: invalidate other copies.
                self._invalidate_others(p, line, entry)
                entry.owner = p
                stats.upgrades[p] += 1
        else:
            # Miss: classify, then fill.
            seen_before = p in entry.last_access
            if not seen_before:
                klass = "cold"
            else:
                my_last = entry.last_access[p]
                true_shared = any(
                    wt > my_last and not (whi <= w_lo or wlo >= w_hi)
                    for q, (wt, wlo, whi) in entry.writes.items()
                    if q != p
                )
                if true_shared:
                    klass = "true"
                elif p in entry.invalidated:
                    klass = "false"
                else:
                    klass = "replacement"
            stats.misses[p][klass] += 1

            # Where is the miss satisfied?
            if self.machine.centralized:
                kind = "local"
                supplier = p
            else:
                home = self.home_of(line)
                if entry.owner >= 0 and entry.owner != p:
                    supplier = entry.owner
                    kind = "remote2" if supplier == home or home == p else "remote3"
                else:
                    supplier = home
                    kind = "local" if home == p else "remote2"
            stats.kinds[p][kind] += 1
            stats.home_bytes[supplier] += self.line_bytes

            # A dirty copy elsewhere is flushed by the intervention.
            if entry.owner >= 0 and entry.owner != p:
                entry.owner = -1

            # Fill; evict LRU victim if the set is full.
            if len(cache_set) >= self.assoc:
                victim = next(iter(cache_set))
                del cache_set[victim]
                self._drop_copy(p, victim, coherence=False)
            cache_set[line] = None
            entry.sharers.add(p)
            entry.invalidated.discard(p)
            if write:
                self._invalidate_others(p, line, entry)
                entry.owner = p

        if write:
            # Union of this processor's write spans while it has stayed
            # the exclusive owner (a compositing row is written in many
            # partial spans; a reader's true-sharing test must see all
            # of them).  Losing ownership starts a fresh span.
            prev = entry.writes.get(p)
            if was_owner and prev is not None:
                entry.writes[p] = (t, min(prev[1], w_lo), max(prev[2], w_hi))
            else:
                entry.writes[p] = (t, w_lo, w_hi)
        entry.last_access[p] = t

    def _invalidate_others(self, p: int, line: int, entry: _DirEntry) -> None:
        set_idx = line % self.n_sets
        for q in list(entry.sharers):
            if q == p:
                continue
            cache_set = self.caches[q][set_idx]
            if line in cache_set:
                del cache_set[line]
            entry.sharers.discard(q)
            entry.invalidated.add(q)
            self.stats.invalidations += 1
        if entry.owner not in (-1, p):
            entry.owner = -1
        entry.sharers.add(p)

    def _drop_copy(self, p: int, line: int, coherence: bool) -> None:
        entry = self.directory.get(line)
        if entry is None:
            return
        entry.sharers.discard(p)
        if coherence:
            entry.invalidated.add(p)
        if entry.owner == p:
            entry.owner = -1
            # Dirty writeback travels to the home node.
            self.stats.home_bytes[self.home_of(line)] += self.line_bytes
