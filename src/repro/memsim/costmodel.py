"""Turning miss counts into stall cycles, with contention.

The paper's simulator "models buffering and contention in detail
everywhere except in the network links"; we use a standard open-queue
approximation instead: each miss pays its uncontended latency times a
contention factor derived from the utilization of the busiest memory
port (the shared bus on a centralized machine, the hottest home node on
a NUMA).  The factor is solved by fixed-point iteration because
utilization depends on execution time, which depends on stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coherence import MissStats
from .machine import MachineConfig

__all__ = ["StallModel", "memory_stalls"]

#: Cap on the queueing factor so pathological utilizations stay finite.
_MAX_CONTENTION = 6.0


@dataclass
class StallModel:
    """Per-processor stall cycles plus the solved contention factor."""

    stalls: np.ndarray  # per processor, cycles
    base_stalls: np.ndarray  # without contention
    contention: float  # multiplier >= 1
    utilization: float  # of the busiest port


def _base_stalls(stats: MissStats, machine: MachineConfig) -> np.ndarray:
    out = np.zeros(stats.n_procs)
    for p in range(stats.n_procs):
        s = 0.0
        for kind, n in stats.kinds[p].items():
            s += n * machine.miss_cost(kind)
        s += stats.upgrades[p] * machine.t_upgrade
        out[p] = s
    return out


def memory_stalls(
    stats: MissStats,
    machine: MachineConfig,
    busy: np.ndarray,
    iterations: int = 3,
) -> StallModel:
    """Solve stall cycles for one phase.

    Parameters
    ----------
    stats:
        Miss statistics of the phase.
    busy:
        Per-processor busy cycles of the phase (sets the time base over
        which memory traffic is spread).
    """
    busy = np.asarray(busy, dtype=np.float64)
    base = _base_stalls(stats, machine)
    if machine.centralized:
        # One shared bus carries all traffic.
        port_bytes = float(sum(stats.home_bytes))
        bandwidth = machine.node_bandwidth
    else:
        # The hottest home node is the bottleneck port.
        port_bytes = float(max(stats.home_bytes, default=0.0))
        bandwidth = machine.node_bandwidth

    factor = 1.0
    for _ in range(iterations):
        t = float(np.max(busy + base * factor)) if len(busy) else 0.0
        if t <= 0 or port_bytes <= 0:
            factor = 1.0
            break
        rho = min(port_bytes / (t * bandwidth), 0.98)
        factor = min(1.0 / (1.0 - rho), _MAX_CONTENTION)
    util = port_bytes / max(1.0, float(np.max(busy + base * factor)) * bandwidth)
    return StallModel(
        stalls=base * factor,
        base_stalls=base,
        contention=factor,
        utilization=min(util, 1.0),
    )
