"""Machine models: the paper's five shared-address-space platforms.

Each preset captures the memory-system parameters the paper reports for
its platforms (sections 3.2 and 5.5).  Since experiments run on
proxy-scaled volumes, cache capacities are scaled by ``cache_scale``
(working sets scale with n^2, so a 1/8-scale volume pairs with a 1/64
cache scale); line sizes, associativities and latencies are *not*
scaled — they are granularity/ratio parameters, not capacities.

Latency units are processor cycles of the modeled machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MachineConfig",
    "dash",
    "challenge",
    "ccnuma_sim",
    "origin2000",
    "svm_cluster",
    "MACHINES",
    "cache_scale_for",
]


@dataclass(frozen=True)
class MachineConfig:
    """Memory-system parameters of one platform."""

    name: str
    centralized: bool  # True: bus-based UMA (Challenge); False: NUMA
    cache_bytes: int  # per-processor (second-level) cache capacity
    line_bytes: int
    assoc: int
    # Uncontended miss costs (cycles).
    t_local: float  # satisfied in local memory (or bus miss on UMA)
    t_remote2: float  # two-hop remote miss
    t_remote3: float  # three-hop (dirty in a third node)
    t_upgrade: float  # write upgrade (invalidation round)
    t_hit: float = 1.0  # cache-hit cost folded into busy time
    # Synchronization.
    steal_cost: float = 400.0  # task-queue lock + transfer, cycles
    barrier_base: float = 500.0  # barrier latency at P=1, cycles
    barrier_per_proc: float = 150.0  # additional cycles per processor
    # Bandwidth, bytes per cycle per node (memory/bus port).
    node_bandwidth: float = 4.0
    page_bytes: int = 4096
    max_procs: int = 32
    cpu_mhz: float = 100.0  # for converting cycles to seconds / fps

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_mhz * 1e6)

    @property
    def mem_per_line_touch(self) -> float:
        """Estimated stall cycles per 64-byte unit of traffic.

        Used to convert a task's traffic estimate into time on this
        machine (profiling-based partitioning and steal scheduling react
        to elapsed time, which the paper's renderer measured natively on
        the machine it ran on).  Small cache lines mean more misses per
        64 bytes.
        """
        avg_miss = 0.5 * (self.t_local + self.t_remote2)
        return avg_miss * (64.0 / self.line_bytes) * 0.7

    def barrier_cost(self, n_procs: int) -> float:
        """Cost of one global barrier with ``n_procs`` participants."""
        return self.barrier_base + self.barrier_per_proc * n_procs

    def miss_cost(self, kind: str) -> float:
        """Uncontended cost of a miss of cost-class ``kind``."""
        return {"local": self.t_local, "remote2": self.t_remote2,
                "remote3": self.t_remote3}[kind]

    def scaled(self, cache_scale: float) -> "MachineConfig":
        """Return a copy with the cache capacity scaled (min 4 lines)."""
        size = max(int(self.cache_bytes * cache_scale),
                   4 * self.line_bytes * self.assoc)
        return replace(self, cache_bytes=size)


def cache_scale_for(volume_scale: float) -> float:
    """Cache scale matching a proxy volume scale.

    Two working sets must keep their paper-scale relation to the cache:
    the serial/old algorithm's *plane* working set (~n^2, larger than
    the caches of the paper's machines at 512^3) and the new algorithm's
    per-processor *block* (~n^2/P, which fit them).  A pure n^2 scaling
    keeps the first ratio but shrinks caches below the block; exponent
    1.8 keeps both on the correct side of their machine's capacity at
    the default proxy scales (see EXPERIMENTS.md for the arithmetic).
    """
    return volume_scale**1.8


def dash() -> MachineConfig:
    """Stanford DASH: 33 MHz R3000s, 256 KB L2, 16-byte lines, 2-D mesh.

    Its small cache lines are the paper's explanation for DASH's high
    miss rates (section 3.4.3); remote/local ratio ~3-4x.
    """
    return MachineConfig(
        name="DASH",
        cpu_mhz=33.0,
        centralized=False,
        cache_bytes=256 * 1024,
        line_bytes=16,
        assoc=1,
        t_local=30.0,
        t_remote2=101.0,
        t_remote3=133.0,
        t_upgrade=40.0,
        node_bandwidth=3.6,  # ~120 MB/s at 33 MHz
        max_procs=32,
    )


def challenge() -> MachineConfig:
    """SGI Challenge: 150 MHz, 1 MB L2, 128-byte lines, 1.2 GB/s bus.

    Centralized memory: every miss costs the same; the shared bus is the
    contention point.
    """
    return MachineConfig(
        name="Challenge",
        cpu_mhz=150.0,
        centralized=True,
        cache_bytes=1024 * 1024,
        line_bytes=128,
        assoc=1,
        t_local=60.0,
        t_remote2=60.0,
        t_remote3=60.0,
        t_upgrade=30.0,
        node_bandwidth=8.0,  # 1.2 GB/s at 150 MHz, shared by all
        max_procs=16,
    )


def ccnuma_sim() -> MachineConfig:
    """The paper's simulated modern CC-NUMA (section 3.2).

    70-cycle local miss, 210/280-cycle two-/three-hop remote misses,
    1 MB 4-way cache with 64-byte lines, 400 MB/s per node.
    """
    return MachineConfig(
        name="Simulator",
        cpu_mhz=200.0,
        centralized=False,
        cache_bytes=1024 * 1024,
        line_bytes=64,
        assoc=4,
        t_local=70.0,
        t_remote2=210.0,
        t_remote3=280.0,
        t_upgrade=80.0,
        node_bandwidth=2.0,  # 400 MB/s at 200 MHz
        max_procs=64,
    )


def origin2000() -> MachineConfig:
    """SGI Origin2000: 195 MHz R10000, 4 MB 2-way L2, 128-byte lines."""
    return MachineConfig(
        name="Origin2000",
        cpu_mhz=195.0,
        centralized=False,
        cache_bytes=4 * 1024 * 1024,
        line_bytes=128,
        assoc=2,
        t_local=80.0,
        t_remote2=160.0,
        t_remote3=230.0,
        t_upgrade=60.0,
        node_bandwidth=4.0,  # 780 MB/s at 195 MHz
        max_procs=16,
    )


def svm_cluster() -> MachineConfig:
    """SMP nodes + Myrinet-like network, shared memory in software (HLRC).

    The hardware-cache parameters model the per-node cache hierarchy;
    the page-grain coherence behaviour lives in :mod:`repro.memsim.svm`.
    """
    return MachineConfig(
        name="SVM",
        cpu_mhz=200.0,
        centralized=False,
        cache_bytes=512 * 1024,
        line_bytes=32,
        assoc=2,
        t_local=50.0,
        t_remote2=0.0,  # remote data moves by page fetch, costed in svm.py
        t_remote3=0.0,
        t_upgrade=20.0,
        node_bandwidth=2.0,  # 400 MB/s memory bus at 200 MHz
        page_bytes=4096,
        max_procs=32,
    )


MACHINES = {
    "dash": dash,
    "challenge": challenge,
    "simulator": ccnuma_sim,
    "origin2000": origin2000,
    "svm": svm_cluster,
}
