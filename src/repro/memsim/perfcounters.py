"""Hardware performance-counter emulation (section 5.5.1).

The Origin2000's R10000 counters let the authors *count* events (cache
misses, graduated instructions, cycles) per program section — enough to
see that "a large amount of execution time was spent on cache misses" —
but could not say whether misses were capacity or conflict, sharing or
not, nor whether cost came from miss rates or contention.  That gap in
the tool hierarchy is a thesis of the paper.

This module replays that experience on top of our simulator: it exposes
a :class:`CounterReport` holding only the quantities real counters
could report, so examples and ablations can show precisely where the
counters run out and the detailed simulation has to take over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: a runtime import would be circular
    # (parallel.execution -> memsim -> perfcounters -> parallel.execution)
    from ..parallel.execution import FrameReport, PhaseReport

__all__ = ["CounterReport", "PhaseCounters", "sample_counters", "COUNTER_LIMITS"]

#: What the R10000-style counters cannot tell you — the questions that
#: pushed the authors down the tool hierarchy to simulation.
COUNTER_LIMITS = (
    "cannot split misses into capacity vs conflict",
    "cannot split misses into sharing vs replacement (no coherence classes)",
    "cannot attribute stall time to miss rate vs contention",
    "cannot see where invalidations come from",
)


@dataclass(frozen=True)
class PhaseCounters:
    """Per-phase counter readings a real machine could sample."""

    name: str
    cycles: float  # elapsed cycles (max across processors)
    graduated_instructions: float  # total busy cycles as an instruction proxy
    l2_misses: int  # total secondary-cache misses, *unclassified*
    l2_miss_rate: float  # misses / references — per-procedure level info

    @property
    def approx_memory_fraction(self) -> float:
        """The coarse conclusion counters support: time minus
        instructions, as a fraction — "a large amount of execution time
        was spent on cache misses" and no more."""
        if self.cycles <= 0:
            return 0.0
        per_proc_busy = self.graduated_instructions
        return max(0.0, 1.0 - per_proc_busy / (self.cycles or 1.0))


def _sample_phase(phase: PhaseReport, n_procs: int) -> PhaseCounters:
    stats = phase.stats
    total_misses = stats.total_misses()
    refs = stats.total_refs()
    return PhaseCounters(
        name=phase.name,
        cycles=float(phase.span),
        graduated_instructions=float(phase.busy.sum()) / max(1, n_procs),
        l2_misses=total_misses,
        l2_miss_rate=total_misses / refs if refs else 0.0,
    )


@dataclass(frozen=True)
class CounterReport:
    """Everything an R10000-counter toolchain would show for one frame."""

    composite: PhaseCounters
    warp: PhaseCounters
    n_procs: int

    @property
    def phases(self) -> tuple[PhaseCounters, PhaseCounters]:
        return (self.composite, self.warp)

    def summary(self) -> str:
        lines = [f"hardware-counter view ({self.n_procs} processors):"]
        for ph in self.phases:
            lines.append(
                f"  {ph.name:10s} cycles={ph.cycles:12.0f} "
                f"instr/proc={ph.graduated_instructions:12.0f} "
                f"L2 misses={ph.l2_misses:8d} "
                f"(rate {100 * ph.l2_miss_rate:.2f}%)"
            )
        lines.append("  counters cannot tell you:")
        for limit in COUNTER_LIMITS:
            lines.append(f"    - {limit}")
        return "\n".join(lines)


def sample_counters(report: FrameReport) -> CounterReport:
    """Reduce a full simulation report to counter-level information."""
    return CounterReport(
        composite=_sample_phase(report.composite, report.n_procs),
        warp=_sample_phase(report.warp, report.n_procs),
        n_procs=report.n_procs,
    )
