"""Page-based shared virtual memory platform (HLRC), section 5.5.2.

Models the paper's SVM platform: SMP nodes (4 processors each) on a
Myrinet-like network, coherence kept in software at 4 KB page
granularity with an all-software home-based lazy release consistency
protocol.  State advances in *intervals* separated by barriers:

* during an interval, a processor touching a page whose home copy has
  been updated since the processor last fetched it takes a **page
  fault** — the data-wait time of Figures 21/22;
* multiple writers per page are allowed (twins); at the next release
  each writer sends a **diff** of its writes to the page's home
  (first-touch assignment);
* at a **barrier**, write notices propagate and stale copies are
  invalidated; the barrier itself is delayed by the network/memory-bus
  contention that in-flight data creates — the effect the paper
  identifies as the dominant cost of the old algorithm's inter-phase
  barrier.

The old algorithm runs a frame as two intervals (composite | barrier |
warp | barrier); the new algorithm's identical partitioning across
phases removes the inter-phase barrier, leaving one interval per frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.frame import ParallelFrame
from ..parallel.scheduler import Unit, schedule
from .address import AddressSpace
from .trace import build_streams, stream_page_sets

__all__ = ["SVMConfig", "SVMFrameReport", "SVMSimulator", "simulate_frame_svm"]


@dataclass(frozen=True)
class SVMConfig:
    """Cost parameters of the SVM platform (200 MHz, 1 CPI processors)."""

    page_bytes: int = 4096
    procs_per_node: int = 4
    fault_cycles: float = 6000.0  # software fault handling, ~30 us
    io_bytes_per_cycle: float = 0.5  # 100 MB/s I/O bus at 200 MHz
    diff_cycles: float = 1500.0  # twin/diff creation + application
    barrier_base: float = 10000.0
    barrier_per_proc: float = 1500.0
    lock_cycles: float = 2500.0  # task-queue lock acquire over the network
    contention_cap: float = 6.0
    cpu_mhz: float = 200.0

    def barrier_cost(self, n_procs: int) -> float:
        return self.barrier_base + self.barrier_per_proc * n_procs

    def scaled(self, volume_scale: float) -> "SVMConfig":
        """Proxy-scaled configuration.

        Compute per frame scales with n^3 but page-grain phenomena with
        n^2 (image pages) and n (rows per page), so an unscaled config
        would drown the proxy's compute in fault overhead.  Pages scale
        by ``volume_scale`` (keeping the rows-per-page ratio: a paper
        intermediate-image row is ~1.6 pages, and page-level
        write-sharing between neighboring processors must stay a
        boundary effect, not engulf whole partitions); per-event costs
        scale by ``volume_scale**2`` so the fault-overhead-to-compute
        ratio of a frame matches paper scale.
        """
        from dataclasses import replace

        s = volume_scale
        return replace(
            self,
            page_bytes=max(256, int(self.page_bytes * s) // 64 * 64),
            fault_cycles=self.fault_cycles * s * s,
            io_bytes_per_cycle=self.io_bytes_per_cycle / s,
            diff_cycles=self.diff_cycles * s * s,
            barrier_base=self.barrier_base * s * s,
            barrier_per_proc=self.barrier_per_proc * s * s,
            lock_cycles=self.lock_cycles * s * s,
        )


@dataclass
class SVMFrameReport:
    """Per-frame SVM timing, split into the paper's four categories."""

    n_procs: int
    algorithm: str
    compute: np.ndarray  # per-proc busy cycles
    data_wait: np.ndarray  # page-fault stall cycles
    barrier_wait: np.ndarray  # barrier wait + diff flushing
    lock_wait: np.ndarray  # task-stealing lock overhead
    total_time: float
    faults: np.ndarray
    bytes_fetched: np.ndarray
    contention: float

    def breakdown(self) -> dict[str, float]:
        """Cumulative cycles by category (Figures 21/22)."""
        return {
            "compute": float(self.compute.sum()),
            "data": float(self.data_wait.sum()),
            "barrier": float(self.barrier_wait.sum()),
            "lock": float(self.lock_wait.sum()),
            "total": self.total_time * self.n_procs,
        }

    def fractions(self) -> dict[str, float]:
        b = self.breakdown()
        t = b["total"] or 1.0
        return {k: v / t for k, v in b.items() if k != "total"}


class SVMSimulator:
    """HLRC page state carried across intervals (and frames)."""

    def __init__(self, config: SVMConfig, n_procs: int) -> None:
        if n_procs < 1:
            raise ValueError("need at least one processor")
        self.config = config
        self.n_procs = n_procs
        self.interval = 0
        self.page_version: dict[int, int] = {}
        self.page_home: dict[int, int] = {}
        self.valid_version: list[dict[int, int]] = [dict() for _ in range(n_procs)]

    def node_of(self, p: int) -> int:
        return p // self.config.procs_per_node

    def run_interval(
        self,
        reads: list[dict[int, int]],
        writes: list[dict[int, int]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one interval; returns (faults, bytes_fetched, diffs).

        ``reads``/``writes`` are per-processor ``page -> bytes`` maps of
        the pages each processor touches during the interval.
        """
        cfg = self.config
        faults = np.zeros(self.n_procs)
        fetched = np.zeros(self.n_procs)
        diffs = np.zeros(self.n_procs)
        self.interval += 1
        for p in range(self.n_procs):
            touched = set(reads[p]) | set(writes[p])
            valid = self.valid_version[p]
            for page in touched:
                if page not in self.page_home:
                    # First touch anywhere: p becomes the home; no fetch.
                    self.page_home[page] = p
                    valid[page] = 0
                    continue
                current = self.page_version.get(page, 0)
                have = valid.get(page)
                if have is None or have < current:
                    if self.page_home[page] == p:
                        # Home copy is always current (diffs applied here).
                        valid[page] = current
                        continue
                    faults[p] += 1
                    fetched[p] += cfg.page_bytes
                    valid[page] = current
            for page in writes[p]:
                if self.page_home.get(page, p) != p:
                    diffs[p] += 1
        # Publish write notices: versions bump after the interval.
        for p in range(self.n_procs):
            for page in writes[p]:
                self.page_version[page] = self.interval
                # The writer's own copy stays valid for what it wrote...
                # unless another processor also wrote the page (its words
                # arrive as a diff at the home), which invalidates p too.
                writers = sum(1 for q in range(self.n_procs) if page in writes[q])
                if writers == 1 or self.page_home.get(page) == p:
                    self.valid_version[p][page] = self.interval
        return faults, fetched, diffs

    def contention_factor(self, fetched: np.ndarray, span: float) -> float:
        """Queueing factor at the busiest node's I/O bus."""
        if span <= 0:
            return 1.0
        cfg = self.config
        n_nodes = (self.n_procs + cfg.procs_per_node - 1) // cfg.procs_per_node
        node_bytes = np.zeros(n_nodes)
        for p in range(self.n_procs):
            node_bytes[self.node_of(p)] += fetched[p]
        rho = min(float(node_bytes.max()) / (span * cfg.io_bytes_per_cycle), 0.98)
        return min(1.0 / (1.0 - rho), cfg.contention_cap)


def _interval_timing(
    cfg: SVMConfig,
    busy: np.ndarray,
    faults: np.ndarray,
    fetched: np.ndarray,
    diffs: np.ndarray,
    sim: SVMSimulator,
    n_procs: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
    """Solve one interval's (data, flush, wait, span, contention)."""
    base_data = faults * cfg.fault_cycles + fetched / cfg.io_bytes_per_cycle
    factor = 1.0
    for _ in range(3):
        span = float(np.max(busy + base_data * factor))
        factor = sim.contention_factor(fetched, span)
    data = base_data * factor
    flush = diffs * cfg.diff_cycles
    span = float(np.max(busy + data))
    wait = span - (busy + data)
    return data, flush, wait, span, factor


def simulate_frame_svm(
    frame: ParallelFrame,
    config: SVMConfig | None = None,
    sim: SVMSimulator | None = None,
) -> SVMFrameReport:
    """Simulate one recorded frame on the SVM platform.

    Pass a persistent ``sim`` to model an animation in steady state
    (recommended: first-frame cold faults dominate otherwise).
    """
    cfg = config or SVMConfig()
    n = frame.n_procs
    if sim is None:
        sim = SVMSimulator(cfg, n)
    if sim.n_procs != n:
        raise ValueError("simulator processor count does not match the frame")

    addr = AddressSpace.layout(frame.region_sizes, cfg.page_bytes)

    # Schedules provide busy time, steal counts, and execution order.
    comp_sched = schedule(
        [[Unit(uid, frame.composite_units[uid].cost) for uid in q]
         for q in frame.composite_queues],
        steal_chunk=max(1, frame.steal_chunk),
        steal_cost=cfg.lock_cycles,
    )
    warp_sched = schedule(
        [[Unit(uid, frame.warp_tasks[uid].cost) for uid in q]
         for q in frame.warp_queues],
        allow_stealing=frame.warp_stealing,
    )
    comp_streams = build_streams(frame.composite_units, comp_sched, addr)
    warp_streams = build_streams(frame.warp_tasks, warp_sched, addr)
    comp_busy = np.array([p.busy for p in comp_sched.procs])
    warp_busy = np.array([p.busy for p in warp_sched.procs])
    lock = np.array([p.steal_overhead for p in comp_sched.procs])

    compute = comp_busy + warp_busy
    barrier = np.zeros(n)
    data = np.zeros(n)
    faults_total = np.zeros(n)
    fetched_total = np.zeros(n)

    if frame.algorithm == "old":
        intervals = [comp_streams, warp_streams]
        busies = [comp_busy, warp_busy]
    else:
        merged = [a + b for a, b in zip(comp_streams, warp_streams)]
        intervals = [merged]
        busies = [comp_busy + warp_busy]

    total = 0.0
    contention = 1.0
    for streams, busy in zip(intervals, busies):
        reads, writes = stream_page_sets(streams, cfg.page_bytes)
        faults, fetched, diffs = sim.run_interval(reads, writes)
        d, flush, wait, span, factor = _interval_timing(
            cfg, busy, faults, fetched, diffs, sim, n
        )
        contention = max(contention, factor)
        data += d
        # Barrier: imbalance wait + diff flushing + the barrier operation
        # itself, inflated by contention (delayed sync messages).
        bcost = cfg.barrier_cost(n) * factor
        barrier += wait + flush + bcost
        faults_total += faults
        fetched_total += fetched
        total += span + float(flush.max()) + bcost

    return SVMFrameReport(
        n_procs=n,
        algorithm=frame.algorithm,
        compute=compute,
        data_wait=data,
        barrier_wait=barrier,
        lock_wait=lock,
        total_time=total,
        faults=faults_total,
        bytes_fetched=fetched_total,
        contention=contention,
    )
