"""Converting frame task records into per-processor access streams.

The execution-order of tasks on each logical processor comes from the
scheduler; this module flattens each processor's tasks into an ordered
stream of flat-address range records and replays the streams against a
:class:`~repro.memsim.coherence.CoherentSystem`, interleaving round-robin
(one record per processor per turn) to model concurrent execution.
"""

from __future__ import annotations

from ..core.frame import TaskRecord
from ..parallel.scheduler import ScheduleResult
from .address import AddressSpace
from .coherence import CoherentSystem

__all__ = ["build_streams", "replay_interleaved", "stream_page_sets"]

Record = tuple[int, int, bool]  # (flat byte start, n_bytes, write)


def build_streams(
    tasks: dict[int, TaskRecord],
    sched: ScheduleResult,
    addr: AddressSpace,
    key_order: tuple[int, ...] | None = None,
) -> list[list[Record]]:
    """Per-processor ordered flat-address streams for one phase.

    Without ``key_order``, each task's segments are emitted in recording
    order, task after task.  With ``key_order`` (the frame's
    front-to-back slice order), a processor's stream is *slice-major*:
    for each slice, the slice-segments of every scanline the processor
    executed, in execution order — the order the real compositing loop
    streams the volume in (volume read once per frame, k outermost).
    """
    streams: list[list[Record]] = []
    for proc in sched.procs:
        out: list[Record] = []
        if key_order is None:
            for uid in proc.executed:
                for _, records in tasks[uid].trace:
                    for region, start, nbytes, write in records:
                        flat, n = addr.resolve(region, start, nbytes)
                        out.append((flat, n, write))
        else:
            seg_maps = [dict(tasks[uid].trace) for uid in proc.executed]
            for key in key_order:
                for segs in seg_maps:
                    records = segs.get(key)
                    if not records:
                        continue
                    for region, start, nbytes, write in records:
                        flat, n = addr.resolve(region, start, nbytes)
                        out.append((flat, n, write))
        streams.append(out)
    return streams


def replay_interleaved(system: CoherentSystem, streams: list[list[Record]]) -> None:
    """Replay streams round-robin, one range record per processor per turn.

    Uniform round-robin progress is the standard trace-interleaving
    approximation: it keeps concurrently-executing processors' accesses
    temporally adjacent, which is what the sharing classification needs.
    """
    cursors = [0] * len(streams)
    live = [i for i, s in enumerate(streams) if s]
    while live:
        nxt = []
        for p in live:
            s = streams[p]
            c = cursors[p]
            byte_lo, n_bytes, write = s[c]
            system.access_range(p, byte_lo, n_bytes, write)
            c += 1
            cursors[p] = c
            if c < len(s):
                nxt.append(p)
        live = nxt


def stream_page_sets(
    streams: list[list[Record]], page_bytes: int
) -> tuple[list[dict[int, int]], list[dict[int, int]]]:
    """Per-processor page footprints: (reads, writes), page -> bytes touched.

    Used by the SVM model, which works at page granularity and does not
    need reference ordering.
    """
    reads: list[dict[int, int]] = []
    writes: list[dict[int, int]] = []
    for stream in streams:
        r: dict[int, int] = {}
        w: dict[int, int] = {}
        for byte_lo, n_bytes, write in stream:
            p_lo = byte_lo // page_bytes
            p_hi = (byte_lo + n_bytes - 1) // page_bytes
            for page in range(p_lo, p_hi + 1):
                lo = max(byte_lo, page * page_bytes)
                hi = min(byte_lo + n_bytes, (page + 1) * page_bytes)
                d = w if write else r
                d[page] = d.get(page, 0) + (hi - lo)
        reads.append(r)
        writes.append(w)
    return reads, writes
