"""repro.movie — time-varying volumes and the stage-overlapped movie
pipeline.

ROADMAP item 4 made concrete: :class:`TimeVaryingVolume` /
:class:`TimeVaryingRenderer` stream per-timestep RLE encodings through
the existing pools (the ``timestep`` rides each frame's job, and the
axis-switch slice-cache invalidation generalizes to timestep switches),
and :class:`MoviePipeline` renders a movie over any
:class:`~repro.parallel.backend.RenderBackend` while the parent encodes
finished frames into a real PNG/NPZ image sequence — MovieMaker's
render/encode stage overlap on top of the pools' double-buffered
pipelining.  See :mod:`repro.movie.pipeline` for the architecture and
the bit-identity contract.
"""

from .encode import FRAME_FORMATS, encode_png, to_gray8, write_npz, write_png
from .pipeline import MoviePipeline, movie_frame_specs
from .timevary import (
    TimeVaryingRenderer,
    TimeVaryingVolume,
    beating_heart_renderer,
)

__all__ = [
    "TimeVaryingVolume",
    "TimeVaryingRenderer",
    "beating_heart_renderer",
    "MoviePipeline",
    "movie_frame_specs",
    "FRAME_FORMATS",
    "encode_png",
    "to_gray8",
    "write_png",
    "write_npz",
]
