"""Frame encoders for the movie pipeline: real PNG and NPZ sequences.

The PNG writer is a self-contained grayscale encoder (``zlib`` +
``struct`` only — no imaging dependency), and it is **deterministic**:
the same float image always produces the same file bytes, which is what
lets CI byte-compare pipeline output against a serially rendered
reference *at the file level*.  NPZ frames carry the full float32
``color``/``alpha`` planes losslessly (the bit-identity contract is
checked on the arrays, since zip containers embed timestamps).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = ["to_gray8", "encode_png", "write_png", "write_npz", "FRAME_FORMATS"]

#: Formats :class:`repro.movie.MoviePipeline` can write.
FRAME_FORMATS = ("png", "npz")

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def to_gray8(plane: np.ndarray) -> np.ndarray:
    """Quantize a float image to 8-bit grayscale.

    The renderer's planes live in ``[0, 1]``; values are clipped, scaled
    to ``[0, 255]`` and rounded half-up — a pure function of the input
    array, so quantization can never break frame-to-frame determinism.
    """
    a = np.asarray(plane, dtype=np.float32)
    return (np.clip(a, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def encode_png(gray: np.ndarray) -> bytes:
    """Encode a 2-D ``uint8`` array as a grayscale 8-bit PNG (bytes).

    Every scanline uses filter type 0 (None) and the compressor runs at
    a fixed level, so encoding is deterministic.
    """
    gray = np.ascontiguousarray(gray, dtype=np.uint8)
    if gray.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {gray.shape}")
    h, w = gray.shape
    ihdr = struct.pack(">IIBBBBB", w, h, 8, 0, 0, 0, 0)
    # Raw scanlines, each prefixed by the filter-type byte.
    raw = b"".join(b"\x00" + gray[y].tobytes() for y in range(h))
    idat = zlib.compress(raw, 6)
    return (
        _PNG_SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", idat)
        + _chunk(b"IEND", b"")
    )


def write_png(path, plane: np.ndarray) -> None:
    """Write one float image plane as a grayscale PNG file."""
    data = encode_png(to_gray8(plane))
    with open(path, "wb") as fh:
        fh.write(data)


def write_npz(path, color: np.ndarray, alpha: np.ndarray) -> None:
    """Write one frame's float32 planes losslessly as ``.npz``."""
    np.savez(
        path,
        color=np.ascontiguousarray(color, dtype=np.float32),
        alpha=np.ascontiguousarray(alpha, dtype=np.float32),
    )
