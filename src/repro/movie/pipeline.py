"""The stage-overlapped movie pipeline: render on workers, encode in parent.

MovieMaker (PAPERS.md) split movie production into a render stage and an
encode stage overlapped across machines; the pool's batched dispatch
already provides the same structure *within* one host: workers run
frame to frame gated only by the per-buffer release cursors, so while
the parent collects + encodes frame ``t``, the workers are compositing
frames ``t+1 .. t+buffers``.  :class:`MoviePipeline` closes the loop by
doing real encoding (PNG or NPZ sequences, via :mod:`repro.movie.encode`)
in the collection loop, against any :class:`~repro.parallel.backend.
RenderBackend` — mp, thread, or shard fleet — without knowing which.

The parent's encode work gets its own obs trace track (one pid above
every backend track), so a Chrome trace of a movie shows the overlap
directly: worker composite spans of frame ``t+1`` running under the
parent's ``encode`` span of frame ``t``.

Bit-identity contract: the pipeline adds *no* pixel math — frames come
out of the backend exactly as ``render_animation`` would return them,
and the encoders are deterministic pure functions — so every movie
frame equals the per-timestep serial render, on every backend, at every
shard count, including across a mid-movie worker kill recovery.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.recorder import RingReader, SpanRecorder
from ..obs.timeline import FrameTimeline
from ..obs.timeline import export_chrome_trace as _export_chrome_trace
from ..parallel.backend import FrameSpec, as_frame_specs
from .encode import FRAME_FORMATS, write_npz, write_png

__all__ = ["MoviePipeline", "movie_frame_specs"]

#: Marker carried by metrics-snapshot files so ``repro stats`` can tell
#: them apart from Chrome traces (same value the serve layer uses).
_SNAPSHOT_KIND = "repro-metrics"


def movie_frame_specs(
    renderer,
    n_frames: int,
    *,
    timesteps: int | None = None,
    rot_x: float = 20.0,
    rot_y: float = 30.0,
    rot_z: float = 0.0,
    step_y: float = 5.0,
) -> list[FrameSpec]:
    """Standard movie schedule: a rotation sweep over a beating volume.

    Frame ``i`` views the volume at ``ry = rot_y + i * step_y`` and
    timestep ``i % timesteps`` — the same schedule the CLI ``--movie``
    path and the serve ``movie`` op use, so all three produce
    byte-comparable sequences.  ``timesteps`` defaults to the
    renderer's own count (1 for a static renderer).
    """
    if timesteps is None:
        timesteps = getattr(renderer, "n_timesteps", 1)
    return [
        FrameSpec(
            view=renderer.view_from_angles(rot_x, rot_y + i * step_y, rot_z),
            timestep=(i % timesteps) if timesteps > 1 else None,
        )
        for i in range(n_frames)
    ]


class MoviePipeline:
    """Drive a :class:`RenderBackend` through a movie and encode it.

    Parameters
    ----------
    backend:
        Anything conforming to the :class:`~repro.parallel.backend.
        RenderBackend` protocol (``submit_batch`` / ``result`` /
        ``capabilities``).  The pipeline never closes it.
    out_dir:
        Directory for the image sequence (created if missing).
    fmt:
        ``"png"`` (grayscale color plane) or ``"npz"`` (lossless
        float32 color + alpha planes).
    metrics:
        Optional shared :class:`MetricsRegistry`; the pipeline records
        ``movie/frames_encoded``, ``movie/encode_s`` and
        ``movie/wait_s`` into it.
    trace:
        Record the parent's encode spans on their own trace track
        (exported with the backend's worker tracks by
        :meth:`export_chrome_trace`).
    """

    def __init__(
        self,
        backend,
        out_dir: str,
        fmt: str = "png",
        *,
        metrics: MetricsRegistry | None = None,
        trace: bool = False,
        basename: str = "frame",
    ) -> None:
        if fmt not in FRAME_FORMATS:
            raise ValueError(f"fmt must be one of {FRAME_FORMATS}, got {fmt!r}")
        self.backend = backend
        self.out_dir = out_dir
        self.fmt = fmt
        self.basename = basename
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rec: SpanRecorder | None = None
        self._reader: RingReader | None = None
        self._encode_timelines: list[FrameTimeline] = []
        if trace:
            # The encode track sits above every backend track: workers
            # occupy [0, n_procs), each pool's supervisor and the shard
            # merge track follow, so n_procs + n_shards + 1 is free for
            # every backend shape.
            pid = (
                getattr(backend, "n_procs", 0)
                + getattr(backend, "n_shards", 0)
                + 1
            )
            epoch = getattr(backend, "_trace_epoch", None)
            self._rec = SpanRecorder.in_memory(epoch=epoch)
            self._reader = RingReader(
                self._rec.cursor, self._rec.records, pid=pid
            )

    def frame_path(self, index: int) -> str:
        return os.path.join(
            self.out_dir, f"{self.basename}_{index:04d}.{self.fmt}"
        )

    def run(self, frame_specs) -> dict:
        """Render + encode the whole movie; returns the manifest.

        Submits every spec as one batch, then collects in order,
        encoding each frame as it lands — which is exactly when the
        workers are already compositing the following frames.  The
        manifest's stage-overlap breakdown:

        ``wait_s``
            Parent time blocked in ``result()`` (pipeline stalls).
        ``encode_s``
            Parent time spent encoding frames.
        ``overlapped_encode_s``
            Encode time during which later frames were still in flight
            (every frame's encode except the last) — the part of the
            encode stage the render stage hides.
        """
        specs = as_frame_specs(frame_specs)
        os.makedirs(self.out_dir, exist_ok=True)
        t_wall0 = time.perf_counter()
        ids = self.backend.submit_batch(specs)
        dispatch_s = time.perf_counter() - t_wall0
        frames = []
        wait_s = encode_s = overlapped_s = 0.0
        for i, (spec, fid) in enumerate(zip(specs, ids)):
            t0 = time.perf_counter()
            res = self.backend.result(fid)
            t1 = time.perf_counter()
            path = self.frame_path(i)
            if self._rec is not None:
                te0 = self._rec.now()
            self._encode_frame(path, res)
            if self._rec is not None:
                self._rec.span(i, "encode", te0, self._rec.now())
            t2 = time.perf_counter()
            wait_s += t1 - t0
            encode_s += t2 - t1
            if i < len(ids) - 1:
                overlapped_s += t2 - t1
            self.metrics.counter("movie/frames_encoded").inc()
            self.metrics.histogram("movie/wait_s").observe(t1 - t0)
            self.metrics.histogram("movie/encode_s").observe(t2 - t1)
            frames.append(
                {
                    "index": i,
                    "frame_id": fid,
                    "timestep": spec.timestep,
                    "path": path,
                    "wait_s": t1 - t0,
                    "encode_s": t2 - t1,
                    "degraded": bool(getattr(res, "degraded", False)),
                    "retries": int(getattr(res, "retries", 0)),
                }
            )
        self._drain_encode_spans()
        return {
            "format": self.fmt,
            "out_dir": self.out_dir,
            "n_frames": len(frames),
            "frames": frames,
            "stage_overlap": {
                "dispatch_s": dispatch_s,
                "wait_s": wait_s,
                "encode_s": encode_s,
                "overlapped_encode_s": overlapped_s,
                "wall_s": time.perf_counter() - t_wall0,
            },
        }

    def _encode_frame(self, path: str, res) -> None:
        if self.fmt == "png":
            write_png(path, np.asarray(res.final.color))
        else:
            write_npz(path, res.final.color, res.final.alpha)

    def _drain_encode_spans(self) -> None:
        if self._reader is None:
            return
        by_frame: dict[int, FrameTimeline] = {}
        for r in self._reader.drain():
            tl = by_frame.get(r.frame)
            if tl is None:
                tl = by_frame[r.frame] = FrameTimeline(r.frame)
            tl.add(r)
        self._encode_timelines.extend(
            by_frame[f] for f in sorted(by_frame)
        )

    def metrics_snapshot(self) -> dict:
        """JSON-ready snapshot of movie + backend metrics, in the same
        shape ``repro stats`` renders for the serve layer."""
        merged = MetricsRegistry()
        registries = [self.metrics]
        backend_metrics = getattr(self.backend, "metrics", None)
        if backend_metrics is not None:
            registries.append(backend_metrics)
        for reg in registries:
            for name, h in reg.histograms.items():
                merged.histogram(name).values.extend(h.values)
            for name, c in reg.counters.items():
                merged.counter(name).inc(c.value)
            for name, g in reg.gauges.items():
                merged.gauge(name).set(g.value)
        snap = merged.snapshot()
        snap["kind"] = _SNAPSHOT_KIND
        return snap

    def export_chrome_trace(self, path: str, metadata: dict | None = None) -> None:
        """One Chrome trace: the backend's worker tracks plus the
        parent's encode track (requires both to have been traced)."""
        if self._rec is None:
            raise RuntimeError("pipeline was created without trace=True")
        if not self.backend.capabilities.trace:
            raise RuntimeError("backend was created without trace=True")
        self._drain_encode_spans()
        meta = {
            "movie_frames": int(
                self.metrics.counter("movie/frames_encoded").value
            ),
            "format": self.fmt,
        }
        if metadata:
            meta.update(metadata)
        timelines = list(getattr(self.backend, "timelines", []))
        timelines.extend(self._encode_timelines)
        _export_chrome_trace(path, timelines, metadata=meta)
