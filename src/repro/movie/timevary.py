"""Time-varying volumes: per-timestep RLE encodings behind one renderer.

A movie of a *moving* volume needs, per timestep, exactly what the
static renderer precomputes once — classification plus the three
per-axis run-length encodings.  :class:`TimeVaryingVolume` precomputes
them for every timestep up front (the VolPack preprocessing cost, paid
``T`` times), and :class:`TimeVaryingRenderer` swaps the active
encoding per frame through the same ``rle_for`` seam the pools already
call — so every backend (mp, thread, shard) renders time-varying frames
without a single pool-side change beyond threading the ``timestep``
through the job.

Memory and invalidation
-----------------------
All ``T * 3`` encodings stay resident (they must: the mp workers
inherit them through the fork snapshot at pool construction, so they
cannot be built lazily after the fork).  What is *not* allowed to
accumulate is decoded-slice cache: the static renderer already drops
the slice cache of an encoding left behind by a principal-axis switch,
and the time-varying renderer generalizes that exact rule to the
``(timestep, axis)`` pair — switching either coordinate clears the
encoding just left behind, so at most one encoding per consumer holds
decoded planes.  Clearing is also the stale-slice guard: a decoded
plane can never outlive the (timestep, axis) encoding it was decoded
from, because each encoding owns its own cache and caches are keyed
within one encoding only.
"""

from __future__ import annotations

import numpy as np

from ..render.serial import ShearWarpRenderer
from ..transforms.factorization import ShearWarpFactorization
from ..volume.classify import TransferFunction
from ..volume.rle import RLEVolume, encode_all_axes
from ..volume.volume import ClassifiedVolume

__all__ = [
    "TimeVaryingVolume",
    "TimeVaryingRenderer",
    "beating_heart_renderer",
]

#: Full-resolution grid of the ``beating_heart`` phantom; ``scale``
#: shrinks it linearly (floor 8 per axis).
_HEART_BASE_SHAPE = (48, 48, 32)


def beating_heart_renderer(
    scale: float = 1.0,
    timesteps: int = 4,
    tf: TransferFunction | None = None,
) -> "TimeVaryingRenderer":
    """The standard time-varying workload, shared by the CLI ``--movie``
    path, the serve ``movie`` op and the movie benchmark/CI jobs —
    all build the renderer here so their frames byte-compare.
    """
    from ..datasets import beating_heart
    from ..volume.classify import mri_transfer_function

    shape = tuple(
        max(8, int(round(d * float(scale)))) for d in _HEART_BASE_SHAPE
    )
    volumes = beating_heart(shape, timesteps=timesteps)
    return TimeVaryingRenderer(
        volumes, tf if tf is not None else mri_transfer_function()
    )


class TimeVaryingVolume:
    """A volume sequence classified and RLE-encoded per timestep.

    Parameters
    ----------
    volumes:
        Sequence of ``uint8`` volumes, one per timestep, all the same
        shape (the factorization, and therefore the pools' shared-image
        capacity, depends only on the shape).
    tf:
        One transfer function applied to every timestep.
    """

    def __init__(self, volumes, tf: TransferFunction) -> None:
        volumes = [np.asarray(v) for v in volumes]
        if not volumes:
            raise ValueError("need at least one timestep")
        shape = volumes[0].shape
        for t, v in enumerate(volumes):
            if v.shape != shape:
                raise ValueError(
                    f"timestep {t} has shape {v.shape}, timestep 0 has {shape}"
                )
        self.classified: list[ClassifiedVolume] = [
            ClassifiedVolume.classify(v, tf) for v in volumes
        ]
        self.encodings: list[dict[int, RLEVolume]] = [
            encode_all_axes(cv) for cv in self.classified
        ]

    @property
    def n_timesteps(self) -> int:
        return len(self.encodings)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.classified[0].shape


class TimeVaryingRenderer(ShearWarpRenderer):
    """A :class:`ShearWarpRenderer` whose volume changes with time.

    Drop-in for the static renderer everywhere (pools, planners, the
    serial reference): ``rle_for(fact, timestep=t)`` selects timestep
    ``t``'s encoding (``None`` and out-of-range values wrap modulo the
    timestep count, so an endless rotation movie can just pass the
    frame index).  The slice-cache invalidation of the base class's
    axis switches extends to the ``(timestep, axis)`` pair — see the
    module docstring.
    """

    def __init__(self, volumes, tf: TransferFunction | None = None) -> None:
        if isinstance(volumes, TimeVaryingVolume):
            tvv = volumes
        else:
            if tf is None:
                raise TypeError("tf is required when passing raw volumes")
            tvv = TimeVaryingVolume(volumes, tf)
        self.timeline = tvv
        # Base-class state, pointed at timestep 0 so every static-path
        # consumer (shape, factorize_view, plain render calls) works.
        self.classified = tvv.classified[0]
        self.rle_by_axis = tvv.encodings[0]
        self._last_axis: int | None = None
        self._last_step: int | None = None
        #: Observability: how many times the active encoding changed
        #: because the *timestep* moved (axis-only switches not counted).
        self.timestep_switches = 0

    @property
    def n_timesteps(self) -> int:
        return self.timeline.n_timesteps

    def rle_for(self, fact: ShearWarpFactorization,
                timestep: int | None = None) -> RLEVolume:
        """The active encoding for ``(timestep, fact.axis)``.

        Reuses the axis-switch invalidation machinery for timestep
        switches: whenever either coordinate moves, the encoding just
        left behind drops its decoded-slice cache (stats survive, so
        hit/miss counters stay consistent across switches).
        """
        step = 0 if timestep is None else int(timestep) % self.n_timesteps
        if self._last_axis is not None and (
            self._last_axis != fact.axis or self._last_step != step
        ):
            self.timeline.encodings[self._last_step][
                self._last_axis
            ].clear_slice_cache()
            if self._last_step != step:
                self.timestep_switches += 1
        self._last_axis = fact.axis
        self._last_step = step
        self.rle_by_axis = self.timeline.encodings[step]
        return self.rle_by_axis[fact.axis]
