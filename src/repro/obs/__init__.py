"""Frame-timeline tracing and metrics for the *real* renderers.

The paper's contribution was driven by a hierarchy of performance tools
— Pixie basic-block profiling, synchronization timers, and a detailed
memory-system simulator.  :mod:`repro.memsim` reproduces the simulated
end of that hierarchy; this package is the *native* end for the code
that actually runs on the host:

* :class:`SpanRecorder` — a preallocated per-worker ring buffer of phase
  **spans** (slice-decode, composite, warp, queue wait, profile
  collapse, steal synchronization, barrier) and **counters** (rows
  composited, slice-cache hits/misses, chunk steals and the scanlines
  they moved).  Backed by shared memory in the multiprocessing pool so
  recording adds no queue traffic on the hot path; a disabled recorder
  (``None``) costs nothing.
* :class:`FrameTimeline` + :func:`export_chrome_trace` — the parent
  assembles per-frame timelines and exports Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``, one track per worker).
* :class:`MetricsRegistry` — phase histograms and pool-health gauges
  (queue depth at submit, buffer occupancy, profile invalidations,
  partition-boundary drift).
* :func:`busy_spread` — the load-imbalance scalar ``(max - min) / mean``
  used throughout the paper's evaluation.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    busy_spread,
    metrics_from_timelines,
)
from .recorder import (
    COUNTERS,
    DEFAULT_RING_CAPACITY,
    PHASES,
    CounterSample,
    RingReader,
    Span,
    SpanRecorder,
    ring_bytes,
)
from .timeline import (
    FrameTimeline,
    assemble_timelines,
    chrome_trace_events,
    export_chrome_trace,
    load_chrome_trace,
    summarize_trace,
    validate_chrome_trace,
)

__all__ = [
    "COUNTERS",
    "DEFAULT_RING_CAPACITY",
    "PHASES",
    "Counter",
    "CounterSample",
    "FrameTimeline",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingReader",
    "Span",
    "SpanRecorder",
    "Stopwatch",
    "assemble_timelines",
    "busy_spread",
    "chrome_trace_events",
    "export_chrome_trace",
    "load_chrome_trace",
    "metrics_from_timelines",
    "ring_bytes",
    "summarize_trace",
    "validate_chrome_trace",
]
