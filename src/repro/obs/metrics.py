"""Metrics registry: phase histograms, counters, pool-health gauges.

Deliberately tiny — the registry is a process-local aggregation point
the pool and benchmarks write into and ``repro stats`` prints.  Every
instrument keeps exact values (observation counts here are frames ×
workers, not web-scale), so percentiles are true percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

__all__ = [
    "busy_spread",
    "Stopwatch",
    "Histogram",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "metrics_from_timelines",
]


def busy_spread(values) -> float:
    """Load-imbalance scalar ``(max - min) / mean`` over per-worker times.

    The paper's load-balance evaluation (and ``bench_adaptive``) reads
    this off per-worker busy times: 0 means perfectly even, 1 means the
    spread equals the mean.  Returns 0.0 for empty or all-zero input.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return 0.0
    mean = float(v.mean())
    if mean <= 0.0:
        return 0.0
    return float((v.max() - v.min()) / mean)


class Stopwatch:
    """Context-manager wall-clock timer (the one ``perf_counter`` idiom).

    >>> with Stopwatch() as sw:
    ...     work()
    >>> sw.seconds
    """

    __slots__ = ("_t0", "seconds")

    def __init__(self) -> None:
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = perf_counter() - self._t0


@dataclass
class Histogram:
    """Exact-value histogram of non-negative observations (seconds)."""

    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def max(self) -> float:
        return float(max(self.values)) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (``q`` in [0, 100])."""
        if not self.values:
            return 0.0
        return float(np.percentile(np.asarray(self.values), q))

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "max": self.max,
        }


@dataclass
class Counter:
    """Monotonic accumulator."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value plus its high-water mark."""

    value: float = 0.0
    max: float = 0.0
    _written: bool = field(default=False, repr=False)

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max = value if not self._written else max(self.max, value)
        self._written = True


class MetricsRegistry:
    """Named histograms/counters/gauges, created on first touch."""

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram())

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self.gauges.setdefault(name, Gauge())

    def snapshot(self) -> dict:
        """Plain-dict dump (JSON-serializable) of every instrument."""
        return {
            "histograms": {k: h.summary() for k, h in self.histograms.items()},
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: {"value": g.value, "max": g.max}
                       for k, g in self.gauges.items()},
        }

    def format_table(self) -> str:
        """Human-readable dump: one row per instrument (raw units —
        ``phase/*`` and ``frame/*`` histograms are seconds)."""
        lines = []
        if self.histograms:
            lines.append(f"{'histogram':28s} {'count':>7s} {'total':>12s} "
                         f"{'mean':>12s} {'p90':>12s} {'max':>12s}")
            for name in sorted(self.histograms):
                s = self.histograms[name].summary()
                lines.append(
                    f"{name:28s} {s['count']:7d} {s['total']:12.6g} "
                    f"{s['mean']:12.6g} {s['p90']:12.6g} {s['max']:12.6g}"
                )
        for name in sorted(self.counters):
            lines.append(f"{name:28s} {self.counters[name].value:14g}")
        for name in sorted(self.gauges):
            g = self.gauges[name]
            lines.append(f"{name:28s} last {g.value:10g}  max {g.max:10g}")
        return "\n".join(lines)


def metrics_from_timelines(timelines, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fold frame timelines into phase histograms and counter totals.

    Each span contributes its duration to ``phase/<name>``; each counter
    sample adds to the counter of the same name.  Used by the pool after
    every completed frame and by ``repro stats`` over a whole run.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for tl in timelines:
        for s in tl.spans:
            reg.histogram(f"phase/{s.phase}").observe(s.t1 - s.t0)
        for c in tl.counters:
            reg.counter(c.name).inc(c.value)
        busy = tl.busy_by_pid()
        if busy:
            reg.histogram("frame/busy_spread").observe(busy_spread(list(busy.values())))
    return reg
