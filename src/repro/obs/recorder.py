"""Preallocated ring-buffer span/counter recording.

The recorder is the hot-path end of the observability layer: each
render worker owns one fixed-size ring of ``float64`` records inside a
shared-memory segment (or a plain numpy array for in-process use) and
appends phase spans and counter samples with two array stores — no
locks, no allocation, no queue traffic.  The parent drains each ring
*after* the worker's done message for a frame, so the queue's
happens-before edge makes every record of that frame visible.

Record layout (4 ``float64`` per record)::

    (frame, code, a, b)

where ``code < _COUNTER_BASE`` is a phase id and ``(a, b)`` are the
span's start/end seconds (relative to the recorder's epoch), and
``code >= _COUNTER_BASE`` is a counter id with the value in ``a``.

A ring that wraps overwrites its oldest records; :class:`RingReader`
reports how many were dropped so truncation is never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

__all__ = [
    "PHASES",
    "COUNTERS",
    "DEFAULT_RING_CAPACITY",
    "Span",
    "CounterSample",
    "SpanRecorder",
    "RingReader",
    "ring_bytes",
    "ring_views",
]

#: Phase names a span can carry, in display order.  ``wait`` is the
#: worker's job-queue wait, ``decode`` the RLE slice decodes, ``profile``
#: the per-scanline cost collapse on profiled frames, ``steal`` a
#: thief's victim scan + claim-cursor lock (the paper's steal
#: synchronization cost, section 4.4; nested inside ``composite``),
#: ``barrier`` the inter-phase synchronization wait (the paper's "sync
#: time"), ``recover`` the MP pool supervisor's worker-respawn +
#: frame-retry window after a fault (recorded on the supervisor's own
#: track), ``dispatch`` the parent-side frame-submission work (plan +
#: queue put, recorded on the supervisor track), ``doorbell`` a
#: worker's wait for the parent to release its next image buffer in
#: batched/pipelined mode, ``merge`` one sort-last merge-tree pass of
#: the shard service (recorded on the service's own final track).  New
#: phases are appended last so existing phase ids stay stable.
PHASES = ("wait", "decode", "composite", "profile", "steal", "barrier", "warp",
          "recover", "dispatch", "doorbell", "merge", "encode")

#: Counter names.  ``steals``/``steal_rows`` count successful chunk
#: steals and the scanlines they moved — recorded by the MP pool's
#: chunked claim/steal loop (and mirrored by the event-driven scheduler
#: models).
COUNTERS = ("rows", "cache_hits", "cache_misses", "steals", "steal_rows")

#: Records per worker ring.  A pool frame writes ~8 records per worker,
#: so the default absorbs hundreds of frames between drains.
DEFAULT_RING_CAPACITY = 4096

_RECORD_FLOATS = 4
_COUNTER_BASE = 100
_PHASE_ID = {name: i for i, name in enumerate(PHASES)}
_COUNTER_ID = {name: _COUNTER_BASE + i for i, name in enumerate(COUNTERS)}


@dataclass(frozen=True)
class Span:
    """One recorded phase interval of one worker."""

    pid: int
    frame: int
    phase: str
    t0: float  # seconds since the recorder's epoch
    t1: float


@dataclass(frozen=True)
class CounterSample:
    """One recorded counter increment of one worker."""

    pid: int
    frame: int
    name: str
    value: float


def ring_bytes(capacity: int = DEFAULT_RING_CAPACITY) -> int:
    """Bytes one worker's ring occupies (cursor word + records)."""
    return (1 + capacity * _RECORD_FLOATS) * 8


def ring_views(
    buf, pid: int, capacity: int = DEFAULT_RING_CAPACITY
) -> tuple[np.ndarray, np.ndarray]:
    """(cursor, records) views of worker ``pid``'s ring inside ``buf``.

    ``buf`` is any buffer-protocol object (a ``SharedMemory.buf`` or a
    ``bytearray``) holding ``n_procs`` consecutive rings.  Both the
    recording process and the draining process build their views through
    this, so the layout lives in exactly one place.
    """
    off = pid * ring_bytes(capacity)
    cursor = np.ndarray((1,), np.float64, buffer=buf, offset=off)
    records = np.ndarray(
        (capacity, _RECORD_FLOATS), np.float64, buffer=buf, offset=off + 8
    )
    return cursor, records


class SpanRecorder:
    """Appends spans/counters to one ring.  ``None`` is the disabled form.

    Callers guard every use with ``if rec is not None`` — there is no
    null-object indirection on the hot path, and a disabled run performs
    zero observability work (asserted by the bit-identity test).
    """

    __slots__ = ("cursor", "records", "capacity", "epoch")

    def __init__(self, cursor: np.ndarray, records: np.ndarray, epoch: float = 0.0) -> None:
        self.cursor = cursor
        self.records = records
        self.capacity = len(records)
        self.epoch = epoch

    @classmethod
    def in_memory(
        cls, capacity: int = DEFAULT_RING_CAPACITY, epoch: float | None = None
    ) -> "SpanRecorder":
        """A private (non-shared) ring for in-process renderers."""
        buf = bytearray(ring_bytes(capacity))
        cursor, records = ring_views(buf, 0, capacity)
        return cls(cursor, records, perf_counter() if epoch is None else epoch)

    @classmethod
    def over(
        cls, buf, pid: int, capacity: int = DEFAULT_RING_CAPACITY, epoch: float = 0.0
    ) -> "SpanRecorder":
        """Recorder over worker ``pid``'s ring in a shared buffer."""
        cursor, records = ring_views(buf, pid, capacity)
        return cls(cursor, records, epoch)

    def now(self) -> float:
        """Seconds since this recorder's epoch (the span timebase)."""
        return perf_counter() - self.epoch

    def _put(self, frame: int, code: int, a: float, b: float) -> None:
        n = int(self.cursor[0])
        self.records[n % self.capacity] = (frame, code, a, b)
        self.cursor[0] = n + 1

    def span(self, frame: int, phase: str, t0: float, t1: float) -> None:
        """Record one phase interval (epoch-relative seconds)."""
        self._put(frame, _PHASE_ID[phase], t0, t1)

    def count(self, frame: int, name: str, value: float) -> None:
        """Record one counter increment (zero increments are skipped)."""
        if value:
            self._put(frame, _COUNTER_ID[name], float(value), 0.0)

    def written(self) -> int:
        """Total records ever appended (monotonic, not ring-clamped)."""
        return int(self.cursor[0])


class RingReader:
    """Incremental drain of one worker's ring from the parent side."""

    __slots__ = ("cursor", "records", "capacity", "pid", "_read", "dropped")

    def __init__(self, cursor: np.ndarray, records: np.ndarray, pid: int) -> None:
        self.cursor = cursor
        self.records = records
        self.capacity = len(records)
        self.pid = pid
        self._read = 0
        self.dropped = 0  # records overwritten before they were drained

    @classmethod
    def over(
        cls, buf, pid: int, capacity: int = DEFAULT_RING_CAPACITY
    ) -> "RingReader":
        cursor, records = ring_views(buf, pid, capacity)
        return cls(cursor, records, pid)

    def drain(self) -> list[Span | CounterSample]:
        """Decode every record appended since the previous drain."""
        end = int(self.cursor[0])
        start = max(self._read, end - self.capacity)
        self.dropped += start - self._read
        out: list[Span | CounterSample] = []
        for i in range(start, end):
            frame, code, a, b = self.records[i % self.capacity]
            frame, code = int(frame), int(code)
            if code >= _COUNTER_BASE:
                out.append(
                    CounterSample(self.pid, frame, COUNTERS[code - _COUNTER_BASE], a)
                )
            else:
                out.append(Span(self.pid, frame, PHASES[code], a, b))
        self._read = end
        return out
