"""Per-frame timelines and Chrome trace-event export.

The parent (pool or harness) buckets drained :class:`~.recorder.Span` /
:class:`~.recorder.CounterSample` records by frame into
:class:`FrameTimeline` objects, and a list of timelines serializes to
the Chrome trace-event JSON format — the ``{"traceEvents": [...]}``
shape Perfetto and ``chrome://tracing`` load directly.  Each worker
becomes one named thread track; spans become complete (``"X"``) events
in microseconds; counters become counter (``"C"``) events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .recorder import PHASES, CounterSample, RingReader, Span

__all__ = [
    "FrameTimeline",
    "assemble_timelines",
    "chrome_trace_events",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "summarize_trace",
]

#: Synthetic process id for the render pool in the trace (one process,
#: one thread track per worker).
TRACE_PID = 1


@dataclass
class FrameTimeline:
    """Everything the workers recorded while rendering one frame."""

    frame: int
    spans: list[Span] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)

    def add(self, rec: Span | CounterSample) -> None:
        if isinstance(rec, Span):
            self.spans.append(rec)
        else:
            self.counters.append(rec)

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per phase, summed over workers."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.phase] = out.get(s.phase, 0.0) + (s.t1 - s.t0)
        return out

    def busy_by_pid(self) -> dict[int, float]:
        """Per-worker compute seconds (composite + profile + warp)."""
        out: dict[int, float] = {}
        for s in self.spans:
            if s.phase in ("composite", "warp"):
                # "profile" spans nest inside "composite" spans (the
                # cost collapse happens mid-phase), so adding them here
                # would double-count.
                out[s.pid] = out.get(s.pid, 0.0) + (s.t1 - s.t0)
        return out

    def counter_totals(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for c in self.counters:
            out[c.name] = out.get(c.name, 0.0) + c.value
        return out


def assemble_timelines(readers: list[RingReader]) -> list[FrameTimeline]:
    """Drain every reader once and bucket all records by frame."""
    by_frame: dict[int, FrameTimeline] = {}
    for reader in readers:
        for rec in reader.drain():
            tl = by_frame.get(rec.frame)
            if tl is None:
                tl = by_frame[rec.frame] = FrameTimeline(rec.frame)
            tl.add(rec)
    return [by_frame[f] for f in sorted(by_frame)]


def chrome_trace_events(
    timelines: list[FrameTimeline],
    *,
    process_name: str = "repro render pool",
    worker_name: str = "worker {pid}",
) -> list[dict]:
    """Flatten timelines into Chrome trace-event dicts (ts/dur in µs)."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    pids = sorted({s.pid for tl in timelines for s in tl.spans})
    for pid in pids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": pid,
                "args": {"name": worker_name.format(pid=pid)},
            }
        )
    # The recorder appends spans at their *end* time, so a nested span
    # (profile inside composite) precedes its parent in ring order; sort
    # by (track, start, longest-first) so each track's timestamps are
    # monotonic and enclosing spans come before the spans they contain.
    span_events = [
        {
            "name": s.phase,
            "cat": "render",
            "ph": "X",
            "pid": TRACE_PID,
            "tid": s.pid,
            "ts": round(s.t0 * 1e6, 3),
            "dur": round(max(0.0, s.t1 - s.t0) * 1e6, 3),
            "args": {"frame": tl.frame},
        }
        for tl in timelines
        for s in tl.spans
    ]
    span_events.sort(key=lambda ev: (ev["tid"], ev["ts"], -ev["dur"]))
    events.extend(span_events)
    for tl in timelines:
        for c in tl.counters:
            # Counter events render as per-track area charts; anchor each
            # sample at the end of its frame's last span on that worker.
            ts = max(
                (s.t1 for s in tl.spans if s.pid == c.pid), default=0.0
            )
            events.append(
                {
                    "name": f"{c.name}[{c.pid}]",
                    "cat": "render",
                    "ph": "C",
                    "pid": TRACE_PID,
                    "tid": c.pid,
                    "ts": round(ts * 1e6, 3),
                    "args": {c.name: c.value, "frame": tl.frame},
                }
            )
    return events


def export_chrome_trace(
    path: str,
    timelines: list[FrameTimeline],
    *,
    metadata: dict | None = None,
    process_name: str = "repro render pool",
) -> None:
    """Write timelines as a Chrome trace-event JSON file."""
    doc = {
        "traceEvents": chrome_trace_events(timelines, process_name=process_name),
        "displayTimeUnit": "ms",
        "otherData": metadata or {},
    }
    with open(path, "w") as f:
        json.dump(doc, f)
        f.write("\n")


def load_chrome_trace(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def validate_chrome_trace(
    trace: dict, *, require_phases: tuple[str, ...] = ("composite", "warp")
) -> list[str]:
    """Schema/sanity problems of a trace document; empty means valid.

    Checks the shape Perfetto needs (``traceEvents`` list, every event a
    dict with ``name``/``ph``/``pid``/``tid``, every ``X`` event with
    non-negative ``ts``/``dur``), that at least one span of each phase in
    ``require_phases`` exists, and that each worker track's span
    *start* timestamps are monotonically non-decreasing — the recorder
    appends in time order, so regressions mean a corrupted ring.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    seen_phases: set[str] = set()
    last_ts: dict[int, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        if not {"name", "ph", "pid", "tid"} <= ev.keys():
            problems.append(f"event {i} lacks name/ph/pid/tid")
            continue
        if ev["ph"] == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                problems.append(f"event {i} ({ev['name']}) lacks numeric ts/dur")
                continue
            if ts < 0 or dur < 0:
                problems.append(f"event {i} ({ev['name']}) has negative ts/dur")
            tid = ev["tid"]
            if ts < last_ts.get(tid, 0.0):
                problems.append(
                    f"event {i} ({ev['name']}): ts regresses on track {tid}"
                )
            last_ts[tid] = ts
            if ev["name"] in PHASES:
                seen_phases.add(ev["name"])
    missing = [p for p in require_phases if p not in seen_phases]
    if missing:
        problems.append(f"no spans for required phase(s): {', '.join(missing)}")
    return problems


def summarize_trace(trace: dict) -> dict:
    """Collapse a trace document into per-phase and per-frame summaries.

    Returns ``{"phases": {phase: {"count", "total_s", "mean_s",
    "max_s"}}, "frames": {frame: {tid: busy_s}}, "counters": {name:
    total}, "n_tracks": int}`` — the data ``repro stats`` prints.  Span
    (``X``) events feed the phase table; busy time per frame/track is
    composite + warp; counter (``C``) events are summed over workers and
    frames by name (``steals``, ``steal_rows``, ``rows``, cache
    hits/misses).
    """
    phases: dict[str, dict[str, float]] = {}
    frames: dict[int, dict[int, float]] = {}
    counters: dict[str, float] = {}
    tracks: set[int] = set()
    for ev in trace.get("traceEvents", []):
        if not isinstance(ev, dict):
            continue
        if ev.get("ph") == "C":
            for key, value in ev.get("args", {}).items():
                if key != "frame" and isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0.0) + value
            continue
        if ev.get("ph") != "X":
            continue
        name, dur = ev.get("name"), float(ev.get("dur", 0.0)) / 1e6
        tracks.add(ev.get("tid"))
        st = phases.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        st["count"] += 1
        st["total_s"] += dur
        st["max_s"] = max(st["max_s"], dur)
        if name in ("composite", "warp"):
            frame = ev.get("args", {}).get("frame")
            if frame is not None:
                row = frames.setdefault(int(frame), {})
                row[ev["tid"]] = row.get(ev["tid"], 0.0) + dur
    for st in phases.values():
        st["mean_s"] = st["total_s"] / st["count"] if st["count"] else 0.0
    return {"phases": phases, "frames": frames, "counters": counters,
            "n_tracks": len(tracks)}
