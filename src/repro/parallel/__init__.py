"""Execution models: event-driven logical processors and multiprocessing."""

from .execution import FrameReport, PhaseReport, simulate_animation, simulate_frame
from .mp_backend import (
    FrameFailed,
    FrameTimeout,
    MPPoolError,
    MPRenderPool,
    MPRenderResult,
    PoolClosed,
    PoolConfig,
    PoolUnrecoverable,
    WorkerDied,
    render_parallel_mp,
)
from .scheduler import ProcSchedule, ScheduleResult, Unit, schedule

__all__ = [
    "FrameReport",
    "PhaseReport",
    "simulate_frame",
    "simulate_animation",
    "MPRenderPool",
    "MPRenderResult",
    "PoolConfig",
    "MPPoolError",
    "FrameFailed",
    "FrameTimeout",
    "WorkerDied",
    "PoolClosed",
    "PoolUnrecoverable",
    "render_parallel_mp",
    "ProcSchedule",
    "ScheduleResult",
    "Unit",
    "schedule",
]
