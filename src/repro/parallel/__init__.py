"""Execution models: event-driven logical processors and multiprocessing."""

from .execution import FrameReport, PhaseReport, simulate_animation, simulate_frame
from .scheduler import ProcSchedule, ScheduleResult, Unit, schedule

__all__ = [
    "FrameReport",
    "PhaseReport",
    "simulate_frame",
    "simulate_animation",
    "ProcSchedule",
    "ScheduleResult",
    "Unit",
    "schedule",
]
