"""Execution models: event-driven logical processors and multiprocessing."""

from .backend import BackendCapabilities, FrameSpec, RenderBackend, as_frame_specs
from .execution import FrameReport, PhaseReport, simulate_animation, simulate_frame
from .mp_backend import (
    FrameFailed,
    FrameTimeout,
    MPPoolError,
    MPRenderPool,
    MPRenderResult,
    PoolClosed,
    PoolConfig,
    PoolUnrecoverable,
    WorkerDied,
    render_parallel_mp,
)
from .scheduler import ProcSchedule, ScheduleResult, Unit, schedule
from .thread_backend import ThreadRenderPool, render_parallel_threads

__all__ = [
    "RenderBackend",
    "BackendCapabilities",
    "FrameSpec",
    "as_frame_specs",
    "FrameReport",
    "PhaseReport",
    "simulate_frame",
    "simulate_animation",
    "MPRenderPool",
    "MPRenderResult",
    "PoolConfig",
    "MPPoolError",
    "FrameFailed",
    "FrameTimeout",
    "WorkerDied",
    "PoolClosed",
    "PoolUnrecoverable",
    "render_parallel_mp",
    "ThreadRenderPool",
    "render_parallel_threads",
    "ProcSchedule",
    "ScheduleResult",
    "Unit",
    "schedule",
]
