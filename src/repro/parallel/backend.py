"""The ``RenderBackend`` protocol: one seam over every execution model.

The repo grew three ways to turn a viewing matrix into pixels — the
fork-based :class:`~repro.parallel.mp_backend.MPRenderPool`, the no-fork
:class:`~repro.parallel.thread_backend.ThreadRenderPool`, and the
multi-pool :class:`~repro.shard.ShardedRenderService` — each with its
own constructor but, by design, bit-identical output.  Code that only
*consumes* frames (the movie pipeline, the render service) should not
care which one it holds.  This module is the first slice of the ROADMAP
item 5 API redesign: a minimal structural protocol all three conform to,

- ``submit_batch(frame_specs) -> list[frame_id]`` — enqueue a batch of
  :class:`FrameSpec` (or bare views; see :func:`as_frame_specs`),
- ``result(frame_id)`` — block for one frame's result, in any order,
- ``close()`` — release workers/pools,
- ``capabilities`` — a :class:`BackendCapabilities` struct callers can
  branch on instead of ``isinstance`` checks.

``RenderBackend`` is ``runtime_checkable`` so ``isinstance(pool,
RenderBackend)`` works as a structural test, with the usual caveat that
only method *presence* is checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "BackendCapabilities",
    "FrameSpec",
    "RenderBackend",
    "as_frame_specs",
]


@dataclass(frozen=True)
class FrameSpec:
    """One frame of work, backend-agnostically.

    ``view`` is a 4x4 viewing matrix (or anything the renderer's
    ``factorize_view`` accepts).  ``timestep`` selects the encoding of a
    time-varying renderer — ``None`` means "the static volume", which
    every renderer accepts.  ``region`` optionally restricts compositing
    to a :class:`~repro.parallel.mp_backend.FrameRegion` (the shard
    service uses this internally; most callers leave it ``None``).
    """

    view: np.ndarray
    timestep: int | None = None
    region: object | None = None


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, as data instead of ``isinstance`` checks.

    ``trace``    — can export a Chrome trace (``export_chrome_trace``).
    ``steal``    — runs the chunked claim/steal loop (steal counters are
                   meaningful).
    ``profile``  — runs the §4.2 profile feedback loop across frames.
    ``shard``    — splits the intermediate image across multiple pools
                   (``shards`` > 1 semantics; merge counters exist).
    """

    trace: bool = False
    steal: bool = False
    profile: bool = False
    shard: bool = False


@runtime_checkable
class RenderBackend(Protocol):
    """Structural protocol every render pool conforms to."""

    @property
    def capabilities(self) -> BackendCapabilities: ...

    def submit_batch(self, frame_specs: Sequence) -> list[int]: ...

    def result(self, frame_id: int): ...

    def close(self) -> None: ...


def as_frame_specs(frame_specs: Sequence) -> list[FrameSpec]:
    """Normalize a ``submit_batch`` argument to a list of FrameSpec.

    Accepts :class:`FrameSpec` instances and bare views (arrays)
    interchangeably, so existing ``submit_batch(views)`` callers keep
    working unchanged while movie callers pass specs with timesteps.
    """
    out: list[FrameSpec] = []
    for spec in frame_specs:
        if isinstance(spec, FrameSpec):
            out.append(spec)
        else:
            out.append(FrameSpec(view=spec))
    return out
