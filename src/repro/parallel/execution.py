"""Hardware-platform execution model: frame + machine -> time breakdown.

Combines the three substrates exactly the way the paper's methodology
does:

1. the **scheduler** replays the frame's tasks on P logical processors
   (initial assignment + chunked stealing) giving per-processor busy
   time, steal overhead, and execution order;
2. the **coherence simulator** replays the per-processor memory traces
   (in execution order, round-robin interleaved) giving per-processor
   miss counts by class and locality kind — cache state persists from
   the compositing phase into the warp phase, which is precisely where
   the new algorithm's reuse pays off;
3. the **cost model** converts misses into stall cycles with contention.

The phase structure differs between the algorithms: the old one needs a
global barrier between compositing and warp (processors warp tiles
composited by others), the new one lets each processor roll straight
from compositing its partition into warping it (section 4.5 / 5.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.frame import ParallelFrame
from ..memsim.address import AddressSpace
from ..memsim.coherence import CoherentSystem, MissStats
from ..memsim.costmodel import StallModel, memory_stalls
from ..memsim.machine import MachineConfig
from ..memsim.trace import build_streams, replay_interleaved
from .scheduler import ScheduleResult, Unit, schedule

__all__ = ["PhaseReport", "FrameReport", "simulate_frame", "simulate_animation"]


@dataclass
class PhaseReport:
    """Timing of one phase (compositing or warp) on P processors."""

    name: str
    busy: np.ndarray  # per-proc compute cycles
    steal: np.ndarray  # per-proc steal/lock overhead cycles
    mem: np.ndarray  # per-proc memory stall cycles
    stats: MissStats
    stall_model: StallModel
    sched: ScheduleResult

    @property
    def proc_totals(self) -> np.ndarray:
        return self.busy + self.steal + self.mem

    @property
    def span(self) -> float:
        """Phase completion time (all processors done)."""
        return float(np.max(self.proc_totals)) if len(self.busy) else 0.0


@dataclass
class FrameReport:
    """Complete simulated timing of one frame on one machine."""

    machine: MachineConfig
    n_procs: int
    algorithm: str
    composite: PhaseReport
    warp: PhaseReport
    barrier_cycles: float
    total_time: float

    def breakdown(self) -> dict[str, float]:
        """Cumulative cycles across processors by category (Figure 5/14).

        ``sync`` is barrier/imbalance wait plus stealing overhead —
        everything that is neither instruction execution nor memory
        stall, matching the paper's three-way split.
        """
        busy = float(self.composite.busy.sum() + self.warp.busy.sum())
        mem = float(self.composite.mem.sum() + self.warp.mem.sum())
        total_all = self.total_time * self.n_procs
        sync = max(0.0, total_all - busy - mem)
        return {"busy": busy, "memory": mem, "sync": sync, "total": total_all}

    def fractions(self) -> dict[str, float]:
        b = self.breakdown()
        t = b["total"] or 1.0
        return {k: v / t for k, v in b.items() if k != "total"}


def _phase(
    name: str,
    tasks,
    queues,
    machine: MachineConfig,
    system: CoherentSystem,
    addr: AddressSpace,
    steal_chunk: int,
    allow_stealing: bool,
    key_order: tuple[int, ...] | None = None,
    refine: int = 1,
) -> PhaseReport:
    # Scheduling (idleness, steal victims) reacts to estimated wall-clock
    # time: busy cycles plus a memory estimate (one local-latency miss
    # per estimated cache-line touch).  Busy time stays the pure compute.
    t_line = machine.mem_per_line_touch
    mem_factor = {uid: 1.0 for uid in tasks}

    def _run():
        unit_queues = [
            [
                Unit(
                    uid,
                    cost=tasks[uid].cost
                    + tasks[uid].trace_line_touches * t_line * mem_factor[uid],
                    busy=tasks[uid].cost,
                )
                for uid in q
            ]
            for q in queues
        ]
        sched = schedule(
            unit_queues,
            steal_chunk=max(1, steal_chunk),
            steal_cost=machine.steal_cost,
            allow_stealing=allow_stealing,
        )
        stats = system.new_scope()
        streams = build_streams(tasks, sched, addr, key_order=key_order)
        replay_interleaved(system, streams)
        return sched, stats

    if allow_stealing and refine > 0 and len(queues) > 1:
        # Two-pass refinement: real task stealing reacts to *elapsed*
        # time, which includes memory stalls the a-priori estimate
        # cannot know.  Replay once, derive per-processor memory-rate
        # corrections, then re-run schedule + replay from the same
        # starting cache state with corrected per-task costs.
        snap = system.snapshot()
        sched1, stats1 = _run()
        busy1 = np.array([p.busy for p in sched1.procs])
        model1 = memory_stalls(stats1, machine, busy1)
        for pid, proc in enumerate(sched1.procs):
            est = sum(tasks[uid].trace_line_touches * t_line for uid in proc.executed)
            factor = model1.stalls[pid] / est if est > 0 else 1.0
            for uid in proc.executed:
                mem_factor[uid] = max(0.1, factor)
        system.restore(snap)

    sched, stats = _run()
    busy = np.array([p.busy for p in sched.procs])
    steal = np.array([p.steal_overhead for p in sched.procs])
    model = memory_stalls(stats, machine, busy)
    return PhaseReport(
        name=name,
        busy=busy,
        steal=steal,
        mem=model.stalls,
        stats=stats,
        stall_model=model,
        sched=sched,
    )


def simulate_frame(
    frame: ParallelFrame,
    machine: MachineConfig,
    system: CoherentSystem | None = None,
    addr: AddressSpace | None = None,
    refine: int = 1,
) -> FrameReport:
    """Simulate one recorded frame on ``machine``.

    Pass a persistent ``system`` (and its ``addr``) to carry cache and
    directory state across frames — see :func:`simulate_animation`.
    """
    n = frame.n_procs
    if frame.kernel != "scanline":
        raise ValueError(
            f"frame was recorded with the {frame.kernel!r} kernel, which "
            "carries no memory traces; record with kernel='scanline' to simulate"
        )
    if addr is None:
        addr = AddressSpace.layout(frame.region_sizes, machine.page_bytes)
    if system is None:
        system = CoherentSystem(n, machine, addr)

    comp = _phase(
        "composite", frame.composite_units, frame.composite_queues,
        machine, system, addr,
        steal_chunk=frame.steal_chunk, allow_stealing=frame.composite_stealing,
        key_order=frame.slice_order, refine=refine,
    )
    warp = _phase(
        "warp", frame.warp_tasks, frame.warp_queues,
        machine, system, addr,
        steal_chunk=1, allow_stealing=frame.warp_stealing,
    )

    barrier = machine.barrier_cost(n)
    if frame.algorithm == "old":
        # Global barrier between the phases, and one ending the frame.
        total = comp.span + warp.span + 2 * barrier
    else:
        # Each processor rolls from compositing into warping its own
        # partition; only the frame-end barrier remains.
        per_proc = comp.proc_totals + warp.proc_totals
        total = float(np.max(per_proc)) + barrier
    return FrameReport(
        machine=machine,
        n_procs=n,
        algorithm=frame.algorithm,
        composite=comp,
        warp=warp,
        barrier_cycles=barrier,
        total_time=total,
    )


def simulate_animation(
    frames: list[ParallelFrame], machine: MachineConfig, refine: int = 1
) -> FrameReport:
    """Simulate an animation and report the **last** frame's timing.

    The paper measures steady-state animation: caches and directory
    state carry over between frames, so a frame's misses reflect what
    the previous frame left behind.  This is where the old algorithm's
    phase-interface communication shows up as *true sharing* — a
    processor re-reads intermediate-image lines it cached in an earlier
    frame's warp, finding them invalidated by whoever composited them
    this frame.  A cold single-frame simulation misclassifies all of
    that as cold misses.
    """
    if not frames:
        raise ValueError("need at least one frame")
    n = frames[0].n_procs
    if any(f.n_procs != n for f in frames):
        raise ValueError("all frames must use the same processor count")
    # One address space covering every frame (sizes vary slightly as the
    # view rotates; bases must stay fixed for cache state to be shared).
    sizes: dict[str, int] = {}
    for f in frames:
        for region, size in f.region_sizes.items():
            sizes[region] = max(sizes.get(region, 0), size)
    addr = AddressSpace.layout(sizes, machine.page_bytes)
    system = CoherentSystem(n, machine, addr)
    report = None
    for frame in frames:
        report = simulate_frame(frame, machine, system=system, addr=addr,
                                refine=refine)
    return report
