"""Real shared-address-space execution via ``multiprocessing``.

The event-driven model in :mod:`repro.parallel.execution` reproduces the
paper's 1997 platforms; this module runs the same two partitioning
schemes for real on a modern multicore host.  The GIL rules out threads
for compute-bound Python, so worker *processes* share the image buffers
through ``multiprocessing.shared_memory`` — writes land in truly shared
pages, exactly the shared-address-space programming model of the paper.
The read-only renderer state (classified volume, RLE encodings) reaches
workers for free through ``fork``.

:class:`MPRenderPool` keeps the workers and the shared buffers alive
across frames, which is what makes animation rendering viable: fork,
shared-memory setup and the first slice decodes are paid once, and the
image segments are double-buffered so the parent overlaps zeroing and
result materialisation with the next frame's compositing.  Each worker
composites its contiguous partition through the block kernel
(:func:`repro.render.block.composite_scanline_block`) by default, so the
per-scanline Python overhead the paper's processors never had does not
throttle the measured speedup; ``kernel="scanline"`` selects the
instrumented reference kernel instead (bit-identical output either way).

The pool runs the paper's profile feedback loop (sections 4.2-4.3) for
real: on frames a :class:`~repro.core.profiling.ProfileSchedule` marks
for profiling, each worker collapses its partition's per-row work
counters into per-scanline costs and ships them back with its done
message; the parent assembles a
:class:`~repro.core.profiling.ScanlineProfile` and partitions subsequent
frames with :func:`~repro.core.partition.contiguous_partition` over that
profile instead of the uniform split.  The same boundaries drive
warp-row ownership (section 4.5), and the profile is invalidated when
the principal axis / permutation changes (the intermediate-image
scanline coordinates it was measured in no longer exist).
``profile_period=0`` disables the loop (always-uniform partitions);
either way the images are bit-identical, only the load balance moves.

On a single-core host this still runs correctly (and is exercised by the
test suite); the wall-clock speedup study is
``examples/multicore_speedup.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..core.partition import (
    contiguous_partition,
    line_ownership,
    uniform_contiguous_partition,
)
from ..core.profiling import (
    ProfileSchedule,
    ScanlineProfile,
    scanline_cost,
    scanline_cost_rows,
)
from ..obs.metrics import MetricsRegistry, busy_spread, metrics_from_timelines
from ..obs.recorder import DEFAULT_RING_CAPACITY, RingReader, SpanRecorder, ring_bytes
from ..obs.timeline import FrameTimeline
from ..obs.timeline import export_chrome_trace as _export_chrome_trace
from ..render.block import BlockRowCounters, composite_scanline_block
from ..render.compositing import composite_image_scanline, nonempty_scanline_bounds
from ..render.image import FinalImage, IntermediateImage
from ..render.instrument import WorkCounters
from ..render.serial import ShearWarpRenderer
from ..render.warp import final_pixel_source_lines, warp_scanline
from ..transforms.factorization import PERMUTATIONS, ShearWarpFactorization

__all__ = ["MPRenderPool", "MPRenderResult", "render_parallel_mp", "COMPOSITE_KERNELS"]

#: Compositing kernels a worker can run over its partition.
COMPOSITE_KERNELS = ("scanline", "block")

# Worker globals installed by fork (read-only for the volume; the images
# are views onto shared memory, partitioned so no two workers write the
# same bytes).  The parent clears this right after the workers fork so
# renderer state cannot leak into a later pool's fork snapshot.
_G: dict = {}


@dataclass
class MPRenderResult:
    """Output of a real parallel render.

    Besides the images, the pool reports how the frame was split and how
    long each worker actually computed (``busy_s[pid]``, compositing +
    warp CPU time, barrier waits excluded) — the observables the
    paper's load-balance evaluation is built on.
    """

    final: FinalImage
    intermediate: IntermediateImage
    fact: ShearWarpFactorization
    n_procs: int
    boundaries: np.ndarray | None = None
    profiled: bool = False
    busy_s: np.ndarray | None = field(default=None, repr=False)
    timeline: FrameTimeline | None = field(default=None, repr=False)

    @property
    def busy_spread(self) -> float | None:
        """Per-worker busy-time spread ``(max - min) / mean`` (see
        :func:`repro.obs.busy_spread`); ``None`` if busy times are absent."""
        return None if self.busy_s is None else busy_spread(self.busy_s)


def _capacity_shapes(
    vol_shape: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Largest (intermediate, final) image shapes any view can produce.

    The factorization guarantees ``|shear| <= 1`` along the principal
    axis, so for permutation ``(ni, nj, nk)`` the intermediate image is
    at most ``(nj + nk, ni + nk)``; the residual warp is a rotation plus
    translation of that rectangle, bounded by its diagonal.
    """
    cap_u = cap_v = 0
    for perm in PERMUTATIONS.values():
        ni, nj, nk = (vol_shape[perm[0]], vol_shape[perm[1]], vol_shape[perm[2]])
        cap_u = max(cap_u, int(np.ceil((ni - 1) + (nk - 1))) + 2)
        cap_v = max(cap_v, int(np.ceil((nj - 1) + (nk - 1))) + 2)
    diag = int(np.ceil(np.hypot(cap_u - 1, cap_v - 1))) + 2
    return (cap_v, cap_u), (diag, diag)


def _worker_loop(pid: int) -> None:
    """Composite and warp this worker's partition, frame after frame."""
    renderer: ShearWarpRenderer = _G["renderer"]
    kernel: str = _G["kernel"]
    jobs = _G["job_queues"][pid]
    done = _G["done_queue"]
    barrier = _G["barrier"]
    shm_i = _G["shm_i"]
    shm_f = _G["shm_f"]
    cap_iv, cap_iu = _G["inter_cap"]
    cap_fy, cap_fx = _G["final_cap"]
    inter_floats = cap_iv * cap_iu
    final_floats = cap_fy * cap_fx
    # Tracing is opt-in: ``rec`` stays None on untraced pools and every
    # recording site below is guarded, so the disabled path does zero
    # observability work (no clock reads, no allocation).
    shm_t = _G.get("shm_t")
    rec = (
        SpanRecorder.over(shm_t.buf, pid, _G["trace_capacity"], _G["trace_epoch"])
        if shm_t is not None else None
    )

    t_wait0 = 0.0 if rec is None else rec.now()
    while True:
        job = jobs.get()
        if job is None:
            return
        frame, buf, fact, v_lo, v_hi, owner, warp_rows, profiled = job
        if rec is not None:
            rec.span(frame, "wait", t_wait0, rec.now())
        err: str | None = None
        costs: np.ndarray | None = None
        t_comp = t_warp = 0.0
        # Span clocks pre-bound so the finally block can record even when
        # a phase died before its start time was taken (the bogus span is
        # discarded with the failed frame's timeline).
        tc0 = tb0 = 0.0
        cache_stats0: tuple[int, int] | None = None
        # CPU time, not wall clock: on an oversubscribed host a worker's
        # wall time includes slices it spent descheduled, which would
        # poison both the profile and the busy-time report.
        t0 = time.process_time()
        try:
            n_v, n_u = fact.intermediate_shape
            ny, nx = fact.final_shape
            base_i = buf * 2 * inter_floats
            base_f = buf * 2 * final_floats
            full_c = np.ndarray(
                (cap_iv, cap_iu), np.float32, buffer=shm_i.buf, offset=base_i * 4
            )
            full_o = np.ndarray(
                (cap_iv, cap_iu), np.float32, buffer=shm_i.buf,
                offset=(base_i + inter_floats) * 4,
            )
            img = IntermediateImage((n_v, n_u))
            img.color = full_c[:n_v, :n_u]
            img.opacity = full_o[:n_v, :n_u]

            try:
                if rec is not None:
                    td0 = rec.now()
                rle = renderer.rle_for(fact)
                if rec is not None:
                    tc0 = rec.now()
                    rec.span(frame, "decode", td0, tc0)
                    cache = rle.slice_cache
                    cache_stats0 = (cache.hits, cache.misses)
                if kernel == "block":
                    if profiled:
                        rows = BlockRowCounters(v_lo, v_hi)
                        composite_scanline_block(img, v_lo, v_hi, rle, fact,
                                                 row_counters=rows)
                        if rec is not None:
                            tp0 = rec.now()
                        costs = scanline_cost_rows(rows)
                        if rec is not None:
                            # Nested inside this frame's composite span.
                            rec.span(frame, "profile", tp0, rec.now())
                    else:
                        composite_scanline_block(img, v_lo, v_hi, rle, fact)
                else:
                    if profiled:
                        costs = np.zeros(max(0, v_hi - v_lo), dtype=np.float64)
                    for v in range(v_lo, v_hi):
                        if costs is not None:
                            counters = WorkCounters()
                            composite_image_scanline(img, v, rle, fact,
                                                     counters=counters)
                            costs[v - v_lo] = scanline_cost(counters)
                        else:
                            composite_image_scanline(img, v, rle, fact)
                if rec is not None:
                    rec.count(frame, "rows", v_hi - v_lo)
                    rec.count(frame, "cache_hits", cache.hits - cache_stats0[0])
                    rec.count(frame, "cache_misses",
                              cache.misses - cache_stats0[1])
            finally:
                # Busy time stops at the barrier: the wait measures the
                # *imbalance*, not this worker's work.
                t_comp = time.process_time() - t0
                if rec is not None:
                    tb0 = rec.now()
                    rec.span(frame, "composite", tc0, tb0)
                # Siblings block on this barrier no matter what happened
                # above — reaching it even on error prevents a deadlock.
                barrier.wait()
                if rec is not None:
                    rec.span(frame, "barrier", tb0, rec.now())

            t1 = time.process_time()
            if rec is not None:
                tw0 = rec.now()
            final = FinalImage((ny, nx))
            final.color = np.ndarray(
                (cap_fy, cap_fx), np.float32, buffer=shm_f.buf, offset=base_f * 4
            )[:ny, :nx]
            final.alpha = np.ndarray(
                (cap_fy, cap_fx), np.float32, buffer=shm_f.buf,
                offset=(base_f + final_floats) * 4,
            )[:ny, :nx]
            for y in warp_rows:
                warp_scanline(final, y, img, fact, line_owner=owner, pid=pid)
            t_warp = time.process_time() - t1
            if rec is not None:
                rec.span(frame, "warp", tw0, rec.now())
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            err = f"{type(exc).__name__}: {exc}"
            costs = None
        if rec is not None:
            t_wait0 = rec.now()
        done.put((pid, frame, err, int(v_lo), costs, t_comp, t_warp))


class MPRenderPool:
    """Persistent pool of render workers sharing double-buffered images.

    Parameters
    ----------
    renderer:
        The serial renderer whose volume/encodings the workers inherit
        through ``fork`` at pool construction.  (Re-create the pool if
        the renderer's volume changes.)
    n_procs:
        Worker process count.
    kernel:
        ``"block"`` (default) composites each partition through the
        vectorized block kernel; ``"scanline"`` uses the per-scanline
        reference kernel.  Both produce bit-identical images.
    buffers:
        Shared image buffers cycled across frames.  With two (the
        default), ``submit`` of frame ``n+1`` only waits for frame
        ``n-1``, overlapping the parent's zeroing/copy-out with the
        workers' compositing of the previous frame.
    profile_period:
        Re-profile every this many frames (the paper's ``k``, section
        4.2); frames in between are partitioned from the last measured
        profile.  ``0`` disables profiling entirely — every frame gets
        the uniform equal-count split.  The partition only changes *who
        composites which scanlines*, so the images are bit-identical
        across settings.
    trace:
        Record per-worker phase spans and counters into shared-memory
        ring buffers (:mod:`repro.obs`).  Completed frames carry a
        :class:`~repro.obs.FrameTimeline` on their result, the pool
        accumulates ``timelines`` and phase histograms in ``metrics``,
        and :meth:`export_chrome_trace` writes a Perfetto-loadable
        trace.  Off by default; the disabled path records nothing and
        the images are bit-identical either way.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        n_procs: int = 2,
        kernel: str = "block",
        buffers: int = 2,
        profile_period: int = 5,
        trace: bool = False,
        trace_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one worker")
        if kernel not in COMPOSITE_KERNELS:
            raise ValueError(f"kernel must be one of {COMPOSITE_KERNELS}, got {kernel!r}")
        if buffers < 1:
            raise ValueError("need at least one image buffer")
        if profile_period < 0:
            raise ValueError("profile_period must be >= 0 (0 disables profiling)")
        if trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if mp.get_start_method(allow_none=True) not in (None, "fork"):
            raise RuntimeError("MPRenderPool requires the fork start method")

        # Teardown-critical state first, with inert defaults: close() /
        # __del__ must work on a pool whose construction died at *any*
        # later point (failed shm allocation, fork failure, ...) without
        # AttributeErrors and without leaking shm segments.
        self._closed = False
        self._workers: list = []
        self._job_queues: list = []
        self._shm_i = self._shm_f = self._shm_t = None

        self.renderer = renderer
        self.n_procs = int(n_procs)
        self.kernel = kernel
        self.buffers = int(buffers)
        self.profile_period = int(profile_period)
        self.trace = bool(trace)
        self.trace_capacity = int(trace_capacity)
        self._schedule = (
            ProfileSchedule(period=self.profile_period)
            if self.profile_period > 0 else None
        )
        # Last assembled profile and the (axis, perm) it was measured
        # under — a principal-axis switch changes the intermediate-image
        # coordinate system, so the profile stops predicting anything.
        self._profile: ScanlineProfile | None = None
        self._profile_key: tuple[int, tuple[int, int, int]] | None = None
        self.inter_cap, self.final_cap = _capacity_shapes(renderer.shape)
        cap_iv, cap_iu = self.inter_cap
        cap_fy, cap_fx = self.final_cap
        self._inter_floats = cap_iv * cap_iu
        self._final_floats = cap_fy * cap_fx

        try:
            self._construct()
        except BaseException:
            self.close()
            raise

    def _construct(self) -> None:
        """Fallible half of ``__init__``: shm segments, fork, bookkeeping."""
        self._shm_i = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._inter_floats * 4
        )
        self._shm_f = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._final_floats * 4
        )
        # Zero through numpy views — never a full-size Python bytes object.
        np.ndarray(
            (self.buffers * 2 * self._inter_floats,), np.float32, buffer=self._shm_i.buf
        ).fill(0.0)
        np.ndarray(
            (self.buffers * 2 * self._final_floats,), np.float32, buffer=self._shm_f.buf
        ).fill(0.0)

        # Observability: the registry always exists (submit updates pool
        # health gauges either way); the span rings are allocated only
        # when tracing so an untraced pool carries no extra segment.
        self.metrics = MetricsRegistry()
        self.timelines: list[FrameTimeline] = []
        self._trace_epoch = time.perf_counter()
        self._readers: list[RingReader] = []
        self._frame_obs: dict[int, FrameTimeline] = {}
        self._last_boundaries: np.ndarray | None = None
        self._last_part_key: tuple[int, tuple[int, int, int]] | None = None
        if self.trace:
            self._shm_t = shared_memory.SharedMemory(
                create=True, size=self.n_procs * ring_bytes(self.trace_capacity)
            )
            np.ndarray(
                (self._shm_t.size // 8,), np.float64, buffer=self._shm_t.buf
            ).fill(0.0)
            self._readers = [
                RingReader.over(self._shm_t.buf, pid, self.trace_capacity)
                for pid in range(self.n_procs)
            ]

        ctx = mp.get_context("fork")
        self._job_queues = [ctx.SimpleQueue() for _ in range(self.n_procs)]
        self._done_queue = ctx.Queue()
        _G.update(
            renderer=self.renderer,
            kernel=self.kernel,
            job_queues=self._job_queues,
            done_queue=self._done_queue,
            barrier=ctx.Barrier(self.n_procs),
            shm_i=self._shm_i,
            shm_f=self._shm_f,
            inter_cap=self.inter_cap,
            final_cap=self.final_cap,
            shm_t=self._shm_t,
            trace_capacity=self.trace_capacity,
            trace_epoch=self._trace_epoch,
        )
        try:
            self._workers = [
                ctx.Process(target=_worker_loop, args=(pid,), daemon=True)
                for pid in range(self.n_procs)
            ]
            for w in self._workers:
                w.start()
        finally:
            # The fork snapshot is taken at start(); drop the parent-side
            # references so nothing leaks into a later pool's snapshot.
            _G.clear()

        self._next_frame = 0
        self._inflight: dict[int, dict] = {}  # frame -> per-frame record
        self._results: dict[int, MPRenderResult] = {}
        # Frames that completed with worker errors: frame -> error list.
        # Each frame's errors are raised only from its own result() call,
        # never from a sibling's collect.
        self._failed: dict[int, list[str]] = {}
        # Per-buffer state: the frame occupying it and the image shapes
        # its last occupant dirtied (so reuse only zeroes those regions).
        self._buf_frame: list[int | None] = [None] * self.buffers
        self._buf_dirty: list[tuple[tuple[int, int], tuple[int, int]] | None] = (
            [None] * self.buffers
        )

    # -- frame lifecycle -----------------------------------------------------

    def submit(self, view: np.ndarray) -> int:
        """Dispatch one frame to the workers; returns its frame id.

        Blocks only if every buffer is still occupied by an unfinished
        frame (with ``buffers=2`` that means two frames behind).  The
        partition is profile-balanced whenever a valid profile from an
        earlier frame exists, uniform otherwise.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        fact = self.renderer.factorize_view(view)
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        if (n_v, n_u) > self.inter_cap or (ny, nx) > self.final_cap:
            raise RuntimeError(
                f"frame shapes {(n_v, n_u)}/{(ny, nx)} exceed pool capacity "
                f"{self.inter_cap}/{self.final_cap} — is the view matrix scaled?"
            )

        rle = self.renderer.rle_for(fact)
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)

        # Pick up any frames (and their profiles) that finished while the
        # parent was elsewhere, so pipelined submits see the freshest
        # profile without blocking.
        self._drain_done()
        # Pool-health gauges, sampled at submit time: how deep the
        # pipeline is and how many shared buffers are still occupied by
        # unfinished frames.
        self.metrics.gauge("pool/queue_depth").set(len(self._inflight))
        self.metrics.gauge("pool/buffer_occupancy").set(
            sum(1 for f in self._buf_frame if f is not None and f in self._inflight)
        )
        if self._profile is not None and self._profile_key != (fact.axis, fact.perm):
            self._profile = None
            self.metrics.counter("pool/profile_invalidations").inc()
        profiled = False
        if self._schedule is not None:
            profiled = self._schedule.should_profile() or self._profile is None
            self._schedule.advance()
        boundaries = self._partition(v_lo, v_hi)
        # Partition-boundary drift between successive frames of the same
        # principal axis: how far the feedback loop moves the split.
        part_key = (fact.axis, fact.perm)
        if (
            self._last_boundaries is not None
            and self._last_part_key == part_key
            and len(self._last_boundaries) == len(boundaries)
        ):
            self.metrics.histogram("pool/boundary_drift").observe(
                float(np.abs(boundaries - self._last_boundaries).mean())
            )
        self._last_boundaries = boundaries
        self._last_part_key = part_key
        owner = line_ownership(boundaries, n_v)
        src_lines = final_pixel_source_lines((ny, nx), fact)
        rows_by_pid: list[list[int]] = [[] for _ in range(self.n_procs)]
        for y in range(ny):
            vmin = min(max(int(src_lines[y, 0]), 0), n_v - 1)
            vmax = min(max(int(src_lines[y, 1]), vmin + 1), n_v)
            for pid in np.unique(owner[vmin:vmax]):
                rows_by_pid[int(pid)].append(y)

        # Everything fallible is done — only now claim a frame id and a
        # buffer, so a failed submit leaves no bookkeeping behind (no
        # consumed id, no buffer marked occupied/dirty by a frame that
        # was never queued).
        frame = self._next_frame
        buf = frame % self.buffers
        prev = self._buf_frame[buf]
        if prev is not None and prev in self._inflight:
            self._collect(prev)  # materialises into _results / _failed
        self._next_frame += 1
        self._zero_buffer(buf)
        self._buf_frame[buf] = frame
        self._buf_dirty[buf] = ((n_v, n_u), (ny, nx))

        for pid in range(self.n_procs):
            self._job_queues[pid].put(
                (
                    frame,
                    buf,
                    fact,
                    int(boundaries[pid]),
                    int(boundaries[pid + 1]),
                    owner,
                    rows_by_pid[pid],
                    profiled,
                )
            )
        self._inflight[frame] = {
            "buf": buf,
            "fact": fact,
            "done": 0,
            "errors": [],
            "profiled": profiled,
            "v_lo": v_lo,
            "v_hi": v_hi,
            "costs": None,
            "busy": np.zeros(self.n_procs, dtype=np.float64),
            "boundaries": boundaries,
            "key": (fact.axis, fact.perm),
        }
        return frame

    def _partition(self, v_lo: int, v_hi: int) -> np.ndarray:
        """Contiguous boundaries for the next frame (section 4.3).

        The profile is in the frame-it-was-measured-on's scanline
        coordinates; successive animation viewpoints differ by a few
        degrees, so reusing the indices is the paper's prediction step.
        Boundaries are clamped to this frame's non-empty band.
        """
        prof = self._profile
        if prof is None or prof.total <= 0:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        prof = prof.trim_empty()
        if len(prof.costs) < self.n_procs:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        bounds = contiguous_partition(prof.costs, self.n_procs, v_lo=prof.v_lo)
        bounds = np.clip(bounds, v_lo, v_hi)
        bounds[0], bounds[-1] = v_lo, v_hi
        for p in range(1, self.n_procs + 1):
            bounds[p] = max(bounds[p], bounds[p - 1])
        return bounds

    def result(self, frame: int) -> MPRenderResult:
        """Wait for ``frame`` and return its images (copies).

        Raises the frame's *own* worker errors (and only those): errors
        of sibling frames collected along the way are stored and
        surfaced from their own ``result`` calls.
        """
        if frame in self._inflight:
            self._collect(frame)
        if frame in self._failed:
            raise RuntimeError("; ".join(self._failed.pop(frame)))
        if frame in self._results:
            return self._results.pop(frame)
        raise KeyError(f"unknown frame {frame}")

    def render(self, view: np.ndarray) -> MPRenderResult:
        """Render one frame synchronously."""
        return self.result(self.submit(view))

    def _collect(self, frame: int) -> None:
        """Drain done messages until ``frame`` completes (either way)."""
        while frame in self._inflight:
            try:
                msg = self._done_queue.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [w.pid for w in self._workers if not w.is_alive()]
                if dead:
                    raise RuntimeError(f"render worker(s) {dead} died") from None
                continue
            self._handle_done(msg)

    def _drain_done(self) -> None:
        """Absorb already-delivered done messages without blocking."""
        while True:
            try:
                msg = self._done_queue.get_nowait()
            except queue_mod.Empty:
                return
            self._handle_done(msg)

    def _handle_done(self, msg: tuple) -> None:
        """Account one worker's done message to its frame's record."""
        pid, frame, err, part_lo, costs, t_comp, t_warp = msg
        rec = self._inflight.get(frame)
        if rec is None:
            return
        rec["done"] += 1
        rec["busy"][pid] = t_comp + t_warp
        if err is not None:
            rec["errors"].append(f"worker {pid}: {err}")
        elif costs is not None and len(costs):
            if rec["costs"] is None:
                rec["costs"] = np.zeros(
                    max(0, rec["v_hi"] - rec["v_lo"]), dtype=np.float64
                )
            # Calibrate the op-count profile to measured *time*, which is
            # what the partition must balance (the paper's native profile
            # is elapsed time too): scale this worker's fragment so it
            # sums to its compositing CPU time, then spread its warp CPU
            # time evenly over its scanlines — warp rows follow scanline
            # ownership, so warp load moves with the boundaries.
            frag = np.asarray(costs, dtype=np.float64)
            total = frag.sum()
            if total > 0 and t_comp > 0:
                frag = frag * (t_comp / total)
            frag = frag + t_warp / len(frag)
            lo = part_lo - rec["v_lo"]
            rec["costs"][lo:lo + len(frag)] = frag
        if rec["done"] >= self.n_procs:
            self._finish(frame)

    def _finish(self, frame: int) -> None:
        """All workers reported: record failure or materialise the frame."""
        rec = self._inflight[frame]
        timeline = self._collect_timeline(frame)
        if rec["errors"]:
            # The frame's buffer regions stay marked dirty, so reuse
            # zeroes whatever the workers managed to write.  A failed
            # frame's timeline is dropped — its spans may be truncated.
            del self._inflight[frame]
            self._failed[frame] = list(rec["errors"])
            return
        if timeline is not None:
            self.timelines.append(timeline)
            metrics_from_timelines([timeline], self.metrics)
        if rec["profiled"] and rec["costs"] is not None:
            self._profile = ScanlineProfile(rec["v_lo"], rec["costs"])
            self._profile_key = rec["key"]
        self._materialize(frame, timeline)

    def _collect_timeline(self, frame: int) -> FrameTimeline | None:
        """Drain the span rings and return ``frame``'s assembled timeline.

        Every worker has posted its done message for ``frame`` by the
        time this runs, and each done message happens-after that
        worker's ring writes, so the frame's records are all visible.
        Records of *later* frames still in flight stay parked in
        ``_frame_obs`` until their own finish.
        """
        if not self.trace:
            return None
        for reader in self._readers:
            for r in reader.drain():
                tl = self._frame_obs.get(r.frame)
                if tl is None:
                    tl = self._frame_obs[r.frame] = FrameTimeline(r.frame)
                tl.add(r)
        dropped = sum(r.dropped for r in self._readers)
        if dropped:
            # Ring wrapped before the parent drained — never silent.
            self.metrics.gauge("trace/dropped_records").set(dropped)
        return self._frame_obs.pop(frame, None)

    def _materialize(self, frame: int, timeline: FrameTimeline | None = None) -> None:
        """Copy a completed frame out of its shared buffer."""
        info = self._inflight.pop(frame)
        fact: ShearWarpFactorization = info["fact"]
        buf = info["buf"]
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        img = IntermediateImage((n_v, n_u))
        img.color = self._inter_view(buf, 0)[:n_v, :n_u].copy()
        img.opacity = self._inter_view(buf, 1)[:n_v, :n_u].copy()
        final = FinalImage((ny, nx))
        final.color = self._final_view(buf, 0)[:ny, :nx].copy()
        final.alpha = self._final_view(buf, 1)[:ny, :nx].copy()
        self._results[frame] = MPRenderResult(
            final=final,
            intermediate=img,
            fact=fact,
            n_procs=self.n_procs,
            boundaries=info["boundaries"],
            profiled=info["profiled"],
            busy_s=info["busy"],
            timeline=timeline,
        )

    # -- shared-buffer plumbing ----------------------------------------------

    def _inter_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._inter_floats * 4
        return np.ndarray(self.inter_cap, np.float32, buffer=self._shm_i.buf, offset=off)

    def _final_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._final_floats * 4
        return np.ndarray(self.final_cap, np.float32, buffer=self._shm_f.buf, offset=off)

    def _zero_buffer(self, buf: int) -> None:
        """Zero only the regions the buffer's previous frame wrote."""
        dirty = self._buf_dirty[buf]
        if dirty is None:
            return  # fresh buffer, already zero
        (n_v, n_u), (ny, nx) = dirty
        for plane in (0, 1):
            self._inter_view(buf, plane)[:n_v, :n_u].fill(0.0)
            self._final_view(buf, plane)[:ny, :nx].fill(0.0)
        self._buf_dirty[buf] = None

    # -- observability -------------------------------------------------------

    def export_chrome_trace(self, path: str, metadata: dict | None = None) -> None:
        """Write every completed frame's timeline as Chrome trace JSON.

        The file loads in Perfetto / ``chrome://tracing`` with one track
        per worker.  Requires the pool to have been built with
        ``trace=True``.
        """
        if not self.trace:
            raise RuntimeError("pool was created without trace=True")
        meta = {
            "n_procs": self.n_procs,
            "kernel": self.kernel,
            "profile_period": self.profile_period,
            "frames": len(self.timelines),
        }
        if metadata:
            meta.update(metadata)
        _export_chrome_trace(path, self.timelines, metadata=meta)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the shared buffers.

        Safe on a partially-constructed pool (``__init__`` failed midway):
        every teardown step tolerates missing or half-built state, and
        whatever shm segments were created are unlinked.
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for q in getattr(self, "_job_queues", []):
            try:
                q.put(None)
            except Exception:  # noqa: BLE001 - queue may be half-built
                pass
        for w in getattr(self, "_workers", []):
            try:
                if w.pid is None:  # never started (start() failed earlier)
                    continue
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
                    w.join()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        for name in ("_shm_i", "_shm_f", "_shm_t"):
            shm = getattr(self, name, None)
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked

    def __enter__(self) -> "MPRenderPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort if close() was forgotten
        try:
            self.close()
        except Exception:
            pass


def render_parallel_mp(
    renderer: ShearWarpRenderer,
    view: np.ndarray,
    n_procs: int = 2,
    kernel: str = "block",
    profile_period: int = 0,
    trace: bool = False,
) -> MPRenderResult:
    """Render one frame with ``n_procs`` worker processes.

    Uses the *new* algorithm's structure: contiguous intermediate-image
    partitions, profile-balanced via the pool's feedback loop when
    ``profile_period > 0``, reused across both phases with the
    boundary-pair ownership rule.  A barrier still separates the phases:
    however the partition is balanced, a worker's warp rows bilinearly
    sample the boundary scanline pair its neighbor composited, so the
    warp may only start once compositing is complete everywhere.

    One-shot convenience over :class:`MPRenderPool` — for animations
    (where a measured profile actually has a next frame to balance),
    keep a pool alive across frames instead.  ``profile_period``
    defaults to 0 here because a single frame can never benefit from its
    own profile.
    """
    with MPRenderPool(
        renderer, n_procs=n_procs, kernel=kernel, buffers=1,
        profile_period=profile_period, trace=trace,
    ) as pool:
        return pool.render(view)
