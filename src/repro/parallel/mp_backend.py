"""Real shared-address-space execution via ``multiprocessing``.

The event-driven model in :mod:`repro.parallel.execution` reproduces the
paper's 1997 platforms; this module runs the same two partitioning
schemes for real on a modern multicore host.  The GIL rules out threads
for compute-bound Python, so worker *processes* share the image buffers
through ``multiprocessing.shared_memory`` — writes land in truly shared
pages, exactly the shared-address-space programming model of the paper.
The read-only renderer state (classified volume, RLE encodings) reaches
workers for free through ``fork``.

:class:`MPRenderPool` keeps the workers and the shared buffers alive
across frames, which is what makes animation rendering viable: fork,
shared-memory setup and the first slice decodes are paid once, and the
image segments are double-buffered so the parent overlaps zeroing and
result materialisation with the next frame's compositing.  Each worker
composites its contiguous partition through the block kernel
(:func:`repro.render.block.composite_scanline_block`) by default, so the
per-scanline Python overhead the paper's processors never had does not
throttle the measured speedup; ``kernel="scanline"`` selects the
instrumented reference kernel instead (bit-identical output either way).

The pool runs the paper's profile feedback loop (sections 4.2-4.3) for
real: on frames a :class:`~repro.core.profiling.ProfileSchedule` marks
for profiling, each worker collapses its partition's per-row work
counters into per-scanline costs and ships them back with its done
message; the parent assembles a
:class:`~repro.core.profiling.ScanlineProfile` and partitions subsequent
frames with :func:`~repro.core.partition.contiguous_partition` over that
profile instead of the uniform split.  The same boundaries drive
warp-row ownership (section 4.5), and the profile is invalidated when
the principal axis / permutation changes (the intermediate-image
scanline coordinates it was measured in no longer exist).
``profile_period=0`` disables the loop (always-uniform partitions);
either way the images are bit-identical, only the load balance moves.

On top of the static partition the pool runs the paper's *dynamic* half
(section 4.4): chunked task stealing over a shared claim array.  Each
worker's compositing assignment lives in shared memory as a ``(head,
tail)`` cursor pair; the owner claims chunks of ``steal_chunk``
scanlines from the head of its contiguous block, and a worker that runs
dry trims chunks from the *tail* of the most-loaded victim's block
(single-scanline steals made synchronization ~10x worse in the paper,
hence the chunk).  Intermediate scanlines are independent and each is
composited exactly once by exactly one worker, so the images stay
bit-identical with stealing on or off, for both kernels.  Warp-row
ownership keeps following the static boundaries (section 4.5), and on
profiled frames a stolen row's cost counters are shipped back by the
thief, so the feedback loop still sees every row's true cost.
``stealing=False`` (or one worker) restores the purely static pool.

Fault tolerance
---------------
The partitioned design only pays off when the runtime survives slow or
failed participants (the lesson of the paper's SVM experience, section
5, where uneven page-fault costs dominated the carefully balanced
compute).  The pool is therefore *self-healing*: a supervisor thread in
the parent owns the done queue, polls worker sentinels and per-frame
deadlines, and on a fault — an OOM-killed fork, a SIGKILLed or hung
worker, an exception escaping the compositing kernel — stops the worker
set, **respawns** it against the existing shared-memory segments
(fresh queues, barrier and claim locks; rings re-zeroed; claim cursors
re-seeded) and **resubmits** every lost frame, up to
:attr:`PoolConfig.max_retries` times.  When retries are exhausted the
frame degrades to an in-parent serial render
(:attr:`PoolConfig.degrade_to_serial`), so an animation always
completes with bit-identical images; with degradation off the frame's
``result()`` raises a typed error (:class:`FrameTimeout`,
:class:`WorkerDied`, :class:`FrameFailed`) instead of hanging.
Recovery is observable: ``pool/worker_restarts``,
``pool/frames_retried``, ``pool/degraded_frames`` counters and a
``pool/recovery_s`` histogram in :attr:`MPRenderPool.metrics`, a
``recover`` span on the supervisor's timeline track when tracing, and
:attr:`MPRenderResult.retries` / :attr:`MPRenderResult.degraded` per
frame.

Dispatch, batching and the doorbell
-----------------------------------
Once compositing is vectorized the per-frame *compute* is a few
milliseconds — small enough that per-frame queue round-trips, pickle
traffic and supervisor wakeups dominate a pooled frame.  Three
mechanisms kill that overhead (all bit-identical to the per-frame
path):

* **Batched submission** — :meth:`MPRenderPool.submit_batch` /
  :meth:`MPRenderPool.render_animation` plan N frames up front and push
  each worker *one* job-queue message holding the whole batch, so
  workers run frame-to-frame without re-synchronizing with the parent
  (MovieMaker's stage-overlap idea applied to dispatch).
* **Cross-frame pipelining** — the image segments are already
  double-buffered; a per-buffer *release cursor* in shared memory lets
  a worker start compositing frame ``f`` the moment the parent has
  collected frame ``f - buffers``, so worker compositing of frame
  ``f+1`` overlaps the parent's copy-out/zeroing of frame ``f``.
* **The shm doorbell** (:attr:`PoolConfig.doorbell`) — instead of one
  pickled done-queue message per worker per frame, each worker writes
  its completion record (frame id, busy times, steal counters) into a
  small shared segment and rings a shared event; the supervisor reads
  completion with a memory scan.  The done queue survives only for
  error strings and profile cost fragments, which are rare and
  variable-sized.

All knobs live on one frozen :class:`PoolConfig`; the individual
keyword arguments of :class:`MPRenderPool` and
:func:`render_parallel_mp` remain as a compatibility shim that builds
the config for you.  ``PoolConfig.backend`` selects this process-based
pool (``"mp"``) or the no-copy threading pool
(:class:`repro.parallel.thread_backend.ThreadRenderPool`,
``"thread"``) through the :func:`repro.open_pool` facade.

On a single-core host this still runs correctly (and is exercised by
the test suite); the wall-clock speedup study is
``examples/multicore_speedup.py``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..core.partition import (
    contiguous_partition,
    line_ownership,
    uniform_contiguous_partition,
)
from ..core.profiling import (
    ProfileSchedule,
    ScanlineProfile,
    scanline_cost,
    scanline_cost_rows,
)
from ..obs.metrics import MetricsRegistry, busy_spread, metrics_from_timelines
from ..obs.recorder import DEFAULT_RING_CAPACITY, RingReader, SpanRecorder, ring_bytes
from ..obs.timeline import FrameTimeline
from ..obs.timeline import export_chrome_trace as _export_chrome_trace
from ..render.block import BlockRowCounters, composite_scanline_block
from ..render.compositing import composite_image_scanline, nonempty_scanline_bounds
from ..render.fast import render_fast
from ..render.image import FinalImage, IntermediateImage
from ..render.instrument import WorkCounters
from ..render.serial import ShearWarpRenderer
from ..render.warp import (
    final_pixel_source_lines,
    warp_coeffs,
    warp_rows_by_pid,
    warp_scanline,
)
from ..transforms.factorization import PERMUTATIONS, ShearWarpFactorization
from .backend import BackendCapabilities, FrameSpec, as_frame_specs

__all__ = [
    "FrameRegion",
    "MPRenderPool",
    "MPRenderResult",
    "PoolConfig",
    "render_parallel_mp",
    "COMPOSITE_KERNELS",
    "POOL_BACKENDS",
    "DEFAULT_STEAL_CHUNK",
    "MPPoolError",
    "FrameFailed",
    "FrameTimeout",
    "WorkerDied",
    "PoolClosed",
    "PoolUnrecoverable",
]

#: Compositing kernels a worker can run over its partition.
COMPOSITE_KERNELS = ("scanline", "block")

#: Pool backends selectable through ``PoolConfig.backend`` (dispatched
#: by the ``repro.open_pool`` facade): ``"mp"`` is this module's
#: process pool, ``"thread"`` the no-copy threading pool.
POOL_BACKENDS = ("mp", "thread")

#: Default stealing granularity, scanlines per claim/steal (section 4.4).
#: Larger than the event-driven simulator's default (2): a pool chunk
#: also pays one Python kernel invocation, so the sweet spot sits a bit
#: higher; single-scanline chunks recreate the paper's ~10x sync blowup.
DEFAULT_STEAL_CHUNK = 8

#: Default supervisor cadence: how often worker sentinels and frame
#: deadlines are checked while no done messages arrive.  Done messages
#: themselves wake the supervisor immediately regardless.
DEFAULT_POLL_S = 0.05


# -- typed pool errors --------------------------------------------------------


class MPPoolError(RuntimeError):
    """Base of every typed :class:`MPRenderPool` error.

    Subclasses ``RuntimeError`` so callers written against the old
    untyped API keep catching what they caught before.
    """


class FrameFailed(MPPoolError):
    """A frame's workers raised, and retries/degradation were exhausted."""


class FrameTimeout(MPPoolError):
    """A frame exceeded :attr:`PoolConfig.timeout_s` and could not be
    recovered within the configured retries."""


class WorkerDied(MPPoolError):
    """A worker process died (SIGKILL, OOM, crash) and the frame could
    not be recovered within the configured retries."""


class PoolClosed(MPPoolError):
    """The pool was closed — raised by ``submit`` on a closed pool and
    by ``result`` waiters when ``close()`` lands mid-wait."""


class PoolUnrecoverable(MPPoolError):
    """The pool itself is broken (worker respawn failed, supervisor
    died) and cannot render anything further."""


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class PoolConfig:
    """Every :class:`MPRenderPool` knob, validated in one place.

    This is the canonical front door: build one config and hand it to
    ``MPRenderPool(renderer, config=cfg)`` /
    ``render_parallel_mp(..., config=cfg)`` / ``repro.open_pool`` —
    instead of threading eight keyword arguments through every layer.
    The individual kwargs on those callables remain as a legacy shim
    that builds a ``PoolConfig`` internally.

    Parameters
    ----------
    n_procs:
        Worker process count.
    kernel:
        ``"block"`` (default, vectorized) or ``"scanline"``
        (instrumented reference); bit-identical images either way.
    buffers:
        Shared image buffers cycled across frames; with two, submitting
        frame ``n+1`` only waits for frame ``n-1``.
    profile_period:
        Re-profile every this many frames (paper section 4.2);
        ``0`` disables the feedback loop (always-uniform partitions).
    stealing / steal_chunk:
        Chunked task stealing on top of the static partition (paper
        section 4.4) and its granularity in scanlines.
    trace / trace_capacity:
        Per-worker span/counter ring recording (:mod:`repro.obs`).
    timeout_s:
        Per-frame deadline in seconds, measured from dispatch.  A frame
        still incomplete past its deadline is treated as a fault (hung
        or wedged worker) and recovered.  ``None`` (default) disables
        the deadline — worker *deaths* are still detected via their
        sentinels; only silent hangs need a timeout to be caught.
    max_retries:
        How many times a lost frame (dead worker, timeout, worker
        exception) is re-dispatched before giving up on the pool for
        that frame.
    degrade_to_serial:
        After ``max_retries`` is exhausted (or if the pool cannot
        respawn workers at all), render the frame serially in the
        parent instead of failing it.  The serial renderer is the
        bit-identity reference, so a degraded animation still produces
        exactly the same images.
    poll_s:
        Supervisor cadence for sentinel/deadline checks.  Smaller
        values detect faults faster; done messages are handled
        immediately regardless.
    backend:
        ``"mp"`` (this module's process pool) or ``"thread"`` (the
        no-copy :class:`~repro.parallel.thread_backend.ThreadRenderPool`
        exploiting numpy's GIL release).  Dispatched by the
        ``repro.open_pool`` facade; the pool classes themselves ignore
        it.
    doorbell:
        Signal frame completion through per-buffer shared-memory
        completion records plus a shared event (a memory write instead
        of a pickled done-queue round-trip per worker per frame).
        ``False`` restores the per-frame done-queue protocol;
        bit-identical either way.
    pipeline:
        Whether :meth:`MPRenderPool.render_animation` submits the whole
        animation as one batch (workers run frame-to-frame, parent
        collection overlaps worker compositing).  ``False`` falls back
        to per-frame submit/result pairs.
    shards:
        How many scanline shards to split the intermediate image into,
        each rendered by its *own* pool instance and merged by the
        sort-last tree of :class:`repro.shard.ShardedRenderService`.
        Dispatched by the ``repro.open_pool`` facade (``shards > 1``
        builds a shard fleet instead of a single pool); the pool
        classes themselves ignore it, like ``backend``.
    """

    n_procs: int = 2
    kernel: str = "block"
    buffers: int = 2
    profile_period: int = 5
    stealing: bool = True
    steal_chunk: int = DEFAULT_STEAL_CHUNK
    trace: bool = False
    trace_capacity: int = DEFAULT_RING_CAPACITY
    timeout_s: float | None = None
    max_retries: int = 2
    degrade_to_serial: bool = True
    poll_s: float = DEFAULT_POLL_S
    backend: str = "mp"
    doorbell: bool = True
    pipeline: bool = True
    shards: int = 1

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("need at least one worker")
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.kernel not in COMPOSITE_KERNELS:
            raise ValueError(
                f"kernel must be one of {COMPOSITE_KERNELS}, got {self.kernel!r}"
            )
        if self.backend not in POOL_BACKENDS:
            raise ValueError(
                f"backend must be one of {POOL_BACKENDS}, got {self.backend!r}"
            )
        if self.buffers < 1:
            raise ValueError("need at least one image buffer")
        if self.profile_period < 0:
            raise ValueError("profile_period must be >= 0 (0 disables profiling)")
        if self.steal_chunk < 1:
            raise ValueError("steal_chunk must be >= 1 scanline")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (None disables it)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")

    def replace(self, **changes) -> "PoolConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


#: Legacy-kwarg names accepted by the compat shims, in the positional
#: order the old ``MPRenderPool.__init__`` took them.
_LEGACY_FIELDS = tuple(f.name for f in dataclasses.fields(PoolConfig))


def _warn_legacy(given: dict) -> None:
    """Deprecation notice for the pre-``PoolConfig`` keyword shim.

    The individual pool kwargs (``n_procs=...``, ``stealing=...``, ...)
    predate :class:`PoolConfig` and will be removed in 2.0 (see the
    README's deprecation timeline).  ``repro.open_pool(**overrides)``
    stays — it builds a :class:`PoolConfig` internally and is the
    blessed facade path.
    """
    warnings.warn(
        "passing individual pool kwargs "
        f"({', '.join(sorted(given))}) is deprecated and will be removed "
        "in 2.0; build a PoolConfig and pass config=PoolConfig(...) "
        "instead (or use repro.open_pool)",
        DeprecationWarning,
        stacklevel=3,
    )


def _config_from(config: PoolConfig | None, legacy: dict) -> PoolConfig:
    """Build the effective config from ``config=`` or legacy kwargs."""
    given = {k: v for k, v in legacy.items() if v is not None}
    if config is not None:
        if given:
            raise TypeError(
                "pass either config= or individual pool kwargs, not both "
                f"(got config and {sorted(given)})"
            )
        return config
    if given:
        _warn_legacy(given)
    return PoolConfig(**given)


# -- doorbell layout ----------------------------------------------------------

#: Floats per doorbell completion cell:
#: ``[frame, flags, t_comp, t_warp, steals, steal_rows]``.  Each cell is
#: written by exactly one worker and read by the parent, so no lock is
#: needed; ``frame`` is stored *last* so a parent that reads the frame
#: id sees the rest of the record.
_CELL_FLOATS = 6

#: Cell flag bit: this worker also put a message (error string and/or
#: profile cost fragments) on the done queue for this frame.
_FLAG_QUEUE_MSG = 1


def _doorbell_bytes(buffers: int, n_procs: int) -> int:
    """Bytes of the doorbell segment: completion cells + release cursors."""
    return buffers * n_procs * _CELL_FLOATS * 8 + buffers * 8


def _doorbell_views(buf, buffers: int, n_procs: int) -> tuple[np.ndarray, np.ndarray]:
    """(cells, release) views over the doorbell segment.

    ``cells[buf, pid]`` is worker ``pid``'s completion record for the
    frame occupying image buffer ``buf``; ``release[buf]`` is the last
    frame the parent has fully collected *and re-zeroed* out of that
    buffer — the cursor a worker gates on before writing frame
    ``release[buf] + buffers`` into it.
    """
    cells = np.ndarray((buffers, n_procs, _CELL_FLOATS), np.float64, buffer=buf)
    release = np.ndarray(
        (buffers,), np.int64, buffer=buf,
        offset=buffers * n_procs * _CELL_FLOATS * 8,
    )
    return cells, release


def _await_release(release, buf: int, frame: int, buffers: int, rec) -> None:
    """Gate a worker until the parent has collected ``frame - buffers``.

    The pipelining half of batched dispatch: workers run frame-to-frame
    without talking to the parent, bounded only by this per-buffer
    cursor (at most ``buffers`` frames of lead).  Spin briefly, then
    sleep in sub-millisecond slices — the wait is recorded as a
    ``doorbell`` span so pipeline stalls are visible in traces.
    """
    target = frame - buffers
    if release[buf] >= target:
        return
    t0 = 0.0 if rec is None else rec.now()
    spins = 0
    while release[buf] < target:
        spins += 1
        time.sleep(0.0 if spins < 100 else 0.0002)
    if rec is not None:
        rec.span(frame, "doorbell", t0, rec.now())


# -- shared frame planning (both backends) ------------------------------------


@dataclass(frozen=True)
class FrameRegion:
    """Restriction of one frame to a shard of the intermediate image.

    A :class:`repro.shard.ShardedRenderService` splits the intermediate
    scanlines into contiguous shards and hands each shard's pool one of
    these per frame.  The region lives entirely in the parent's planning
    step — nothing about it is pickled to the workers; it only clamps
    the composite band and masks warp-row ownership, and the job tuples
    carry the already-restricted plan.

    Attributes
    ----------
    comp_lo / comp_hi:
        The scanline band ``[comp_lo, comp_hi)`` this pool must
        composite.  Besides its owned lines this includes the *ghost*
        line below each owned line: a final pixel with source line
        ``v0`` bilinearly samples lines ``v0`` and ``v0 + 1``, so the
        compositing band overlaps one line into the next shard.
    owned:
        Boolean mask over all ``n_v`` intermediate scanlines: the lines
        whose *warp output* this pool owns.  Lines outside the mask get
        warp ownership ``-1`` (no worker warps them here), which is how
        the shard service keeps final pixels disjoint across pools.
    """

    comp_lo: int
    comp_hi: int
    owned: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.comp_lo > self.comp_hi:
            raise ValueError("comp_lo must be <= comp_hi")


class FramePlanner:
    """Frame planning + the paper's profile feedback loop, backend-neutral.

    Owns everything a pool needs to turn a view matrix into a dispatch
    record: the factorization, the non-empty scanline band, the
    profiling schedule (sections 4.2-4.3), the last measured
    :class:`ScanlineProfile` and its validity key, partition boundaries
    (uniform or profile-balanced), warp-row ownership (section 4.5) and
    the boundary-drift metric.  :class:`MPRenderPool` and the threading
    backend both plan through one instance of this class, so the two
    backends cannot drift apart — the basis of their bit-identity.
    """

    def __init__(self, renderer, n_procs: int, profile_period: int,
                 metrics: MetricsRegistry) -> None:
        self.renderer = renderer
        self.n_procs = n_procs
        self.metrics = metrics
        self.schedule = (
            ProfileSchedule(period=profile_period) if profile_period > 0 else None
        )
        # Last assembled profile and the (axis, perm) it was measured
        # under — a principal-axis switch changes the intermediate-image
        # coordinate system, so the profile stops predicting anything.
        self.profile: ScanlineProfile | None = None
        self.profile_key: tuple[int, tuple[int, int, int]] | None = None
        self._last_boundaries: np.ndarray | None = None
        self._last_part_key: tuple[int, tuple[int, int, int]] | None = None

    def plan(self, view: np.ndarray, inter_cap=None, final_cap=None,
             region: FrameRegion | None = None,
             timestep: int | None = None) -> dict:
        """Everything needed to dispatch one frame (deterministic).

        ``region`` (shard mode) clamps the composite band to the shard's
        ``[comp_lo, comp_hi)`` and masks warp ownership to the shard's
        owned lines; the rest of the plan — partitioning, profiling,
        warp-row assignment — runs unchanged inside that restriction.

        ``timestep`` selects a time-varying renderer's encoding (static
        renderers ignore it).  Note the profile validity key stays
        ``(axis, perm)``: the §4.2 loop *predicts* the next frame's cost
        from the last measured frame's, and a moving volume is exactly
        the drift that prediction is supposed to absorb — so a timestep
        switch does not invalidate the profile, it stresses it.
        """
        fact = self.renderer.factorize_view(view)
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        if inter_cap is not None and (
            (n_v, n_u) > inter_cap or (ny, nx) > final_cap
        ):
            raise RuntimeError(
                f"frame shapes {(n_v, n_u)}/{(ny, nx)} exceed pool capacity "
                f"{inter_cap}/{final_cap} — is the view matrix scaled?"
            )
        rle = self.renderer.rle_for(fact, timestep=timestep)
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
        if region is not None:
            v_lo = max(v_lo, int(region.comp_lo))
            v_hi = max(v_lo, min(v_hi, int(region.comp_hi)))
        if self.profile is not None and self.profile_key != (fact.axis, fact.perm):
            self.profile = None
            self.metrics.counter("pool/profile_invalidations").inc()
        profiled = False
        if self.schedule is not None:
            profiled = self.schedule.should_profile() or self.profile is None
            self.schedule.advance()
        boundaries = self.partition(v_lo, v_hi)
        # Partition-boundary drift between successive frames of the
        # same principal axis: how far the feedback loop moves the split.
        part_key = (fact.axis, fact.perm)
        if (
            self._last_boundaries is not None
            and self._last_part_key == part_key
            and len(self._last_boundaries) == len(boundaries)
        ):
            self.metrics.histogram("pool/boundary_drift").observe(
                float(np.abs(boundaries - self._last_boundaries).mean())
            )
        self._last_boundaries = boundaries
        self._last_part_key = part_key
        owner = line_ownership(boundaries, n_v)
        if region is not None:
            owned = np.asarray(region.owned, dtype=bool)
            if len(owned) != n_v:
                raise ValueError(
                    f"region.owned covers {len(owned)} lines, frame has {n_v}"
                )
            # Lines outside the shard get no warp owner here: the pid
            # comparison in warp_scanline never matches -1, so final
            # pixels sourced from them stay zero in this pool's buffer
            # and are taken from the owning shard by the merge tree.
            owner = np.where(owned, owner, -1)
        coeffs = warp_coeffs(fact)
        src_lines = final_pixel_source_lines((ny, nx), fact, coeffs=coeffs)
        rows_by_pid = warp_rows_by_pid(src_lines, owner, self.n_procs)
        return {
            "fact": fact,
            "view": np.array(view, dtype=np.float64, copy=True),
            "timestep": timestep,
            "profiled": profiled,
            "v_lo": v_lo,
            "v_hi": v_hi,
            "boundaries": boundaries,
            "owner": owner,
            "rows_by_pid": rows_by_pid,
            "key": part_key,
        }

    def partition(self, v_lo: int, v_hi: int) -> np.ndarray:
        """Contiguous boundaries for the next frame (section 4.3).

        The profile is in the frame-it-was-measured-on's scanline
        coordinates; successive animation viewpoints differ by a few
        degrees, so reusing the indices is the paper's prediction step.
        Boundaries are clamped to this frame's non-empty band.
        """
        prof = self.profile
        if prof is None or prof.total <= 0:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        prof = prof.trim_empty()
        if len(prof.costs) < self.n_procs:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        bounds = contiguous_partition(prof.costs, self.n_procs, v_lo=prof.v_lo)
        bounds = np.clip(bounds, v_lo, v_hi)
        bounds[0], bounds[-1] = v_lo, v_hi
        for p in range(1, self.n_procs + 1):
            bounds[p] = max(bounds[p], bounds[p - 1])
        return bounds

    def install_profile(self, v_lo: int, costs: np.ndarray, key) -> None:
        """Adopt a freshly measured per-scanline profile."""
        self.profile = ScanlineProfile(v_lo, costs)
        self.profile_key = key


def _apply_cost_fragments(rec: dict, pid: int, frags, t_comp: float,
                          t_warp: float) -> None:
    """Fold one worker's per-chunk cost fragments into a frame record.

    Calibrates the op-count profile to measured *time*, which is what
    the partition must balance (the paper's native profile is elapsed
    time too): every chunk this worker composited — including rows it
    stole — is scaled so together they sum to its compositing CPU time.
    Each scanline was composited by exactly one worker, so the
    assembled profile covers every row exactly once even when rows
    crossed blocks.  Shared by the MP and threading backends.
    """
    if rec["costs"] is None:
        rec["costs"] = np.zeros(
            max(0, rec["v_hi"] - rec["v_lo"]), dtype=np.float64
        )
    total = sum(float(f.sum()) for _, f in frags)
    scale = (t_comp / total) if total > 0 and t_comp > 0 else 1.0
    base = rec["v_lo"]
    for chunk_lo, f in frags:
        off = chunk_lo - base
        rec["costs"][off:off + len(f)] = np.asarray(f, np.float64) * scale
    # Warp CPU time is spread over this worker's *static* block (warp
    # rows follow the boundaries, not who stole what), so warp load
    # moves with the boundaries on the next partition.
    b = rec["boundaries"]
    blo, bhi = int(b[pid]), int(b[pid + 1])
    if bhi > blo:
        rec["costs"][blo - base:bhi - base] += t_warp / (bhi - blo)


# -- chaos hooks (tests, benchmarks, CI) --------------------------------------


def _row_delay_from_env() -> tuple[int, float] | None:
    """Parse the ``REPRO_MP_ROW_DELAY`` chaos knob (``"pid:sec_per_row"``)."""
    spec = os.environ.get("REPRO_MP_ROW_DELAY")
    if not spec:
        return None
    pid_s, sec_s = spec.split(":", 1)
    return int(pid_s), float(sec_s)


#: Imbalance-injection hook for tests, benchmarks and CI: ``(pid,
#: seconds_per_row)`` makes worker ``pid`` burn that much *CPU* per
#: scanline it composites — a deterministic stand-in for a slow or
#: interfered-with processor.  Set the env var above or monkeypatch this
#: before pool construction (it reaches the workers through fork).
_TEST_ROW_DELAY: tuple[int, float] | None = _row_delay_from_env()

#: Worker phases at which a fault can be injected.
FAULT_PHASES = ("decode", "composite", "profile", "steal", "warp")

#: Kinds of injectable fault: SIGKILL the worker, hang it forever, or
#: raise out of the phase.
FAULT_KINDS = ("kill", "hang", "raise")


def _fault_from_env() -> tuple[int, int, str, str] | None:
    """Parse ``REPRO_MP_FAULT`` (``"pid:frame:kind[:phase]"``).

    ``kind`` is one of :data:`FAULT_KINDS`, ``phase`` one of
    :data:`FAULT_PHASES` (default ``composite``).
    """
    spec = os.environ.get("REPRO_MP_FAULT")
    if not spec:
        return None
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(f"REPRO_MP_FAULT must be pid:frame:kind[:phase], got {spec!r}")
    pid, frame, kind = int(parts[0]), int(parts[1]), parts[2]
    phase = parts[3] if len(parts) == 4 else "composite"
    if kind not in FAULT_KINDS:
        raise ValueError(f"REPRO_MP_FAULT kind must be one of {FAULT_KINDS}")
    if phase not in FAULT_PHASES:
        raise ValueError(f"REPRO_MP_FAULT phase must be one of {FAULT_PHASES}")
    return pid, frame, kind, phase


#: Deterministic fault-injection hook, mirroring ``_TEST_ROW_DELAY``:
#: ``(pid, frame, kind, phase)`` makes worker ``pid`` fail on frame
#: ``frame`` when it reaches ``phase``.  Set ``REPRO_MP_FAULT`` or
#: monkeypatch this before pool construction.  The fault is armed only
#: for the pool's *first* worker generation, so a respawned worker does
#: not re-trip it and recovery can be observed succeeding.
_TEST_FAULT: tuple[int, int, str, str] | None = _fault_from_env()


def _burn(seconds: float) -> None:
    """Busy-wait so the injected delay shows up in CPU (process) time."""
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        pass


def _maybe_fault(fault, pid: int, frame: int, phase: str) -> None:
    """Trip the armed fault if it matches this (pid, frame, phase)."""
    if fault is None:
        return
    fpid, fframe, kind, fphase = fault
    if pid != fpid or frame != fframe or phase != fphase:
        return
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        while True:  # until the supervisor terminates us
            time.sleep(3600.0)
    elif kind == "raise":
        raise RuntimeError(f"injected {phase} fault (REPRO_MP_FAULT)")


# Worker globals installed by fork (read-only for the volume; the images
# are views onto shared memory, partitioned so no two workers write the
# same bytes).  The parent clears this right after the workers fork so
# renderer state cannot leak into a later pool's fork snapshot.
_G: dict = {}

# Serializes the stage-_G / fork / clear-_G critical section across
# pools.  ``_G`` is process-global, and with several pools alive each
# pool's *supervisor thread* respawns workers after a fault: two
# concurrent recoveries could interleave so one pool's workers fork
# against the other pool's queues and barrier (a cross-pool wedge), or
# against an already-cleared ``_G``.  Holding one lock across the whole
# spawn also keeps the fork away from another pool's concurrent
# multiprocessing-object creation (shared-heap and resource-tracker
# locks must not be mid-operation in the fork snapshot).
_SPAWN_LOCK = threading.Lock()


@dataclass
class MPRenderResult:
    """Output of a real parallel render.

    Besides the images, the pool reports how the frame was split and how
    long each worker actually computed (``busy_s[pid]``, compositing +
    warp CPU time, barrier waits excluded) — the observables the
    paper's load-balance evaluation is built on.
    """

    final: FinalImage
    intermediate: IntermediateImage
    fact: ShearWarpFactorization
    n_procs: int
    boundaries: np.ndarray | None = None
    profiled: bool = False
    busy_s: np.ndarray | None = field(default=None, repr=False)
    timeline: FrameTimeline | None = field(default=None, repr=False)
    #: Successful chunk steals across all workers, and the scanlines they
    #: moved (zero on a static pool or a frame that never went idle).
    steals: int = 0
    steal_rows: int = 0
    #: How many times this frame was re-dispatched after a fault (0 on
    #: the healthy path).
    retries: int = 0
    #: True when retries ran out and the frame was rendered serially in
    #: the parent (bit-identical images; no per-worker observables).
    degraded: bool = False
    #: Per-scanline calibrated costs on profiled frames (``None``
    #: otherwise), starting at scanline ``costs_v_lo`` — the raw
    #: material the shard service stitches its cross-shard profile from.
    costs: np.ndarray | None = field(default=None, repr=False)
    costs_v_lo: int = 0

    @property
    def busy_spread(self) -> float | None:
        """Per-worker busy-time spread ``(max - min) / mean`` (see
        :func:`repro.obs.busy_spread`); ``None`` if busy times are absent."""
        return None if self.busy_s is None else busy_spread(self.busy_s)


def _capacity_shapes(
    vol_shape: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Largest (intermediate, final) image shapes any view can produce.

    The factorization guarantees ``|shear| <= 1`` along the principal
    axis, so for permutation ``(ni, nj, nk)`` the intermediate image is
    at most ``(nj + nk, ni + nk)``; the residual warp is a rotation plus
    translation of that rectangle, bounded by its diagonal.
    """
    cap_u = cap_v = 0
    for perm in PERMUTATIONS.values():
        ni, nj, nk = (vol_shape[perm[0]], vol_shape[perm[1]], vol_shape[perm[2]])
        cap_u = max(cap_u, int(np.ceil((ni - 1) + (nk - 1))) + 2)
        cap_v = max(cap_v, int(np.ceil((nj - 1) + (nk - 1))) + 2)
    diag = int(np.ceil(np.hypot(cap_u - 1, cap_v - 1))) + 2
    return (cap_v, cap_u), (diag, diag)


def _composite_range(img, lo, hi, rle, fact, kernel, profiled, rec, frame):
    """Composite scanlines ``[lo, hi)``; per-row costs when profiling.

    One claimed chunk (or, with stealing off, the whole band).  The
    block kernel's per-row arithmetic is row-independent, so splitting a
    band into chunks leaves every pixel bit-identical.
    """
    if hi <= lo:
        return None
    if kernel == "block":
        if profiled:
            rows = BlockRowCounters(lo, hi)
            composite_scanline_block(img, lo, hi, rle, fact, row_counters=rows)
            if rec is not None:
                tp0 = rec.now()
            costs = scanline_cost_rows(rows)
            if rec is not None:
                # Nested inside this frame's composite span.
                rec.span(frame, "profile", tp0, rec.now())
            return costs
        composite_scanline_block(img, lo, hi, rle, fact)
        return None
    if profiled:
        costs = np.zeros(hi - lo, dtype=np.float64)
        for v in range(lo, hi):
            counters = WorkCounters()
            composite_image_scanline(img, v, rle, fact, counters=counters)
            costs[v - lo] = scanline_cost(counters)
        return costs
    for v in range(lo, hi):
        composite_image_scanline(img, v, rle, fact)
    return None


def _claim_own_chunk(claims, lock, pid, chunk) -> tuple[int, int] | None:
    """Advance this worker's head cursor by up to ``chunk`` scanlines."""
    with lock:
        lo = int(claims[pid, 0])
        hi_lim = int(claims[pid, 1])
        if lo >= hi_lim:
            return None
        hi = min(lo + chunk, hi_lim)
        claims[pid, 0] = hi
    return lo, hi


def _steal_chunk(claims, locks, pid, chunk) -> tuple[int, int] | None:
    """Trim up to ``chunk`` scanlines off the most-loaded victim's tail.

    The victim scan reads the cursors without locks (stale values only
    cost us a sub-optimal victim); the claim itself re-checks under the
    victim's lock, so a scanline is never handed out twice.  Returns
    ``None`` once no victim has unclaimed work left.
    """
    n_procs = len(locks)
    while True:
        best, best_rem = -1, 0
        for q in range(n_procs):
            if q == pid:
                continue
            rem = int(claims[q, 1]) - int(claims[q, 0])
            if rem > best_rem:
                best, best_rem = q, rem
        if best < 0:
            return None
        with locks[best]:
            lo = int(claims[best, 0])
            hi = int(claims[best, 1])
            if hi > lo:
                new_tail = max(lo, hi - chunk)
                claims[best, 1] = new_tail
                return new_tail, hi
        # Raced: the victim drained between scan and lock — rescan.


def _worker_loop(pid: int) -> None:
    """Composite and warp this worker's partition, frame after frame.

    A job-queue message is either ``None`` (shutdown), one job tuple,
    or a *batch* — a list of job tuples the worker runs back to back
    without returning to the queue.  Between batched frames the worker
    re-synchronizes with the parent only through the per-buffer release
    cursor (so it never runs more than ``buffers`` frames ahead of
    collection) and the shared barrier between the frame's two phases.
    """
    renderer: ShearWarpRenderer = _G["renderer"]
    kernel: str = _G["kernel"]
    jobs = _G["job_queues"][pid]
    done = _G["done_queue"]
    barrier = _G["barrier"]
    shm_i = _G["shm_i"]
    shm_f = _G["shm_f"]
    cap_iv, cap_iu = _G["inter_cap"]
    cap_fy, cap_fx = _G["final_cap"]
    inter_floats = cap_iv * cap_iu
    final_floats = cap_fy * cap_fx
    steal_chunk: int = _G["steal_chunk"]
    claim_locks = _G["claim_locks"]
    buffers: int = _G["buffers"]
    shm_c = _G.get("shm_c")
    # (buffers, n_procs, 2) head/tail cursors; None when stealing is off.
    claims = (
        np.ndarray((buffers, _G["n_procs"], 2), np.int64, buffer=shm_c.buf)
        if shm_c is not None else None
    )
    shm_d = _G["shm_d"]
    cells, release = _doorbell_views(shm_d.buf, buffers, _G["n_procs"])
    use_doorbell: bool = _G["doorbell"]
    bell = _G["bell"]
    delay = _TEST_ROW_DELAY
    burn_per_row = delay[1] if delay is not None and delay[0] == pid else 0.0
    # The injected fault is armed only for generation 0: a worker
    # respawned by the supervisor must not re-trip it, so the retried
    # frame can demonstrate recovery.
    fault = _TEST_FAULT if _G["generation"] == 0 else None
    # Tracing is opt-in: ``rec`` stays None on untraced pools and every
    # recording site below is guarded, so the disabled path does zero
    # observability work (no clock reads, no allocation).
    shm_t = _G.get("shm_t")
    rec = (
        SpanRecorder.over(shm_t.buf, pid, _G["trace_capacity"], _G["trace_epoch"])
        if shm_t is not None else None
    )

    t_wait0 = 0.0 if rec is None else rec.now()
    while True:
        msg = jobs.get()
        if msg is None:
            return
        batch = msg if isinstance(msg, list) else [msg]
        for job in batch:
            _render_job(pid, job, renderer, kernel, done, barrier, shm_i, shm_f,
                        cap_iv, cap_iu, cap_fy, cap_fx, inter_floats,
                        final_floats, steal_chunk, claim_locks, buffers, claims,
                        cells, release, use_doorbell, bell, burn_per_row, fault,
                        rec, t_wait0)
            # Within a batch there is no queue wait: the next frame's
            # wait span collapses to ~zero and any stall shows up as a
            # ``doorbell`` span instead.
            t_wait0 = 0.0 if rec is None else rec.now()


def _render_job(pid, job, renderer, kernel, done, barrier, shm_i, shm_f,
                cap_iv, cap_iu, cap_fy, cap_fx, inter_floats, final_floats,
                steal_chunk, claim_locks, buffers, claims, cells, release,
                use_doorbell, bell, burn_per_row, fault, rec, t_wait0) -> None:
    """Run one frame's composite + warp and report completion."""
    frame, buf, fact, v_lo, v_hi, owner, warp_rows, profiled, timestep = job
    if rec is not None:
        rec.span(frame, "wait", t_wait0, rec.now())
    # Pipelining gate: frame f may enter buffer f % buffers only once
    # the parent has collected and re-zeroed frame f - buffers.
    _await_release(release, buf, frame, buffers, rec)
    err: str | None = None
    # Per-chunk cost fragments [(v_start, costs)] on profiled frames.
    frags: list[tuple[int, np.ndarray]] | None = [] if profiled else None
    n_steals = n_steal_rows = n_rows = 0
    t_comp = t_warp = 0.0
    # Span clocks pre-bound so the finally block can record even when
    # a phase died before its start time was taken (the bogus span is
    # discarded with the failed frame's timeline).
    tc0 = tb0 = 0.0
    cache_stats0: tuple[int, int] | None = None
    # CPU time, not wall clock: on an oversubscribed host a worker's
    # wall time includes slices it spent descheduled, which would
    # poison both the profile and the busy-time report.
    t0 = time.process_time()
    try:
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        base_i = buf * 2 * inter_floats
        base_f = buf * 2 * final_floats
        full_c = np.ndarray(
            (cap_iv, cap_iu), np.float32, buffer=shm_i.buf, offset=base_i * 4
        )
        full_o = np.ndarray(
            (cap_iv, cap_iu), np.float32, buffer=shm_i.buf,
            offset=(base_i + inter_floats) * 4,
        )
        img = IntermediateImage((n_v, n_u))
        img.color = full_c[:n_v, :n_u]
        img.opacity = full_o[:n_v, :n_u]

        try:
            _maybe_fault(fault, pid, frame, "decode")
            if rec is not None:
                td0 = rec.now()
            rle = renderer.rle_for(fact, timestep=timestep)
            if rec is not None:
                tc0 = rec.now()
                rec.span(frame, "decode", td0, tc0)
                cache = rle.slice_cache
                cache_stats0 = (cache.hits, cache.misses)
            if profiled:
                _maybe_fault(fault, pid, frame, "profile")
            _maybe_fault(fault, pid, frame, "composite")
            if claims is None:
                # Static pool: one kernel call over the whole band.
                frag = _composite_range(img, v_lo, v_hi, rle, fact,
                                        kernel, profiled, rec, frame)
                n_rows = max(0, v_hi - v_lo)
                if frag is not None:
                    frags.append((v_lo, frag))
                if burn_per_row:
                    _burn(burn_per_row * n_rows)
            else:
                cl = claims[buf]
                my_lock = claim_locks[pid]
                # Drain the head of our own block, chunk by chunk...
                while True:
                    got = _claim_own_chunk(cl, my_lock, pid, steal_chunk)
                    if got is None:
                        break
                    lo, hi = got
                    frag = _composite_range(img, lo, hi, rle, fact,
                                            kernel, profiled, rec, frame)
                    n_rows += hi - lo
                    if frag is not None:
                        frags.append((lo, frag))
                    if burn_per_row:
                        _burn(burn_per_row * (hi - lo))
                # ...then turn thief until every block is drained.
                _maybe_fault(fault, pid, frame, "steal")
                while True:
                    if rec is not None:
                        ts0 = rec.now()
                    got = _steal_chunk(cl, claim_locks, pid, steal_chunk)
                    if got is None:
                        break
                    if rec is not None:
                        rec.span(frame, "steal", ts0, rec.now())
                    lo, hi = got
                    n_steals += 1
                    n_steal_rows += hi - lo
                    frag = _composite_range(img, lo, hi, rle, fact,
                                            kernel, profiled, rec, frame)
                    n_rows += hi - lo
                    if frag is not None:
                        frags.append((lo, frag))
                    if burn_per_row:
                        _burn(burn_per_row * (hi - lo))
            if rec is not None:
                rec.count(frame, "rows", n_rows)
                rec.count(frame, "steals", n_steals)
                rec.count(frame, "steal_rows", n_steal_rows)
                rec.count(frame, "cache_hits", cache.hits - cache_stats0[0])
                rec.count(frame, "cache_misses",
                          cache.misses - cache_stats0[1])
        finally:
            # Busy time stops at the barrier: the wait measures the
            # *imbalance*, not this worker's work.
            t_comp = time.process_time() - t0
            if rec is not None:
                tb0 = rec.now()
                rec.span(frame, "composite", tc0, tb0)
            # Siblings block on this barrier no matter what happened
            # above — reaching it even on error prevents a deadlock.
            # (A *dead* sibling can never arrive; the parent's
            # supervisor detects that and terminates the stragglers.)
            barrier.wait()
            if rec is not None:
                rec.span(frame, "barrier", tb0, rec.now())

        t1 = time.process_time()
        _maybe_fault(fault, pid, frame, "warp")
        if rec is not None:
            tw0 = rec.now()
        final = FinalImage((ny, nx))
        final.color = np.ndarray(
            (cap_fy, cap_fx), np.float32, buffer=shm_f.buf, offset=base_f * 4
        )[:ny, :nx]
        final.alpha = np.ndarray(
            (cap_fy, cap_fx), np.float32, buffer=shm_f.buf,
            offset=(base_f + final_floats) * 4,
        )[:ny, :nx]
        coeffs = warp_coeffs(fact)  # one 2x2 inverse per frame
        for y in warp_rows:
            warp_scanline(final, int(y), img, fact, line_owner=owner,
                          pid=pid, coeffs=coeffs)
        t_warp = time.process_time() - t1
        if rec is not None:
            rec.span(frame, "warp", tw0, rec.now())
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        err = f"{type(exc).__name__}: {exc}"
        frags = None
    if use_doorbell:
        # Completion is a shm write, not a pickle: the parent's
        # supervisor reads the cell when the bell rings.  Errors and
        # profile fragments still ride the queue (rare + variable
        # size); the flag tells the parent to await that message
        # before treating the cell as fully absorbed.
        flags = _FLAG_QUEUE_MSG if (err is not None or frags) else 0
        if flags:
            done.put((pid, frame, err, frags, t_comp, t_warp,
                      n_steals, n_steal_rows))
        cell = cells[buf, pid]
        cell[1] = flags
        cell[2] = t_comp
        cell[3] = t_warp
        cell[4] = n_steals
        cell[5] = n_steal_rows
        cell[0] = frame  # written last: a reader seeing it sees the rest
        bell.set()
    else:
        done.put((pid, frame, err, frags, t_comp, t_warp,
                  n_steals, n_steal_rows))


class MPRenderPool:
    """Persistent, self-healing pool of render workers sharing
    double-buffered images.

    Configure through one :class:`PoolConfig`::

        pool = MPRenderPool(renderer, config=PoolConfig(n_procs=4))

    or through the legacy keyword arguments (a compatibility shim builds
    the config; passing both is an error).  See :class:`PoolConfig` for
    the meaning of every knob.

    A supervisor thread owns the done queue and watches worker
    sentinels and per-frame deadlines; dead/hung workers are respawned
    against the existing shared segments and their in-flight frames
    retried (see the module docstring).  ``result()`` therefore never
    blocks forever: it returns the frame, raises a typed error
    (:class:`FrameTimeout`, :class:`WorkerDied`, :class:`FrameFailed`,
    :class:`PoolClosed`, :class:`PoolUnrecoverable`), or — with
    ``degrade_to_serial`` — returns a bit-identical serially rendered
    frame.

    Parameters
    ----------
    renderer:
        The serial renderer whose volume/encodings the workers inherit
        through ``fork`` at pool construction.  (Re-create the pool if
        the renderer's volume changes.)
    config:
        A :class:`PoolConfig`; mutually exclusive with the individual
        keyword arguments.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        n_procs: int | None = None,
        kernel: str | None = None,
        buffers: int | None = None,
        profile_period: int | None = None,
        stealing: bool | None = None,
        steal_chunk: int | None = None,
        trace: bool | None = None,
        trace_capacity: int | None = None,
        timeout_s: float | None = None,
        max_retries: int | None = None,
        degrade_to_serial: bool | None = None,
        poll_s: float | None = None,
        *,
        config: PoolConfig | None = None,
    ) -> None:
        # Teardown-critical state first, with inert defaults: close() /
        # __del__ must work on a pool whose construction died at *any*
        # later point (bad config, failed shm allocation, fork failure)
        # without AttributeErrors and without leaking shm segments.
        self._closed = False
        self._workers: list = []
        self._job_queues: list = []
        self._done_queue = None
        self._shm_i = self._shm_f = self._shm_c = self._shm_t = None
        self._shm_d = None
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._broken: str | None = None

        cfg = _config_from(config, {
            "n_procs": n_procs, "kernel": kernel, "buffers": buffers,
            "profile_period": profile_period, "stealing": stealing,
            "steal_chunk": steal_chunk, "trace": trace,
            "trace_capacity": trace_capacity, "timeout_s": timeout_s,
            "max_retries": max_retries,
            "degrade_to_serial": degrade_to_serial, "poll_s": poll_s,
        })
        if mp.get_start_method(allow_none=True) not in (None, "fork"):
            raise RuntimeError("MPRenderPool requires the fork start method")

        self.renderer = renderer
        self.config = cfg
        # Mirrored attributes, kept for the pre-config API.
        self.n_procs = cfg.n_procs
        self.kernel = cfg.kernel
        self.buffers = cfg.buffers
        self.profile_period = cfg.profile_period
        self.stealing = cfg.stealing
        self.steal_chunk = cfg.steal_chunk
        self.trace = cfg.trace
        self.trace_capacity = cfg.trace_capacity
        # One worker has nobody to steal from; skip the claim traffic.
        self._steal_active = cfg.stealing and cfg.n_procs > 1
        self.inter_cap, self.final_cap = _capacity_shapes(renderer.shape)
        cap_iv, cap_iu = self.inter_cap
        cap_fy, cap_fx = self.final_cap
        self._inter_floats = cap_iv * cap_iu
        self._final_floats = cap_fy * cap_fx
        self._generation = 0
        self._health_due = 0.0

        try:
            self._construct()
        except BaseException:
            self.close()
            raise

    def _construct(self) -> None:
        """Fallible half of ``__init__``: shm segments, fork, bookkeeping."""
        self._shm_i = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._inter_floats * 4
        )
        self._shm_f = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._final_floats * 4
        )
        # Zero through numpy views — never a full-size Python bytes object.
        np.ndarray(
            (self.buffers * 2 * self._inter_floats,), np.float32, buffer=self._shm_i.buf
        ).fill(0.0)
        np.ndarray(
            (self.buffers * 2 * self._final_floats,), np.float32, buffer=self._shm_f.buf
        ).fill(0.0)
        # Claim cursors for chunked stealing: one (head, tail) int64 pair
        # per worker per image buffer, zeroed so an uninitialised slot
        # reads as an empty (drained) assignment.
        self._claims: np.ndarray | None = None
        if self._steal_active:
            self._shm_c = shared_memory.SharedMemory(
                create=True, size=self.buffers * self.n_procs * 2 * 8
            )
            self._claims = np.ndarray(
                (self.buffers, self.n_procs, 2), np.int64, buffer=self._shm_c.buf
            )
            self._claims.fill(0)

        # Doorbell segment: per-buffer completion cells plus the release
        # cursors the workers gate buffer reuse on (batched pipelining).
        # Allocated unconditionally — the release cursors are the reuse
        # protocol even when doorbell *completion* is switched off.
        self._shm_d = shared_memory.SharedMemory(
            create=True, size=_doorbell_bytes(self.buffers, self.n_procs)
        )
        self._cells, self._release = _doorbell_views(
            self._shm_d.buf, self.buffers, self.n_procs
        )
        self._cells.fill(0.0)
        self._cells[:, :, 0] = -1.0  # no frame has completed anywhere
        # Buffer b is born free for frame b: its gate target is b - buffers.
        self._release[:] = np.arange(self.buffers) - self.buffers
        # Deferred claim-cursor seeding: buf -> frames dispatched into a
        # buffer whose earlier occupant was still in flight (batch mode).
        self._claims_pending: dict[int, deque] = {}
        self._last_complete_t = time.monotonic()
        # Any frame waiting on an error/fragment queue message already
        # in flight?  Makes the doorbell supervisor poll fast.
        self._q_deferred = False

        # Observability: the registry always exists (submit updates pool
        # health gauges either way); the span rings are allocated only
        # when tracing so an untraced pool carries no extra segment.
        self.metrics = MetricsRegistry()
        self._planner = FramePlanner(
            self.renderer, self.n_procs, self.profile_period, self.metrics
        )
        self.timelines: list[FrameTimeline] = []
        self._trace_epoch = time.perf_counter()
        self._readers: list[RingReader] = []
        self._frame_obs: dict[int, FrameTimeline] = {}
        self._sup_rec: SpanRecorder | None = None
        self._sup_reader: RingReader | None = None
        if self.trace:
            self._shm_t = shared_memory.SharedMemory(
                create=True, size=self.n_procs * ring_bytes(self.trace_capacity)
            )
            self._reset_trace_rings()
            # The supervisor records recovery spans on its own track,
            # one past the worker pids.
            self._sup_rec = SpanRecorder.in_memory(epoch=self._trace_epoch)
            self._sup_reader = RingReader(
                self._sup_rec.cursor, self._sup_rec.records, pid=self.n_procs
            )

        self._next_frame = 0
        self._inflight: dict[int, dict] = {}  # frame -> per-frame record
        self._results: dict[int, MPRenderResult] = {}
        # Frames that failed for good: frame -> typed exception.  Each
        # frame's error is raised only from its own result() call, never
        # from a sibling's.
        self._failed: dict[int, MPPoolError] = {}
        # Per-buffer state: the *latest* frame assigned to it.  The
        # buffer's contents are re-zeroed when each occupant retires
        # (see ``_retire_buffer_locked``), so a freshly released buffer
        # is always clean for its next frame.
        self._buf_frame: list[int | None] = [None] * self.buffers

        self._spawn_workers(generation=0)
        self._supervisor = threading.Thread(
            target=self._supervise, name="mp-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn_workers(self, generation: int) -> None:
        """Fork a worker set against the existing shared segments.

        Queues, barrier and claim locks are created fresh each
        generation: after a fault the old ones may hold stale jobs,
        wedged waiters or semaphores owned by dead processes, and
        rebuilding them is the only state-reset that needs no
        cooperation from the casualties.
        """
        with _SPAWN_LOCK:
            self._spawn_workers_locked(generation)

    def _spawn_workers_locked(self, generation: int) -> None:
        ctx = mp.get_context("fork")
        self._job_queues = [ctx.SimpleQueue() for _ in range(self.n_procs)]
        self._done_queue = ctx.Queue()
        # One lock per worker's claim cursor pair: the owner takes only
        # its own lock, a thief takes only the victim's — claim and steal
        # never serialise unrelated workers.
        claim_locks = (
            [ctx.Lock() for _ in range(self.n_procs)] if self._steal_active else []
        )
        # Fresh bell per generation: a terminated worker's last ring must
        # not wake the supervisor into reading its half-written cells
        # (recovery zeroes the cells before the new set starts anyway).
        self._bell = ctx.Event()
        # The barrier's state lives in a block of multiprocessing's
        # process-global shared heap.  The parent must keep the object
        # referenced while this generation's workers live: dropping it
        # (``_G.clear()`` below) would free the block back to the heap,
        # and the next ``ctx.Barrier`` — e.g. a second pool's — would
        # reuse the same shared memory, aliasing both pools' barrier
        # state and wedging their workers mid-frame.
        self._barrier = ctx.Barrier(self.n_procs)
        _G.update(
            renderer=self.renderer,
            kernel=self.kernel,
            job_queues=self._job_queues,
            done_queue=self._done_queue,
            barrier=self._barrier,
            shm_i=self._shm_i,
            shm_f=self._shm_f,
            inter_cap=self.inter_cap,
            final_cap=self.final_cap,
            buffers=self.buffers,
            n_procs=self.n_procs,
            steal_chunk=self.steal_chunk,
            claim_locks=claim_locks,
            shm_c=self._shm_c,
            shm_d=self._shm_d,
            doorbell=self.config.doorbell,
            bell=self._bell,
            shm_t=self._shm_t,
            trace_capacity=self.trace_capacity,
            trace_epoch=self._trace_epoch,
            generation=generation,
        )
        try:
            self._workers = [
                ctx.Process(target=_worker_loop, args=(pid,), daemon=True)
                for pid in range(self.n_procs)
            ]
            for w in self._workers:
                w.start()
        finally:
            # The fork snapshot is taken at start(); drop the parent-side
            # references so nothing leaks into a later pool's snapshot.
            _G.clear()

    def _reset_trace_rings(self) -> None:
        """Zero the span rings and restart the parent-side readers."""
        np.ndarray(
            (self._shm_t.size // 8,), np.float64, buffer=self._shm_t.buf
        ).fill(0.0)
        self._readers = [
            RingReader.over(self._shm_t.buf, pid, self.trace_capacity)
            for pid in range(self.n_procs)
        ]

    # -- frame lifecycle -----------------------------------------------------

    @property
    def capabilities(self) -> BackendCapabilities:
        """What this pool can do (the :class:`RenderBackend` struct)."""
        return BackendCapabilities(
            trace=self.trace,
            steal=self._steal_active,
            profile=self.profile_period > 0,
            shard=False,
        )

    def submit(self, view: np.ndarray,
               region: FrameRegion | None = None,
               timestep: int | None = None) -> int:
        """Dispatch one frame to the workers; returns its frame id.

        Blocks only if every buffer is still occupied by an unfinished
        frame (with ``buffers=2`` that means two frames behind).  The
        partition is profile-balanced whenever a valid profile from an
        earlier frame exists, uniform otherwise.  ``region`` restricts
        the frame to one shard's band (see :class:`FrameRegion`);
        ``timestep`` selects a time-varying renderer's encoding.
        Raises :class:`PoolClosed` / :class:`PoolUnrecoverable` on a
        pool that can no longer accept work.
        """
        with self._cond:
            self._raise_if_unusable()
            t_d0 = self._sup_rec.now() if self._sup_rec is not None else 0.0
            plan = self._planner.plan(view, self.inter_cap, self.final_cap,
                                      region=region, timestep=timestep)
            self._sample_gauges_locked()
            # Everything fallible is done — only now wait for a buffer
            # and claim a frame id, so a failed submit leaves no
            # bookkeeping behind (no consumed id, no buffer marked
            # occupied by a frame that was never queued).
            buf = self._next_frame % self.buffers
            prev = self._buf_frame[buf]
            while prev is not None and prev in self._inflight:
                self._wait_event()  # supervisor completes/retires frames
                prev = self._buf_frame[buf]
            frame = self._claim_frame_locked(plan, batched=False)
            self._dispatch_locked(frame)
            if self._sup_rec is not None:
                self._sup_rec.span(frame, "dispatch", t_d0, self._sup_rec.now())
            return frame

    def submit_batch(self, frame_specs, regions=None) -> list[int]:
        """Dispatch a whole animation in one queue round-trip per worker.

        ``frame_specs`` is a sequence of bare views and/or
        :class:`~repro.parallel.backend.FrameSpec` items (the
        :class:`RenderBackend` batch form, which carries per-frame
        timesteps and regions); ``regions`` (parallel list) is the
        pre-protocol way to restrict frames to shard bands and is still
        accepted — a spec's own ``region`` wins where both are given.

        Every frame is planned up front — the profile feedback loop
        still advances frame to frame, and planning is deterministic, so
        the partitions (and therefore the pixels) are identical to
        per-frame submission.  Each worker then receives its entire job
        list as a *single* queue message and runs frame to frame gated
        only by the per-buffer release cursors: the parent's collection
        of frame ``f`` overlaps the workers' compositing of ``f+1``
        (MovieMaker's stage overlap), and the pickle/queue/wakeup cost
        is amortized over the batch instead of paid per frame.

        Returns the frame ids in submission order; collect them with
        :meth:`result` (in order, for buffer reuse to stream).

        Because every frame is planned before any completes, a profile
        measured *inside* the batch balances the next batch, not this
        one — the feedback loop crosses batch boundaries.  Partitions
        never change pixels (only which worker composites which rows),
        so batched output stays bit-identical to per-frame submission.
        """
        specs = as_frame_specs(frame_specs)
        if regions is None:
            regions = [None] * len(specs)
        with self._cond:
            self._raise_if_unusable()
            if not specs:
                return []
            t_d0 = self._sup_rec.now() if self._sup_rec is not None else 0.0
            frames: list[int] = []
            per_worker: list[list[tuple]] = [[] for _ in range(self.n_procs)]
            for spec, region in zip(specs, regions):
                plan = self._planner.plan(spec.view, self.inter_cap,
                                          self.final_cap,
                                          region=spec.region or region,
                                          timestep=spec.timestep)
                frame = self._claim_frame_locked(plan, batched=True)
                jobs = self._prepare_dispatch_locked(frame)
                for pid in range(self.n_procs):
                    per_worker[pid].append(jobs[pid])
                frames.append(frame)
            for pid in range(self.n_procs):
                self._job_queues[pid].put(per_worker[pid])
            self.metrics.counter("pool/batch_frames").inc(len(frames))
            self._sample_gauges_locked()
            if self._sup_rec is not None:
                self._sup_rec.span(frames[0], "dispatch", t_d0,
                                   self._sup_rec.now())
            return frames

    def render_animation(self, views, regions=None) -> list[MPRenderResult]:
        """Render a sequence of views, returning results in order.

        With ``config.pipeline`` (the default) the whole animation goes
        out as one batch; ``pipeline=False`` falls back to per-frame
        submit/result pairs (still overlapped up to ``buffers`` frames
        deep by the classic protocol).  Pixels are identical either way.
        ``regions`` (optional, parallel to ``views``) restricts each
        frame to one shard's band.
        """
        if self.config.pipeline:
            return [self.result(f) for f in self.submit_batch(views, regions)]
        specs = as_frame_specs(views)
        if regions is None:
            regions = [None] * len(specs)
        handles = [
            self.submit(s.view, s.region or r, timestep=s.timestep)
            for s, r in zip(specs, regions)
        ]
        return [self.result(h) for h in handles]

    def _claim_frame_locked(self, plan: dict, batched: bool) -> int:
        """Allocate the next frame id and its in-flight record."""
        frame = self._next_frame
        self._next_frame += 1
        buf = frame % self.buffers
        self._buf_frame[buf] = frame
        rec = {
            "buf": buf,
            "done": 0,
            "errors": [],
            "costs": None,
            "busy": np.zeros(self.n_procs, dtype=np.float64),
            "steals": 0,
            "steal_rows": 0,
            "attempt": 0,
            "deadline": None,
            "dispatch_t": 0.0,
            "batched": batched,
            "was_dispatched": False,
            "cells_absorbed": False,
            "q_seen": 0,
            "q_expected": 0,
        }
        rec.update(plan)
        self._inflight[frame] = rec
        return frame

    def _sample_gauges_locked(self) -> None:
        """Pool-health gauges, sampled at submit time: how deep the
        pipeline is and how many shared buffers are still occupied by
        unfinished frames."""
        self.metrics.gauge("pool/queue_depth").set(len(self._inflight))
        self.metrics.gauge("pool/buffer_occupancy").set(
            sum(1 for f in self._buf_frame if f is not None and f in self._inflight)
        )

    def _dispatch_locked(self, frame: int) -> None:
        """(Re-)send ``frame``'s jobs to every worker.  Lock held."""
        jobs = self._prepare_dispatch_locked(frame)
        for pid in range(self.n_procs):
            self._job_queues[pid].put(jobs[pid])

    def _prepare_dispatch_locked(self, frame: int) -> list[tuple]:
        """Reset ``frame``'s record and buffer; build its per-worker jobs.

        Used by ``submit``/``submit_batch`` for the first attempt and by
        the recovery paths for retries: the saved record carries
        everything needed to reproduce the exact same partition, so a
        retried frame is bit-identical to what the lost attempt would
        have produced.
        """
        rec = self._inflight[frame]
        buf = rec["buf"]
        fact = rec["fact"]
        boundaries = rec["boundaries"]
        # In batch mode an earlier in-flight frame may still occupy this
        # buffer: its *retirement* zeroes the images and seeds our claim
        # cursors, all before the release cursor lets any worker in.
        occupied = any(
            g < frame and r["buf"] == buf for g, r in self._inflight.items()
        )
        if occupied:
            self._claims_pending.setdefault(buf, deque()).append(frame)
        else:
            if rec["was_dispatched"]:
                # Re-dispatch into a free buffer: clear the lost
                # attempt's partial writes.
                self._zero_images_locked(buf, fact)
            self._cells[buf, :, 0] = -1.0
            if self._claims is not None:
                # Seed the claim cursors to the static boundaries
                # *before* the jobs go out — the queue put is the
                # happens-before edge that makes these writes visible
                # to every worker.
                self._claims[buf, :, 0] = boundaries[:-1]
                self._claims[buf, :, 1] = boundaries[1:]
        rec["done"] = 0
        rec["errors"] = []
        rec["costs"] = None
        rec["busy"][:] = 0.0
        rec["steals"] = 0
        rec["steal_rows"] = 0
        rec["cells_absorbed"] = False
        rec["q_seen"] = 0
        rec["q_expected"] = 0
        rec["was_dispatched"] = True
        rec["dispatch_t"] = time.monotonic()
        rec["deadline"] = (
            rec["dispatch_t"] + self.config.timeout_s
            if self.config.timeout_s is not None else None
        )
        return [
            (
                frame,
                buf,
                fact,
                int(boundaries[pid]),
                int(boundaries[pid + 1]),
                rec["owner"],
                rec["rows_by_pid"][pid],
                rec["profiled"],
                rec.get("timestep"),
            )
            for pid in range(self.n_procs)
        ]

    def result(self, frame: int) -> MPRenderResult:
        """Wait for ``frame`` and return its images (copies).

        Never blocks forever: the supervisor completes, retries,
        degrades or fails every in-flight frame.  Raises the frame's
        *own* typed error (:class:`FrameFailed`, :class:`FrameTimeout`,
        :class:`WorkerDied`) — idempotently: calling ``result()`` again
        on a failed frame re-raises the *same* error (the serve layer
        retries and reports per client, so a failure must stay
        observable, not decay into ``KeyError``).  Raises
        :class:`PoolClosed` if the pool is closed while the frame is
        still in flight; :class:`PoolUnrecoverable` if the pool itself
        broke.
        """
        with self._cond:
            while True:
                if frame in self._failed:
                    raise self._failed[frame]
                if frame in self._results:
                    return self._results.pop(frame)
                if frame not in self._inflight:
                    raise KeyError(f"unknown frame {frame}")
                if self._broken is not None:
                    raise PoolUnrecoverable(self._broken)
                if self._closed:
                    raise PoolClosed(
                        f"pool closed while frame {frame} was in flight"
                    )
                sup = self._supervisor
                if sup is None or not sup.is_alive():
                    raise PoolUnrecoverable("supervisor thread died")
                self._cond.wait(timeout=0.2)

    def render(self, view: np.ndarray) -> MPRenderResult:
        """Render one frame synchronously."""
        return self.result(self.submit(view))

    def _wait_event(self) -> None:
        """One bounded wait on the pool condition, with liveness checks."""
        if self._broken is not None:
            raise PoolUnrecoverable(self._broken)
        if self._closed:
            raise PoolClosed("pool is closed")
        sup = self._supervisor
        if sup is None or not sup.is_alive():
            raise PoolUnrecoverable("supervisor thread died")
        self._cond.wait(timeout=0.2)

    def _raise_if_unusable(self) -> None:
        if self._closed:
            raise PoolClosed("pool is closed")
        if self._broken is not None:
            raise PoolUnrecoverable(self._broken)

    # -- supervision ---------------------------------------------------------

    def _supervise(self) -> None:
        """Own the done queue; watch sentinels and deadlines; recover.

        Runs in a daemon thread for the pool's whole life.  Done
        messages are handled the moment they arrive; health (worker
        sentinels, per-frame deadlines) is checked at most every
        ``poll_s`` seconds so a busy pool pays a bounded supervision
        cost — measured by ``benchmarks/bench_faults.py`` (< 2% target).

        In doorbell mode the wake signal is the workers' shared bell
        event, cleared *before* the cells are read: a cell written after
        the read re-rings the bell, so no completion is ever missed.
        The queue is drained non-blocking for the rare error/fragment
        messages; a frame whose cells flag such a message still in
        flight is deferred and the loop polls fast until it lands.
        """
        while not self._stop.is_set():
            if self.config.doorbell:
                bell = self._bell
                bell.wait(0.002 if self._q_deferred else self.config.poll_s)
                bell.clear()
                with self._cond:
                    if self._closed or self._stop.is_set():
                        return
                    try:
                        while True:
                            try:
                                m = self._done_queue.get_nowait()
                            except queue_mod.Empty:
                                break
                            except (OSError, ValueError, EOFError):
                                return  # queue torn down: pool is closing
                            if m is not None:
                                self._handle_done(m)
                        self._process_doorbell_locked()
                        self._q_deferred = any(
                            r["q_seen"] < r["q_expected"]
                            for r in self._inflight.values()
                        )
                        now = time.monotonic()
                        if now >= self._health_due:
                            self._health_due = now + self.config.poll_s
                            self._check_health_locked()
                    except Exception as exc:  # noqa: BLE001
                        self._broken = (
                            f"supervisor failure: {type(exc).__name__}: {exc}"
                        )
                    finally:
                        self._cond.notify_all()
                    if self._broken is not None:
                        return
                continue
            queue = self._done_queue
            try:
                msg = queue.get(timeout=self.config.poll_s)
            except queue_mod.Empty:
                msg = None
            except (OSError, ValueError, EOFError):
                return  # queue torn down under us: pool is closing
            with self._cond:
                if self._closed or self._stop.is_set():
                    return
                try:
                    if msg is not None:
                        self._handle_done(msg)
                    if queue is self._done_queue:
                        # Absorb whatever else already arrived.
                        while True:
                            try:
                                m = self._done_queue.get_nowait()
                            except queue_mod.Empty:
                                break
                            if m is not None:
                                self._handle_done(m)
                    now = time.monotonic()
                    if now >= self._health_due:
                        self._health_due = now + self.config.poll_s
                        self._check_health_locked()
                except Exception as exc:  # noqa: BLE001 - never die silently
                    self._broken = (
                        f"supervisor failure: {type(exc).__name__}: {exc}"
                    )
                finally:
                    self._cond.notify_all()
                if self._broken is not None:
                    return

    def _check_health_locked(self) -> None:
        """Detect dead workers and expired frame deadlines.

        Only the *oldest* in-flight frame can expire: a batch dispatches
        many frames at one instant, so a later frame's from-dispatch
        deadline would fire while the workers are still legitimately
        chewing through its predecessors.  Each completion re-arms the
        clock (``_last_complete_t``), so a deadline only trips when the
        pipeline as a whole has stopped making progress.
        """
        dead = [pid for pid, w in enumerate(self._workers) if not w.is_alive()]
        now = time.monotonic()
        expired: list[int] = []
        if self._inflight and self.config.timeout_s is not None:
            frame = min(self._inflight)
            rec = self._inflight[frame]
            if rec["deadline"] is not None and now > max(
                rec["deadline"], self._last_complete_t + self.config.timeout_s
            ):
                expired = [frame]
        if dead or expired:
            self._recover_locked(dead, expired)

    def _recover_locked(self, dead: list[int], expired: list[int],
                        cause: str | None = None) -> None:
        """Rebuild the worker set and re-dispatch the lost frames.

        A dead or wedged worker poisons everything downstream of the
        shared barrier, so recovery stops the *whole* set: terminate
        all workers, rebuild queues/barrier/locks, respawn against the
        existing shm segments, and resubmit every in-flight frame (its
        saved partition makes the retry bit-identical).  Frames out of
        retries degrade to an in-parent serial render or fail typed.
        """
        t0 = time.perf_counter()
        trec0 = self._sup_rec.now() if self._sup_rec is not None else 0.0
        if cause is None:
            cause = (
                f"worker(s) {dead} died" if dead else
                f"frame(s) {sorted(expired)} exceeded timeout_s={self.config.timeout_s}"
            )
        # Stop the entire worker set: survivors may be wedged at the
        # barrier waiting for a casualty that will never arrive.
        for w in self._workers:
            try:
                if w.pid is not None:
                    w.terminate()
            except Exception:  # noqa: BLE001 - recovery must not raise
                pass
        for w in self._workers:
            try:
                if w.pid is None:
                    continue
                w.join(timeout=2.0)
                if w.is_alive():
                    w.kill()
                    w.join(timeout=2.0)
            except Exception:  # noqa: BLE001
                pass
        self.metrics.counter("pool/worker_restarts").inc(len(self._workers))
        self._close_queues()
        # The old generation's completion cells and deferred claim
        # seeds are stale; the re-dispatch loop below rebuilds both.
        self._cells[:, :, 0] = -1.0
        self._claims_pending.clear()

        # Retire or retry every in-flight frame.
        expired_set = set(expired)
        for frame in sorted(self._inflight):
            rec = self._inflight[frame]
            if rec["attempt"] < self.config.max_retries:
                rec["attempt"] += 1
                self.metrics.counter("pool/frames_retried").inc()
                continue
            if self.config.degrade_to_serial:
                self._degrade_locked(frame)
            else:
                del self._inflight[frame]
                self._retire_buffer_locked(frame, rec)
                exc_type = FrameTimeout if frame in expired_set else WorkerDied
                self._failed[frame] = exc_type(
                    f"frame {frame} lost ({cause}) after "
                    f"{rec['attempt']} retr{'y' if rec['attempt'] == 1 else 'ies'}"
                )

        # Stale observability state dies with the old generation.
        self._frame_obs.clear()
        if self.trace:
            self._reset_trace_rings()

        self._generation += 1
        try:
            self._spawn_workers(self._generation)
        except BaseException as exc:  # noqa: BLE001 - pool is now broken
            self._broken = f"worker respawn failed: {type(exc).__name__}: {exc}"
            # Salvage what we can: every surviving frame either degrades
            # or fails typed — no waiter is left hanging.
            for frame in sorted(self._inflight):
                if self.config.degrade_to_serial:
                    self._degrade_locked(frame)
                else:
                    rec = self._inflight.pop(frame)
                    self._retire_buffer_locked(frame, rec)
                    self._failed[frame] = PoolUnrecoverable(self._broken)
            return

        for frame in sorted(self._inflight):
            self._dispatch_locked(frame)
            if self._sup_rec is not None:
                self._sup_rec.span(frame, "recover", trec0, self._sup_rec.now())
        self.metrics.histogram("pool/recovery_s").observe(
            time.perf_counter() - t0
        )

    def _close_queues(self) -> None:
        """Drop the per-generation queues (best effort, never raises)."""
        for q in self._job_queues:
            try:
                q.close()
            except Exception:  # noqa: BLE001
                pass
        self._job_queues = []
        if self._done_queue is not None:
            try:
                self._done_queue.close()
            except Exception:  # noqa: BLE001
                pass

    def _degrade_locked(self, frame: int) -> None:
        """Render ``frame`` serially in the parent — the last resort.

        The serial fast path is the pool's bit-identity reference, so a
        degraded frame carries exactly the pixels the workers would have
        produced; only the per-worker observables are absent.
        """
        rec = self._inflight.pop(frame)
        self._retire_buffer_locked(frame, rec)
        try:
            res = render_fast(self.renderer, rec["view"],
                              timestep=rec.get("timestep"))
        except Exception as exc:  # noqa: BLE001 - surface, don't hang
            self._failed[frame] = FrameFailed(
                f"degraded serial render of frame {frame} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            return
        self.metrics.counter("pool/degraded_frames").inc()
        self._results[frame] = MPRenderResult(
            final=res.final,
            intermediate=res.intermediate,
            fact=res.fact,
            n_procs=self.n_procs,
            boundaries=rec["boundaries"],
            profiled=False,
            busy_s=None,
            timeline=None,
            retries=rec["attempt"],
            degraded=True,
        )

    def _handle_done(self, msg: tuple) -> None:
        """Account one worker's done message to its frame's record.

        In doorbell mode only error strings and profile cost fragments
        travel the queue (completion itself lives in the shm cells), so
        the message just feeds the record; whether the frame is finished
        is decided by :meth:`_process_doorbell_locked`.
        """
        pid, frame, err, frags, t_comp, t_warp, n_steals, n_steal_rows = msg
        rec = self._inflight.get(frame)
        if rec is None:
            return
        if self.config.doorbell:
            rec["q_seen"] += 1
            if err is not None:
                rec["errors"].append(f"worker {pid}: {err}")
            elif frags:
                _apply_cost_fragments(rec, pid, frags, t_comp, t_warp)
            return
        rec["done"] += 1
        rec["busy"][pid] = t_comp + t_warp
        rec["steals"] += int(n_steals)
        rec["steal_rows"] += int(n_steal_rows)
        if err is not None:
            rec["errors"].append(f"worker {pid}: {err}")
        elif frags:
            _apply_cost_fragments(rec, pid, frags, t_comp, t_warp)
        if rec["done"] >= self.n_procs:
            self._finish(frame)

    def _process_doorbell_locked(self) -> None:
        """Finish frames whose completion cells are all filled in.

        Completion is in frame order (each worker runs its jobs in
        order), so scan from the oldest in-flight frame and stop at the
        first incomplete one.  Cells are absorbed exactly once; a frame
        whose cells flag an error/fragment queue message still in flight
        is deferred until the message lands.
        """
        while self._inflight:
            frame = min(self._inflight)
            rec = self._inflight[frame]
            cells = self._cells[rec["buf"]]
            if not rec["cells_absorbed"]:
                if not bool(np.all(cells[:, 0] == frame)):
                    return
                for pid in range(self.n_procs):
                    c = cells[pid]
                    rec["busy"][pid] = c[2] + c[3]
                    rec["steals"] += int(c[4])
                    rec["steal_rows"] += int(c[5])
                    if int(c[1]) & _FLAG_QUEUE_MSG:
                        rec["q_expected"] += 1
                rec["cells_absorbed"] = True
            if rec["q_seen"] < rec["q_expected"]:
                return  # error/fragment message still on the queue
            self._finish(frame)
            if frame in self._inflight:
                return  # re-dispatched (retry/recovery) — wait afresh

    def _finish(self, frame: int) -> None:
        """All workers reported: materialise, retry, degrade, or fail."""
        rec = self._inflight[frame]
        timeline = self._collect_timeline(frame)
        if rec["errors"]:
            # A worker raised but the set is intact — retry is just a
            # re-dispatch, no respawn needed.  The failed attempt's
            # timeline was drained above and is dropped (its spans may
            # be truncated); the frame's buffer regions stay marked
            # dirty, so the re-dispatch zeroes whatever was written.
            msg = "; ".join(rec["errors"])
            if rec["attempt"] < self.config.max_retries:
                if rec["batched"]:
                    # Workers still hold the rest of the batch in their
                    # queues; appending a retry *behind* it would reorder
                    # buffer reuse.  Escalate to full recovery instead:
                    # queues are rebuilt and every unfinished frame is
                    # re-dispatched in order (finished frames are already
                    # materialized and are not re-rendered).
                    self._recover_locked([], [], cause=f"frame {frame}: {msg}")
                    return
                rec["attempt"] += 1
                self.metrics.counter("pool/frames_retried").inc()
                self._dispatch_locked(frame)
                return
            if self.config.degrade_to_serial:
                self._degrade_locked(frame)
                return
            del self._inflight[frame]
            self._retire_buffer_locked(frame, rec)
            self._failed[frame] = FrameFailed(msg)
            return
        if timeline is not None:
            self.timelines.append(timeline)
            metrics_from_timelines([timeline], self.metrics)
        if rec["steals"]:
            self.metrics.counter("pool/steals").inc(rec["steals"])
            self.metrics.counter("pool/steal_rows").inc(rec["steal_rows"])
        if rec["profiled"] and rec["costs"] is not None:
            self._planner.install_profile(rec["v_lo"], rec["costs"], rec["key"])
        self._materialize(frame, timeline)

    def _collect_timeline(self, frame: int) -> FrameTimeline | None:
        """Drain the span rings and return ``frame``'s assembled timeline.

        Every worker has posted its done message for ``frame`` by the
        time this runs, and each done message happens-after that
        worker's ring writes, so the frame's records are all visible.
        Records of *later* frames still in flight stay parked in
        ``_frame_obs`` until their own finish.
        """
        if not self.trace:
            return None
        readers = list(self._readers)
        if self._sup_reader is not None:
            readers.append(self._sup_reader)
        for reader in readers:
            for r in reader.drain():
                tl = self._frame_obs.get(r.frame)
                if tl is None:
                    tl = self._frame_obs[r.frame] = FrameTimeline(r.frame)
                tl.add(r)
        dropped = sum(r.dropped for r in self._readers)
        if dropped:
            # Ring wrapped before the parent drained — never silent.
            self.metrics.gauge("trace/dropped_records").set(dropped)
        return self._frame_obs.pop(frame, None)

    def _materialize(self, frame: int, timeline: FrameTimeline | None = None) -> None:
        """Copy a completed frame out of its shared buffer and retire it."""
        t0 = time.perf_counter()
        info = self._inflight.pop(frame)
        fact: ShearWarpFactorization = info["fact"]
        buf = info["buf"]
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        img = IntermediateImage((n_v, n_u))
        img.color = self._inter_view(buf, 0)[:n_v, :n_u].copy()
        img.opacity = self._inter_view(buf, 1)[:n_v, :n_u].copy()
        final = FinalImage((ny, nx))
        final.color = self._final_view(buf, 0)[:ny, :nx].copy()
        final.alpha = self._final_view(buf, 1)[:ny, :nx].copy()
        self._results[frame] = MPRenderResult(
            final=final,
            intermediate=img,
            fact=fact,
            n_procs=self.n_procs,
            boundaries=info["boundaries"],
            profiled=info["profiled"],
            busy_s=info["busy"],
            timeline=timeline,
            steals=info["steals"],
            steal_rows=info["steal_rows"],
            retries=info["attempt"],
            costs=info["costs"],
            costs_v_lo=int(info["v_lo"]),
        )
        self._retire_buffer_locked(frame, info)
        if self._inflight:
            # Workers are compositing later frames while the parent
            # copies this one out: the copy/zero time that the classic
            # per-frame protocol would serialize is overlapped.
            self.metrics.counter("pool/pipeline_overlap_s").inc(
                time.perf_counter() - t0
            )

    # -- shared-buffer plumbing ----------------------------------------------

    def _inter_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._inter_floats * 4
        return np.ndarray(self.inter_cap, np.float32, buffer=self._shm_i.buf, offset=off)

    def _final_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._final_floats * 4
        return np.ndarray(self.final_cap, np.float32, buffer=self._shm_f.buf, offset=off)

    def _zero_images_locked(self, buf: int, fact) -> None:
        """Zero the image regions ``fact``'s frame writes in ``buf``.

        Outside those regions the buffer stays zero by induction: every
        retiring occupant cleans exactly what it wrote.
        """
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        for plane in (0, 1):
            self._inter_view(buf, plane)[:n_v, :n_u].fill(0.0)
            self._final_view(buf, plane)[:ny, :nx].fill(0.0)

    def _retire_buffer_locked(self, frame: int, rec: dict) -> None:
        """Release ``frame``'s buffer to its next occupant.

        Zeroes the regions the frame wrote, resets the buffer's
        completion cells, seeds the next occupant's claim cursors if it
        was dispatched while the buffer was still busy (batch mode), and
        only *then* bumps the release cursor — the cursor is the
        happens-before edge the gated worker spins on, so everything
        written here is visible before any worker touches the buffer.
        Also re-arms the progress clock the frame deadlines run on.
        """
        buf = rec["buf"]
        if rec["was_dispatched"]:
            self._zero_images_locked(buf, rec["fact"])
        self._cells[buf, :, 0] = -1.0
        pending = self._claims_pending.get(buf)
        while pending:
            nxt = pending.popleft()
            nrec = self._inflight.get(nxt)
            if nxt > frame and nrec is not None and nrec["buf"] == buf:
                if self._claims is not None:
                    b = nrec["boundaries"]
                    self._claims[buf, :, 0] = b[:-1]
                    self._claims[buf, :, 1] = b[1:]
                break
        if self._release[buf] < frame:
            self._release[buf] = frame
        self._last_complete_t = time.monotonic()

    # -- observability -------------------------------------------------------

    def fault_counters(self) -> dict[str, int]:
        """Current recovery counters (zeros on a healthy pool)."""
        counters = self.metrics.counters
        return {
            name: int(counters[key].value) if key in counters else 0
            for name, key in (
                ("worker_restarts", "pool/worker_restarts"),
                ("frames_retried", "pool/frames_retried"),
                ("degraded_frames", "pool/degraded_frames"),
            )
        }

    def export_chrome_trace(self, path: str, metadata: dict | None = None) -> None:
        """Write every completed frame's timeline as Chrome trace JSON.

        The file loads in Perfetto / ``chrome://tracing`` with one track
        per worker (plus the supervisor's ``recover`` spans on track
        ``n_procs`` after any recovery).  Requires the pool to have been
        built with ``trace=True``.
        """
        if not self.trace:
            raise RuntimeError("pool was created without trace=True")
        meta = {
            "n_procs": self.n_procs,
            "kernel": self.kernel,
            "profile_period": self.profile_period,
            "stealing": self._steal_active,
            "steal_chunk": self.steal_chunk,
            "frames": len(self.timelines),
            "backend": "mp",
            "doorbell": self.config.doorbell,
            "batch_frames": int(
                self.metrics.counter("pool/batch_frames").value
            ),
        }
        meta.update(self.fault_counters())
        if metadata:
            meta.update(metadata)
        _export_chrome_trace(path, self.timelines, metadata=meta)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the supervisor and workers and release the shared buffers.

        Safe on a partially-constructed pool (``__init__`` failed midway)
        and on a half-dead one (workers killed, supervisor mid-recovery):
        every teardown step tolerates missing or half-built state, and
        whatever shm segments were created are unlinked.  A concurrent
        ``result()`` waiter is woken and raises :class:`PoolClosed`.
        """
        cond = getattr(self, "_cond", None)
        if cond is not None:
            with cond:
                if self._closed:
                    return
                self._closed = True
                cond.notify_all()
        elif getattr(self, "_closed", True):
            return
        else:
            self._closed = True
        stop = getattr(self, "_stop", None)
        if stop is not None:
            stop.set()
        # Unstick any worker spinning on a buffer-release gate so it can
        # drain its queue through to the shutdown sentinel.
        release = getattr(self, "_release", None)
        if release is not None:
            release[:] = np.iinfo(np.int64).max // 2
        # Wake the supervisor out of its blocking bell/queue wait, then
        # wait for it — after this no thread touches the pool's state.
        bell = getattr(self, "_bell", None)
        if bell is not None:
            try:
                bell.set()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        dq = getattr(self, "_done_queue", None)
        if dq is not None:
            try:
                dq.put(None)
            except Exception:  # noqa: BLE001 - queue may be half-built
                pass
        sup = getattr(self, "_supervisor", None)
        if (
            sup is not None and sup.is_alive()
            and sup is not threading.current_thread()
        ):
            sup.join(timeout=5.0)
        for q in getattr(self, "_job_queues", []):
            try:
                q.put(None)
            except Exception:  # noqa: BLE001 - queue may be half-built
                pass
        for w in getattr(self, "_workers", []):
            try:
                if w.pid is None:  # never started (start() failed earlier)
                    continue
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=2.0)
                if w.is_alive():
                    w.kill()
                    w.join()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        for name in ("_shm_i", "_shm_f", "_shm_c", "_shm_t", "_shm_d"):
            shm = getattr(self, name, None)
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked

    def __enter__(self) -> "MPRenderPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort if close() was forgotten
        try:
            self.close()
        except Exception:
            pass


def render_parallel_mp(
    renderer: ShearWarpRenderer,
    view: np.ndarray,
    n_procs: int | None = None,
    kernel: str | None = None,
    profile_period: int | None = None,
    stealing: bool | None = None,
    steal_chunk: int | None = None,
    trace: bool | None = None,
    timeout_s: float | None = None,
    max_retries: int | None = None,
    degrade_to_serial: bool | None = None,
    *,
    config: PoolConfig | None = None,
) -> MPRenderResult:
    """Render one frame with a transient worker pool.

    Uses the *new* algorithm's structure: contiguous intermediate-image
    partitions, profile-balanced via the pool's feedback loop when
    ``profile_period > 0``, reused across both phases with the
    boundary-pair ownership rule.  A barrier still separates the phases:
    however the partition is balanced, a worker's warp rows bilinearly
    sample the boundary scanline pair its neighbor composited, so the
    warp may only start once compositing is complete everywhere.

    One-shot convenience over :class:`MPRenderPool` — for animations
    (where a measured profile actually has a next frame to balance),
    keep a pool alive across frames instead.  Accepts either a
    :class:`PoolConfig` (``buffers`` is forced to 1: a single frame
    cannot pipeline) or the legacy keyword arguments, whose
    ``profile_period`` defaults to 0 here because a single frame can
    never benefit from its own profile.
    """
    legacy = {
        "n_procs": n_procs, "kernel": kernel,
        "profile_period": profile_period, "stealing": stealing,
        "steal_chunk": steal_chunk, "trace": trace, "timeout_s": timeout_s,
        "max_retries": max_retries, "degrade_to_serial": degrade_to_serial,
    }
    if config is None:
        given = {k: v for k, v in legacy.items() if v is not None}
        if given:
            _warn_legacy(given)
        given.setdefault("profile_period", 0)
        config = PoolConfig(buffers=1, **given)
    else:
        config = _config_from(config, legacy).replace(buffers=1)
    with MPRenderPool(renderer, config=config) as pool:
        return pool.render(view)
