"""Real shared-address-space execution via ``multiprocessing``.

The event-driven model in :mod:`repro.parallel.execution` reproduces the
paper's 1997 platforms; this module runs the same two partitioning
schemes for real on a modern multicore host.  The GIL rules out threads
for compute-bound Python, so worker *processes* share the image buffers
through ``multiprocessing.shared_memory`` — writes land in truly shared
pages, exactly the shared-address-space programming model of the paper.
The read-only renderer state (classified volume, RLE encodings) reaches
workers for free through ``fork``.

On a single-core host this still runs correctly (and is exercised by the
test suite); the wall-clock speedup study is
``examples/multicore_speedup.py``.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.partition import line_ownership, uniform_contiguous_partition
from ..render.compositing import composite_image_scanline, nonempty_scanline_bounds
from ..render.image import FinalImage, IntermediateImage
from ..render.serial import ShearWarpRenderer
from ..render.warp import final_pixel_source_lines, warp_scanline
from ..transforms.factorization import ShearWarpFactorization

__all__ = ["MPRenderResult", "render_parallel_mp"]

# Worker globals installed by fork (read-only for the volume; the images
# are views onto shared memory, partitioned so no two workers write the
# same bytes).
_G: dict = {}


@dataclass
class MPRenderResult:
    """Output of a real parallel render."""

    final: FinalImage
    intermediate: IntermediateImage
    fact: ShearWarpFactorization
    n_procs: int


def _worker(pid: int) -> None:
    """Composite and warp this worker's contiguous partition."""
    fact: ShearWarpFactorization = _G["fact"]
    rle = _G["rle"]
    boundaries = _G["boundaries"]
    owner = _G["owner"]
    rows_by_pid = _G["rows_by_pid"]

    shm_i = shared_memory.SharedMemory(name=_G["shm_inter"])
    shm_f = shared_memory.SharedMemory(name=_G["shm_final"])
    try:
        n_v, n_u = fact.intermediate_shape
        ny, nx = _G["final_shape"]
        inter_color = np.ndarray((n_v, n_u), dtype=np.float32, buffer=shm_i.buf)
        inter_opac = np.ndarray(
            (n_v, n_u), dtype=np.float32, buffer=shm_i.buf, offset=n_v * n_u * 4
        )
        img = IntermediateImage((n_v, n_u))
        img.color = inter_color
        img.opacity = inter_opac

        for v in range(int(boundaries[pid]), int(boundaries[pid + 1])):
            composite_image_scanline(img, v, rle, fact)

        _G["barrier"].wait()  # all partitions composited before warping

        final = FinalImage((ny, nx))
        final.color = np.ndarray((ny, nx), dtype=np.float32, buffer=shm_f.buf)
        final.alpha = np.ndarray(
            (ny, nx), dtype=np.float32, buffer=shm_f.buf, offset=ny * nx * 4
        )
        for y in rows_by_pid[pid]:
            warp_scanline(final, y, img, fact, line_owner=owner, pid=pid)
    finally:
        shm_i.close()
        shm_f.close()


def render_parallel_mp(
    renderer: ShearWarpRenderer, view: np.ndarray, n_procs: int = 2
) -> MPRenderResult:
    """Render one frame with ``n_procs`` worker processes.

    Uses the *new* algorithm's structure: contiguous intermediate-image
    partitions reused across both phases with the boundary-pair
    ownership rule (a barrier separates the phases because, unlike the
    simulated 1997 run, the partition here is uniform rather than
    profile-balanced, so neighbors may need each other's boundary
    lines).
    """
    if n_procs < 1:
        raise ValueError("need at least one worker")
    if mp.get_start_method(allow_none=True) not in (None, "fork"):
        raise RuntimeError("render_parallel_mp requires the fork start method")

    fact = renderer.factorize_view(view)
    rle = renderer.rle_for(fact)
    n_v, n_u = fact.intermediate_shape
    ny, nx = fact.final_shape

    v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
    boundaries = uniform_contiguous_partition(v_lo, v_hi, n_procs)
    owner = line_ownership(boundaries, n_v)
    src_lines = final_pixel_source_lines((ny, nx), fact)
    rows_by_pid: list[list[int]] = [[] for _ in range(n_procs)]
    for y in range(ny):
        vmin = min(max(int(src_lines[y, 0]), 0), n_v - 1)
        vmax = min(max(int(src_lines[y, 1]), vmin + 1), n_v)
        for pid in np.unique(owner[vmin:vmax]):
            rows_by_pid[int(pid)].append(y)

    shm_i = shared_memory.SharedMemory(create=True, size=2 * n_v * n_u * 4)
    shm_f = shared_memory.SharedMemory(create=True, size=2 * ny * nx * 4)
    try:
        shm_i.buf[:] = b"\x00" * len(shm_i.buf)
        shm_f.buf[:] = b"\x00" * len(shm_f.buf)

        ctx = mp.get_context("fork")
        _G.update(
            fact=fact,
            rle=rle,
            boundaries=boundaries,
            owner=owner,
            rows_by_pid=rows_by_pid,
            shm_inter=shm_i.name,
            shm_final=shm_f.name,
            final_shape=(ny, nx),
            barrier=ctx.Barrier(n_procs),
        )
        workers = [ctx.Process(target=_worker, args=(pid,)) for pid in range(n_procs)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if any(w.exitcode != 0 for w in workers):
            raise RuntimeError("a render worker crashed")

        img = IntermediateImage((n_v, n_u))
        img.color = np.ndarray((n_v, n_u), np.float32, buffer=shm_i.buf).copy()
        img.opacity = np.ndarray(
            (n_v, n_u), np.float32, buffer=shm_i.buf, offset=n_v * n_u * 4
        ).copy()
        final = FinalImage((ny, nx))
        final.color = np.ndarray((ny, nx), np.float32, buffer=shm_f.buf).copy()
        final.alpha = np.ndarray(
            (ny, nx), np.float32, buffer=shm_f.buf, offset=ny * nx * 4
        ).copy()
        return MPRenderResult(final=final, intermediate=img, fact=fact, n_procs=n_procs)
    finally:
        shm_i.close()
        shm_i.unlink()
        shm_f.close()
        shm_f.unlink()
