"""Real shared-address-space execution via ``multiprocessing``.

The event-driven model in :mod:`repro.parallel.execution` reproduces the
paper's 1997 platforms; this module runs the same two partitioning
schemes for real on a modern multicore host.  The GIL rules out threads
for compute-bound Python, so worker *processes* share the image buffers
through ``multiprocessing.shared_memory`` — writes land in truly shared
pages, exactly the shared-address-space programming model of the paper.
The read-only renderer state (classified volume, RLE encodings) reaches
workers for free through ``fork``.

:class:`MPRenderPool` keeps the workers and the shared buffers alive
across frames, which is what makes animation rendering viable: fork,
shared-memory setup and the first slice decodes are paid once, and the
image segments are double-buffered so the parent overlaps zeroing and
result materialisation with the next frame's compositing.  Each worker
composites its contiguous partition through the block kernel
(:func:`repro.render.block.composite_scanline_block`) by default, so the
per-scanline Python overhead the paper's processors never had does not
throttle the measured speedup; ``kernel="scanline"`` selects the
instrumented reference kernel instead (bit-identical output either way).

On a single-core host this still runs correctly (and is exercised by the
test suite); the wall-clock speedup study is
``examples/multicore_speedup.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.partition import line_ownership, uniform_contiguous_partition
from ..render.block import composite_scanline_block
from ..render.compositing import composite_image_scanline, nonempty_scanline_bounds
from ..render.image import FinalImage, IntermediateImage
from ..render.serial import ShearWarpRenderer
from ..render.warp import final_pixel_source_lines, warp_scanline
from ..transforms.factorization import PERMUTATIONS, ShearWarpFactorization

__all__ = ["MPRenderPool", "MPRenderResult", "render_parallel_mp", "COMPOSITE_KERNELS"]

#: Compositing kernels a worker can run over its partition.
COMPOSITE_KERNELS = ("scanline", "block")

# Worker globals installed by fork (read-only for the volume; the images
# are views onto shared memory, partitioned so no two workers write the
# same bytes).  The parent clears this right after the workers fork so
# renderer state cannot leak into a later pool's fork snapshot.
_G: dict = {}


@dataclass
class MPRenderResult:
    """Output of a real parallel render."""

    final: FinalImage
    intermediate: IntermediateImage
    fact: ShearWarpFactorization
    n_procs: int


def _capacity_shapes(
    vol_shape: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Largest (intermediate, final) image shapes any view can produce.

    The factorization guarantees ``|shear| <= 1`` along the principal
    axis, so for permutation ``(ni, nj, nk)`` the intermediate image is
    at most ``(nj + nk, ni + nk)``; the residual warp is a rotation plus
    translation of that rectangle, bounded by its diagonal.
    """
    cap_u = cap_v = 0
    for perm in PERMUTATIONS.values():
        ni, nj, nk = (vol_shape[perm[0]], vol_shape[perm[1]], vol_shape[perm[2]])
        cap_u = max(cap_u, int(np.ceil((ni - 1) + (nk - 1))) + 2)
        cap_v = max(cap_v, int(np.ceil((nj - 1) + (nk - 1))) + 2)
    diag = int(np.ceil(np.hypot(cap_u - 1, cap_v - 1))) + 2
    return (cap_v, cap_u), (diag, diag)


def _worker_loop(pid: int) -> None:
    """Composite and warp this worker's partition, frame after frame."""
    renderer: ShearWarpRenderer = _G["renderer"]
    kernel: str = _G["kernel"]
    jobs = _G["job_queues"][pid]
    done = _G["done_queue"]
    barrier = _G["barrier"]
    shm_i = _G["shm_i"]
    shm_f = _G["shm_f"]
    cap_iv, cap_iu = _G["inter_cap"]
    cap_fy, cap_fx = _G["final_cap"]
    inter_floats = cap_iv * cap_iu
    final_floats = cap_fy * cap_fx

    while True:
        job = jobs.get()
        if job is None:
            return
        frame, buf, fact, v_lo, v_hi, owner, warp_rows = job
        err: str | None = None
        try:
            n_v, n_u = fact.intermediate_shape
            ny, nx = fact.final_shape
            base_i = buf * 2 * inter_floats
            base_f = buf * 2 * final_floats
            full_c = np.ndarray(
                (cap_iv, cap_iu), np.float32, buffer=shm_i.buf, offset=base_i * 4
            )
            full_o = np.ndarray(
                (cap_iv, cap_iu), np.float32, buffer=shm_i.buf,
                offset=(base_i + inter_floats) * 4,
            )
            img = IntermediateImage((n_v, n_u))
            img.color = full_c[:n_v, :n_u]
            img.opacity = full_o[:n_v, :n_u]

            try:
                rle = renderer.rle_for(fact)
                if kernel == "block":
                    composite_scanline_block(img, v_lo, v_hi, rle, fact)
                else:
                    for v in range(v_lo, v_hi):
                        composite_image_scanline(img, v, rle, fact)
            finally:
                # Siblings block on this barrier no matter what happened
                # above — reaching it even on error prevents a deadlock.
                barrier.wait()

            final = FinalImage((ny, nx))
            final.color = np.ndarray(
                (cap_fy, cap_fx), np.float32, buffer=shm_f.buf, offset=base_f * 4
            )[:ny, :nx]
            final.alpha = np.ndarray(
                (cap_fy, cap_fx), np.float32, buffer=shm_f.buf,
                offset=(base_f + final_floats) * 4,
            )[:ny, :nx]
            for y in warp_rows:
                warp_scanline(final, y, img, fact, line_owner=owner, pid=pid)
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            err = f"{type(exc).__name__}: {exc}"
        done.put((pid, frame, err))


class MPRenderPool:
    """Persistent pool of render workers sharing double-buffered images.

    Parameters
    ----------
    renderer:
        The serial renderer whose volume/encodings the workers inherit
        through ``fork`` at pool construction.  (Re-create the pool if
        the renderer's volume changes.)
    n_procs:
        Worker process count.
    kernel:
        ``"block"`` (default) composites each partition through the
        vectorized block kernel; ``"scanline"`` uses the per-scanline
        reference kernel.  Both produce bit-identical images.
    buffers:
        Shared image buffers cycled across frames.  With two (the
        default), ``submit`` of frame ``n+1`` only waits for frame
        ``n-1``, overlapping the parent's zeroing/copy-out with the
        workers' compositing of the previous frame.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        n_procs: int = 2,
        kernel: str = "block",
        buffers: int = 2,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one worker")
        if kernel not in COMPOSITE_KERNELS:
            raise ValueError(f"kernel must be one of {COMPOSITE_KERNELS}, got {kernel!r}")
        if buffers < 1:
            raise ValueError("need at least one image buffer")
        if mp.get_start_method(allow_none=True) not in (None, "fork"):
            raise RuntimeError("MPRenderPool requires the fork start method")

        self.renderer = renderer
        self.n_procs = int(n_procs)
        self.kernel = kernel
        self.buffers = int(buffers)
        self.inter_cap, self.final_cap = _capacity_shapes(renderer.shape)
        cap_iv, cap_iu = self.inter_cap
        cap_fy, cap_fx = self.final_cap
        self._inter_floats = cap_iv * cap_iu
        self._final_floats = cap_fy * cap_fx

        self._shm_i = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._inter_floats * 4
        )
        self._shm_f = shared_memory.SharedMemory(
            create=True, size=self.buffers * 2 * self._final_floats * 4
        )
        # Zero through numpy views — never a full-size Python bytes object.
        np.ndarray(
            (self.buffers * 2 * self._inter_floats,), np.float32, buffer=self._shm_i.buf
        ).fill(0.0)
        np.ndarray(
            (self.buffers * 2 * self._final_floats,), np.float32, buffer=self._shm_f.buf
        ).fill(0.0)

        ctx = mp.get_context("fork")
        self._job_queues = [ctx.SimpleQueue() for _ in range(self.n_procs)]
        self._done_queue = ctx.Queue()
        _G.update(
            renderer=renderer,
            kernel=kernel,
            job_queues=self._job_queues,
            done_queue=self._done_queue,
            barrier=ctx.Barrier(self.n_procs),
            shm_i=self._shm_i,
            shm_f=self._shm_f,
            inter_cap=self.inter_cap,
            final_cap=self.final_cap,
        )
        try:
            self._workers = [
                ctx.Process(target=_worker_loop, args=(pid,), daemon=True)
                for pid in range(self.n_procs)
            ]
            for w in self._workers:
                w.start()
        finally:
            # The fork snapshot is taken at start(); drop the parent-side
            # references so nothing leaks into a later pool's snapshot.
            _G.clear()

        self._next_frame = 0
        self._inflight: dict[int, dict] = {}  # frame -> {buf, fact}
        self._results: dict[int, MPRenderResult] = {}
        # Per-buffer state: the frame occupying it and the image shapes
        # its last occupant dirtied (so reuse only zeroes those regions).
        self._buf_frame: list[int | None] = [None] * self.buffers
        self._buf_dirty: list[tuple[tuple[int, int], tuple[int, int]] | None] = (
            [None] * self.buffers
        )
        self._closed = False

    # -- frame lifecycle -----------------------------------------------------

    def submit(self, view: np.ndarray) -> int:
        """Dispatch one frame to the workers; returns its frame id.

        Blocks only if every buffer is still occupied by an unfinished
        frame (with ``buffers=2`` that means two frames behind).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        fact = self.renderer.factorize_view(view)
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        if (n_v, n_u) > self.inter_cap or (ny, nx) > self.final_cap:
            raise RuntimeError(
                f"frame shapes {(n_v, n_u)}/{(ny, nx)} exceed pool capacity "
                f"{self.inter_cap}/{self.final_cap} — is the view matrix scaled?"
            )

        frame = self._next_frame
        self._next_frame += 1
        buf = frame % self.buffers
        prev = self._buf_frame[buf]
        if prev is not None and prev in self._inflight:
            self._collect(prev)  # materialises into self._results
        self._zero_buffer(buf)
        self._buf_frame[buf] = frame
        self._buf_dirty[buf] = ((n_v, n_u), (ny, nx))

        rle = self.renderer.rle_for(fact)
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
        boundaries = uniform_contiguous_partition(v_lo, v_hi, self.n_procs)
        owner = line_ownership(boundaries, n_v)
        src_lines = final_pixel_source_lines((ny, nx), fact)
        rows_by_pid: list[list[int]] = [[] for _ in range(self.n_procs)]
        for y in range(ny):
            vmin = min(max(int(src_lines[y, 0]), 0), n_v - 1)
            vmax = min(max(int(src_lines[y, 1]), vmin + 1), n_v)
            for pid in np.unique(owner[vmin:vmax]):
                rows_by_pid[int(pid)].append(y)

        for pid in range(self.n_procs):
            self._job_queues[pid].put(
                (
                    frame,
                    buf,
                    fact,
                    int(boundaries[pid]),
                    int(boundaries[pid + 1]),
                    owner,
                    rows_by_pid[pid],
                )
            )
        self._inflight[frame] = {"buf": buf, "fact": fact}
        return frame

    def result(self, frame: int) -> MPRenderResult:
        """Wait for ``frame`` and return its images (copies)."""
        if frame in self._results:
            return self._results.pop(frame)
        if frame not in self._inflight:
            raise KeyError(f"unknown frame {frame}")
        self._collect(frame)
        return self._results.pop(frame)

    def render(self, view: np.ndarray) -> MPRenderResult:
        """Render one frame synchronously."""
        return self.result(self.submit(view))

    def _collect(self, frame: int) -> None:
        """Drain done messages until ``frame`` completes, then copy it out."""
        info = self._inflight[frame]
        info.setdefault("done", 0)
        errors: list[str] = []
        while info["done"] < self.n_procs:
            try:
                pid, done_frame, err = self._done_queue.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [w.pid for w in self._workers if not w.is_alive()]
                if dead:
                    raise RuntimeError(f"render worker(s) {dead} died") from None
                continue
            rec = self._inflight.get(done_frame)
            if rec is None:
                continue
            rec.setdefault("done", 0)
            rec["done"] += 1
            if err is not None:
                rec.setdefault("errors", []).append(f"worker {pid}: {err}")
            if rec is not info and rec["done"] >= self.n_procs:
                self._materialize(done_frame)
        errors = info.get("errors", [])
        if errors:
            del self._inflight[frame]
            raise RuntimeError("; ".join(errors))
        self._materialize(frame)

    def _materialize(self, frame: int) -> None:
        """Copy a completed frame out of its shared buffer."""
        info = self._inflight.pop(frame)
        if info.get("errors"):
            # A sibling error frame collected out of band: surface it
            # when (if ever) its result is requested.
            raise RuntimeError("; ".join(info["errors"]))
        fact: ShearWarpFactorization = info["fact"]
        buf = info["buf"]
        n_v, n_u = fact.intermediate_shape
        ny, nx = fact.final_shape
        img = IntermediateImage((n_v, n_u))
        img.color = self._inter_view(buf, 0)[:n_v, :n_u].copy()
        img.opacity = self._inter_view(buf, 1)[:n_v, :n_u].copy()
        final = FinalImage((ny, nx))
        final.color = self._final_view(buf, 0)[:ny, :nx].copy()
        final.alpha = self._final_view(buf, 1)[:ny, :nx].copy()
        self._results[frame] = MPRenderResult(
            final=final, intermediate=img, fact=fact, n_procs=self.n_procs
        )

    # -- shared-buffer plumbing ----------------------------------------------

    def _inter_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._inter_floats * 4
        return np.ndarray(self.inter_cap, np.float32, buffer=self._shm_i.buf, offset=off)

    def _final_view(self, buf: int, plane: int) -> np.ndarray:
        off = (buf * 2 + plane) * self._final_floats * 4
        return np.ndarray(self.final_cap, np.float32, buffer=self._shm_f.buf, offset=off)

    def _zero_buffer(self, buf: int) -> None:
        """Zero only the regions the buffer's previous frame wrote."""
        dirty = self._buf_dirty[buf]
        if dirty is None:
            return  # fresh buffer, already zero
        (n_v, n_u), (ny, nx) = dirty
        for plane in (0, 1):
            self._inter_view(buf, plane)[:n_v, :n_u].fill(0.0)
            self._final_view(buf, plane)[:ny, :nx].fill(0.0)
        self._buf_dirty[buf] = None

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the shared buffers."""
        if self._closed:
            return
        self._closed = True
        for q in self._job_queues:
            q.put(None)
        for w in self._workers:
            w.join(timeout=5.0)
            if w.is_alive():
                w.terminate()
                w.join()
        self._shm_i.close()
        self._shm_f.close()
        self._shm_i.unlink()
        self._shm_f.unlink()

    def __enter__(self) -> "MPRenderPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort if close() was forgotten
        try:
            self.close()
        except Exception:
            pass


def render_parallel_mp(
    renderer: ShearWarpRenderer,
    view: np.ndarray,
    n_procs: int = 2,
    kernel: str = "block",
) -> MPRenderResult:
    """Render one frame with ``n_procs`` worker processes.

    Uses the *new* algorithm's structure: contiguous intermediate-image
    partitions reused across both phases with the boundary-pair
    ownership rule (a barrier separates the phases because, unlike the
    simulated 1997 run, the partition here is uniform rather than
    profile-balanced, so neighbors may need each other's boundary
    lines).

    One-shot convenience over :class:`MPRenderPool` — for animations,
    keep a pool alive across frames instead.
    """
    with MPRenderPool(renderer, n_procs=n_procs, kernel=kernel, buffers=1) as pool:
        return pool.render(view)
