"""Event-driven execution model for P logical processors with task stealing.

The reproduction cannot run on a 1997 multiprocessor, so — like the
paper's own simulator studies — parallel execution is *modeled*: tasks
are executed once (serially, deterministically) to obtain their true
costs and memory traces, and this scheduler replays them on P logical
processors to determine who runs what, in which order, and when.

The stealing policy matches the paper's renderers: an idle processor
steals a chunk of units from the tail of the remaining queue of the
most-loaded victim; every steal costs synchronization time on both the
thief and the victim (lock traffic).  Section 4.4 notes that stealing
single scanlines made synchronization overhead ~10x worse — the
``steal_chunk`` parameter reproduces that trade-off.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Unit", "ProcSchedule", "ScheduleResult", "schedule"]


@dataclass(frozen=True)
class Unit:
    """An atomic schedulable unit of work (e.g. one image scanline).

    ``cost`` is the estimated wall-clock duration used for scheduling
    decisions (idleness, steal victims); ``busy`` is the pure compute
    portion reported as busy time.  Real task stealing reacts to elapsed
    time — which includes memory stalls — so callers pass an estimated
    memory component inside ``cost`` while keeping ``busy`` clean.
    """

    uid: int
    cost: float
    busy: float | None = None

    @property
    def busy_cost(self) -> float:
        return self.cost if self.busy is None else self.busy


@dataclass
class ProcSchedule:
    """What one logical processor ended up executing."""

    pid: int
    executed: list[int] = field(default_factory=list)  # unit ids, in order
    busy: float = 0.0  # cost units spent computing
    steal_overhead: float = 0.0  # cost units spent on steal synchronization
    steals: int = 0  # successful steals initiated
    finish: float = 0.0  # local completion time


@dataclass
class ScheduleResult:
    """Outcome of scheduling one phase."""

    procs: list[ProcSchedule]
    makespan: float

    @property
    def total_busy(self) -> float:
        return sum(p.busy for p in self.procs)

    @property
    def total_steals(self) -> int:
        return sum(p.steals for p in self.procs)

    def wait_time(self, pid: int) -> float:
        """Idle time of processor ``pid`` before the phase barrier."""
        return self.makespan - self.procs[pid].finish

    def imbalance(self) -> float:
        """makespan / ideal — 1.0 means perfectly balanced."""
        if not self.procs:
            return 1.0
        ideal = (self.total_busy + sum(p.steal_overhead for p in self.procs)) / len(self.procs)
        return self.makespan / ideal if ideal > 0 else 1.0


def schedule(
    queues: list[list[Unit]],
    steal_chunk: int = 4,
    steal_cost: float = 200.0,
    allow_stealing: bool = True,
) -> ScheduleResult:
    """Simulate P processors draining their queues with chunked stealing.

    Parameters
    ----------
    queues:
        Initial per-processor unit queues (executed front to back;
        victims are robbed from the back).
    steal_chunk:
        Number of units transferred per successful steal.
    steal_cost:
        Synchronization cost (cycles) charged to the thief per steal
        attempt; half of it is also charged to the victim (lock
        contention), as both sides serialize on the task-queue lock.
    """
    n = len(queues)
    if n == 0:
        raise ValueError("need at least one processor")
    if steal_chunk < 1:
        raise ValueError("steal_chunk must be >= 1")
    procs = [ProcSchedule(pid=p) for p in range(n)]
    pending = [list(q) for q in queues]
    remaining = [sum(u.cost for u in q) for q in pending]
    # Victim lock-contention penalties accrued but not yet applied.
    victim_penalty = [0.0] * n

    heap: list[tuple[float, int]] = [(0.0, p) for p in range(n)]
    heapq.heapify(heap)
    makespan = 0.0

    while heap:
        t, p = heapq.heappop(heap)
        # Apply any lock contention this processor suffered as a victim.
        if victim_penalty[p] > 0:
            procs[p].steal_overhead += victim_penalty[p]
            t += victim_penalty[p]
            victim_penalty[p] = 0.0
        if not pending[p]:
            if allow_stealing and n > 1:
                victim = max(
                    (q for q in range(n) if q != p and pending[q]),
                    key=lambda q: remaining[q],
                    default=None,
                )
                if victim is not None:
                    take = pending[victim][-steal_chunk:]
                    del pending[victim][-len(take):]
                    moved = sum(u.cost for u in take)
                    remaining[victim] -= moved
                    procs[p].steals += 1
                    procs[p].steal_overhead += steal_cost
                    victim_penalty[victim] += steal_cost / 2.0
                    # Execute the first stolen unit within the steal event:
                    # the thief holds it, so it can never be stolen back
                    # (this is also what guarantees forward progress).
                    first, rest = take[0], take[1:]
                    pending[p].extend(rest)
                    remaining[p] += moved - first.cost
                    procs[p].executed.append(first.uid)
                    procs[p].busy += first.busy_cost
                    heapq.heappush(heap, (t + steal_cost + first.cost, p))
                    continue
            procs[p].finish = t
            makespan = max(makespan, t)
            continue
        unit = pending[p].pop(0)
        remaining[p] -= unit.cost
        procs[p].executed.append(unit.uid)
        procs[p].busy += unit.busy_cost
        heapq.heappush(heap, (t + unit.cost, p))

    return ScheduleResult(procs=procs, makespan=makespan)
