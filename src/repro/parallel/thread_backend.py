"""No-copy threading backend for the render pool.

:class:`ThreadRenderPool` runs the same partitioned shear-warp frame as
:class:`~repro.parallel.mp_backend.MPRenderPool` — contiguous
profile-balanced scanline blocks, chunked task stealing, warp-follows-
composite ownership — but on *threads* instead of forked processes.
The compute-heavy block kernel spends its time inside numpy ufuncs,
which release the GIL, so threads genuinely overlap there; and a thread
pool pays none of the process pool's structural dispatch costs:

* **no fork** — workers are daemon threads sharing the renderer object
  directly (no copy-on-write snapshot to take or keep coherent);
* **no pickling** — a job is just an ``int`` frame id; plans, images
  and cost fragments are passed by reference under one lock;
* **no shared-memory churn** — each frame composites into a fresh
  private :class:`~repro.render.image.IntermediateImage` /
  :class:`~repro.render.image.FinalImage`, which then *becomes* the
  result (no copy-out, no re-zeroing, no buffer-release protocol).

Everything partition-shaped is literally shared with the MP backend —
:class:`~repro.parallel.mp_backend.FramePlanner`, the chunk claim/steal
helpers and the cost-fragment calibration are imported from
``mp_backend`` — so the two backends cannot drift apart and their
images are bit-identical to each other and to the serial renderer.

Concurrency structure
---------------------
Workers receive frame ids through per-worker queues in identical order
and re-join at a shared :class:`threading.Barrier` between a frame's
composite and warp phases, so at most one frame is ever *in* its
composite phase at a time (a worker enters frame ``f+1``'s composite
only after passing frame ``f``'s barrier, which every sibling has then
reached too).  Claim cursors are therefore per-frame numpy arrays
guarded by one persistent lock per worker.  Warp rows are disjoint per
worker by construction.  Completion bookkeeping happens under the pool
condition; the worker that reports a frame's last block also finishes
it (profile install, timeline assembly, result hand-off) — there is no
supervisor thread.

Semantics differences from the MP pool, all inherent to threads:

* ``timeout_s`` is ignored — a thread cannot die silently (SIGKILL/OOM
  kills the whole process) and cannot be safely terminated, so there is
  nothing for a deadline to recover.  Worker *exceptions* are still
  caught, retried (``max_retries``), degraded to a serial render
  (``degrade_to_serial``) or surfaced as :class:`FrameFailed`.
* ``buffers`` is ignored — images are per-frame, so there is no buffer
  reuse to gate; pipelining depth is bounded only by how far submission
  runs ahead of :meth:`result` collection (each undelivered frame holds
  its two images in memory).
* ``fault_counters()["worker_restarts"]`` is always 0.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time

import numpy as np

from ..obs.metrics import MetricsRegistry, metrics_from_timelines
from ..obs.recorder import RingReader, SpanRecorder
from ..obs.timeline import FrameTimeline
from ..obs.timeline import export_chrome_trace as _export_chrome_trace
from ..render.fast import render_fast
from ..render.image import FinalImage, IntermediateImage
from ..render.serial import ShearWarpRenderer
from ..render.warp import warp_coeffs, warp_scanline
from . import mp_backend as _mpb
from .backend import BackendCapabilities, as_frame_specs
from .mp_backend import (
    FrameFailed,
    FramePlanner,
    MPPoolError,
    MPRenderResult,
    PoolClosed,
    PoolConfig,
    PoolUnrecoverable,
    _apply_cost_fragments,
    _burn,
    _claim_own_chunk,
    _composite_range,
    _config_from,
    _steal_chunk,
    _warn_legacy,
)

__all__ = ["ThreadRenderPool", "render_parallel_threads"]


class ThreadRenderPool:
    """Persistent pool of render *threads* sharing the renderer in place.

    API-compatible with :class:`~repro.parallel.mp_backend.MPRenderPool`
    (``submit`` / ``submit_batch`` / ``render_animation`` / ``result`` /
    ``render`` / ``close`` / context manager), returning the same
    :class:`~repro.parallel.mp_backend.MPRenderResult` shape, so callers
    and benchmarks switch backends through ``PoolConfig(backend=...)``
    and the :func:`repro.open_pool` facade without touching anything
    else.  See the module docstring for the (small) semantic
    differences.
    """

    def __init__(
        self,
        renderer: ShearWarpRenderer,
        config: PoolConfig | None = None,
        **legacy,
    ) -> None:
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._queues: list[queue_mod.SimpleQueue] = []
        self._cond = threading.Condition()
        self._broken: str | None = None

        cfg = _config_from(config, legacy)
        self.renderer = renderer
        self.config = cfg
        self.n_procs = cfg.n_procs
        self.kernel = cfg.kernel
        self.profile_period = cfg.profile_period
        self.stealing = cfg.stealing
        self.steal_chunk = cfg.steal_chunk
        self.trace = cfg.trace
        self.trace_capacity = cfg.trace_capacity
        self._steal_active = cfg.stealing and cfg.n_procs > 1

        self.metrics = MetricsRegistry()
        self._planner = FramePlanner(
            renderer, cfg.n_procs, cfg.profile_period, self.metrics
        )
        self.timelines: list[FrameTimeline] = []
        self._frame_obs: dict[int, FrameTimeline] = {}
        self._trace_epoch = time.perf_counter()
        self._recorders: list[SpanRecorder | None] = [None] * cfg.n_procs
        self._readers: list[RingReader] = []
        self._sup_rec: SpanRecorder | None = None
        self._sup_reader: RingReader | None = None
        if cfg.trace:
            for pid in range(cfg.n_procs):
                rec = SpanRecorder.in_memory(cfg.trace_capacity, self._trace_epoch)
                self._recorders[pid] = rec
                self._readers.append(RingReader(rec.cursor, rec.records, pid))
            self._sup_rec = SpanRecorder.in_memory(epoch=self._trace_epoch)
            self._sup_reader = RingReader(
                self._sup_rec.cursor, self._sup_rec.records, pid=cfg.n_procs
            )

        self._next_frame = 0
        self._inflight: dict[int, dict] = {}
        self._results: dict[int, MPRenderResult] = {}
        self._failed: dict[int, MPPoolError] = {}
        # One persistent lock per worker's claim cursors.  The barrier
        # keeps at most one frame in its composite phase at any moment,
        # so per-frame claim arrays + these per-worker locks give the
        # exact claim/steal protocol of the MP pool's shm cursor array.
        self._claim_locks = [threading.Lock() for _ in range(cfg.n_procs)]
        self._barrier = threading.Barrier(cfg.n_procs)
        self._queues = [queue_mod.SimpleQueue() for _ in range(cfg.n_procs)]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(pid,),
                name=f"render-pool-{pid}", daemon=True,
            )
            for pid in range(cfg.n_procs)
        ]
        for t in self._threads:
            t.start()

    # -- frame lifecycle -----------------------------------------------------

    @property
    def capabilities(self) -> BackendCapabilities:
        """What this pool can do (the :class:`RenderBackend` struct)."""
        return BackendCapabilities(
            trace=self.trace,
            steal=self._steal_active,
            profile=self.profile_period > 0,
            shard=False,
        )

    def submit(self, view: np.ndarray, region=None,
               timestep: int | None = None) -> int:
        """Dispatch one frame; returns its frame id (never blocks —
        per-frame images mean there is no buffer to wait for).
        ``region`` restricts the frame to one shard's band (see
        :class:`~repro.parallel.mp_backend.FrameRegion`); ``timestep``
        selects a time-varying renderer's encoding."""
        with self._cond:
            self._raise_if_unusable()
            t_d0 = self._sup_rec.now() if self._sup_rec is not None else 0.0
            plan = self._planner.plan(view, region=region, timestep=timestep)
            frame = self._claim_frame_locked(plan, batched=False)
            self._dispatch_locked(frame)
            self._sample_gauges_locked()
            if self._sup_rec is not None:
                self._sup_rec.span(frame, "dispatch", t_d0, self._sup_rec.now())
            return frame

    def submit_batch(self, frame_specs, regions=None) -> list[int]:
        """Dispatch a whole animation in one queue message per worker.

        ``frame_specs`` accepts bare views and/or
        :class:`~repro.parallel.backend.FrameSpec` items (the
        :class:`RenderBackend` batch form).  Planning is sequential and
        deterministic exactly as in the MP pool (the profile feedback
        loop crosses batch boundaries), so batched output is
        bit-identical to per-frame submission.
        """
        specs = as_frame_specs(frame_specs)
        if regions is None:
            regions = [None] * len(specs)
        with self._cond:
            self._raise_if_unusable()
            if not specs:
                return []
            t_d0 = self._sup_rec.now() if self._sup_rec is not None else 0.0
            frames = []
            for spec, region in zip(specs, regions):
                plan = self._planner.plan(spec.view,
                                          region=spec.region or region,
                                          timestep=spec.timestep)
                frame = self._claim_frame_locked(plan, batched=True)
                self._prepare_frame_locked(frame)
                frames.append(frame)
            for q in self._queues:
                q.put(list(frames))
            self.metrics.counter("pool/batch_frames").inc(len(frames))
            self._sample_gauges_locked()
            if self._sup_rec is not None:
                self._sup_rec.span(frames[0], "dispatch", t_d0,
                                   self._sup_rec.now())
            return frames

    def render_animation(self, views, regions=None) -> list[MPRenderResult]:
        """Render a sequence of views, returning results in order."""
        if self.config.pipeline:
            return [self.result(f) for f in self.submit_batch(views, regions)]
        specs = as_frame_specs(views)
        if regions is None:
            regions = [None] * len(specs)
        handles = [
            self.submit(s.view, s.region or r, timestep=s.timestep)
            for s, r in zip(specs, regions)
        ]
        return [self.result(h) for h in handles]

    def render(self, view: np.ndarray) -> MPRenderResult:
        """Render one frame synchronously."""
        return self.result(self.submit(view))

    def result(self, frame: int) -> MPRenderResult:
        """Wait for ``frame`` and return its images (no copies — the
        per-frame images are handed over, not extracted from a shared
        buffer).  A failed frame's typed error re-raises on every call
        (idempotent, matching :meth:`MPRenderPool.result`)."""
        with self._cond:
            while True:
                if frame in self._failed:
                    raise self._failed[frame]
                if frame in self._results:
                    return self._results.pop(frame)
                if frame not in self._inflight:
                    raise KeyError(f"unknown frame {frame}")
                if self._broken is not None:
                    raise PoolUnrecoverable(self._broken)
                if self._closed:
                    raise PoolClosed(
                        f"pool closed while frame {frame} was in flight"
                    )
                self._cond.wait(timeout=0.2)

    def _raise_if_unusable(self) -> None:
        if self._closed:
            raise PoolClosed("pool is closed")
        if self._broken is not None:
            raise PoolUnrecoverable(self._broken)

    def _claim_frame_locked(self, plan: dict, batched: bool) -> int:
        frame = self._next_frame
        self._next_frame += 1
        rec = {
            "done": 0,
            "errors": [],
            "costs": None,
            "busy": np.zeros(self.n_procs, dtype=np.float64),
            "steals": 0,
            "steal_rows": 0,
            "attempt": 0,
            "batched": batched,
            "img": None,
            "final": None,
            "claims": None,
        }
        rec.update(plan)
        self._inflight[frame] = rec
        return frame

    def _prepare_frame_locked(self, frame: int) -> None:
        """Fresh images + claim cursors for a (re-)dispatch of ``frame``."""
        rec = self._inflight[frame]
        fact = rec["fact"]
        rec["img"] = IntermediateImage(fact.intermediate_shape)
        rec["final"] = FinalImage(fact.final_shape)
        if self._steal_active:
            b = rec["boundaries"]
            claims = np.empty((self.n_procs, 2), dtype=np.int64)
            claims[:, 0] = b[:-1]
            claims[:, 1] = b[1:]
            rec["claims"] = claims
        rec["done"] = 0
        rec["errors"] = []
        rec["costs"] = None
        rec["busy"][:] = 0.0
        rec["steals"] = 0
        rec["steal_rows"] = 0

    def _dispatch_locked(self, frame: int) -> None:
        self._prepare_frame_locked(frame)
        for q in self._queues:
            q.put(frame)

    def _sample_gauges_locked(self) -> None:
        self.metrics.gauge("pool/queue_depth").set(len(self._inflight))

    # -- worker side ---------------------------------------------------------

    def _worker(self, pid: int) -> None:
        """Drain this worker's frame queue until the ``None`` sentinel."""
        rec_tr = self._recorders[pid]
        try:
            t_wait0 = 0.0 if rec_tr is None else rec_tr.now()
            while True:
                msg = self._queues[pid].get()
                if msg is None:
                    return
                batch = msg if isinstance(msg, list) else [msg]
                for frame in batch:
                    self._run_frame(pid, frame, rec_tr, t_wait0)
                    t_wait0 = 0.0 if rec_tr is None else rec_tr.now()
        except Exception as exc:  # noqa: BLE001 - never die silently
            with self._cond:
                self._broken = (
                    f"worker thread {pid} failed: {type(exc).__name__}: {exc}"
                )
                self._cond.notify_all()

    def _run_frame(self, pid: int, frame: int, rec_tr, t_wait0: float) -> None:
        """One frame's composite + warp on this worker's thread."""
        with self._cond:
            rec = self._inflight.get(frame)
        if rec is None:
            # Retired under us (pool closing mid-batch) — still pair up
            # with the siblings' barrier waits for this frame.
            self._barrier.wait()
            return
        fact = rec["fact"]
        boundaries = rec["boundaries"]
        v_lo, v_hi = int(boundaries[pid]), int(boundaries[pid + 1])
        img = rec["img"]
        final = rec["final"]
        claims = rec["claims"]
        profiled = rec["profiled"]
        if rec_tr is not None:
            rec_tr.span(frame, "wait", t_wait0, rec_tr.now())
        delay = _mpb._TEST_ROW_DELAY  # read live so tests can monkeypatch
        burn_per_row = delay[1] if delay is not None and delay[0] == pid else 0.0
        err: str | None = None
        frags: list[tuple[int, np.ndarray]] | None = [] if profiled else None
        n_steals = n_steal_rows = n_rows = 0
        t_comp = t_warp = 0.0
        tc0 = tb0 = 0.0
        cache_stats0: tuple[int, int] | None = None
        # Per-thread CPU time: the exact analogue of the MP workers'
        # per-process clock, unpolluted by other threads' slices.
        t0 = time.thread_time()
        try:
            try:
                if rec_tr is not None:
                    td0 = rec_tr.now()
                rle = self.renderer.rle_for(fact, timestep=rec.get("timestep"))
                if rec_tr is not None:
                    tc0 = rec_tr.now()
                    rec_tr.span(frame, "decode", td0, tc0)
                    cache = rle.slice_cache
                    cache_stats0 = (cache.hits, cache.misses)
                if claims is None:
                    frag = _composite_range(img, v_lo, v_hi, rle, fact,
                                            self.kernel, profiled, rec_tr, frame)
                    n_rows = max(0, v_hi - v_lo)
                    if frag is not None:
                        frags.append((v_lo, frag))
                    if burn_per_row:
                        _burn(burn_per_row * n_rows)
                else:
                    my_lock = self._claim_locks[pid]
                    while True:
                        got = _claim_own_chunk(claims, my_lock, pid,
                                               self.steal_chunk)
                        if got is None:
                            break
                        lo, hi = got
                        frag = _composite_range(img, lo, hi, rle, fact,
                                                self.kernel, profiled,
                                                rec_tr, frame)
                        n_rows += hi - lo
                        if frag is not None:
                            frags.append((lo, frag))
                        if burn_per_row:
                            _burn(burn_per_row * (hi - lo))
                    while True:
                        if rec_tr is not None:
                            ts0 = rec_tr.now()
                        got = _steal_chunk(claims, self._claim_locks, pid,
                                           self.steal_chunk)
                        if got is None:
                            break
                        if rec_tr is not None:
                            rec_tr.span(frame, "steal", ts0, rec_tr.now())
                        lo, hi = got
                        n_steals += 1
                        n_steal_rows += hi - lo
                        frag = _composite_range(img, lo, hi, rle, fact,
                                                self.kernel, profiled,
                                                rec_tr, frame)
                        n_rows += hi - lo
                        if frag is not None:
                            frags.append((lo, frag))
                        if burn_per_row:
                            _burn(burn_per_row * (hi - lo))
                if rec_tr is not None:
                    rec_tr.count(frame, "rows", n_rows)
                    rec_tr.count(frame, "steals", n_steals)
                    rec_tr.count(frame, "steal_rows", n_steal_rows)
                    rec_tr.count(frame, "cache_hits",
                                 cache.hits - cache_stats0[0])
                    rec_tr.count(frame, "cache_misses",
                                 cache.misses - cache_stats0[1])
            finally:
                t_comp = time.thread_time() - t0
                if rec_tr is not None:
                    tb0 = rec_tr.now()
                    rec_tr.span(frame, "composite", tc0, tb0)
                # Reached even on error so no sibling deadlocks; a
                # thread cannot die without the whole process dying, so
                # (unlike the MP pool) every sibling always arrives.
                self._barrier.wait()
                if rec_tr is not None:
                    rec_tr.span(frame, "barrier", tb0, rec_tr.now())
            t1 = time.thread_time()
            if rec_tr is not None:
                tw0 = rec_tr.now()
            coeffs = warp_coeffs(fact)
            owner = rec["owner"]
            for y in rec["rows_by_pid"][pid]:
                warp_scanline(final, int(y), img, fact, line_owner=owner,
                              pid=pid, coeffs=coeffs)
            t_warp = time.thread_time() - t1
            if rec_tr is not None:
                rec_tr.span(frame, "warp", tw0, rec_tr.now())
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            err = f"{type(exc).__name__}: {exc}"
            frags = None

        with self._cond:
            rec = self._inflight.get(frame)
            if rec is None:
                return
            rec["done"] += 1
            rec["busy"][pid] = t_comp + t_warp
            rec["steals"] += int(n_steals)
            rec["steal_rows"] += int(n_steal_rows)
            if err is not None:
                rec["errors"].append(f"worker {pid}: {err}")
            elif frags:
                _apply_cost_fragments(rec, pid, frags, t_comp, t_warp)
            if rec["done"] >= self.n_procs:
                self._finish_locked(frame)
            self._cond.notify_all()

    # -- completion (runs on the last-reporting worker's thread) -------------

    def _finish_locked(self, frame: int) -> None:
        rec = self._inflight[frame]
        timeline = self._collect_timeline_locked(frame)
        if rec["errors"]:
            msg = "; ".join(rec["errors"])
            if rec["attempt"] < self.config.max_retries:
                # Tail re-dispatch: the retry lands behind any frames
                # already queued, in the same order on every worker, so
                # barrier pairing is preserved.  Per-frame images make
                # the retry clean by construction.
                rec["attempt"] += 1
                self.metrics.counter("pool/frames_retried").inc()
                self._dispatch_locked(frame)
                return
            if self.config.degrade_to_serial:
                self._degrade_locked(frame)
                return
            del self._inflight[frame]
            self._failed[frame] = FrameFailed(msg)
            return
        if timeline is not None:
            self.timelines.append(timeline)
            metrics_from_timelines([timeline], self.metrics)
        if rec["steals"]:
            self.metrics.counter("pool/steals").inc(rec["steals"])
            self.metrics.counter("pool/steal_rows").inc(rec["steal_rows"])
        if rec["profiled"] and rec["costs"] is not None:
            self._planner.install_profile(rec["v_lo"], rec["costs"], rec["key"])
        info = self._inflight.pop(frame)
        self._results[frame] = MPRenderResult(
            final=info["final"],
            intermediate=info["img"],
            fact=info["fact"],
            n_procs=self.n_procs,
            boundaries=info["boundaries"],
            profiled=info["profiled"],
            busy_s=info["busy"],
            timeline=timeline,
            steals=info["steals"],
            steal_rows=info["steal_rows"],
            retries=info["attempt"],
            costs=info["costs"],
            costs_v_lo=int(info["v_lo"]),
        )

    def _degrade_locked(self, frame: int) -> None:
        rec = self._inflight.pop(frame)
        try:
            res = render_fast(self.renderer, rec["view"],
                              timestep=rec.get("timestep"))
        except Exception as exc:  # noqa: BLE001
            self._failed[frame] = FrameFailed(
                f"degraded serial render of frame {frame} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            return
        self.metrics.counter("pool/degraded_frames").inc()
        self._results[frame] = MPRenderResult(
            final=res.final,
            intermediate=res.intermediate,
            fact=res.fact,
            n_procs=self.n_procs,
            boundaries=rec["boundaries"],
            profiled=False,
            busy_s=None,
            timeline=None,
            retries=rec["attempt"],
            degraded=True,
        )

    def _collect_timeline_locked(self, frame: int) -> FrameTimeline | None:
        if not self.trace:
            return None
        readers = list(self._readers)
        if self._sup_reader is not None:
            readers.append(self._sup_reader)
        for reader in readers:
            for r in reader.drain():
                tl = self._frame_obs.get(r.frame)
                if tl is None:
                    tl = self._frame_obs[r.frame] = FrameTimeline(r.frame)
                tl.add(r)
        dropped = sum(r.dropped for r in self._readers)
        if dropped:
            self.metrics.gauge("trace/dropped_records").set(dropped)
        return self._frame_obs.pop(frame, None)

    # -- observability -------------------------------------------------------

    def fault_counters(self) -> dict[str, int]:
        """Recovery counters (``worker_restarts`` is always 0: threads
        cannot die without taking the whole process with them)."""
        counters = self.metrics.counters
        return {
            name: int(counters[key].value) if key in counters else 0
            for name, key in (
                ("worker_restarts", "pool/worker_restarts"),
                ("frames_retried", "pool/frames_retried"),
                ("degraded_frames", "pool/degraded_frames"),
            )
        }

    def export_chrome_trace(self, path: str, metadata: dict | None = None) -> None:
        """Write every completed frame's timeline as Chrome trace JSON."""
        if not self.trace:
            raise RuntimeError("pool was created without trace=True")
        meta = {
            "n_procs": self.n_procs,
            "kernel": self.kernel,
            "profile_period": self.profile_period,
            "stealing": self._steal_active,
            "steal_chunk": self.steal_chunk,
            "frames": len(self.timelines),
            "backend": "thread",
            "doorbell": False,
            "batch_frames": int(
                self.metrics.counter("pool/batch_frames").value
            ),
        }
        meta.update(self.fault_counters())
        if metadata:
            meta.update(metadata)
        _export_chrome_trace(path, self.timelines, metadata=meta)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers (after any already-queued frames) and wake
        every ``result`` waiter with :class:`PoolClosed`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=10.0)

    def __enter__(self) -> "ThreadRenderPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort if close() was forgotten
        try:
            self.close()
        except Exception:
            pass


def render_parallel_threads(
    renderer: ShearWarpRenderer,
    view: np.ndarray,
    *,
    config: PoolConfig | None = None,
    **legacy,
) -> MPRenderResult:
    """Render one frame with a transient thread pool (convenience
    mirror of :func:`~repro.parallel.mp_backend.render_parallel_mp`)."""
    if config is None:
        given = {k: v for k, v in legacy.items() if v is not None}
        if given:
            _warn_legacy(given)
        legacy.setdefault("profile_period", 0)
        config = PoolConfig(**legacy)
    else:
        config = _config_from(config, legacy)
    with ThreadRenderPool(renderer, config=config) as pool:
        return pool.render(view)
