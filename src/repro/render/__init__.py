"""Serial renderers: shear-warp and the ray-casting baseline."""

from .block import BlockRowCounters, composite_scanline_block
from .compositing import composite_frame, composite_image_scanline, nonempty_scanline_bounds
from .image import BYTES_PER_PIXEL, OPAQUE_THRESHOLD, FinalImage, IntermediateImage
from .instrument import ListTraceSink, Region, SegmentedTraceSink, TraceSink, WorkCounters
from .fast import composite_frame_fast, render_fast, warp_frame_fast
from .serial import RenderResult, ShearWarpRenderer
from .shading import NormalTable, PhongParameters, central_gradients, shade_volume
from .warp import (
    final_pixel_source_lines,
    warp_coeffs,
    warp_frame,
    warp_rows_by_pid,
    warp_scanline,
    warp_tile,
)

__all__ = [
    "BlockRowCounters",
    "composite_scanline_block",
    "composite_frame",
    "composite_image_scanline",
    "nonempty_scanline_bounds",
    "BYTES_PER_PIXEL",
    "OPAQUE_THRESHOLD",
    "FinalImage",
    "IntermediateImage",
    "ListTraceSink",
    "SegmentedTraceSink",
    "Region",
    "TraceSink",
    "WorkCounters",
    "composite_frame_fast",
    "render_fast",
    "warp_frame_fast",
    "NormalTable",
    "PhongParameters",
    "central_gradients",
    "shade_volume",
    "RenderResult",
    "ShearWarpRenderer",
    "final_pixel_source_lines",
    "warp_coeffs",
    "warp_frame",
    "warp_rows_by_pid",
    "warp_scanline",
    "warp_tile",
]
