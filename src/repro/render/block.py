"""Block compositing kernel: one processor's contiguous scanline band.

The paper's new algorithm hands each processor one *contiguous block* of
intermediate-image scanlines.  The reference kernel
(:func:`repro.render.compositing.composite_image_scanline`) walks that
block one scanline at a time — faithful and instrumentable, but the
per-(scanline, slice) Python overhead dominates wall-clock time on a
real host.  This kernel composites the whole band per slice instead:

* **slice-major traversal** — the volume is streamed once, front to
  back, exactly the order the real renderer (and the trace replay)
  uses; each slice's decoded plane comes from the RLE volume's
  decoded-slice LRU so animation frames and sibling workers stop
  re-decoding the same runs;
* **constant ``(fu, fj)`` per slice** — because ``k`` is the principal
  axis, the bilinear fractions are constant across a slice's entire
  footprint, so resampling a band is four shifted-plane multiply-adds
  (the structure the original VolPack inner loop exploits);
* **per-row early termination** — an active-row mask retires a scanline
  from the remaining slices the moment the reference kernel's
  whole-scanline termination test would have fired for it, so saturated
  rows stop costing anything.

The kernel performs the reference kernel's per-pixel arithmetic in the
same operand order and precision, so its output is **bit-identical** to
looping ``composite_image_scanline`` over the band (asserted by
``tests/test_block_kernel.py``), and its optional work counters (both
aggregate and per-row) match the reference counts exactly.  What it does
*not* produce is a memory trace — the scanline kernel remains the
instrumented reference for the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..transforms.factorization import ShearWarpFactorization
from ..volume.rle import RLEVolume
from .image import IntermediateImage
from .instrument import WorkCounters

__all__ = ["composite_scanline_block", "BlockRowCounters"]

#: Counter fields the compositing kernels accumulate (the warp/ray
#: fields of :class:`WorkCounters` stay zero here).
_ROW_FIELDS = (
    "loop_iters",
    "pixels_skipped",
    "run_entries",
    "resample_ops",
    "composite_ops",
)


@dataclass
class BlockRowCounters:
    """Per-scanline work counts accumulated by the block kernel.

    Row ``v`` of the band maps to index ``v - v_lo`` of each array.  The
    per-row values equal what per-scanline :class:`WorkCounters` would
    record — this is what lets the parallel renderers keep building
    per-scanline cost profiles while compositing through the fast path.
    """

    v_lo: int
    v_hi: int
    loop_iters: np.ndarray = field(init=False)
    pixels_skipped: np.ndarray = field(init=False)
    run_entries: np.ndarray = field(init=False)
    resample_ops: np.ndarray = field(init=False)
    composite_ops: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = max(0, self.v_hi - self.v_lo)
        for name in _ROW_FIELDS:
            setattr(self, name, np.zeros(n, dtype=np.int64))

    def row(self, v: int) -> WorkCounters:
        """Counters of scanline ``v`` as a :class:`WorkCounters`."""
        i = v - self.v_lo
        return WorkCounters(
            **{name: int(getattr(self, name)[i]) for name in _ROW_FIELDS}
        )

    def aggregate(self, into: WorkCounters | None = None) -> WorkCounters:
        """Band totals, optionally accumulated into an existing object."""
        out = into if into is not None else WorkCounters()
        for name in _ROW_FIELDS:
            setattr(out, name, getattr(out, name) + int(getattr(self, name).sum()))
        return out


def composite_scanline_block(
    img: IntermediateImage,
    v_lo: int,
    v_hi: int,
    rle: RLEVolume,
    fact: ShearWarpFactorization,
    counters: WorkCounters | None = None,
    row_counters: BlockRowCounters | None = None,
) -> IntermediateImage:
    """Composite intermediate-image scanlines ``[v_lo, v_hi)`` over all slices.

    Bit-identical to calling ``composite_image_scanline`` for each ``v``
    in the range, including the optional counters (``counters`` receives
    the band aggregate; ``row_counters`` the per-scanline breakdown).
    """
    ni, nj, nk = rle.shape_ijk
    n_v, n_u = img.shape
    v_lo = max(0, int(v_lo))
    v_hi = min(n_v, int(v_hi))
    if row_counters is not None and (row_counters.v_lo, row_counters.v_hi) != (v_lo, v_hi):
        raise ValueError(
            f"row_counters cover [{row_counters.v_lo}, {row_counters.v_hi}), "
            f"kernel composites [{v_lo}, {v_hi})"
        )
    if v_hi <= v_lo:
        return img
    H = v_hi - v_lo
    thr = img.opaque_threshold
    opac = img.opacity
    col = img.color

    want = counters is not None or row_counters is not None
    rc = row_counters if row_counters is not None else (
        BlockRowCounters(v_lo, v_hi) if want else None
    )

    # Per-row state: scanlines still inside the reference kernel's slice
    # loop.  A row leaves when its whole-scanline termination test fires.
    in_loop = np.ones(H, dtype=bool)
    vs = np.arange(v_lo, v_hi, dtype=np.float64)

    # Span of the last slice traversed — the reference kernel's sound
    # early-termination window (see composite_image_scanline).
    u_off_last, _ = fact.slice_offsets(int(fact.k_front_to_back[-1]))
    last_lo = max(0, int(np.ceil(float(u_off_last) - 1.0)))
    last_hi = min(n_u, int(np.floor(float(u_off_last) + ni - 1e-9)) + 1)

    run_count = rle.run_count
    vox_count = rle.vox_count

    for k in fact.k_front_to_back:
        k = int(k)
        if not in_loop.any():
            break
        if want:
            rc.loop_iters[in_loop] += 1
        u_off, v_off = fact.slice_offsets(k)
        u_off = float(u_off)
        v_off = float(v_off)

        # Per-row (jA, fj): the same float64 arithmetic as the reference
        # kernel, evaluated for the whole band at once.
        j_f = vs - v_off
        jA = np.floor(j_f)
        fj = j_f - jA
        jAi = jA.astype(np.int64)
        useA = (jAi >= 0) & (jAi < nj)
        useB = (jAi >= -1) & (jAi < nj - 1) & (fj > 0.0)
        rows = in_loop & (useA | useB)
        if not rows.any():
            continue

        # Horizontal footprint of this slice (constant across the band).
        u_lo = max(0, int(np.ceil(u_off - 1.0)))
        u_hi = min(n_u, int(np.floor(u_off + ni - 1e-9)) + 1)
        if u_hi <= u_lo:
            continue
        L = u_hi - u_lo
        m = int(np.floor(u_lo - u_off))
        fu = (u_lo - u_off) - m

        O = opac[v_lo:v_hi, u_lo:u_hi]
        C = col[v_lo:v_hi, u_lo:u_hi]

        # Rows with any non-saturated pixel left in the span.
        r1 = np.nonzero(rows)[0]
        act = O[r1] < thr
        n_active = act.sum(axis=1)
        if want:
            rc.pixels_skipped[r1] += L - n_active
        live = n_active > 0
        if not live.any():
            continue
        r2 = r1[live]
        act = act[live]

        # Runs/voxels of the (at most two) contributing voxel scanlines.
        jA2 = jAi[r2]
        uA = useA[r2]
        uB = useB[r2]
        rowA = np.where(uA, jA2, 0)
        rowB = np.where(uB, jA2 + 1, 0)
        if want:
            rc.run_entries[r2] += (
                np.where(uA, run_count[k, rowA], 0)
                + np.where(uB, run_count[k, rowB], 0)
            )
        nvox = np.where(uA, vox_count[k, rowA], 0) + np.where(uB, vox_count[k, rowB], 0)
        occupied = nvox > 0
        if not occupied.any():
            continue
        r3 = r2[occupied]
        act = act[occupied]
        jA3 = jAi[r3]

        # Bilinear resample: gather the two contributing plane rows per
        # scanline (an out-of-range row lands on the transparent pad) and
        # blend with the reference kernel's exact weights and operand
        # order — row A/B with (1 - fu, fu), then (wA, wB).
        p_o, p_c = rle.decode_slice_padded(k)
        colA, colB = m + 1, m + 2 + L
        gAo = p_o[jA3 + 1, colA:colB]
        gBo = p_o[jA3 + 2, colA:colB]
        gAc = p_c[jA3 + 1, colA:colB]
        gBc = p_c[jA3 + 2, colA:colB]
        one_fu = 1.0 - fu
        aA = gAo[:, :-1] * one_fu + gAo[:, 1:] * fu
        cA = gAc[:, :-1] * one_fu + gAc[:, 1:] * fu
        aB = gBo[:, :-1] * one_fu + gBo[:, 1:] * fu
        cB = gBc[:, :-1] * one_fu + gBc[:, 1:] * fu
        # The reference kernel's weights are Python floats, which NumPy's
        # weak-scalar promotion rounds to float32 at the multiply; doing
        # the same rounding here (float64 subtraction first, then the
        # cast) keeps the whole blend in float32 and bit-identical.
        fj3 = fj[r3]
        wA = np.where(useA[r3], 1.0 - fj3, 0.0).astype(np.float32)[:, None]
        wB = np.where(useB[r3], fj3, 0.0).astype(np.float32)[:, None]
        samp_a = wA * aA + wB * aB
        samp_c = wA * cA + wB * cB

        sel = act & (samp_a > 0.0)
        n_work = sel.sum(axis=1)
        if want:
            rc.resample_ops[r3] += n_work
            rc.composite_ops[r3] += n_work
        worked = n_work > 0
        if not worked.any():
            continue
        r4 = r3[worked]

        # Over-composite the selected pixels in place.  The flattened
        # boolean selections enumerate the same (row, pixel) pairs in the
        # same row-major order, so the float64 intermediate products and
        # the final float32 rounding match the reference kernel exactly.
        sel4 = sel[worked]
        full = np.zeros((H, L), dtype=bool)
        full[r4] = sel4
        vals_a = samp_a[worked][sel4]
        vals_c = samp_c[worked][sel4]
        trans = 1.0 - O[full]
        C[full] += trans * vals_a * vals_c
        O[full] += trans * vals_a

        # Whole-scanline early termination, per row: sound only if every
        # pixel any remaining slice could touch is saturated.
        rem_lo = min(u_lo, last_lo)
        rem_hi = max(u_hi, last_hi)
        saturated = np.all(opac[v_lo:v_hi, rem_lo:rem_hi][r4] >= thr, axis=1)
        if saturated.any():
            in_loop[r4[saturated]] = False

    if counters is not None:
        rc.aggregate(into=counters)
    return img
