"""The shear-warp compositing phase.

The unit of work is one *intermediate-image scanline*: compositing
scanline ``v`` sweeps the slices front-to-back, resampling the (at most)
two voxel scanlines of each slice that shear onto ``v`` with bilinear
weights, and compositing them over the image scanline with the
``over`` operator.  Early termination: once every pixel of the scanline
is saturated, the remaining slices are skipped; per-pixel, saturated
pixels stop compositing immediately.

This per-image-scanline ("gather") formulation is what makes the
parallel partitioning of the paper natural: a processor that owns a set
of intermediate-image scanlines *writes* only those scanlines and
read-shares the voxel data.  Because ``k`` is the principal axis, the
resample weights ``(fu, fj)`` are constant across a scanline-slice pair,
so resampling is four shifted-row multiply-adds — the structure both the
vectorized kernel and the original VolPack inner loop exploit.
"""

from __future__ import annotations

import numpy as np

from ..transforms.factorization import ShearWarpFactorization
from ..volume.rle import BYTES_PER_RUN, BYTES_PER_VOXEL, RLEVolume
from .image import IntermediateImage
from .instrument import Region, TraceSink, WorkCounters

__all__ = [
    "composite_image_scanline",
    "composite_frame",
    "nonempty_scanline_bounds",
]


def _decode_padded(rle: RLEVolume, k: int, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode scanline (k, j) with one zero pad on each side (edge clamp=0)."""
    opac = np.zeros(rle.ni + 2, dtype=np.float32)
    col = np.zeros(rle.ni + 2, dtype=np.float32)
    o, c = rle.decode_scanline(k, j)
    opac[1:-1] = o
    col[1:-1] = c
    return opac, col


def _trace_voxels(
    trace: TraceSink,
    rle: RLEVolume,
    k: int,
    j: int,
    padded_opacity: np.ndarray,
    i_ranges: list[tuple[int, int]],
) -> None:
    """Emit the voxel-record reads of scanline (k, j) under the active runs.

    ``padded_opacity`` is the one-padded decoded row, so index ``i + 1``
    holds voxel ``i``.  Non-transparent voxels are stored contiguously in
    traversal order, so a prefix count gives each range's offset into the
    scanline's voxel records.
    """
    ni = rle.ni
    nz = padded_opacity[1 : ni + 1] > 0
    prefix = np.zeros(ni + 1, dtype=np.int64)
    np.cumsum(nz, out=prefix[1:])
    base = int(rle.vox_start[k, j])
    for i_lo, i_hi in i_ranges:
        lo = max(0, min(i_lo, ni))
        hi = max(lo, min(i_hi + 1, ni))
        used = int(prefix[hi] - prefix[lo])
        if used > 0:
            start = (base + int(prefix[lo])) * BYTES_PER_VOXEL
            trace.access(Region.VOXEL_DATA, start, used * BYTES_PER_VOXEL)


def composite_image_scanline(
    img: IntermediateImage,
    v: int,
    rle: RLEVolume,
    fact: ShearWarpFactorization,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
) -> WorkCounters | None:
    """Composite intermediate-image scanline ``v`` over all slices.

    Returns the per-scanline work counters when ``counters`` is given
    (the same object, for chaining); these are the quantities the
    paper's profiling step records per scanline.
    """
    ni, nj, nk = rle.shape_ijk
    n_u = img.n_u
    thr = img.opaque_threshold
    opac_row = img.opacity[v]
    col_row = img.color[v]

    # Horizontal span of the *last* slice to be traversed: the shear
    # moves slice footprints monotonically, so the union of all
    # remaining footprints at any point is bracketed by the current
    # slice's span and this one (needed for a sound whole-scanline
    # early-termination test).
    u_off_last, _ = fact.slice_offsets(int(fact.k_front_to_back[-1]))
    last_lo = max(0, int(np.ceil(float(u_off_last) - 1.0)))
    last_hi = min(n_u, int(np.floor(float(u_off_last) + ni - 1e-9)) + 1)

    for k in fact.k_front_to_back:
        k = int(k)
        if trace is not None:
            trace.set_key(k)
        u_off, v_off = fact.slice_offsets(k)
        u_off = float(u_off)
        v_off = float(v_off)

        j_f = v - v_off
        jA = int(np.floor(j_f))
        fj = j_f - jA
        jB = jA + 1
        useA = 0 <= jA < nj
        useB = 0 <= jB < nj and fj > 0.0
        if counters is not None:
            counters.loop_iters += 1
        if not useA and not useB:
            continue

        # Horizontal extent of this slice's footprint on the scanline.
        u_lo = max(0, int(np.ceil(u_off - 1.0)))
        u_hi = min(n_u, int(np.floor(u_off + ni - 1e-9)) + 1)
        if u_hi <= u_lo:
            continue
        L = u_hi - u_lo
        m = int(np.floor(u_lo - u_off))
        fu = (u_lo - u_off) - m

        # Skip everything if the whole span is already opaque.
        active = opac_row[u_lo:u_hi] < thr
        n_active = int(np.count_nonzero(active))
        if counters is not None:
            counters.pixels_skipped += L - n_active
        if n_active == 0:
            continue

        # Any non-transparent voxels at all in the contributing scanlines?
        nvoxA = int(rle.vox_count[k, jA]) if useA else 0
        nvoxB = int(rle.vox_count[k, jB]) if useB else 0
        if counters is not None:
            counters.run_entries += (int(rle.run_count[k, jA]) if useA else 0) + (
                int(rle.run_count[k, jB]) if useB else 0
            )
        if trace is not None:
            if useA:
                trace.access(Region.RUN_TABLE, int(rle.run_start[k, jA]) * BYTES_PER_RUN,
                             int(rle.run_count[k, jA]) * BYTES_PER_RUN)
            if useB:
                trace.access(Region.RUN_TABLE, int(rle.run_start[k, jB]) * BYTES_PER_RUN,
                             int(rle.run_count[k, jB]) * BYTES_PER_RUN)
        if nvoxA == 0 and nvoxB == 0:
            continue

        # The voxel i-ranges under the still-active pixel *runs*.  The RLE
        # kernel walks voxel runs and non-opaque pixel runs in lockstep,
        # so voxels below saturated pixels are never even read — the
        # traced voxel accesses must honor that (early termination saves
        # memory traffic, not just compute).  A saturated interior with
        # an active rim yields several short runs, not one wide span.
        pad = np.zeros(L + 2, dtype=np.int8)
        pad[1:-1] = active
        d_act = np.diff(pad)
        run_starts = np.nonzero(d_act == 1)[0]
        run_ends = np.nonzero(d_act == -1)[0]
        # Voxel index ranges (i coordinates) per active pixel run.
        act_ranges = [(m + int(a), m + int(b) + 1) for a, b in zip(run_starts, run_ends)]

        wA = 1.0 - fj if useA else 0.0
        wB = fj if useB else 0.0

        samp_a = None
        samp_c = None
        if useA and nvoxA > 0:
            oA, cA = _decode_padded(rle, k, jA)
            a = oA[m + 1 : m + 1 + L] * (1.0 - fu) + oA[m + 2 : m + 2 + L] * fu
            c = cA[m + 1 : m + 1 + L] * (1.0 - fu) + cA[m + 2 : m + 2 + L] * fu
            samp_a = wA * a
            samp_c = wA * c
            if trace is not None:
                _trace_voxels(trace, rle, k, jA, oA, act_ranges)
        if useB and nvoxB > 0:
            oB, cB = _decode_padded(rle, k, jB)
            a = oB[m + 1 : m + 1 + L] * (1.0 - fu) + oB[m + 2 : m + 2 + L] * fu
            c = cB[m + 1 : m + 1 + L] * (1.0 - fu) + cB[m + 2 : m + 2 + L] * fu
            if samp_a is None:
                samp_a = wB * a
                samp_c = wB * c
            else:
                samp_a = samp_a + wB * a
                samp_c = samp_c + wB * c
            if trace is not None:
                _trace_voxels(trace, rle, k, jB, oB, act_ranges)

        sel = active & (samp_a > 0.0)
        n_work = int(np.count_nonzero(sel))
        if counters is not None:
            counters.resample_ops += n_work
            counters.composite_ops += n_work
        if n_work == 0:
            continue

        trans = 1.0 - opac_row[u_lo:u_hi][sel]
        col_row[u_lo:u_hi][sel] += trans * samp_a[sel] * samp_c[sel]
        opac_row[u_lo:u_hi][sel] += trans * samp_a[sel]

        if trace is not None:
            # Read-modify-write of the image row, one range per run of
            # pixels actually composited (non-opaque pixels under
            # non-transparent voxel runs) — saturated interiors and
            # empty gaps are both skipped by the lockstep traversal.
            spad = np.zeros(L + 2, dtype=np.int8)
            spad[1:-1] = sel
            d_sel = np.diff(spad)
            for a, b in zip(np.nonzero(d_sel == 1)[0], np.nonzero(d_sel == -1)[0]):
                start, nbytes = img.pixel_byte_range(v, u_lo + int(a), u_lo + int(b))
                trace.access(Region.INTERMEDIATE, start, nbytes, write=False)
                trace.access(Region.INTERMEDIATE, start, nbytes, write=True)

        # Whole-scanline early termination: sound only if every pixel
        # any *remaining* slice could touch is saturated.
        rem_lo = min(u_lo, last_lo)
        rem_hi = max(u_hi, last_hi)
        if np.all(opac_row[rem_lo:rem_hi] >= thr):
            break

    return counters


def nonempty_scanline_bounds(
    rle: RLEVolume, fact: ShearWarpFactorization
) -> tuple[int, int]:
    """Return ``(v_lo, v_hi)``: the scanline range actually worth compositing.

    The new parallel algorithm's "first optimization" (section 4.2): the
    top and bottom of the intermediate image overlap only empty volume,
    so it determines the written region first and composites (and
    profiles) only that.  The old algorithm blindly walks all scanlines.
    """
    nj, nk = rle.nj, rle.nk
    nonempty = rle.vox_count > 0  # (nk, nj)
    ks, js = np.nonzero(nonempty)
    if len(ks) == 0:
        return 0, 0
    _, v_off = fact.slice_offsets(ks)
    v_centers = js + v_off
    v_lo = int(np.floor(v_centers.min()))
    v_hi = int(np.ceil(v_centers.max() + 1.0)) + 1
    return max(0, v_lo), min(fact.intermediate_shape[0], v_hi)


def composite_frame(
    img: IntermediateImage,
    rle: RLEVolume,
    fact: ShearWarpFactorization,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
    restrict_bounds: bool = False,
) -> IntermediateImage:
    """Serially composite a whole frame (all scanlines, in order)."""
    if restrict_bounds:
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
    else:
        v_lo, v_hi = 0, img.n_v
    for v in range(v_lo, v_hi):
        composite_image_scanline(img, v, rle, fact, counters=counters, trace=trace)
    return img
