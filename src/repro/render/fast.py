"""Vectorized whole-frame rendering (the fast path for interactive use).

The scanline kernel in :mod:`repro.render.compositing` is the faithful,
instrumentable unit of work the parallel studies are built on.  For
actually *using* the renderer, compositing goes through the block kernel
(:mod:`repro.render.block`) — slice-major, four shifted-plane
multiply-adds per slice, per-row early termination — called here with
the whole frame as one degenerate band.  The warp is a single vectorized
inverse-mapped gather.

Both fast phases are **bit-identical** to the reference kernels (same
per-pixel operations, operand order and rounding), typically ~5-20x
faster.
"""

from __future__ import annotations

import numpy as np

from ..transforms.factorization import ShearWarpFactorization
from ..volume.rle import RLEVolume
from .block import composite_scanline_block
from .image import FinalImage, IntermediateImage
from .serial import RenderResult, ShearWarpRenderer

__all__ = ["composite_frame_fast", "warp_frame_fast", "render_fast"]


def composite_frame_fast(
    img: IntermediateImage,
    rle: RLEVolume,
    fact: ShearWarpFactorization,
) -> IntermediateImage:
    """Composite every scanline: the whole-frame call of the block kernel."""
    return composite_scanline_block(img, 0, img.n_v, rle, fact)


def warp_frame_fast(
    final: FinalImage,
    img: IntermediateImage,
    fact: ShearWarpFactorization,
) -> FinalImage:
    """Warp the whole final image with one vectorized gather."""
    ny, nx = final.shape
    n_v, n_u = img.shape
    a_inv = np.linalg.inv(fact.warp[:2, :2])
    b = fact.warp[:2, 2]
    xs, ys = np.meshgrid(np.arange(nx, dtype=np.float64),
                         np.arange(ny, dtype=np.float64))
    u = a_inv[0, 0] * (xs - b[0]) + a_inv[0, 1] * (ys - b[1])
    v = a_inv[1, 0] * (xs - b[0]) + a_inv[1, 1] * (ys - b[1])
    valid = (u >= 0) & (u <= n_u - 1) & (v >= 0) & (v <= n_v - 1)

    uu, vv = u[valid], v[valid]
    u0 = np.floor(uu).astype(np.intp)
    v0 = np.floor(vv).astype(np.intp)
    # The float64 source coordinates must be demoted *before* the weights
    # are formed: the reference warp blends with float32 weights, and a
    # float64 weight would silently promote the float32 gather below and
    # round differently.
    fu = (uu - u0).astype(np.float32)
    fv = (vv - v0).astype(np.float32)
    u1 = np.minimum(u0 + 1, n_u - 1)
    v1 = np.minimum(v0 + 1, n_v - 1)
    one = np.float32(1.0)
    w00, w10 = (one - fu) * (one - fv), fu * (one - fv)
    w01, w11 = (one - fu) * fv, fu * fv
    for src, dst in ((img.color, final.color), (img.opacity, final.alpha)):
        out = (w00 * src[v0, u0] + w10 * src[v0, u1]
               + w01 * src[v1, u0] + w11 * src[v1, u1])
        dst[valid] = out
    return final


def render_fast(
    renderer: ShearWarpRenderer,
    view: np.ndarray,
    recorder=None,
    obs_frame: int = 0,
    timestep: int | None = None,
) -> RenderResult:
    """Render one frame through the vectorized path.

    ``recorder`` (a :class:`repro.obs.SpanRecorder`) captures wall-clock
    decode/composite/warp spans for frame id ``obs_frame``; ``None``
    (the default) records nothing.  ``timestep`` selects the encoding of
    a time-varying renderer and is ignored by static ones.
    """
    fact = renderer.factorize_view(view)
    if recorder is not None:
        t0 = recorder.now()
    rle = renderer.rle_for(fact, timestep=timestep)
    img = IntermediateImage(fact.intermediate_shape)
    if recorder is not None:
        t1 = recorder.now()
        recorder.span(obs_frame, "decode", t0, t1)
    composite_frame_fast(img, rle, fact)
    if recorder is not None:
        t2 = recorder.now()
        recorder.span(obs_frame, "composite", t1, t2)
        recorder.count(obs_frame, "rows", img.n_v)
    final = FinalImage(fact.final_shape)
    warp_frame_fast(final, img, fact)
    if recorder is not None:
        recorder.span(obs_frame, "warp", t2, recorder.now())
    return RenderResult(final=final, intermediate=img, fact=fact)
