"""Vectorized whole-frame rendering (the fast path for interactive use).

The scanline kernel in :mod:`repro.render.compositing` is the faithful,
instrumentable unit of work the parallel studies are built on.  For
actually *using* the renderer interactively, this module composites a
whole slice of the volume with a handful of full-plane numpy
operations, exploiting the same structure the scanline kernel does —
because the shear offsets are constant per slice, both bilinear
fractions ``(fu, fj)`` are constant across the *entire* slice footprint,
so resampling is four shifted-plane multiply-adds.

Produces images numerically equal to the reference path (same
operations in the same per-pixel order), typically ~5-20x faster.
"""

from __future__ import annotations

import numpy as np

from ..transforms.factorization import ShearWarpFactorization
from ..volume.rle import RLEVolume
from .image import FinalImage, IntermediateImage
from .serial import RenderResult, ShearWarpRenderer

__all__ = ["composite_frame_fast", "warp_frame_fast", "render_fast"]


def composite_frame_fast(
    img: IntermediateImage,
    rle: RLEVolume,
    fact: ShearWarpFactorization,
) -> IntermediateImage:
    """Composite every slice with full-plane vector operations."""
    ni, nj, nk = rle.shape_ijk
    n_v, n_u = img.shape
    thr = img.opaque_threshold
    opac = img.opacity
    col = img.color

    for k in fact.k_front_to_back:
        k = int(k)
        u_off, v_off = fact.slice_offsets(k)
        u_off, v_off = float(u_off), float(v_off)

        s_o, s_c = rle.decode_slice(k)  # (nj, ni) dense planes
        if not s_o.any():
            continue
        # Pad one zero row/column on each side: out-of-volume samples are
        # transparent, exactly as the scanline kernel's padding.
        p_o = np.zeros((nj + 2, ni + 2), dtype=np.float32)
        p_c = np.zeros((nj + 2, ni + 2), dtype=np.float32)
        p_o[1:-1, 1:-1] = s_o
        p_c[1:-1, 1:-1] = s_c

        # Image footprint of this slice.
        u_lo = max(0, int(np.ceil(u_off - 1.0)))
        u_hi = min(n_u, int(np.floor(u_off + ni - 1e-9)) + 1)
        v_lo = max(0, int(np.ceil(v_off - 1.0)))
        v_hi = min(n_v, int(np.floor(v_off + nj - 1e-9)) + 1)
        if u_hi <= u_lo or v_hi <= v_lo:
            continue
        L, H = u_hi - u_lo, v_hi - v_lo
        m = int(np.floor(u_lo - u_off))
        fu = np.float32((u_lo - u_off) - m)
        n = int(np.floor(v_lo - v_off))
        fj = np.float32((v_lo - v_off) - n)

        # Bilinear resample: four shifted sub-planes, constant weights.
        r0, c0 = n + 1, m + 1  # padded-plane index of voxel (jA, iA)
        a = (1 - fj) * ((1 - fu) * p_o[r0:r0 + H, c0:c0 + L]
                        + fu * p_o[r0:r0 + H, c0 + 1:c0 + 1 + L]) \
            + fj * ((1 - fu) * p_o[r0 + 1:r0 + 1 + H, c0:c0 + L]
                    + fu * p_o[r0 + 1:r0 + 1 + H, c0 + 1:c0 + 1 + L])
        c = (1 - fj) * ((1 - fu) * p_c[r0:r0 + H, c0:c0 + L]
                        + fu * p_c[r0:r0 + H, c0 + 1:c0 + 1 + L]) \
            + fj * ((1 - fu) * p_c[r0 + 1:r0 + 1 + H, c0:c0 + L]
                    + fu * p_c[r0 + 1:r0 + 1 + H, c0 + 1:c0 + 1 + L])

        dst_o = opac[v_lo:v_hi, u_lo:u_hi]
        dst_c = col[v_lo:v_hi, u_lo:u_hi]
        sel = (dst_o < thr) & (a > 0.0)
        if not sel.any():
            continue
        trans = 1.0 - dst_o[sel]
        dst_c[sel] += trans * a[sel] * c[sel]
        dst_o[sel] += trans * a[sel]
    return img


def warp_frame_fast(
    final: FinalImage,
    img: IntermediateImage,
    fact: ShearWarpFactorization,
) -> FinalImage:
    """Warp the whole final image with one vectorized gather."""
    ny, nx = final.shape
    n_v, n_u = img.shape
    a_inv = np.linalg.inv(fact.warp[:2, :2])
    b = fact.warp[:2, 2]
    xs, ys = np.meshgrid(np.arange(nx, dtype=np.float64),
                         np.arange(ny, dtype=np.float64))
    u = a_inv[0, 0] * (xs - b[0]) + a_inv[0, 1] * (ys - b[1])
    v = a_inv[1, 0] * (xs - b[0]) + a_inv[1, 1] * (ys - b[1])
    valid = (u >= 0) & (u <= n_u - 1) & (v >= 0) & (v <= n_v - 1)

    uu, vv = u[valid], v[valid]
    u0 = np.floor(uu).astype(np.intp)
    v0 = np.floor(vv).astype(np.intp)
    fu = (uu - u0).astype(np.float32)
    fv = (vv - v0).astype(np.float32)
    u1 = np.minimum(u0 + 1, n_u - 1)
    v1 = np.minimum(v0 + 1, n_v - 1)
    w00, w10 = (1 - fu) * (1 - fv), fu * (1 - fv)
    w01, w11 = (1 - fu) * fv, fu * fv
    for src, dst in ((img.color, final.color), (img.opacity, final.alpha)):
        out = (w00 * src[v0, u0] + w10 * src[v0, u1]
               + w01 * src[v1, u0] + w11 * src[v1, u1])
        dst[valid] = out
    return final


def render_fast(renderer: ShearWarpRenderer, view: np.ndarray) -> RenderResult:
    """Render one frame through the vectorized path."""
    fact = renderer.factorize_view(view)
    rle = renderer.rle_for(fact)
    img = IntermediateImage(fact.intermediate_shape)
    composite_frame_fast(img, rle, fact)
    final = FinalImage(fact.final_shape)
    warp_frame_fast(final, img, fact)
    return RenderResult(final=final, intermediate=img, fact=fact)
