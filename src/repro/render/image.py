"""Intermediate (composited) and final image buffers.

The intermediate image lives in sheared object space; its *rows* are the
scanlines that both the compositing partitioners and (in the new
algorithm) the warp partitioner operate on.  Pixels carry (color,
opacity); a pixel whose opacity exceeds ``opaque_threshold`` is treated
as opaque and skipped for the remaining slices (the shear-warp analogue
of early ray termination).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IntermediateImage", "FinalImage", "OPAQUE_THRESHOLD", "BYTES_PER_PIXEL"]

#: Opacity above which a pixel is considered saturated (VolPack uses ~0.95).
OPAQUE_THRESHOLD = 0.95

#: Pixel record size in bytes (one float word of color + one of opacity),
#: used by the memory tracer.
BYTES_PER_PIXEL = 8


@dataclass
class IntermediateImage:
    """Composited image in sheared space: ``(n_v, n_u)`` rows x columns."""

    shape: tuple[int, int]
    opaque_threshold: float = OPAQUE_THRESHOLD
    color: np.ndarray = field(init=False)
    opacity: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n_v, n_u = self.shape
        if n_v <= 0 or n_u <= 0:
            raise ValueError(f"invalid intermediate image shape {self.shape}")
        self.color = np.zeros((n_v, n_u), dtype=np.float32)
        self.opacity = np.zeros((n_v, n_u), dtype=np.float32)

    @property
    def n_v(self) -> int:
        return self.shape[0]

    @property
    def n_u(self) -> int:
        return self.shape[1]

    def clear(self) -> None:
        """Reset for a new frame."""
        self.color[:] = 0.0
        self.opacity[:] = 0.0

    def scanline_opaque(self, v: int, u_lo: int = 0, u_hi: int | None = None) -> bool:
        """True if every pixel of scanline ``v`` in [u_lo, u_hi) is opaque."""
        sl = self.opacity[v, u_lo:u_hi]
        return bool(np.all(sl >= self.opaque_threshold))

    def pixel_byte_range(self, v: int, u_lo: int, u_hi: int) -> tuple[int, int]:
        """Byte offset and length of pixels ``[u_lo, u_hi)`` of scanline v."""
        start = (v * self.n_u + u_lo) * BYTES_PER_PIXEL
        return start, (u_hi - u_lo) * BYTES_PER_PIXEL


@dataclass
class FinalImage:
    """Warped final image: ``(ny, nx)`` rows x columns of (color, alpha)."""

    shape: tuple[int, int]
    color: np.ndarray = field(init=False)
    alpha: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        ny, nx = self.shape
        if ny <= 0 or nx <= 0:
            raise ValueError(f"invalid final image shape {self.shape}")
        self.color = np.zeros((ny, nx), dtype=np.float32)
        self.alpha = np.zeros((ny, nx), dtype=np.float32)

    @property
    def ny(self) -> int:
        return self.shape[0]

    @property
    def nx(self) -> int:
        return self.shape[1]

    def clear(self) -> None:
        self.color[:] = 0.0
        self.alpha[:] = 0.0

    def pixel_byte_range(self, y: int, x_lo: int, x_hi: int) -> tuple[int, int]:
        """Byte offset and length of pixels ``[x_lo, x_hi)`` of row y."""
        start = (y * self.nx + x_lo) * BYTES_PER_PIXEL
        return start, (x_hi - x_lo) * BYTES_PER_PIXEL
