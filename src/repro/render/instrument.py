"""Operation counting and memory-access recording hooks.

The paper's methodology rests on two kinds of instrumentation:

* **basic-block style op counts** (their Pixie runs / inserted profiling
  instructions) — we count the same quantities natively in the kernels:
  resample/composite operations, run-table entries traversed, loop
  iterations (the "looping time" of Figure 2), warp pixels, ray steps;
* **memory reference traces** (their Tango-Lite runs) — kernels emit
  *range records* ``(region, start_byte, n_bytes, is_write)`` describing
  exactly which bytes of which data structure a task touches, in order.

Both are optional and cost nothing when disabled (``None`` sinks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkCounters", "TraceSink", "ListTraceSink", "SegmentedTraceSink", "Region"]


class Region:
    """Symbolic names for traced data structures (address-space regions)."""

    RUN_TABLE = "run_table"
    VOXEL_DATA = "voxel_data"
    INTERMEDIATE = "intermediate_image"
    FINAL = "final_image"
    OCTREE = "octree"
    VOLUME_DENSE = "volume_dense"
    PROFILE = "profile"

    ALL = (RUN_TABLE, VOXEL_DATA, INTERMEDIATE, FINAL, OCTREE, VOLUME_DENSE, PROFILE)


@dataclass
class WorkCounters:
    """Accumulated operation counts, in the paper's cost categories.

    ``resample_ops`` and ``composite_ops`` together are the "rendering"
    work of Figure 2; ``loop_iters`` + ``run_entries`` (+ ``octree_visits``
    for the ray caster) are its "looping/addressing" work.
    """

    resample_ops: int = 0  # bilinear voxel resamples
    composite_ops: int = 0  # over-operator applications
    run_entries: int = 0  # RLE run-table entries traversed
    loop_iters: int = 0  # per-(scanline, slice) control overhead units
    pixels_skipped: int = 0  # opaque pixels skipped by early termination
    warp_pixels: int = 0  # final-image pixels resampled in the warp
    octree_visits: int = 0  # octree nodes visited (ray caster)
    ray_steps: int = 0  # ray sample steps (ray caster)
    profile_ops: int = 0  # profiling instrumentation instructions

    def merge(self, other: "WorkCounters") -> None:
        """Accumulate ``other`` into ``self``."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    def total(self) -> int:
        """Sum of all counters (crude total-op measure)."""
        return sum(getattr(self, f) for f in self.__dataclass_fields__)

    def copy(self) -> "WorkCounters":
        return WorkCounters(**{f: getattr(self, f) for f in self.__dataclass_fields__})


class TraceSink:
    """Interface for memory-trace consumers.  Default: ignore everything."""

    def access(self, region: str, start_byte: int, n_bytes: int, write: bool = False) -> None:
        """Record a sequential access to ``n_bytes`` starting at ``start_byte``."""

    def set_key(self, key: int) -> None:
        """Tag subsequent accesses with an ordering key (e.g. slice index).

        The compositing kernel calls this per slice so traces can later
        be interleaved in the *slice-major* order the real renderer
        executes in (volume streamed once per frame, k outermost), even
        though tasks are recorded one scanline at a time.
        """


@dataclass
class ListTraceSink(TraceSink):
    """Collects range records into a list (one list per task)."""

    records: list[tuple[str, int, int, bool]] = field(default_factory=list)

    def access(self, region: str, start_byte: int, n_bytes: int, write: bool = False) -> None:
        if n_bytes > 0:
            self.records.append((region, int(start_byte), int(n_bytes), bool(write)))

    def clear(self) -> None:
        self.records.clear()

    def take(self) -> list[tuple[str, int, int, bool]]:
        out = self.records
        self.records = []
        return out

    def take_segments(self) -> list[tuple[int, list[tuple[str, int, int, bool]]]]:
        """All records as one key-0 segment (TaskRecord trace format)."""
        return [(0, self.take())]

    def total_bytes(self) -> int:
        return sum(r[2] for r in self.records)


@dataclass
class SegmentedTraceSink(TraceSink):
    """Collects records into per-key segments (key = slice index).

    Used for compositing tasks: a scanline's trace is recorded slice by
    slice so the execution model can replay all of a processor's
    scanlines in slice-major order, the order the real renderer streams
    the volume in.
    """

    segments: list[tuple[int, list[tuple[str, int, int, bool]]]] = field(default_factory=list)

    def set_key(self, key: int) -> None:
        self.segments.append((int(key), []))

    def access(self, region: str, start_byte: int, n_bytes: int, write: bool = False) -> None:
        if n_bytes <= 0:
            return
        if not self.segments:
            self.segments.append((0, []))
        self.segments[-1][1].append((region, int(start_byte), int(n_bytes), bool(write)))

    def take_segments(self) -> list[tuple[int, list[tuple[str, int, int, bool]]]]:
        out = [(k, recs) for k, recs in self.segments if recs]
        self.segments = []
        return out
