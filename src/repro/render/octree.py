"""Min-max octree over a classified volume (ray-caster acceleration).

Ray casters use an octree encoding the presence of non-transparent
voxels so rays can leap over empty space (section 2 of the paper).  The
octree here is a pyramid of max-pooled opacity grids; level 0 is the
voxel grid itself, each higher level halves every axis.  A cell whose
max opacity is zero is *empty*, and a ray inside it can skip to the
cell's exit face.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MinMaxOctree"]


@dataclass
class MinMaxOctree:
    """Pyramid of per-cell max (and min) opacity grids."""

    levels_max: list[np.ndarray]
    levels_min: list[np.ndarray]
    shape: tuple[int, int, int]

    @classmethod
    def build(cls, opacity: np.ndarray, max_levels: int = 16) -> "MinMaxOctree":
        """Build the pyramid from a dense opacity field indexed [x, y, z]."""
        if opacity.ndim != 3:
            raise ValueError("opacity must be 3-D")
        base = np.asarray(opacity, dtype=np.float32)
        # Dilate by one voxel toward -x/-y/-z so a cell is "empty" only if
        # every voxel a trilinear sample inside it could touch is empty
        # (a sample at p reads floor(p) and floor(p)+1 along each axis).
        dil = base.copy()
        dil[:-1] = np.maximum(dil[:-1], base[1:])
        dil[:, :-1] = np.maximum(dil[:, :-1], dil[:, 1:])
        dil[:, :, :-1] = np.maximum(dil[:, :, :-1], dil[:, :, 1:])
        levels_max = [dil]
        levels_min = [base]
        while len(levels_max) < max_levels and max(levels_max[-1].shape) > 1:
            cur_max, cur_min = levels_max[-1], levels_min[-1]
            pad = [(0, s % 2) for s in cur_max.shape]
            cur_max = np.pad(cur_max, pad, constant_values=0.0)
            cur_min = np.pad(cur_min, pad, constant_values=0.0)
            nx, ny, nz = cur_max.shape
            rmax = cur_max.reshape(nx // 2, 2, ny // 2, 2, nz // 2, 2)
            rmin = cur_min.reshape(nx // 2, 2, ny // 2, 2, nz // 2, 2)
            levels_max.append(rmax.max(axis=(1, 3, 5)))
            levels_min.append(rmin.min(axis=(1, 3, 5)))
        return cls(levels_max=levels_max, levels_min=levels_min, shape=opacity.shape)

    @property
    def n_levels(self) -> int:
        return len(self.levels_max)

    def cell_max(self, level: int, point: np.ndarray) -> float:
        """Max opacity of the level-``level`` cell containing ``point``."""
        grid = self.levels_max[level]
        idx = (np.asarray(point) / (2**level)).astype(np.intp)
        idx = np.clip(idx, 0, np.array(grid.shape) - 1)
        return float(grid[tuple(idx)])

    def empty_level(self, point: np.ndarray, start_level: int | None = None) -> int:
        """Highest level whose cell containing ``point`` is empty, or -1.

        Searching from coarse to fine lets a ray skip the largest
        possible empty block; returns -1 if even the voxel-level cell is
        non-empty.
        """
        top = self.n_levels - 1 if start_level is None else start_level
        for level in range(top, -1, -1):
            if self.cell_max(level, point) == 0.0:
                return level
        return -1

    def skip_exit_t(
        self, origin: np.ndarray, direction: np.ndarray, t: float, level: int
    ) -> float:
        """Parameter ``t`` at which the ray exits the empty level-cell at ``t``.

        ``direction`` must be (near-)unit length.  The returned value is
        strictly greater than ``t`` (an epsilon nudge guarantees
        progress even at cell corners).
        """
        size = float(2**level)
        p = origin + t * direction
        cell = np.floor(p / size)
        lo = cell * size
        hi = lo + size
        ts = []
        for a in range(3):
            d = direction[a]
            if d > 1e-12:
                ts.append((hi[a] - origin[a]) / d)
            elif d < -1e-12:
                ts.append((lo[a] - origin[a]) / d)
        t_exit = min(ts) if ts else t
        return max(t_exit, t) + 1e-4
