"""Ray-casting volume renderer — the serial baseline of Figure 2.

An image-order renderer in the style of Levoy/Nieh: for every final
image pixel, a ray is marched through the volume at unit steps,
trilinearly resampling the classified (opacity, color) fields,
compositing front-to-back with early ray termination, and using a
min-max octree to leap over empty space.

Two implementations share the sampling scheme:

* :func:`render_raycast` — the faithful per-ray loop with the octree and
  full op counting.  Its ``octree_visits`` + ``loop_iters`` counters are
  the "looping/addressing" time of Figure 2; ``ray_steps`` (trilinear
  resamples) its "rendering" time.
* :func:`render_raycast_vectorized` — all rays stepped in lockstep with
  numpy (no octree); used for image-comparison tests and as the fast
  path for examples.

Both render the *same geometry* as the shear-warp renderer (same view
matrix convention), so images are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..volume.classify import TransferFunction
from ..volume.volume import ClassifiedVolume
from .image import OPAQUE_THRESHOLD, FinalImage
from .instrument import Region, TraceSink, WorkCounters
from .octree import MinMaxOctree

__all__ = ["RayCastRenderer", "render_raycast", "render_raycast_vectorized"]

#: Bytes per voxel record in the dense classified volume (opacity+color).
BYTES_PER_DENSE_VOXEL = 8


def _ray_grid(view: np.ndarray, vol_shape: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
    """Build per-pixel ray origins and the shared direction in object space.

    The final image is the view-space (x, y) plane; pixel (y, x) fires a
    ray along view +z.  The image bounding box is sized from the
    projected volume corners, matching the shear-warp final image.
    """
    inv = np.linalg.inv(view)
    d = inv[:3, :3] @ np.array([0.0, 0.0, 1.0])
    d = d / np.linalg.norm(d)

    nx_v, ny_v, nz_v = vol_shape
    corners = np.array(
        [[x, y, z] for x in (0, nx_v - 1) for y in (0, ny_v - 1) for z in (0, nz_v - 1)],
        dtype=np.float64,
    )
    proj = corners @ view[:3, :3].T + view[:3, 3]
    lo = proj[:, :2].min(axis=0)
    hi = proj[:, :2].max(axis=0)
    nx = int(np.ceil(hi[0] - lo[0])) + 2
    ny = int(np.ceil(hi[1] - lo[1])) + 2

    ys, xs = np.mgrid[0:ny, 0:nx]
    # A view-space point on each pixel, well before the volume.
    zs = proj[:, 2].min() - 1.0
    pix_view = np.stack(
        [xs + lo[0], ys + lo[1], np.full_like(xs, zs, dtype=np.float64)], axis=-1
    ).astype(np.float64)
    origins = pix_view.reshape(-1, 3) @ inv[:3, :3].T + inv[:3, 3]
    return origins.reshape(ny, nx, 3), d, (ny, nx)


def _slab_entry_exit(origin: np.ndarray, d: np.ndarray, vol_shape) -> tuple[float, float]:
    """Ray/bbox intersection (t_in, t_out); t_in > t_out means a miss."""
    t0, t1 = -np.inf, np.inf
    for a in range(3):
        if abs(d[a]) < 1e-12:
            if not (0.0 <= origin[a] <= vol_shape[a] - 1):
                return 1.0, 0.0
            continue
        ta = (0.0 - origin[a]) / d[a]
        tb = (vol_shape[a] - 1 - origin[a]) / d[a]
        if ta > tb:
            ta, tb = tb, ta
        t0, t1 = max(t0, ta), min(t1, tb)
    return t0, t1


@dataclass
class RayCastRenderer:
    """Classified-volume ray caster with a min-max octree."""

    classified: ClassifiedVolume
    octree: MinMaxOctree

    @classmethod
    def create(cls, raw: np.ndarray, tf: TransferFunction) -> "RayCastRenderer":
        cv = ClassifiedVolume.classify(raw, tf)
        return cls(classified=cv, octree=MinMaxOctree.build(cv.opacity))

    def render(
        self,
        view: np.ndarray,
        counters: WorkCounters | None = None,
        trace: TraceSink | None = None,
        step: float = 1.0,
    ) -> FinalImage:
        return render_raycast(self, view, counters=counters, trace=trace, step=step)


def _trilinear(opacity, color, p):
    x0, y0, z0 = int(p[0]), int(p[1]), int(p[2])
    nx, ny, nz = opacity.shape
    x1, y1, z1 = min(x0 + 1, nx - 1), min(y0 + 1, ny - 1), min(z0 + 1, nz - 1)
    fx, fy, fz = p[0] - x0, p[1] - y0, p[2] - z0
    a = 0.0
    c = 0.0
    for xi, wx in ((x0, 1 - fx), (x1, fx)):
        for yi, wy in ((y0, 1 - fy), (y1, fy)):
            for zi, wz in ((z0, 1 - fz), (z1, fz)):
                w = wx * wy * wz
                if w > 0.0:
                    a += w * opacity[xi, yi, zi]
                    c += w * color[xi, yi, zi]
    return a, c


def render_raycast(
    renderer: RayCastRenderer,
    view: np.ndarray,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
    step: float = 1.0,
) -> FinalImage:
    """Faithful per-ray renderer with octree space leaping."""
    cv = renderer.classified
    opacity, color = cv.opacity, cv.color
    shape = cv.shape
    origins, d, (ny, nx) = _ray_grid(view, shape)
    final = FinalImage((ny, nx))
    row_words = shape[1] * shape[2]  # addressing for the dense [x][y][z] layout

    for y in range(ny):
        for x in range(nx):
            o = origins[y, x]
            t0, t1 = _slab_entry_exit(o, d, shape)
            if counters is not None:
                counters.loop_iters += 1
            if t0 > t1:
                continue
            t_start = max(t0, 0.0)
            t = t_start
            acc_a = 0.0
            acc_c = 0.0
            while t <= t1:
                p = o + t * d
                lvl = renderer.octree.empty_level(p)
                if counters is not None:
                    counters.octree_visits += renderer.octree.n_levels - max(lvl, 0)
                if lvl >= 0:
                    # Leap to the empty cell's exit, then resync to the
                    # uniform sampling grid so sample positions match the
                    # non-accelerated renderer exactly.
                    t_exit = renderer.octree.skip_exit_t(o, d, t, lvl)
                    t = t_start + np.ceil((t_exit - t_start) / step) * step
                    continue
                a, c = _trilinear(opacity, color, p)
                if counters is not None:
                    counters.ray_steps += 1
                    counters.resample_ops += 1
                if trace is not None:
                    # Trilinear touches 4 (x, y) voxel-row pairs: poor
                    # spatial locality relative to storage order.
                    x0 = int(p[0])
                    base = (x0 * row_words + int(p[1]) * shape[2] + int(p[2]))
                    for off in (0, shape[2], row_words, row_words + shape[2]):
                        trace.access(
                            Region.VOLUME_DENSE,
                            (base + off) * BYTES_PER_DENSE_VOXEL,
                            2 * BYTES_PER_DENSE_VOXEL,
                        )
                if a > 0.0:
                    trans = 1.0 - acc_a
                    acc_c += trans * a * c
                    acc_a += trans * a
                    if counters is not None:
                        counters.composite_ops += 1
                    if acc_a >= OPAQUE_THRESHOLD:
                        break
                t += step
            final.color[y, x] = acc_c
            final.alpha[y, x] = acc_a
            if trace is not None and acc_a > 0.0:
                start, nbytes = final.pixel_byte_range(y, x, x + 1)
                trace.access(Region.FINAL, start, nbytes, write=True)
    return final


def render_raycast_vectorized(
    renderer: RayCastRenderer, view: np.ndarray, step: float = 1.0
) -> FinalImage:
    """All rays stepped in lockstep (no octree) — fast path."""
    cv = renderer.classified
    opacity, color = cv.opacity, cv.color
    shape = cv.shape
    origins, d, (ny, nx) = _ray_grid(view, shape)
    o = origins.reshape(-1, 3)

    # Per-ray entry/exit via vectorized slab test.
    t0 = np.full(len(o), -np.inf)
    t1 = np.full(len(o), np.inf)
    for a in range(3):
        if abs(d[a]) < 1e-12:
            bad = (o[:, a] < 0) | (o[:, a] > shape[a] - 1)
            t0[bad], t1[bad] = 1.0, 0.0
            continue
        ta = (0.0 - o[:, a]) / d[a]
        tb = (shape[a] - 1 - o[:, a]) / d[a]
        lo = np.minimum(ta, tb)
        hi = np.maximum(ta, tb)
        t0 = np.maximum(t0, lo)
        t1 = np.minimum(t1, hi)

    acc_a = np.zeros(len(o), dtype=np.float64)
    acc_c = np.zeros(len(o), dtype=np.float64)
    t = np.maximum(t0, 0.0)
    active = t0 <= t1
    while np.any(active):
        idx = np.nonzero(active)[0]
        p = o[idx] + t[idx, None] * d
        i0 = np.clip(np.floor(p).astype(np.intp), 0, np.array(shape) - 1)
        i1 = np.minimum(i0 + 1, np.array(shape) - 1)
        f = p - i0
        a_s = np.zeros(len(idx))
        c_s = np.zeros(len(idx))
        for xi, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
            for yi, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
                for zi, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                    w = wx * wy * wz
                    a_s += w * opacity[xi, yi, zi]
                    c_s += w * color[xi, yi, zi]
        trans = 1.0 - acc_a[idx]
        acc_c[idx] += trans * a_s * c_s
        acc_a[idx] += trans * a_s
        t[idx] += step
        active[idx] = (t[idx] <= t1[idx]) & (acc_a[idx] < OPAQUE_THRESHOLD)

    final = FinalImage((ny, nx))
    final.color[:] = acc_c.reshape(ny, nx).astype(np.float32)
    final.alpha[:] = acc_a.reshape(ny, nx).astype(np.float32)
    return final
