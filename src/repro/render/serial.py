"""The serial shear-warp volume renderer (public entry point).

Ties the full pipeline together: classification -> per-axis run-length
encoding (done once per volume/transfer function) -> per-frame
factorization -> compositing -> warp.  This is the uniprocessor
algorithm of section 2, and the substrate both parallelizations run on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..transforms import matrices
from ..transforms.factorization import ShearWarpFactorization, factorize
from ..volume.classify import TransferFunction
from ..volume.rle import RLEVolume, encode_all_axes
from ..volume.volume import ClassifiedVolume
from .compositing import composite_frame
from .image import FinalImage, IntermediateImage
from .instrument import TraceSink, WorkCounters
from .warp import warp_frame

__all__ = ["RenderResult", "ShearWarpRenderer"]


@dataclass
class RenderResult:
    """Everything produced while rendering one frame."""

    final: FinalImage
    intermediate: IntermediateImage
    fact: ShearWarpFactorization
    counters: WorkCounters | None = None


class ShearWarpRenderer:
    """Serial shear-warp renderer for one classified volume.

    Parameters
    ----------
    raw:
        ``uint8`` volume, indexed ``[x, y, z]``.
    tf:
        Transfer function used to classify the volume.  Classification
        and the three per-axis run-length encodings happen once, here —
        per-frame work is compositing + warp only, as in VolPack.
    """

    def __init__(self, raw: np.ndarray, tf: TransferFunction) -> None:
        self.classified = ClassifiedVolume.classify(raw, tf)
        self.rle_by_axis: dict[int, RLEVolume] = encode_all_axes(self.classified)
        self._last_axis: int | None = None

    @classmethod
    def from_classified(cls, classified: ClassifiedVolume) -> "ShearWarpRenderer":
        """Build a renderer from an already-classified volume (e.g. the
        Phong-shaded output of :func:`repro.render.shading.shade_volume`)."""
        self = cls.__new__(cls)
        self.classified = classified
        self.rle_by_axis = encode_all_axes(classified)
        self._last_axis = None
        return self

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.classified.shape

    def factorize_view(self, view: np.ndarray) -> ShearWarpFactorization:
        """Factorize a 4x4 viewing matrix for this volume."""
        return factorize(view, self.shape)

    def view_from_angles(self, rot_x: float = 0.0, rot_y: float = 0.0, rot_z: float = 0.0) -> np.ndarray:
        """Convenience: build a centred rotation view matrix."""
        return matrices.view_matrix(rot_x, rot_y, rot_z, self.shape)

    def rle_for(self, fact: ShearWarpFactorization, timestep: int | None = None) -> RLEVolume:
        """Pick the run-length encoding matching a factorization's axis.

        When an animation's rotation crosses a principal-axis boundary,
        the encoding just left behind won't be sampled again soon — its
        decoded-slice cache is dropped so only the active axis holds
        decoded planes in memory.

        ``timestep`` is accepted (and ignored) so static and
        time-varying renderers share one call signature: a static volume
        is the same volume at every timestep.  Time-varying subclasses
        (:class:`repro.movie.TimeVaryingRenderer`) extend the same
        axis-switch invalidation to timestep switches.
        """
        if self._last_axis is not None and self._last_axis != fact.axis:
            self.rle_by_axis[self._last_axis].clear_slice_cache()
        self._last_axis = fact.axis
        return self.rle_by_axis[fact.axis]

    def render(
        self,
        view: np.ndarray,
        counters: WorkCounters | None = None,
        trace: TraceSink | None = None,
        restrict_bounds: bool = False,
        recorder=None,
        obs_frame: int = 0,
        timestep: int | None = None,
    ) -> RenderResult:
        """Render one frame from viewing matrix ``view``.

        ``restrict_bounds`` enables the new algorithm's optimization of
        skipping the empty top/bottom of the intermediate image; the
        baseline serial renderer (and the old parallel one) leaves it
        off.

        ``recorder`` (a :class:`repro.obs.SpanRecorder`) captures
        wall-clock decode/composite/warp phase spans for frame id
        ``obs_frame`` — the native-timing complement of the op-count
        ``counters`` and memory-trace ``trace`` hooks, and a no-op when
        left ``None``.
        """
        fact = self.factorize_view(view)
        if recorder is not None:
            t0 = recorder.now()
        rle = self.rle_for(fact, timestep=timestep)
        img = IntermediateImage(fact.intermediate_shape)
        if recorder is not None:
            t1 = recorder.now()
            recorder.span(obs_frame, "decode", t0, t1)
        composite_frame(img, rle, fact, counters=counters, trace=trace,
                        restrict_bounds=restrict_bounds)
        if recorder is not None:
            t2 = recorder.now()
            recorder.span(obs_frame, "composite", t1, t2)
            recorder.count(obs_frame, "rows", img.n_v)
        final = FinalImage(fact.final_shape)
        warp_frame(final, img, fact, counters=counters, trace=trace)
        if recorder is not None:
            recorder.span(obs_frame, "warp", t2, recorder.now())
        return RenderResult(final=final, intermediate=img, fact=fact, counters=counters)
