"""Gradient-based Phong shading (VolPack's shaded-color path).

The minimal pipeline shades voxels by raw intensity only; VolPack's
quality path classifies *and shades* during the encoding step: each
voxel gets a surface normal from central-difference gradients, the
normal is quantized into a lookup table, and a Phong reflectance model
turns (normal, light, view) into a luminance that is stored in the
run-length encoding.  Because shading happens once per volume/light
configuration — outside the per-frame loop — it changes image quality,
not the parallel behaviour the paper studies.

Usage::

    shaded = shade_volume(raw, tf, light=(1, -1, 1))
    renderer = ShearWarpRenderer.from_classified(shaded)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..volume.classify import TransferFunction
from ..volume.volume import ClassifiedVolume

__all__ = ["PhongParameters", "central_gradients", "NormalTable", "shade_volume"]


@dataclass(frozen=True)
class PhongParameters:
    """Reflectance model coefficients (single white directional light)."""

    ambient: float = 0.2
    diffuse: float = 0.6
    specular: float = 0.4
    shininess: float = 12.0

    def __post_init__(self) -> None:
        for name in ("ambient", "diffuse", "specular"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.shininess <= 0:
            raise ValueError("shininess must be positive")


def central_gradients(raw: np.ndarray) -> np.ndarray:
    """Central-difference gradient field, shape ``(nx, ny, nz, 3)``.

    Edges use one-sided differences (``np.gradient`` semantics), which
    is what VolPack's precomputed normals do at volume borders.
    """
    raw = np.asarray(raw, dtype=np.float32)
    if raw.ndim != 3:
        raise ValueError("expected a 3-D volume")
    gx, gy, gz = np.gradient(raw)
    return np.stack([gx, gy, gz], axis=-1)


class NormalTable:
    """Quantized-normal shading lookup table.

    VolPack encodes each voxel's normal as a 13-bit index and shades by
    table lookup.  We quantize each component to ``bits`` levels on the
    unit sphere and precompute the Phong luminance per table entry, so
    shading a volume is one gather.
    """

    def __init__(
        self,
        light: tuple[float, float, float] = (1.0, -1.0, 1.0),
        view: tuple[float, float, float] = (0.0, 0.0, 1.0),
        params: PhongParameters | None = None,
        bits: int = 4,
    ) -> None:
        if not 2 <= bits <= 6:
            raise ValueError("bits must be in [2, 6]")
        self.bits = bits
        self.params = params or PhongParameters()
        self._light = self._unit(light)
        self._view = self._unit(view)
        self._half = self._unit(self._light + self._view)
        n = 1 << bits
        # Table axes: quantized (nx, ny, nz) components in [-1, 1].
        axis = np.linspace(-1.0, 1.0, n, dtype=np.float32)
        nx, ny, nz = np.meshgrid(axis, axis, axis, indexing="ij")
        norm = np.sqrt(nx**2 + ny**2 + nz**2)
        norm[norm == 0] = 1.0
        ux, uy, uz = nx / norm, ny / norm, nz / norm
        n_dot_l = np.clip(ux * self._light[0] + uy * self._light[1]
                          + uz * self._light[2], 0.0, 1.0)
        n_dot_h = np.clip(ux * self._half[0] + uy * self._half[1]
                          + uz * self._half[2], 0.0, 1.0)
        p = self.params
        self.table = (p.ambient + p.diffuse * n_dot_l
                      + p.specular * n_dot_h**p.shininess).astype(np.float32)

    @staticmethod
    def _unit(v) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        n = np.linalg.norm(v)
        if n < 1e-12:
            raise ValueError("zero-length direction")
        return v / n

    @property
    def size(self) -> int:
        return self.table.size

    def quantize(self, gradients: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Quantized table indices for a gradient field ``(..., 3)``."""
        g = np.asarray(gradients, dtype=np.float32)
        mag = np.linalg.norm(g, axis=-1, keepdims=True)
        safe = np.where(mag > 1e-6, mag, 1.0)
        unit = g / safe
        n = (1 << self.bits) - 1
        idx = np.clip(((unit + 1.0) * 0.5 * n).round().astype(np.intp), 0, n)
        return idx[..., 0], idx[..., 1], idx[..., 2]

    def shade(self, gradients: np.ndarray) -> np.ndarray:
        """Luminance per voxel from the gradient field.

        Voxels with (near-)zero gradients — interiors of homogeneous
        regions — get pure ambient light, as in VolPack.
        """
        ix, iy, iz = self.quantize(gradients)
        lum = self.table[ix, iy, iz]
        flat = np.linalg.norm(gradients, axis=-1) <= 1e-6
        lum = np.where(flat, self.params.ambient, lum)
        return np.clip(lum, 0.0, 1.0).astype(np.float32)


def shade_volume(
    raw: np.ndarray,
    tf: TransferFunction,
    light: tuple[float, float, float] = (1.0, -1.0, 1.0),
    params: PhongParameters | None = None,
) -> ClassifiedVolume:
    """Classify ``raw`` with Phong-shaded colors instead of raw luminance.

    Opacity comes from the transfer function as usual; color is the
    Phong table lookup modulated by the transfer function's luminance
    ramp (so tissue brightness still reflects intensity).
    """
    raw = np.asarray(raw)
    opacity, base_color = tf.classify(raw)
    table = NormalTable(light=light, params=params)
    lum = table.shade(central_gradients(raw))
    color = np.where(opacity > 0, (0.3 + 0.7 * lum) * base_color, 0.0)
    return ClassifiedVolume(raw=raw, opacity=opacity, color=color.astype(np.float32))
