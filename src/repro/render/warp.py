"""The 2-D warp phase: intermediate (sheared) image -> final image.

The warp is the residual affine transform of the factorization, applied
by inverse mapping with bilinear interpolation: each final-image pixel
samples four intermediate-image pixels.  The unit of work is one final
image scanline segment; the old parallel algorithm tiles the final image
(``warp_tile``), the new one restricts each processor to the final
pixels whose samples come from its own intermediate-image partition
(``line_owner``/``pid``).
"""

from __future__ import annotations

import numpy as np

from ..transforms.factorization import ShearWarpFactorization
from .image import FinalImage, IntermediateImage
from .instrument import Region, TraceSink, WorkCounters

__all__ = [
    "warp_coeffs",
    "warp_scanline",
    "warp_tile",
    "warp_frame",
    "final_pixel_source_lines",
    "pixel_source_rows",
    "warp_rows_by_pid",
]


def _inverse_coeffs(fact: ShearWarpFactorization) -> tuple[np.ndarray, np.ndarray]:
    a_inv = np.linalg.inv(fact.warp[:2, :2])
    b = fact.warp[:2, 2]
    return a_inv, b


def warp_coeffs(fact: ShearWarpFactorization) -> tuple[np.ndarray, np.ndarray]:
    """Inverse-mapping coefficients ``(a_inv, b)`` of the residual warp.

    Constant for a whole frame.  Every warp entry point accepts the pair
    through its ``coeffs`` kwarg; callers that warp scanline-by-scanline
    (the parallel renderers) compute it once per frame instead of paying
    a 2x2 ``np.linalg.inv`` per final-image row.
    """
    return _inverse_coeffs(fact)


def warp_scanline(
    final: FinalImage,
    y: int,
    img: IntermediateImage,
    fact: ShearWarpFactorization,
    x_lo: int = 0,
    x_hi: int | None = None,
    line_owner: np.ndarray | None = None,
    pid: int | None = None,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
    coeffs: tuple[np.ndarray, np.ndarray] | None = None,
) -> int:
    """Warp final-image row ``y`` (columns ``[x_lo, x_hi)``).

    When ``line_owner``/``pid`` are given (new algorithm), only the
    pixels whose *source scanline pair* is owned by processor ``pid``
    are written — this is how write-sharing on the final image is
    eliminated without synchronization.  ``coeffs`` is the frame's
    precomputed :func:`warp_coeffs` pair (derived from ``fact`` when
    omitted).  Returns the number of final pixels written.
    """
    if x_hi is None:
        x_hi = final.nx
    if x_hi <= x_lo:
        return 0
    a_inv, b = coeffs if coeffs is not None else _inverse_coeffs(fact)
    xs = np.arange(x_lo, x_hi, dtype=np.float64)
    dx = xs - b[0]
    dy = float(y) - b[1]
    u = a_inv[0, 0] * dx + a_inv[0, 1] * dy
    v = a_inv[1, 0] * dx + a_inv[1, 1] * dy

    n_v, n_u = img.shape
    valid = (u >= 0.0) & (u <= n_u - 1) & (v >= 0.0) & (v <= n_v - 1)
    if counters is not None:
        counters.loop_iters += 1
    if line_owner is not None:
        v0_all = np.clip(np.floor(v).astype(np.intp), 0, n_v - 1)
        owned = np.zeros_like(valid)
        owned[valid] = line_owner[v0_all[valid]] == pid
        valid &= owned
    if not np.any(valid):
        return 0

    uu = u[valid]
    vv = v[valid]
    u0 = np.floor(uu).astype(np.intp)
    v0 = np.floor(vv).astype(np.intp)
    fu = (uu - u0).astype(np.float32)
    fv = (vv - v0).astype(np.float32)
    u1 = np.minimum(u0 + 1, n_u - 1)
    v1 = np.minimum(v0 + 1, n_v - 1)

    c = img.color
    a = img.opacity
    w00 = (1 - fu) * (1 - fv)
    w10 = fu * (1 - fv)
    w01 = (1 - fu) * fv
    w11 = fu * fv
    col = w00 * c[v0, u0] + w10 * c[v0, u1] + w01 * c[v1, u0] + w11 * c[v1, u1]
    alp = w00 * a[v0, u0] + w10 * a[v0, u1] + w01 * a[v1, u0] + w11 * a[v1, u1]

    xi = np.nonzero(valid)[0] + x_lo
    final.color[y, xi] = col
    final.alpha[y, xi] = alp
    n = len(xi)
    if counters is not None:
        counters.warp_pixels += n

    if trace is not None:
        # Reads group into constant-v0 segments (v varies slowly along x).
        order = np.argsort(v0, kind="stable")
        v0s = v0[order]
        u0s = u0[order]
        seg_breaks = np.nonzero(np.diff(v0s))[0] + 1
        starts = np.concatenate(([0], seg_breaks))
        ends = np.concatenate((seg_breaks, [len(v0s)]))
        for s, e in zip(starts, ends):
            row = int(v0s[s])
            lo = int(u0s[s:e].min())
            hi = int(u0s[s:e].max()) + 2
            hi = min(hi, n_u)
            for r in (row, min(row + 1, n_v - 1)):
                start, nbytes = img.pixel_byte_range(r, lo, hi)
                trace.access(Region.INTERMEDIATE, start, nbytes)
        start, nbytes = final.pixel_byte_range(y, int(xi[0]), int(xi[-1]) + 1)
        trace.access(Region.FINAL, start, nbytes, write=True)
    return n


def warp_tile(
    final: FinalImage,
    y0: int,
    y1: int,
    x0: int,
    x1: int,
    img: IntermediateImage,
    fact: ShearWarpFactorization,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
    coeffs: tuple[np.ndarray, np.ndarray] | None = None,
) -> int:
    """Warp a rectangular tile of the final image (old algorithm's task)."""
    if coeffs is None:
        coeffs = _inverse_coeffs(fact)
    n = 0
    for y in range(y0, min(y1, final.ny)):
        n += warp_scanline(final, y, img, fact, x0, min(x1, final.nx),
                           counters=counters, trace=trace, coeffs=coeffs)
    return n


def warp_frame(
    final: FinalImage,
    img: IntermediateImage,
    fact: ShearWarpFactorization,
    counters: WorkCounters | None = None,
    trace: TraceSink | None = None,
    coeffs: tuple[np.ndarray, np.ndarray] | None = None,
) -> FinalImage:
    """Serially warp the whole final image."""
    if coeffs is None:
        coeffs = _inverse_coeffs(fact)
    for y in range(final.ny):
        warp_scanline(final, y, img, fact, counters=counters, trace=trace,
                      coeffs=coeffs)
    return final


def final_pixel_source_lines(
    final_shape: tuple[int, int],
    fact: ShearWarpFactorization,
    coeffs: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """For each final row ``y``, the (min, max) intermediate scanline sampled.

    Used by the new algorithm to find, cheaply, which final rows a
    processor's intermediate partition can contribute to.  Vectorized
    over rows; bit-equal to evaluating the two warped corners per row.
    """
    ny, nx = final_shape
    a_inv, b = coeffs if coeffs is not None else _inverse_coeffs(fact)
    corners_x = np.array([0.0, nx - 1.0])
    ys = np.arange(ny, dtype=np.float64)
    v = a_inv[1, 0] * (corners_x[None, :] - b[0]) + a_inv[1, 1] * (ys[:, None] - b[1])
    out = np.empty((ny, 2), dtype=np.int64)
    out[:, 0] = np.floor(v.min(axis=1)).astype(np.int64)
    out[:, 1] = np.floor(v.max(axis=1)).astype(np.int64) + 1
    return out


def pixel_source_rows(
    final_shape: tuple[int, int],
    intermediate_shape: tuple[int, int],
    fact: ShearWarpFactorization,
    coeffs: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per final pixel: its source scanline ``v0`` and validity mask.

    This is :func:`warp_scanline`'s inverse-mapping arithmetic —
    ``u``/``v``, the validity test, ``v0 = clip(floor(v), 0, n_v - 1)``
    — evaluated for every row at once by broadcasting ``dy`` over the
    row axis.  The elementwise IEEE operations are value-identical
    under broadcasting, so ``v0[y, x]`` is bit-for-bit the scanline
    ``warp_scanline(final, y, ...)`` would look up for pixel ``x``;
    the two MUST stay in lockstep, because the shard merge tree uses
    this map to decide which pool's framebuffer owns each final pixel
    (``line_owner[v0]`` is exactly the ownership test the per-scanline
    warp applies).

    Returns ``(v0, valid)``, both of shape ``final_shape``; ``v0`` is
    meaningful only where ``valid`` is True (invalid pixels are never
    written by any warp and stay zero in every framebuffer).
    """
    ny, nx = final_shape
    n_v, n_u = intermediate_shape
    a_inv, b = coeffs if coeffs is not None else _inverse_coeffs(fact)
    xs = np.arange(0, nx, dtype=np.float64)
    ys = np.arange(0, ny, dtype=np.float64)
    dx = xs[None, :] - b[0]
    dy = ys[:, None] - b[1]
    u = a_inv[0, 0] * dx + a_inv[0, 1] * dy
    v = a_inv[1, 0] * dx + a_inv[1, 1] * dy
    valid = (u >= 0.0) & (u <= n_u - 1) & (v >= 0.0) & (v <= n_v - 1)
    v0 = np.clip(np.floor(v).astype(np.intp), 0, n_v - 1)
    return v0, valid


def warp_rows_by_pid(
    src_lines: np.ndarray, owner: np.ndarray, n_procs: int
) -> list[np.ndarray]:
    """Final rows each processor must warp, from source-line ownership.

    Row ``y`` belongs to processor ``p`` iff the intermediate-scanline
    window ``src_lines[y]`` (clipped to the image) contains at least one
    scanline ``owner`` assigns to ``p`` — the same membership the
    per-row ``np.unique`` loop computes, evaluated for all rows at once
    with a per-processor ownership prefix count (O(n_v·P + ny·P) instead
    of O(ny · window · log)).
    """
    n_v = len(owner)
    vmin = np.clip(src_lines[:, 0], 0, n_v - 1)
    vmax = np.clip(src_lines[:, 1], vmin + 1, n_v)
    onehot = owner[:, None] == np.arange(n_procs)
    pref = np.zeros((n_v + 1, n_procs), dtype=np.int64)
    pref[1:] = np.cumsum(onehot, axis=0)
    hit = (pref[vmax] - pref[vmin]) > 0
    return [np.nonzero(hit[:, p])[0].astype(np.int64) for p in range(n_procs)]
