"""repro.serve — async render-as-a-service front end over the pools.

The "millions of users" rung of the roadmap made concrete: an asyncio
server (:class:`RenderServer`) that owns persistent render pools and
serves many concurrent clients with admission control
(:class:`ServerBusy` backpressure), request coalescing and a
content-addressed whole-frame LRU (:class:`FrameCache`).  See
:mod:`repro.serve.server` for the protocol and the architecture.
"""

from .admission import AdmissionController, ServerBusy
from .cache import DEFAULT_FRAME_CACHE_CAPACITY, CachedFrame, FrameCache
from .client import RenderClient, request_once, response_frames
from .protocol import canonical_identity, request_key
from .server import RenderServer, ServeConfig, run_server

__all__ = [
    "AdmissionController",
    "ServerBusy",
    "CachedFrame",
    "FrameCache",
    "DEFAULT_FRAME_CACHE_CAPACITY",
    "RenderClient",
    "request_once",
    "response_frames",
    "canonical_identity",
    "request_key",
    "RenderServer",
    "ServeConfig",
    "run_server",
]
