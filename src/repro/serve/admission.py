"""Admission control: a bounded in-flight window with typed rejection.

The serve layer's backpressure is deliberately the simplest thing that
is honest: a counter of admitted-but-unfinished render jobs, bounded by
``max_inflight``.  A request that would push past the bound is rejected
*immediately* with :class:`ServerBusy` — the 429 of this protocol —
instead of queueing without bound and timing out under load.  Cache
hits and coalesced followers never consume a slot: they add no pool
work, so rejecting them would only shed load the server isn't carrying.
"""

from __future__ import annotations

import threading

from ..obs.metrics import MetricsRegistry
from ..parallel.mp_backend import MPPoolError

__all__ = ["ServerBusy", "AdmissionController"]


class ServerBusy(MPPoolError):
    """The server's in-flight window is full — retry later.

    Extends :class:`~repro.parallel.mp_backend.MPPoolError` so service
    clients handle one typed hierarchy for every way a render can fail,
    whether the pool or the front end rejected it.
    """


class AdmissionController:
    """Bounded window of in-flight render jobs.

    Thread-safe: admission decisions normally happen on the event-loop
    thread, but releases arrive from executor callbacks, and the unit
    tests hammer it from plain threads.

    Counters land in the shared registry: ``serve/admitted``,
    ``serve/rejected`` and the ``serve/inflight`` gauge (whose ``max``
    is the observed high-water mark).
    """

    def __init__(self, max_inflight: int,
                 metrics: MetricsRegistry | None = None) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._inflight = 0
        self._lock = threading.Lock()

    @property
    def inflight(self) -> int:
        return self._inflight

    def acquire(self) -> None:
        """Claim one in-flight slot or raise :class:`ServerBusy`."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.metrics.counter("serve/rejected").inc()
                raise ServerBusy(
                    f"server at capacity ({self._inflight}/"
                    f"{self.max_inflight} renders in flight)"
                )
            self._inflight += 1
            self.metrics.counter("serve/admitted").inc()
            self.metrics.gauge("serve/inflight").set(self._inflight)

    def release(self) -> None:
        """Return a slot claimed by :meth:`acquire`."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._inflight -= 1
            self.metrics.gauge("serve/inflight").set(self._inflight)
