"""Content-addressed whole-frame LRU cache.

This lifts the :class:`~repro.volume.rle.SliceCache` idea one level: the
slice cache memoizes decoded RLE planes (pure functions of the
immutable encoding), this cache memoizes *finished frames* (pure
functions of the canonical request identity — dataset, scale,
classification, view, kernel).  An animation client orbiting a volume
and a dashboard of viewers staring at the same angle both collapse to
one render per distinct view.

Entries are keyed by :func:`repro.serve.protocol.request_key` (sha256
of the canonical identity JSON) and hold read-only ``float32`` planes,
so a hit can be handed to any number of concurrent responses without
copying.  Hit/miss counters flow into the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``serve/cache_hits``,
``serve/cache_misses``) next to the pool's own counters.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import MetricsRegistry

__all__ = ["CachedFrame", "FrameCache", "DEFAULT_FRAME_CACHE_CAPACITY"]

#: Default bound on cached finished frames.  At the proxy scales the
#: service renders, a frame is two small float32 planes (tens of KB), so
#: this holds a whole short animation per classification without
#: approaching the decoded-slice caches in footprint.
DEFAULT_FRAME_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class CachedFrame:
    """One finished frame: final-image planes plus a payload digest.

    ``sha256`` fingerprints the exact plane bytes — responses built from
    a cache hit, a coalesced in-flight render and a fresh render of the
    same identity all carry the same digest, which is how clients (and
    the tests) check bit-identity without shipping reference images.
    """

    color: np.ndarray
    alpha: np.ndarray
    sha256: str

    @classmethod
    def from_planes(cls, color: np.ndarray, alpha: np.ndarray) -> "CachedFrame":
        color = np.ascontiguousarray(color, dtype=np.float32)
        alpha = np.ascontiguousarray(alpha, dtype=np.float32)
        color.setflags(write=False)
        alpha.setflags(write=False)
        digest = hashlib.sha256()
        digest.update(color.tobytes())
        digest.update(alpha.tobytes())
        return cls(color=color, alpha=alpha, sha256=digest.hexdigest())

    @property
    def nbytes(self) -> int:
        return int(self.color.nbytes + self.alpha.nbytes)


class FrameCache:
    """Bounded LRU of :class:`CachedFrame` keyed by content address.

    Counter updates and the recency list share one lock — the lesson of
    the slice-cache counter races under the threading backend applied
    from the start, rather than retrofitted.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FRAME_CACHE_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("frame cache capacity must be >= 1")
        self.capacity = int(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.hits = 0
        self.misses = 0
        self._frames: OrderedDict[str, CachedFrame] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(f.nbytes for f in self._frames.values())

    def get(self, key: str) -> CachedFrame | None:
        with self._lock:
            frame = self._frames.get(key)
            if frame is None:
                self.misses += 1
                self.metrics.counter("serve/cache_misses").inc()
                return None
            self._frames.move_to_end(key)
            self.hits += 1
            self.metrics.counter("serve/cache_hits").inc()
            return frame

    def put(self, key: str, frame: CachedFrame) -> None:
        with self._lock:
            self._frames[key] = frame
            self._frames.move_to_end(key)
            while len(self._frames) > self.capacity:
                self._frames.popitem(last=False)
            self.metrics.gauge("serve/cache_frames").set(len(self._frames))

    def clear(self) -> None:
        """Drop every cached frame (hit/miss statistics are kept)."""
        with self._lock:
            self._frames.clear()
            self.metrics.gauge("serve/cache_frames").set(0)
