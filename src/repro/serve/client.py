"""Clients for the render service: an asyncio client and a blocking
one-shot helper.

:class:`RenderClient` is what the load-generator benchmark and the
tests drive (one connection, many requests); :func:`request_once` is
the blocking convenience the CI smoke and shell one-liners use.
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np

from .protocol import decode_plane, pack_message, read_message, read_message_sync

__all__ = ["RenderClient", "request_once", "response_frames"]


def response_frames(resp: dict) -> list[tuple[np.ndarray, np.ndarray]]:
    """Decode a render/animate response's frames to ``(color, alpha)``."""
    return [
        (decode_plane(f["color"]), decode_plane(f["alpha"]))
        for f in resp.get("frames", [])
    ]


class RenderClient:
    """One connection to a :class:`~repro.serve.server.RenderServer`.

    Usage::

        client = await RenderClient.connect(host, port)
        resp = await client.request({"op": "render", "ry": 30.0})
        (color, alpha), = response_frames(resp)
        await client.close()

    Requests on one client are serialized (the protocol is strict
    request/response per connection); concurrency comes from opening
    one client per logical user, as the benchmark does.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "RenderClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        async with self._lock:
            self._writer.write(pack_message(payload))
            await self._writer.drain()
            resp = await read_message(self._reader)
        if resp is None:
            raise ConnectionError("server closed the connection")
        return resp

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


def request_once(host: str, port: int, payload: dict,
                 timeout: float = 30.0) -> dict:
    """Blocking one-shot: connect, send one request, return the response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(pack_message(payload))
        resp = read_message_sync(sock)
    if resp is None:
        raise ConnectionError("server closed the connection")
    return resp
