"""Wire protocol of the render service: length-prefixed JSON messages.

One message = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  JSON keeps the protocol transparent (every request and
response is printable) and the length prefix keeps framing trivial for
both asyncio streams and blocking sockets; image planes travel inside
the JSON as base64-encoded raw ``float32`` bytes, so responses are
byte-for-byte comparable — the property the coalescing and caching
tests pin down.

Request identity
----------------
Two requests are *the same render* when their canonical identity dicts
match: dataset, proxy scale, classification spec, viewing angles and
compositing kernel.  :func:`request_key` hashes the canonical JSON of
that identity — the content address used by both the in-flight
coalescing map and the whole-frame cache.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import socket
import struct

import numpy as np

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "pack_message",
    "unpack_messages",
    "read_message",
    "read_message_sync",
    "canonical_identity",
    "request_key",
    "encode_plane",
    "decode_plane",
]

#: Refuse messages larger than this (a corrupt length prefix must not
#: make the server allocate gigabytes).
MAX_MESSAGE_BYTES = 64 << 20

_LEN = struct.Struct(">I")


class ProtocolError(ValueError):
    """Malformed frame or message (bad length, bad JSON, bad payload)."""


def pack_message(obj: dict) -> bytes:
    """Serialize one message: 4-byte big-endian length + UTF-8 JSON."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(body)} bytes exceeds limit")
    return _LEN.pack(len(body)) + body


def _parse_body(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message body: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("message body must be a JSON object")
    return obj


def unpack_messages(buf: bytes) -> tuple[list[dict], bytes]:
    """Split a byte buffer into complete messages plus the unconsumed tail."""
    out: list[dict] = []
    while len(buf) >= _LEN.size:
        (n,) = _LEN.unpack_from(buf)
        if n > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"declared message length {n} exceeds limit")
        if len(buf) < _LEN.size + n:
            break
        out.append(_parse_body(buf[_LEN.size:_LEN.size + n]))
        buf = buf[_LEN.size + n:]
    return out, buf


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one message from an asyncio stream; ``None`` on clean EOF."""
    try:
        head = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (n,) = _LEN.unpack(head)
    if n > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"declared message length {n} exceeds limit")
    try:
        body = await reader.readexactly(n)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise ProtocolError("connection closed mid-message") from exc
    return _parse_body(body)


def read_message_sync(sock: socket.socket) -> dict | None:
    """Blocking-socket twin of :func:`read_message` (used by the CLI
    one-shot client and the CI smoke)."""
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    (n,) = _LEN.unpack(head)
    if n > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"declared message length {n} exceeds limit")
    body = _recv_exact(sock, n)
    if body is None:
        raise ProtocolError("connection closed mid-message")
    return _parse_body(body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            return None if not chunks else None
        chunks.extend(chunk)
    return bytes(chunks)


# -- request identity ---------------------------------------------------------


def canonical_identity(
    dataset: str,
    scale: float,
    classification,
    view: tuple[float, float, float],
    kernel: str,
) -> dict:
    """The canonical form of what makes two render requests identical.

    ``classification`` is a transfer-function spec: a preset name
    (``"mri"``, ``"ct"``) or ``["binary", threshold, opacity]``.  Floats
    are round-tripped through ``float()`` so JSON canonicalization is
    stable regardless of the caller's numeric types.
    """
    if isinstance(classification, str):
        cls_spec: object = classification
    else:
        cls_spec = [classification[0]] + [float(x) for x in classification[1:]]
    return {
        "dataset": str(dataset),
        "scale": float(scale),
        "classification": cls_spec,
        "view": [float(a) for a in view],
        "kernel": str(kernel),
    }


def request_key(identity: dict) -> str:
    """Content address of a render request (sha256 of canonical JSON)."""
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- image payloads -----------------------------------------------------------


def encode_plane(a: np.ndarray) -> dict:
    """Base64-wrap one float32 image plane for a JSON response."""
    a = np.ascontiguousarray(a, dtype=np.float32)
    return {
        "shape": list(a.shape),
        "dtype": "float32",
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_plane(d: dict) -> np.ndarray:
    """Inverse of :func:`encode_plane` (returns a read-only array)."""
    try:
        raw = base64.b64decode(d["data"])
        a = np.frombuffer(raw, dtype=np.dtype(d["dtype"])).reshape(d["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad image plane payload: {exc}") from exc
    a.setflags(write=False)
    return a
