"""``repro.serve`` — render-as-a-service over the persistent pools.

An asyncio front end that owns one or more :func:`repro.open_pool`
instances and serves single-view and animation renders to many
concurrent clients over the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`.  Three mechanisms keep a small pool honest
under many clients:

* **Admission control** (:class:`~repro.serve.admission.AdmissionController`)
  bounds the renders in flight; excess requests are rejected immediately
  with a typed ``ServerBusy`` instead of queueing without bound.
* **Request coalescing** — identical in-flight requests (same canonical
  ``(dataset, classification, view, kernel)`` identity) await *one*
  pool render and share its frame, byte for byte.
* **A content-addressed whole-frame LRU**
  (:class:`~repro.serve.cache.FrameCache`) returns repeated views
  without touching a pool at all.

The event loop never renders: pool work runs on one executor thread per
pool (a pool is driven by a single thread; concurrency across clients
comes from the cache, coalescing and — with several datasets — several
pools), which is MovieMaker's stage split applied to serving: the loop
thread does admission/assembly/IO while the pool threads overlap
compositing, exactly like the movie pipeline's render stage overlapping
its encode stage.

Protocol operations (all request/response dicts):

``{"op": "ping"}``
    Liveness check; returns the server version.
``{"op": "render", "dataset": ..., "rx": ..., "ry": ..., ...}``
    One frame; response carries base64 float32 ``color``/``alpha``
    planes, their ``sha256``, and ``cached``/``coalesced`` flags.
``{"op": "animate", ..., "frames": N, "ry_step": d}``
    N frames rotating about y — the batch-movie path; rendered through
    ``pool.render_animation`` (one pipelined batch) and cached per
    frame.
``{"op": "stats"}``
    A metrics snapshot (serve counters merged with every pool's).
``{"op": "shutdown"}``
    Stop the server (when ``ServeConfig.allow_shutdown``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import Histogram, MetricsRegistry
from ..parallel.mp_backend import MPPoolError, PoolConfig
from .admission import AdmissionController, ServerBusy
from .cache import DEFAULT_FRAME_CACHE_CAPACITY, CachedFrame, FrameCache
from .protocol import (
    ProtocolError,
    canonical_identity,
    encode_plane,
    pack_message,
    read_message,
    request_key,
)

__all__ = ["ServeConfig", "RenderServer", "run_server"]

#: Marker carried by metrics-snapshot files so ``repro stats`` can tell
#: them apart from Chrome traces.
SNAPSHOT_KIND = "repro-metrics"

#: Timesteps baked into the ``beating_heart`` renderer the default
#: factory builds; ``movie`` requests with more frames wrap around it.
DEFAULT_MOVIE_TIMESTEPS = 4


@dataclass(frozen=True)
class ServeConfig:
    """Every render-server knob, validated in one place (the serve-layer
    sibling of :class:`~repro.parallel.mp_backend.PoolConfig`).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`RenderServer.address`).
    max_inflight:
        Bound on admitted-but-unfinished render jobs; requests beyond
        it get a typed ``ServerBusy``.  Cache hits and coalesced
        followers bypass admission (they add no pool work).
    cache_frames:
        Capacity of the whole-frame LRU, in frames.
    default_dataset / default_scale / default_classification:
        Request defaults (a client may override any of them per
        request).
    pool:
        The :class:`PoolConfig` every pool is built from; a request's
        ``kernel`` field rebuilds it per pool.  ``profile_period``
        defaults to 0 here — service traffic has no frame-to-frame
        coherence for the profile loop to exploit.  ``pool.shards > 1``
        makes every lazily-created "pool" a sharded fleet
        (:class:`~repro.shard.ShardedRenderService`) — the server drives
        it through the identical API and never knows the difference.
    idle_pool_s:
        Evict a pool once it has sat idle (no render in flight, none
        finished) this many seconds: its executor is drained, the pool
        closed and its shm segments unlinked, so a server that saw a
        burst of distinct datasets does not hold their worker fleets
        forever.  The next request for that identity simply re-creates
        the pool.  ``None`` (default) never evicts.
    allow_shutdown:
        Honor the ``shutdown`` protocol op (on by default: the server
        binds loopback unless configured otherwise).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    cache_frames: int = DEFAULT_FRAME_CACHE_CAPACITY
    default_dataset: str = "mri128"
    default_scale: float = 0.12
    default_classification: str = "mri"
    pool: PoolConfig = field(
        default_factory=lambda: PoolConfig(n_procs=2, profile_period=0)
    )
    idle_pool_s: float | None = None
    allow_shutdown: bool = True

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.cache_frames < 1:
            raise ValueError("cache_frames must be >= 1")
        if self.idle_pool_s is not None and self.idle_pool_s <= 0:
            raise ValueError("idle_pool_s must be positive (or None)")

    def replace(self, **changes) -> "ServeConfig":
        return dataclasses.replace(self, **changes)


def _default_renderer_factory(dataset: str, scale: float, classification):
    """Build a classified + encoded renderer for one request identity."""
    from ..datasets import load
    from ..render.serial import ShearWarpRenderer
    from ..volume import (
        binary_transfer_function,
        ct_transfer_function,
        mri_transfer_function,
    )

    if classification == "mri":
        tf = mri_transfer_function()
    elif classification == "ct":
        tf = ct_transfer_function()
    elif (
        isinstance(classification, (list, tuple))
        and classification
        and classification[0] == "binary"
    ):
        tf = binary_transfer_function(*[float(x) for x in classification[1:]])
    else:
        raise ValueError(f"unknown classification spec {classification!r}")
    if dataset == "beating_heart":
        # The time-varying phantom: ``scale`` shrinks the base grid
        # linearly (it is not in the paper-dataset registry).
        from ..movie import beating_heart_renderer

        return beating_heart_renderer(
            float(scale), timesteps=DEFAULT_MOVIE_TIMESTEPS, tf=tf
        )
    return ShearWarpRenderer(load(dataset, float(scale)), tf)


class RenderServer:
    """The async render service (see the module docstring).

    Parameters
    ----------
    config:
        A :class:`ServeConfig`; keyword overrides refine it the same way
        :func:`repro.open_pool` refines a :class:`PoolConfig`.
    renderer_factory:
        ``(dataset, scale, classification) -> renderer`` — injection
        point for tests and embedders; defaults to the paper datasets
        through :func:`repro.datasets.load`.
    render_fn:
        ``(pool, views) -> [(color, alpha), ...]`` executed on the
        pool's executor thread.  Tests inject gates here; the default
        drives ``pool.render`` / ``pool.render_animation``.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 renderer_factory=None, render_fn=None, **overrides) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.metrics = MetricsRegistry()
        self.cache = FrameCache(config.cache_frames, metrics=self.metrics)
        self.admission = AdmissionController(config.max_inflight, self.metrics)
        self._renderer_factory = renderer_factory or _default_renderer_factory
        self._render_fn = render_fn or self._pool_render
        self._renderers: dict[tuple, object] = {}
        #: pool key -> (pool, single-thread executor driving it)
        self._pools: dict[tuple, tuple[object, ThreadPoolExecutor]] = {}
        #: pool key -> renders in flight / last time one finished, for
        #: idle eviction (both only touched on the event-loop thread).
        self._pool_busy: dict[tuple, int] = {}
        self._pool_last_used: dict[tuple, float] = {}
        self._evict_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Actual bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "RenderServer":
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        if self.config.idle_pool_s is not None:
            self._evict_task = asyncio.get_running_loop().create_task(
                self._evict_idle_pools()
            )
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`close` or a client's ``shutdown`` op."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()

    async def close(self) -> None:
        """Stop accepting, drain the pools, release every shm segment."""
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        if self._evict_task is not None:
            self._evict_task.cancel()
            try:
                await self._evict_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._conns):
            writer.close()
        # Finish in-executor renders before pool teardown: each executor
        # is the only thread driving its pool, so shutdown(wait=True)
        # guarantees no render is mid-flight when close() unlinks shm.
        pools = list(self._pools.values())
        self._pools.clear()
        for pool, executor in pools:
            await asyncio.get_running_loop().run_in_executor(
                None, executor.shutdown
            )
            pool.close()

    async def __aenter__(self) -> "RenderServer":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- request plumbing ----------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    msg = await read_message(reader)
                except ProtocolError as exc:
                    writer.write(pack_message(
                        {"status": "error", "error": "ProtocolError",
                         "detail": str(exc)}
                    ))
                    await writer.drain()
                    break
                if msg is None or self._closed:
                    break
                resp = await self._dispatch(msg)
                writer.write(pack_message(resp))
                await writer.drain()
                if msg.get("op") == "shutdown" and resp["status"] == "ok":
                    self._shutdown.set()
                    break
        except ConnectionError:
            pass  # client went away mid-response
        except asyncio.CancelledError:
            pass  # loop teardown with the client still connected
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        self.metrics.counter("serve/requests").inc()
        try:
            if op == "ping":
                from .. import __version__

                return {"status": "ok", "op": "ping", "version": __version__}
            if op == "stats":
                return {"status": "ok", "op": "stats",
                        "metrics": self.metrics_snapshot()}
            if op == "shutdown":
                if not self.config.allow_shutdown:
                    raise PermissionError("shutdown is disabled on this server")
                return {"status": "ok", "op": "shutdown"}
            if op == "render":
                return await self._handle_render(msg, n_frames=1)
            if op == "animate":
                n = int(msg.get("frames", 0))
                if n < 1:
                    raise ValueError("animate needs frames >= 1")
                return await self._handle_render(msg, n_frames=n)
            if op == "movie":
                n = int(msg.get("frames", 0))
                if n < 1:
                    raise ValueError("movie needs frames >= 1")
                return await self._handle_render(msg, n_frames=n, movie=True)
            raise ValueError(f"unknown op {op!r}")
        except MPPoolError as exc:
            # Typed serve/pool errors keep their class name on the wire
            # (ServerBusy is the one clients must branch on).
            return {"status": "error", "error": type(exc).__name__,
                    "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - bad request, not a crash
            return {"status": "error", "error": type(exc).__name__,
                    "detail": str(exc)}

    def _identities(
        self, msg: dict, n_frames: int, movie: bool = False
    ) -> list[dict]:
        cfg = self.config
        dataset = str(msg.get("dataset", cfg.default_dataset))
        scale = float(msg.get("scale", cfg.default_scale))
        cls_spec = msg.get("classification", cfg.default_classification)
        kernel = str(msg.get("kernel", cfg.pool.kernel))
        rx = float(msg.get("rx", 20.0))
        ry = float(msg.get("ry", 30.0))
        rz = float(msg.get("rz", 0.0))
        step = float(msg.get("ry_step", 3.0))
        if movie:
            # A movie frame's identity carries its timestep as a 4th
            # view element, so the cache/coalescing machinery keys on it
            # and timestep t at angle a never aliases timestep t' at a.
            timesteps = int(msg.get("timesteps", DEFAULT_MOVIE_TIMESTEPS))
            if timesteps < 1:
                raise ValueError("movie needs timesteps >= 1")
            return [
                canonical_identity(dataset, scale, cls_spec,
                                   (rx, ry + i * step, rz, i % timesteps),
                                   kernel)
                for i in range(n_frames)
            ]
        return [
            canonical_identity(dataset, scale, cls_spec,
                               (rx, ry + i * step, rz), kernel)
            for i in range(n_frames)
        ]

    async def _handle_render(
        self, msg: dict, n_frames: int, movie: bool = False
    ) -> dict:
        t0 = time.perf_counter()
        identities = self._identities(msg, n_frames, movie=movie)
        keys = [request_key(i) for i in identities]
        frames, cached, coalesced = await self._resolve(identities, keys)
        elapsed = time.perf_counter() - t0
        if movie:
            # Every movie frame leaves this server wire-encoded, whether
            # it was freshly rendered or served from the cache.
            self.metrics.counter("movie/frames_encoded").inc(len(frames))
        self.metrics.histogram("serve/latency_s").observe(elapsed)
        client = str(msg.get("client", "anon"))
        self.metrics.histogram(f"serve/latency_s/{client}").observe(elapsed)
        return {
            "status": "ok",
            "op": msg["op"],
            "cached": cached,
            "coalesced": coalesced,
            "elapsed_ms": elapsed * 1e3,
            "frames": [
                {"sha256": f.sha256,
                 "color": encode_plane(f.color),
                 "alpha": encode_plane(f.alpha)}
                for f in frames
            ],
        }

    async def _resolve(
        self, identities: list[dict], keys: list[str]
    ) -> tuple[list[CachedFrame], bool, bool]:
        """Frames for ``keys``: cache, then coalesce, then render.

        Returns ``(frames, all_cached, coalesced)``.  A multi-frame
        request coalesces as a unit (its identity is the frame-key
        list); its rendered frames still land in the cache
        individually, so later single-view requests hit.
        """
        hits = [self.cache.get(k) for k in keys]
        if all(f is not None for f in hits):
            self.metrics.counter("serve/served_from_cache").inc(len(keys))
            return hits, True, False

        job_key = keys[0] if len(keys) == 1 else request_key(
            {"batch": keys}
        )
        pending = self._pending.get(job_key)
        if pending is not None:
            self.metrics.counter("serve/coalesced").inc()
            return list(await asyncio.shield(pending)), False, True

        # This request renders: claim an admission slot for the job.
        self.admission.acquire()
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        # A lone render's failure is re-raised to its own client; the
        # callback marks the exception retrieved for the no-follower case.
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._pending[job_key] = fut
        try:
            pool_key = self._pool_key(identities[0])
            pool, executor = self._pool_for(identities[0])
            # Busy before the first await: the eviction sweep runs on
            # this same loop thread and never closes a busy pool.
            self._pool_busy[pool_key] = self._pool_busy.get(pool_key, 0) + 1
            try:
                views = [i["view"] for i in identities]
                self.metrics.counter("serve/pool_renders").inc()
                self.metrics.counter("serve/pool_frames").inc(len(views))
                planes = await loop.run_in_executor(
                    executor, self._render_fn, pool, views
                )
            finally:
                self._pool_busy[pool_key] -= 1
                self._pool_last_used[pool_key] = time.monotonic()
            frames = [CachedFrame.from_planes(c, a) for c, a in planes]
            for key, frame in zip(keys, frames):
                self.cache.put(key, frame)
            fut.set_result(frames)
            return frames, False, False
        except Exception as exc:
            fut.set_exception(exc)
            raise
        finally:
            self._pending.pop(job_key, None)
            self.admission.release()

    # -- pools ---------------------------------------------------------------

    @staticmethod
    def _pool_key(identity: dict) -> tuple:
        """Pool-map key: everything that forks different renderer state
        into the workers — dataset, scale, classification, kernel."""
        return (
            identity["dataset"], identity["scale"],
            json.dumps(identity["classification"]), identity["kernel"],
        )

    def _pool_for(self, identity: dict) -> tuple[object, ThreadPoolExecutor]:
        """The pool (and its driver thread) for one request identity.

        Created lazily on the event-loop thread so the pool map needs no
        lock; an idle-evicted pool is simply re-created here on its next
        request.
        """
        key = self._pool_key(identity)
        entry = self._pools.get(key)
        if entry is None:
            import repro

            renderer_key = key[:3]
            renderer = self._renderers.get(renderer_key)
            if renderer is None:
                renderer = self._renderer_factory(
                    identity["dataset"], identity["scale"],
                    identity["classification"],
                )
                self._renderers[renderer_key] = renderer
            pool = repro.open_pool(
                renderer, config=self.config.pool.replace(
                    kernel=identity["kernel"]
                )
            )
            executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"serve-pool-{len(self._pools)}"
            )
            entry = self._pools[key] = (pool, executor)
            self._pool_last_used[key] = time.monotonic()
            self.metrics.gauge("serve/pools").set(len(self._pools))
        return entry

    async def _evict_idle_pools(self) -> None:
        """Close pools idle longer than ``idle_pool_s`` (loop-thread task).

        A pool is idle when no render is in flight on it and its last
        render finished more than ``idle_pool_s`` ago.  Eviction mirrors
        :meth:`close` for one pool: drain the executor (off-loop — it is
        the only thread driving the pool), close the pool, unlink its
        shm.  Note an evicted pool's metrics leave the stats snapshot
        with it.
        """
        idle_s = self.config.idle_pool_s
        loop = asyncio.get_running_loop()
        while not self._closed:
            await asyncio.sleep(max(0.01, idle_s / 4))
            now = time.monotonic()
            for key in list(self._pools):
                if self._pool_busy.get(key, 0) > 0:
                    continue
                if now - self._pool_last_used.get(key, now) < idle_s:
                    continue
                pool, executor = self._pools.pop(key)
                self._pool_busy.pop(key, None)
                self._pool_last_used.pop(key, None)
                # Count at pop time: the await below yields to the loop,
                # and an observer must never see the pool gone from
                # ``_pools`` while the eviction counter still reads 0.
                self.metrics.counter("serve/pools_evicted").inc()
                self.metrics.gauge("serve/pools").set(len(self._pools))
                await loop.run_in_executor(None, executor.shutdown)
                pool.close()

    @staticmethod
    def _pool_render(pool, views) -> list[tuple[np.ndarray, np.ndarray]]:
        """Default render path (runs on the pool's executor thread).

        Drives the pool purely through the :class:`~repro.parallel.
        backend.RenderBackend` protocol (``submit_batch`` / ``result``),
        so mp pools, thread pools and shard fleets are interchangeable
        here.  A view is ``(rx, ry, rz)`` angles, optionally followed by
        a timestep (the ``movie`` op's 4th identity element).
        """
        import numpy as _np

        from ..parallel.backend import FrameSpec

        def spec(v):
            timestep = int(v[3]) if len(v) > 3 else None
            return FrameSpec(
                view=pool.renderer.view_from_angles(*v[:3]),
                timestep=timestep,
            )

        ids = pool.submit_batch([spec(v) for v in views])
        results = [pool.result(fid) for fid in ids]
        return [
            (_np.array(r.final.color), _np.array(r.final.alpha))
            for r in results
        ]

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """One JSON-ready snapshot: serve metrics merged with every
        pool's registry (``repro stats`` renders these files)."""
        merged = MetricsRegistry()
        registries = [self.metrics] + [
            pool.metrics for pool, _ in self._pools.values()
            if getattr(pool, "metrics", None) is not None
        ]
        for reg in registries:
            for name, h in reg.histograms.items():
                merged.histograms.setdefault(name, Histogram()).values.extend(
                    h.values
                )
            for name, c in reg.counters.items():
                merged.counter(name).inc(c.value)
            for name, g in reg.gauges.items():
                mg = merged.gauge(name)
                mg.set(max(mg.value, g.value) if mg._written else g.value)
        snap = merged.snapshot()
        snap["kind"] = SNAPSHOT_KIND
        snap["config"] = {
            "max_inflight": self.config.max_inflight,
            "cache_frames": self.config.cache_frames,
            "n_procs": self.config.pool.n_procs,
            "backend": self.config.pool.backend,
            "shards": self.config.pool.shards,
        }
        return snap


async def run_server(
    config: ServeConfig,
    *,
    metrics_out: str | None = None,
    ready=None,
) -> dict:
    """Start a :class:`RenderServer`, serve until shutdown, snapshot.

    The CLI entry point: prints nothing itself — ``ready`` (if given) is
    called with the bound ``(host, port)`` once accepting, the final
    metrics snapshot is returned and, when ``metrics_out`` is set, also
    written there as JSON for ``repro stats``.
    """
    server = RenderServer(config)
    await server.start()
    if ready is not None:
        ready(server.address)
    try:
        await server.serve_forever()
    finally:
        snap = server.metrics_snapshot()
        await server.close()
        if metrics_out:
            with open(metrics_out, "w") as f:
                json.dump(snap, f, indent=2)
                f.write("\n")
    return snap
