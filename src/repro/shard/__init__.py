"""Sharded multi-pool rendering: distributed framebuffer + merge tree.

The pools of :mod:`repro.parallel` scale the renderer *within* one
worker pool; this package scales it *across* pools.  The intermediate
image is split into contiguous scanline shards, each shard rendered by
its own pool (process- or thread-backed, independently configured and
independently supervised), and the final image reassembled through an
explicit pixel-ownership map and a sort-last binary merge tree — with
the shard boundaries themselves re-balanced by the paper's profile
feedback loop run one level up.  Bit-identity with the single-pool
renderer, at every shard count, is the contract.
"""

from .merge import (
    ShardFramebuffer,
    TileOwnershipMap,
    merge_framebuffers,
    merge_schedule,
)
from .service import ShardConfig, ShardPlanner, ShardedRenderService

__all__ = [
    "ShardConfig",
    "ShardPlanner",
    "ShardedRenderService",
    "ShardFramebuffer",
    "TileOwnershipMap",
    "merge_framebuffers",
    "merge_schedule",
]
