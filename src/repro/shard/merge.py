"""Distributed-framebuffer pieces of the shard layer.

The shard service splits the *intermediate* image into contiguous
scanline shards, but the image that must come back together is the
*final* one.  Following the Distributed FrameBuffer design (Usher et
al.), ownership and computation are decoupled through an explicit map:
:class:`TileOwnershipMap` assigns every final pixel to the shard that
owns its source scanline — evaluated with the exact inverse-warp
arithmetic of :func:`repro.render.warp.warp_scanline`
(:func:`~repro.render.warp.pixel_source_rows`), so the map agrees
bit-for-bit with what each shard's warp actually wrote.

Each shard renders into its own :class:`ShardFramebuffer` (a
shared-memory segment for process-backed shards, a plain array for
thread shards), and :func:`merge_schedule` arranges the shards into a
sort-last binary merge tree: ``ceil(log2(n))`` rounds of pairwise
masked copies, where the mask of a merge step is "pixels owned by the
source's subtree".  Because pixel ownership is a partition (every
valid pixel has exactly one owner, background pixels have none and are
zero in every framebuffer), the merged root is bit-identical to a
single-pool render no matter how many shards participated — including
when a shard degraded to a serial full-frame render, whose extra
pixels are simply never selected by any mask.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..render.image import FinalImage
from ..render.warp import pixel_source_rows, warp_coeffs

__all__ = [
    "TileOwnershipMap",
    "ShardFramebuffer",
    "merge_schedule",
    "merge_framebuffers",
]


class TileOwnershipMap:
    """Owner shard of every final pixel, for one frame's factorization.

    ``pixel_owner[y, x]`` is the shard whose warp wrote final pixel
    ``(y, x)`` — ``shard_owner[v0]`` for the pixel's source scanline
    ``v0``, or ``-1`` for background pixels the warp never touches.
    The shard ids along a scanline are monotone (the warp is affine),
    so the map is effectively a tiling of the final image by the shard
    boundaries, warped into final-image space.
    """

    def __init__(self, fact, shard_owner: np.ndarray) -> None:
        ny, nx = fact.final_shape
        v0, valid = pixel_source_rows(
            (ny, nx), fact.intermediate_shape, fact, coeffs=warp_coeffs(fact)
        )
        owner = np.asarray(shard_owner, dtype=np.int64)
        self.pixel_owner = np.where(valid, owner[v0], -1)
        self.n_shards = int(owner.max()) + 1 if len(owner) else 1

    def subtree_mask(self, lo: int, hi: int) -> np.ndarray:
        """Pixels owned by shards ``[lo, hi)`` (one merge step's mask)."""
        return (self.pixel_owner >= lo) & (self.pixel_owner < hi)


class ShardFramebuffer:
    """One shard's final-image planes, sized to the pool's capacity.

    ``backing="shm"`` places the planes in a shared-memory segment —
    the layout a cross-process distributed framebuffer needs, and the
    honest unit the merge-overhead benchmark measures — while
    ``backing="array"`` keeps them in private arrays (thread shards
    share an address space already).  The buffer is allocated once at
    the capacity shape and reused across frames through ``[:ny, :nx]``
    views; ``load`` overwrites the full active region, so stale pixels
    from an earlier (larger) frame can never leak into a merge.
    """

    def __init__(self, cap_shape: tuple[int, int], backing: str = "array") -> None:
        if backing not in ("shm", "array"):
            raise ValueError(f"backing must be 'shm' or 'array', got {backing!r}")
        self.backing = backing
        self.cap_shape = cap_shape
        ny, nx = cap_shape
        self._shm: shared_memory.SharedMemory | None = None
        if backing == "shm":
            self._shm = shared_memory.SharedMemory(create=True, size=2 * ny * nx * 4)
            self.color = np.ndarray((ny, nx), np.float32, buffer=self._shm.buf)
            self.alpha = np.ndarray(
                (ny, nx), np.float32, buffer=self._shm.buf, offset=ny * nx * 4
            )
            self.color.fill(0.0)
            self.alpha.fill(0.0)
        else:
            self.color = np.zeros((ny, nx), dtype=np.float32)
            self.alpha = np.zeros((ny, nx), dtype=np.float32)

    def load(self, final: FinalImage) -> None:
        """Copy one frame's planes into the active region."""
        ny, nx = final.color.shape
        self.color[:ny, :nx] = final.color
        self.alpha[:ny, :nx] = final.alpha

    def close(self) -> None:
        """Release the backing segment (safe to call twice)."""
        # Drop the views first: an shm buffer cannot close while numpy
        # arrays still reference its memory.
        self.color = self.alpha = None
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None


def merge_schedule(n_shards: int) -> list[list[tuple[int, int, int]]]:
    """Sort-last binary merge tree over ``n_shards`` framebuffers.

    Returns rounds of ``(dst, src, src_span)`` steps: in each round,
    shard ``src``'s subtree — the ``src_span`` shards ``[src, src +
    src_span)`` it has already absorbed — is merged into shard ``dst``.
    Steps within a round touch disjoint framebuffers (they could run
    concurrently); after the last round shard 0 holds every shard's
    owned pixels.  ``ceil(log2(n))`` rounds, ``n - 1`` merges total.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    rounds: list[list[tuple[int, int, int]]] = []
    span = 1
    while span < n_shards:
        steps = []
        for dst in range(0, n_shards, 2 * span):
            src = dst + span
            if src < n_shards:
                steps.append((dst, src, min(span, n_shards - src)))
        rounds.append(steps)
        span *= 2
    return rounds


def merge_framebuffers(
    fbs: list[ShardFramebuffer],
    tile_map: TileOwnershipMap,
    final_shape: tuple[int, int],
) -> tuple[FinalImage, int]:
    """Run the merge tree; return the merged image and the merge count.

    Each step copies exactly the source subtree's *owned* pixels
    (``np.copyto(..., where=mask)``), so a destination framebuffer
    accumulates the union of its subtree's disjoint pixel sets and
    nothing else — shard 0's buffer ends up with every owned pixel's
    bit-exact value and zeros on the (never-owned) background.
    """
    ny, nx = final_shape
    merges = 0
    for rnd in merge_schedule(len(fbs)):
        for dst, src, src_span in rnd:
            mask = tile_map.subtree_mask(src, src + src_span)
            np.copyto(fbs[dst].color[:ny, :nx], fbs[src].color[:ny, :nx],
                      where=mask)
            np.copyto(fbs[dst].alpha[:ny, :nx], fbs[src].alpha[:ny, :nx],
                      where=mask)
            merges += 1
    out = FinalImage((ny, nx))
    out.color[...] = fbs[0].color[:ny, :nx]
    out.alpha[...] = fbs[0].alpha[:ny, :nx]
    return out, merges
