"""Sharded multi-pool rendering with a sort-last merge tree.

:class:`ShardedRenderService` scales the renderer *across pools*: the
intermediate image is split into contiguous scanline shards, each shard
gets its own :class:`~repro.parallel.mp_backend.MPRenderPool` (or
thread pool), and the final image is reassembled through the explicit
tile-ownership map and binary merge tree of :mod:`repro.shard.merge`.
Every pool renders the *same* frame restricted to a
:class:`~repro.parallel.mp_backend.FrameRegion` — its composite band
(owned scanlines plus the one ghost line each warp sample pair needs)
and its warp-ownership mask — so the union of the pools' disjoint
pixel sets is bit-identical to a single-pool render of the whole frame.

The service also runs the paper's section 4.2-4.3 feedback loop one
level up (:class:`ShardPlanner`): on profiled frames every pool ships
its calibrated per-scanline costs back, the service stitches them into
one cross-shard profile, and the *shard boundaries themselves* are
re-balanced with the same :func:`contiguous_partition` construction the
pools use for scanlines — with the same (axis, perm) invalidation rule
when a principal-axis switch makes the old profile meaningless.

Chaos knob: ``REPRO_SHARD_ROW_DELAY="shard:pid:sec[,shard:pid:sec]"``
slows one worker of one *shard* (process pools only — the delay is
baked into the pool's fork snapshot at construction), letting tests and
benchmarks create cross-shard imbalance that the shard-level feedback
loop must then converge away.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.partition import (
    contiguous_partition,
    line_ownership,
    uniform_contiguous_partition,
)
from ..core.profiling import ScanlineProfile
from ..obs.metrics import MetricsRegistry, busy_spread
from ..obs.recorder import RingReader, SpanRecorder
from ..obs.timeline import FrameTimeline
from ..obs.timeline import export_chrome_trace as _export_chrome_trace
from ..parallel import mp_backend as _mpb
from ..parallel.backend import BackendCapabilities, as_frame_specs
from ..parallel.mp_backend import (
    FrameRegion,
    MPRenderPool,
    MPRenderResult,
    PoolConfig,
    _capacity_shapes,
)
from ..parallel.thread_backend import ThreadRenderPool
from ..render.compositing import nonempty_scanline_bounds
from ..render.image import IntermediateImage
from .merge import ShardFramebuffer, TileOwnershipMap, merge_framebuffers

__all__ = ["ShardConfig", "ShardPlanner", "ShardedRenderService"]


@dataclass(frozen=True)
class ShardConfig:
    """Explicit front door for heterogeneous shard fleets.

    ``repro.open_pool(shards=N)`` covers the common case (N identical
    pools cloned from one :class:`PoolConfig`); this config additionally
    allows per-shard pool configs — e.g. an mp pool next to a thread
    pool, or different worker counts per shard.
    """

    shards: int = 2
    pool: PoolConfig = field(default_factory=PoolConfig)
    #: Optional per-shard overrides; length must equal ``shards``.
    shard_pools: tuple[PoolConfig, ...] | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.shard_pools is not None and len(self.shard_pools) != self.shards:
            raise ValueError(
                f"shard_pools has {len(self.shard_pools)} configs "
                f"for {self.shards} shards"
            )

    def pool_config(self, s: int) -> PoolConfig:
        cfg = self.shard_pools[s] if self.shard_pools is not None else self.pool
        # A shard's pool is always a plain single-band pool.
        return cfg.replace(shards=1) if cfg.shards != 1 else cfg


def _shard_delays_from_env() -> dict[int, tuple[int, float]]:
    """Parse ``REPRO_SHARD_ROW_DELAY`` (``"shard:pid:sec_per_row,..."``)."""
    spec = os.environ.get("REPRO_SHARD_ROW_DELAY")
    if not spec:
        return {}
    out: dict[int, tuple[int, float]] = {}
    for part in spec.split(","):
        shard_s, pid_s, sec_s = part.split(":")
        out[int(shard_s)] = (int(pid_s), float(sec_s))
    return out


class ShardPlanner:
    """Shard-boundary planning: section 4.3 one level up.

    The same machinery :class:`~repro.parallel.mp_backend.FramePlanner`
    applies to *scanlines within one pool* — profile-balanced contiguous
    partitioning, reuse of a previous frame's measured costs, and
    invalidation when the principal axis switches — applied to *shard
    boundaries across pools*.  Each pool then re-partitions its band
    into per-worker blocks with its own planner, so the two levels
    compose into the nested split of
    :func:`repro.core.partition.nested_contiguous_partition`.
    """

    def __init__(self, renderer, n_shards: int, metrics: MetricsRegistry) -> None:
        self.renderer = renderer
        self.n_shards = n_shards
        self.metrics = metrics
        self.profile: ScanlineProfile | None = None
        self.profile_key: tuple[int, tuple[int, int, int]] | None = None
        self._last_bounds: np.ndarray | None = None
        self._last_key: tuple[int, tuple[int, int, int]] | None = None

    def plan(self, view: np.ndarray, timestep: int | None = None) -> dict:
        """Shard boundaries, per-shard regions, and the pixel-owner map.

        ``timestep`` selects a time-varying renderer's encoding; like
        the pool-level planner, the shard profile's validity key stays
        ``(axis, perm)`` so cross-shard feedback predicts across
        timestep switches too.
        """
        fact = self.renderer.factorize_view(view)
        n_v, _ = fact.intermediate_shape
        rle = self.renderer.rle_for(fact, timestep=timestep)
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
        key = (fact.axis, fact.perm)
        if self.profile is not None and self.profile_key != key:
            # Axis switch: the profile is in the old intermediate-image
            # coordinates and predicts nothing — fall back to a uniform
            # re-shard, exactly like the pool-level invalidation.
            self.profile = None
            self.metrics.counter("shard/reshard_invalidations").inc()
        bounds = self.partition(v_lo, v_hi)
        if (
            self._last_bounds is not None
            and self._last_key == key
            and len(self._last_bounds) == len(bounds)
        ):
            self.metrics.histogram("shard/boundary_drift").observe(
                float(np.abs(bounds - self._last_bounds).mean())
            )
        self._last_bounds, self._last_key = bounds, key
        shard_owner = line_ownership(bounds, n_v)
        in_band = np.zeros(n_v, dtype=bool)
        in_band[v_lo:v_hi] = True
        regions = []
        for s in range(self.n_shards):
            owned = shard_owner == s
            # Ghost line: a pixel sourced from line v0 bilinearly samples
            # (v0, v0 + 1), so the shard owning v0 must also *composite*
            # v0 + 1 even when the next shard owns it.
            need = owned.copy()
            need[1:] |= owned[:-1]
            need &= in_band
            idx = np.flatnonzero(need)
            if len(idx):
                comp_lo, comp_hi = int(idx[0]), int(idx[-1]) + 1
            else:
                comp_lo = comp_hi = int(v_lo)
            regions.append(FrameRegion(comp_lo, comp_hi, owned))
        return {
            "fact": fact,
            "v_lo": int(v_lo),
            "v_hi": int(v_hi),
            "bounds": bounds,
            "shard_owner": shard_owner,
            "regions": regions,
            "tile_map": TileOwnershipMap(fact, shard_owner),
            "key": key,
        }

    def partition(self, v_lo: int, v_hi: int) -> np.ndarray:
        """Shard boundaries for the next frame (uniform until profiled)."""
        prof = self.profile
        if prof is None or prof.total <= 0:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_shards)
        prof = prof.trim_empty()
        if len(prof.costs) < self.n_shards:
            return uniform_contiguous_partition(v_lo, v_hi, self.n_shards)
        bounds = contiguous_partition(prof.costs, self.n_shards, v_lo=prof.v_lo)
        bounds = np.clip(bounds, v_lo, v_hi)
        bounds[0], bounds[-1] = v_lo, v_hi
        for p in range(1, self.n_shards + 1):
            bounds[p] = max(bounds[p], bounds[p - 1])
        return bounds

    def install(self, v_lo: int, costs: np.ndarray, key) -> None:
        """Adopt a stitched cross-shard profile; re-shards next frame."""
        self.profile = ScanlineProfile(v_lo, costs)
        self.profile_key = key
        self.metrics.counter("shard/reshards").inc()


class ShardedRenderService:
    """N pools, one frame: scatter shard regions, gather, merge.

    Duck-types the pool API (``render`` / ``render_animation`` /
    ``close`` / ``metrics`` / ``fault_counters`` /
    ``export_chrome_trace``), so the facade, the CLI and the render
    server drive a shard fleet exactly as they drive one pool.

    Fault isolation falls out of the pool supervision: a worker death
    inside shard ``s`` is recovered (or degraded) entirely inside pool
    ``s`` — sibling pools never restart, and the merged frame stays
    bit-identical because both the retry path and the serial-degrade
    path reproduce the shard's exact owned pixels.
    """

    def __init__(
        self,
        renderer,
        config: PoolConfig | ShardConfig | None = None,
        **overrides,
    ) -> None:
        self._closed = False
        self._pools: list = []
        self._fbs: list[ShardFramebuffer] = []
        if isinstance(config, ShardConfig):
            if overrides:
                raise TypeError("pass either a ShardConfig or keyword overrides")
            scfg = config
        else:
            cfg = config if config is not None else PoolConfig()
            if overrides:
                cfg = cfg.replace(**overrides)
            scfg = ShardConfig(shards=cfg.shards, pool=cfg.replace(shards=1))
        self.renderer = renderer
        self.shard_config = scfg
        self.n_shards = scfg.shards
        self.config = scfg.pool.replace(shards=scfg.shards)
        self.metrics = MetricsRegistry()
        self.metrics.gauge("shard/shards").set(self.n_shards)
        self._planner = ShardPlanner(renderer, self.n_shards, self.metrics)
        self._frame = 0
        # RenderBackend submit/result bookkeeping: queued specs render
        # lazily, in id order, when result() first needs them.
        self._next_submit = 0
        self._queued: dict[int, tuple[np.ndarray, int | None]] = {}
        self._ready: dict[int, MPRenderResult] = {}

        self.trace = any(
            scfg.pool_config(s).trace for s in range(self.n_shards)
        )
        # The service's trace epoch predates every pool's, so rebasing a
        # pool span onto the service timebase can never go negative.
        self._trace_epoch = time.perf_counter()
        self.timelines: list[FrameTimeline] = []
        self._rec: SpanRecorder | None = None
        self._merge_reader: RingReader | None = None

        delays = _shard_delays_from_env()
        _, final_cap = _capacity_shapes(renderer.shape)
        try:
            for s in range(self.n_shards):
                pcfg = scfg.pool_config(s)
                self._pools.append(self._open_pool(pcfg, delays.get(s)))
                self._fbs.append(
                    ShardFramebuffer(
                        final_cap,
                        backing="shm" if pcfg.backend == "mp" else "array",
                    )
                )
        except BaseException:
            self.close()
            raise
        # Global trace track layout: shard s's workers + supervisor live
        # at [offset(s), offset(s) + n_procs], the merge track after all.
        self._pid_offset = []
        off = 0
        for pool in self._pools:
            self._pid_offset.append(off)
            off += pool.n_procs + 1
        self.n_procs = sum(p.n_procs for p in self._pools)
        if self.trace:
            self._rec = SpanRecorder.in_memory(epoch=self._trace_epoch)
            self._merge_reader = RingReader(
                self._rec.cursor, self._rec.records, pid=off
            )

    def _open_pool(self, cfg: PoolConfig, delay: tuple[int, float] | None):
        """Construct one shard's pool, optionally with an injected delay.

        The mp workers snapshot ``_TEST_ROW_DELAY`` at fork, so setting
        it only around construction scopes the delay to this one shard.
        Thread pools read the knob live and would leak it to siblings,
        so the per-shard delay is mp-only.
        """
        kind = ThreadRenderPool if cfg.backend == "thread" else MPRenderPool
        if delay is None or cfg.backend != "mp":
            return kind(self.renderer, config=cfg)
        saved = _mpb._TEST_ROW_DELAY
        _mpb._TEST_ROW_DELAY = delay
        try:
            return kind(self.renderer, config=cfg)
        finally:
            _mpb._TEST_ROW_DELAY = saved

    @property
    def capabilities(self) -> BackendCapabilities:
        """What the fleet can do (the :class:`RenderBackend` struct)."""
        return BackendCapabilities(
            trace=self.trace,
            steal=self.config.stealing and self.config.n_procs > 1,
            profile=self.config.profile_period > 0,
            shard=self.n_shards > 1,
        )

    def render(self, view: np.ndarray,
               timestep: int | None = None) -> MPRenderResult:
        """Render one frame across all shards and merge it."""
        return self._render_one(np.asarray(view, dtype=np.float64),
                                timestep=timestep)

    def submit(self, view: np.ndarray, region=None,
               timestep: int | None = None) -> int:
        """Queue one frame; returns its frame id (RenderBackend form).

        The service assigns each pool its own shard region, so a
        caller-supplied ``region`` is rejected.  Queued frames render
        *lazily and in id order* when :meth:`result` first needs them:
        the per-frame gather is what lets the service stitch a
        cross-shard profile and re-shard before the next frame, so
        out-of-order rendering would change the feedback sequence (and
        only that — pixels are partition-independent either way).
        """
        if region is not None:
            raise ValueError(
                "ShardedRenderService assigns shard regions itself; "
                "submit() does not accept a region"
            )
        frame_id = self._next_submit
        self._next_submit += 1
        self._queued[frame_id] = (
            np.asarray(view, dtype=np.float64), timestep
        )
        return frame_id

    def submit_batch(self, frame_specs, regions=None) -> list[int]:
        """Queue a batch of views / FrameSpecs; returns their frame ids."""
        specs = as_frame_specs(frame_specs)
        if regions is None:
            regions = [None] * len(specs)
        return [
            self.submit(s.view, s.region or r, timestep=s.timestep)
            for s, r in zip(specs, regions)
        ]

    def result(self, frame_id: int) -> MPRenderResult:
        """Render every queued frame up to ``frame_id`` (in id order)
        and return ``frame_id``'s merged result."""
        if frame_id in self._ready:
            return self._ready.pop(frame_id)
        if frame_id not in self._queued:
            raise KeyError(f"unknown frame {frame_id}")
        for fid in sorted(f for f in self._queued if f <= frame_id):
            view, timestep = self._queued.pop(fid)
            self._ready[fid] = self._render_one(view, timestep=timestep)
        return self._ready.pop(frame_id)

    def render_animation(self, views) -> list[MPRenderResult]:
        """Render a view sequence in lockstep across the shard fleet.

        Goes through the :class:`RenderBackend` submit/result pair;
        frames still render one at a time (see :meth:`submit`) so the
        shard-level feedback loop is preserved.
        """
        return [self.result(f) for f in self.submit_batch(views)]

    def _render_one(self, view: np.ndarray,
                    timestep: int | None = None) -> MPRenderResult:
        frame = self._frame
        self._frame += 1
        splan = self._planner.plan(view, timestep=timestep)
        # Scatter: every pool gets the same view, restricted to its
        # shard's region; pools run their workers concurrently.
        handles = [
            pool.submit(view, region=splan["regions"][s], timestep=timestep)
            for s, pool in enumerate(self._pools)
        ]
        results = [
            pool.result(h) for pool, h in zip(self._pools, handles)
        ]
        t0 = time.perf_counter()
        merged = self._merge(frame, splan, results)
        self.metrics.histogram("shard/merge_s").observe(time.perf_counter() - t0)
        self._stitch_profile(splan, results)
        if self.trace:
            self._collect_timeline(frame, results)
        spread = merged.busy_spread
        if spread is not None:
            self.metrics.histogram("shard/busy_spread").observe(spread)
        return merged

    def _merge(self, frame: int, splan: dict, results) -> MPRenderResult:
        """Gather: merge-tree the finals, row-gather the intermediates."""
        fact = splan["fact"]
        n_v, n_u = fact.intermediate_shape
        own = splan["shard_owner"]
        inter = IntermediateImage((n_v, n_u))
        for s, r in enumerate(results):
            rows = own == s
            inter.color[rows] = r.intermediate.color[rows]
            inter.opacity[rows] = r.intermediate.opacity[rows]
        t0 = self._rec.now() if self._rec is not None else 0.0
        for s, r in enumerate(results):
            self._fbs[s].load(r.final)
        final, merges = merge_framebuffers(
            self._fbs, splan["tile_map"], fact.final_shape
        )
        if self._rec is not None:
            self._rec.span(frame, "merge", t0, self._rec.now())
        self.metrics.counter("shard/merges").inc(merges)
        busy = np.array(
            [
                float(r.busy_s.sum()) if r.busy_s is not None else 0.0
                for r in results
            ]
        )
        return MPRenderResult(
            final=final,
            intermediate=inter,
            fact=fact,
            n_procs=self.n_procs,
            boundaries=splan["bounds"],
            profiled=all(r.profiled for r in results),
            busy_s=busy,
            steals=sum(r.steals for r in results),
            steal_rows=sum(r.steal_rows for r in results),
            retries=max(r.retries for r in results),
            degraded=any(r.degraded for r in results),
        )

    def _stitch_profile(self, splan: dict, results) -> None:
        """Assemble one cross-shard cost profile from a profiled frame.

        Each pool profiled per-scanline *op counts* only for scanlines
        inside its own composite band; stitching by shard ownership
        covers the global band exactly once.  The stitched slice of each
        shard is then calibrated into seconds by the shard's measured
        busy time (``busy_s / op_total`` — the shard's observed
        seconds-per-op rate).  Op counts alone are content-derived and
        identical no matter which pool composites a row, so they can
        never see *interference* — a shard slowed by a noisy neighbor,
        or by the ``REPRO_SHARD_ROW_DELAY`` chaos knob.  The busy
        calibration is what turns the profile into a prediction of
        wall-clock cost per shard, letting the next re-shard shrink a
        slow shard's band (section 4.2's measure-then-repartition loop,
        applied across pools).  Requires *every* owning shard to have
        profiled this frame — a degraded shard has no costs, so that
        frame simply doesn't feed back.
        """
        v_lo, v_hi = splan["v_lo"], splan["v_hi"]
        if v_hi <= v_lo:
            return
        own = splan["shard_owner"][v_lo:v_hi]
        full = np.zeros(v_hi - v_lo, dtype=np.float64)
        for s, r in enumerate(results):
            mask = own == s
            if not mask.any():
                continue  # shard owns only empty margins this frame
            if not r.profiled or r.degraded or r.costs is None:
                return
            idx = np.flatnonzero(mask) + v_lo
            rel = idx - r.costs_v_lo
            inside = (rel >= 0) & (rel < len(r.costs))
            vals = r.costs[rel[inside]].astype(np.float64)
            ops = vals.sum()
            if ops > 0 and r.busy_s is not None:
                busy = float(np.asarray(r.busy_s).sum())
                if busy > 0:
                    vals = vals * (busy / ops)
            full[idx[inside] - v_lo] = vals
        self._planner.install(v_lo, full, splan["key"])

    # -- observability -------------------------------------------------------

    def _collect_timeline(self, frame: int, results) -> None:
        """One service-level timeline: pool tracks re-tagged, merge track.

        Pool spans are rebased from the pool's epoch to the service's
        (the offset is the pool's construction delay, a nonnegative
        constant, so per-track ordering is preserved) and worker ids are
        shifted onto the global track layout.
        """
        tl = FrameTimeline(frame)
        for s, r in enumerate(results):
            if r.timeline is None:
                continue
            shift = self._pools[s]._trace_epoch - self._trace_epoch
            off = self._pid_offset[s]
            for sp in r.timeline.spans:
                tl.spans.append(
                    replace(sp, pid=off + sp.pid, t0=sp.t0 + shift, t1=sp.t1 + shift)
                )
            for c in r.timeline.counters:
                tl.counters.append(replace(c, pid=off + c.pid))
        if self._merge_reader is not None:
            for rec in self._merge_reader.drain():
                tl.add(rec)
        tl.spans.sort(key=lambda sp: (sp.pid, sp.t0))
        self.timelines.append(tl)

    def fault_counters(self) -> dict[str, int]:
        """Recovery counters summed across the fleet (zeros when healthy)."""
        total: dict[str, int] = {}
        for pool in self._pools:
            for k, v in pool.fault_counters().items():
                total[k] = total.get(k, 0) + v
        return total

    def shard_fault_counters(self) -> list[dict[str, int]]:
        """Per-shard recovery counters (fault-isolation observability)."""
        return [pool.fault_counters() for pool in self._pools]

    def export_chrome_trace(self, path: str, metadata: dict | None = None) -> None:
        """Write the fleet's frames as one Chrome trace JSON.

        Tracks: shard ``s``'s workers and supervisor, for each shard in
        order, then the service's own ``merge`` track last.
        """
        if not self.trace:
            raise RuntimeError("service was created without trace=True")
        meta = {
            "backend": "shard",
            "shards": self.n_shards,
            "n_procs": self.n_procs,
            "kernel": self.config.kernel,
            "profile_period": self.config.profile_period,
            "stealing": self.config.stealing,
            "frames": len(self.timelines),
            "shard/merges": int(self.metrics.counter("shard/merges").value),
            "shard/reshards": int(self.metrics.counter("shard/reshards").value),
        }
        meta.update(self.fault_counters())
        if metadata:
            meta.update(metadata)
        _export_chrome_trace(path, self.timelines, metadata=meta)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Close every pool and release the shard framebuffers."""
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            try:
                pool.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        for fb in self._fbs:
            try:
                fb.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass

    def __enter__(self) -> "ShardedRenderService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort if close() was forgotten
        try:
            self.close()
        except Exception:
            pass
