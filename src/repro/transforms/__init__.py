"""View matrices and the shear-warp factorization."""

from .factorization import PERMUTATIONS, ShearWarpFactorization, factorize
from .matrices import (
    apply_affine,
    apply_direction,
    identity,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    translate,
    view_matrix,
)

__all__ = [
    "PERMUTATIONS",
    "ShearWarpFactorization",
    "factorize",
    "apply_affine",
    "apply_direction",
    "identity",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "scale",
    "translate",
    "view_matrix",
]
