"""Shear-warp factorization of a parallel-projection viewing transform.

Following Lacroute's factorization, the object-to-view matrix is
decomposed as::

    M_view = M_warp2D . M_shear . P

where ``P`` permutes the object axes so that the *principal viewing
axis* (the object axis most nearly parallel to the view direction)
becomes the slice axis ``k``; ``M_shear`` shears each volume slice so
that all viewing rays become perpendicular to the slices (and
translates so the sheared footprint is non-negative); and ``M_warp2D``
is the residual 2-D affine warp that takes the *intermediate
(composited) image* to the final image.

Key guarantees (tested):

* the shear coefficients satisfy ``|s_i|, |s_j| <= 1`` because ``k`` is
  the principal axis, so a voxel scanline touches at most two
  intermediate-image scanlines;
* the final-image position of a sheared-space point is independent of
  its slice index ``k`` (rays collapse to points), which is what makes
  the 2-D warp well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .matrices import apply_direction

__all__ = ["ShearWarpFactorization", "factorize", "PERMUTATIONS"]

#: For each principal object axis c, the object-axis indices that play the
#: roles of (i, j, k) in permuted "standard object space".  Cyclic
#: permutations keep the coordinate system right-handed.
PERMUTATIONS: dict[int, tuple[int, int, int]] = {
    0: (1, 2, 0),  # principal x: (i, j, k) = (y, z, x)
    1: (2, 0, 1),  # principal y: (i, j, k) = (z, x, y)
    2: (0, 1, 2),  # principal z: (i, j, k) = (x, y, z)
}


@dataclass(frozen=True)
class ShearWarpFactorization:
    """The result of factorizing a viewing matrix for a given volume.

    Attributes
    ----------
    view:
        The original 4x4 object-to-view matrix.
    vol_shape:
        Volume extents ``(nx, ny, nz)`` in object space.
    axis:
        Principal object axis (0=x, 1=y, 2=z).
    perm:
        Object-axis indices assigned to the permuted axes ``(i, j, k)``.
    shape_ijk:
        Volume extents in permuted order ``(ni, nj, nk)``.
    shear_i, shear_j:
        Shear coefficients; sheared coords are ``u = i - s_i*k + t_i``.
    trans_i, trans_j:
        Translations making sheared coordinates non-negative.
    k_front_to_back:
        Slice indices in front-to-back order (nearest the viewer first).
    intermediate_shape:
        ``(n_v, n_u)`` — rows are intermediate-image *scanlines* (the
        unit of parallel partitioning in the paper).
    warp:
        3x3 homogeneous 2-D affine mapping ``(u, v, 1)`` to final-image
        ``(x, y)`` with the final bounding box anchored at the origin.
    final_shape:
        ``(ny, nx)`` of the final image.
    """

    view: np.ndarray
    vol_shape: tuple[int, int, int]
    axis: int
    perm: tuple[int, int, int]
    shape_ijk: tuple[int, int, int]
    shear_i: float
    shear_j: float
    trans_i: float
    trans_j: float
    k_front_to_back: np.ndarray
    intermediate_shape: tuple[int, int]
    warp: np.ndarray
    final_shape: tuple[int, int]
    _offsets: np.ndarray = field(repr=False, default=None)

    # -- sheared-space geometry -------------------------------------------

    def slice_offsets(self, k: int | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(u_off, v_off)`` for slice(s) ``k``.

        Voxel ``(i, j)`` of slice ``k`` lands at intermediate-image
        coordinates ``(i + u_off, j + v_off)``; both offsets are
        non-negative and fractional in general.
        """
        k = np.asarray(k, dtype=np.float64)
        return self.trans_i - self.shear_i * k, self.trans_j - self.shear_j * k

    def permute_point(self, ijk: np.ndarray) -> np.ndarray:
        """Map permuted-space points ``(i, j, k)`` back to object space."""
        ijk = np.atleast_2d(np.asarray(ijk, dtype=np.float64))
        out = np.empty_like(ijk)
        out[:, self.perm[0]] = ijk[:, 0]
        out[:, self.perm[1]] = ijk[:, 1]
        out[:, self.perm[2]] = ijk[:, 2]
        return out

    def project_sheared(self, uvk: np.ndarray) -> np.ndarray:
        """Project sheared-space points ``(u, v, k)`` to final-image (x, y).

        Used only for verification: the result must not depend on ``k``.
        """
        uvk = np.atleast_2d(np.asarray(uvk, dtype=np.float64))
        u, v, k = uvk[:, 0], uvk[:, 1], uvk[:, 2]
        u_off, v_off = self.slice_offsets(k)
        ijk = np.stack([u - u_off, v - v_off, k], axis=1)
        obj = self.permute_point(ijk)
        view = obj @ self.view[:3, :3].T + self.view[:3, 3]
        xy = view[:, :2] + self._final_origin
        return xy

    @property
    def _final_origin(self) -> np.ndarray:
        return self.warp[:2, 2] - self._warp_linear_offset

    @property
    def _warp_linear_offset(self) -> np.ndarray:
        # Final (x, y) of intermediate (0, 0) under the *unshifted* warp.
        ijk = self.permute_point([[-self.trans_i, -self.trans_j, 0.0]])[0]
        return ijk @ self.view[:3, :3].T[:, :2] + self.view[:2, 3]

    def warp_points(self, uv: np.ndarray) -> np.ndarray:
        """Apply the 2-D warp to ``(N, 2)`` intermediate-image coords."""
        uv = np.atleast_2d(np.asarray(uv, dtype=np.float64))
        return uv @ self.warp[:2, :2].T + self.warp[:2, 2]

    def warp_inverse_points(self, xy: np.ndarray) -> np.ndarray:
        """Map final-image coords back to intermediate-image coords."""
        xy = np.atleast_2d(np.asarray(xy, dtype=np.float64))
        inv = np.linalg.inv(self.warp[:2, :2])
        return (xy - self.warp[:2, 2]) @ inv.T


def factorize(view: np.ndarray, vol_shape: tuple[int, int, int]) -> ShearWarpFactorization:
    """Factorize ``view`` (4x4 object-to-view) for a volume of ``vol_shape``.

    Parameters
    ----------
    view:
        Object-to-view matrix; the viewer looks down view-space ``+z``
        and the final image is the view-space ``(x, y)`` plane.
    vol_shape:
        ``(nx, ny, nz)`` voxel extents.

    Raises
    ------
    ValueError
        If the viewing direction is degenerate (zero direction vector).
    """
    view = np.asarray(view, dtype=np.float64)
    if view.shape != (4, 4):
        raise ValueError(f"view must be 4x4, got {view.shape}")
    inv = np.linalg.inv(view)
    d_obj = apply_direction(inv, (0.0, 0.0, 1.0))
    norm = np.linalg.norm(d_obj)
    if norm < 1e-12:
        raise ValueError("degenerate viewing direction")
    d_obj = d_obj / norm

    axis = int(np.argmax(np.abs(d_obj)))
    perm = PERMUTATIONS[axis]
    d = d_obj[list(perm)]
    ni, nj, nk = (vol_shape[perm[0]], vol_shape[perm[1]], vol_shape[perm[2]])

    shear_i = float(d[0] / d[2])
    shear_j = float(d[1] / d[2])
    trans_i = max(0.0, shear_i * (nk - 1))
    trans_j = max(0.0, shear_j * (nk - 1))

    if d[2] > 0:
        k_order = np.arange(nk)
    else:
        k_order = np.arange(nk - 1, -1, -1)

    n_u = int(np.ceil((ni - 1) + abs(shear_i) * (nk - 1))) + 2
    n_v = int(np.ceil((nj - 1) + abs(shear_j) * (nk - 1))) + 2
    intermediate_shape = (n_v, n_u)

    # Residual 2-D warp: evaluate the sheared->final map at slice k = 0.
    def _proj(u: float, v: float) -> np.ndarray:
        ijk = np.zeros(3)
        ijk[0], ijk[1], ijk[2] = u - trans_i, v - trans_j, 0.0
        obj = np.zeros(3)
        obj[perm[0]], obj[perm[1]], obj[perm[2]] = ijk
        p = view[:3, :3] @ obj + view[:3, 3]
        return p[:2]

    p00 = _proj(0.0, 0.0)
    p10 = _proj(1.0, 0.0)
    p01 = _proj(0.0, 1.0)
    warp = np.eye(3)
    warp[:2, 0] = p10 - p00
    warp[:2, 1] = p01 - p00
    warp[:2, 2] = p00

    # Anchor the final image bounding box at the origin.
    corners = np.array(
        [[0, 0], [n_u - 1, 0], [0, n_v - 1], [n_u - 1, n_v - 1]], dtype=np.float64
    )
    mapped = corners @ warp[:2, :2].T + warp[:2, 2]
    lo = mapped.min(axis=0)
    hi = mapped.max(axis=0)
    warp = warp.copy()
    warp[:2, 2] -= lo
    final_shape = (int(np.ceil(hi[1] - lo[1])) + 2, int(np.ceil(hi[0] - lo[0])) + 2)

    return ShearWarpFactorization(
        view=view,
        vol_shape=tuple(vol_shape),
        axis=axis,
        perm=perm,
        shape_ijk=(ni, nj, nk),
        shear_i=shear_i,
        shear_j=shear_j,
        trans_i=trans_i,
        trans_j=trans_j,
        k_front_to_back=k_order,
        intermediate_shape=intermediate_shape,
        warp=warp,
        final_shape=final_shape,
    )
