"""Homogeneous 4x4 matrix helpers for view setup.

The renderer uses parallel (orthographic) projection, as in the paper.
Object space is the volume's voxel index space ``(x, y, z)`` with ``x``
the fastest-varying storage axis.  View space has the viewer looking
down the ``+z`` axis; the final image plane is the view-space ``(x, y)``
plane.

All matrices act on column vectors: ``p_view = M @ p_obj``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "identity",
    "translate",
    "scale",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "view_matrix",
    "apply_affine",
    "apply_direction",
]


def identity() -> np.ndarray:
    """Return the 4x4 identity matrix."""
    return np.eye(4, dtype=np.float64)


def translate(tx: float, ty: float, tz: float) -> np.ndarray:
    """Return a 4x4 translation matrix."""
    m = identity()
    m[:3, 3] = (tx, ty, tz)
    return m


def scale(sx: float, sy: float, sz: float) -> np.ndarray:
    """Return a 4x4 (anisotropic) scaling matrix."""
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = sx, sy, sz
    return m


def _rot(axis: int, degrees: float) -> np.ndarray:
    t = np.deg2rad(degrees)
    c, s = np.cos(t), np.sin(t)
    m = identity()
    a, b = [(1, 2), (2, 0), (0, 1)][axis]
    m[a, a], m[a, b] = c, -s
    m[b, a], m[b, b] = s, c
    return m


def rotate_x(degrees: float) -> np.ndarray:
    """Rotation about the object x axis."""
    return _rot(0, degrees)


def rotate_y(degrees: float) -> np.ndarray:
    """Rotation about the object y axis."""
    return _rot(1, degrees)


def rotate_z(degrees: float) -> np.ndarray:
    """Rotation about the object z axis."""
    return _rot(2, degrees)


def view_matrix(
    rot_x: float = 0.0,
    rot_y: float = 0.0,
    rot_z: float = 0.0,
    shape: tuple[int, int, int] | None = None,
) -> np.ndarray:
    """Build an object-to-view matrix from Euler angles (degrees).

    Rotations are applied about the volume centre when ``shape`` (the
    volume's ``(nx, ny, nz)`` extents) is given, in the order
    z, then y, then x — matching the rotation sequences used for the
    paper's animation experiments (successive frames differ by a few
    degrees about one axis).
    """
    r = rotate_x(rot_x) @ rotate_y(rot_y) @ rotate_z(rot_z)
    if shape is None:
        return r
    cx, cy, cz = [(n - 1) / 2.0 for n in shape]
    return translate(cx, cy, cz) @ r @ translate(-cx, -cy, -cz)


def apply_affine(m: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to an ``(N, 3)`` array of points."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    out = points @ m[:3, :3].T + m[:3, 3]
    return out


def apply_direction(m: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to a direction vector (w = 0)."""
    return m[:3, :3] @ np.asarray(d, dtype=np.float64)
