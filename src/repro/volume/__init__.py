"""Volume classification and run-length encoding."""

from .classify import (
    OPACITY_EPSILON,
    TransferFunction,
    binary_transfer_function,
    ct_transfer_function,
    mri_transfer_function,
)
from .rle import BYTES_PER_RUN, BYTES_PER_VOXEL, RLEVolume, encode, encode_all_axes
from .volume import ClassifiedVolume

__all__ = [
    "OPACITY_EPSILON",
    "TransferFunction",
    "binary_transfer_function",
    "ct_transfer_function",
    "mri_transfer_function",
    "BYTES_PER_RUN",
    "BYTES_PER_VOXEL",
    "RLEVolume",
    "encode",
    "encode_all_axes",
    "ClassifiedVolume",
]
