"""Voxel classification: scalar value -> (opacity, color).

The shear-warp pipeline classifies the volume once (per transfer
function), thresholds away low-opacity voxels, and run-length-encodes
the result.  As in VolPack, classification happens *before* rendering,
so the renderer streams over pre-shaded (opacity, color) voxel records.

Colors are scalar luminances: the paper's performance study is
insensitive to the number of color channels, and one channel keeps the
voxel record at two 4-byte words (opacity + luminance), matching the
compact records the memory-system analysis assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TransferFunction",
    "mri_transfer_function",
    "ct_transfer_function",
    "binary_transfer_function",
    "OPACITY_EPSILON",
]

#: Voxels classified below this opacity are treated as fully transparent
#: and dropped from the run-length encoding (VolPack's min-opacity cull).
OPACITY_EPSILON = 0.05


@dataclass(frozen=True)
class TransferFunction:
    """Piecewise-linear opacity ramp plus a luminance shading ramp.

    Attributes
    ----------
    opacity_points:
        ``(value, opacity)`` knots, values in [0, 255], strictly
        increasing in value; opacity is linearly interpolated between
        knots.
    ambient, diffuse:
        Luminance = ``ambient + diffuse * value / 255`` — a cheap stand-in
        for VolPack's pre-shaded colors (shading cost is part of
        classification, outside the timed rendering loop, in both).
    """

    opacity_points: tuple[tuple[float, float], ...]
    ambient: float = 0.25
    diffuse: float = 0.75
    _values: np.ndarray = field(init=False, repr=False, default=None)
    _opacities: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        pts = np.asarray(self.opacity_points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
            raise ValueError("need at least two (value, opacity) knots")
        if np.any(np.diff(pts[:, 0]) <= 0):
            raise ValueError("knot values must be strictly increasing")
        if np.any((pts[:, 1] < 0) | (pts[:, 1] > 1)):
            raise ValueError("opacities must lie in [0, 1]")
        object.__setattr__(self, "_values", pts[:, 0])
        object.__setattr__(self, "_opacities", pts[:, 1])

    def opacity(self, values: np.ndarray) -> np.ndarray:
        """Map raw voxel values to opacities in [0, 1]."""
        v = np.asarray(values, dtype=np.float64)
        return np.interp(v, self._values, self._opacities)

    def color(self, values: np.ndarray) -> np.ndarray:
        """Map raw voxel values to luminances in [0, 1]."""
        v = np.asarray(values, dtype=np.float64)
        return np.clip(self.ambient + self.diffuse * v / 255.0, 0.0, 1.0)

    def classify(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(opacity, color)`` float32 arrays with the epsilon cull.

        Voxels with opacity below :data:`OPACITY_EPSILON` get exactly
        zero opacity (and zero color) so the RLE encoder can drop them.
        """
        a = self.opacity(values)
        c = self.color(values)
        cull = a < OPACITY_EPSILON
        a = np.where(cull, 0.0, a)
        c = np.where(cull, 0.0, c)
        return a.astype(np.float32), c.astype(np.float32)


def mri_transfer_function() -> TransferFunction:
    """Transfer function for the MRI brain phantoms.

    Keys on brain-tissue intensities (>~110); scalp and skull classify
    transparent, yielding the 70-95 % transparent-voxel fraction the
    paper reports for medical data.
    """
    return TransferFunction(
        opacity_points=((0, 0.0), (105, 0.0), (130, 0.25), (185, 0.8), (255, 0.95))
    )


def ct_transfer_function() -> TransferFunction:
    """Transfer function for the CT head phantoms (bone isolation)."""
    return TransferFunction(
        opacity_points=((0, 0.0), (150, 0.0), (195, 0.65), (255, 0.97))
    )


def binary_transfer_function(threshold: float = 128, opacity: float = 1.0) -> TransferFunction:
    """Hard-threshold TF: handy for geometric correctness tests."""
    t = float(threshold)
    return TransferFunction(
        opacity_points=((0, 0.0), (t - 0.5, 0.0), (t + 0.5, opacity), (255, opacity)),
        ambient=0.0,
        diffuse=1.0,
    )
