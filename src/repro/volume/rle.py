"""Run-length encoding of classified volumes (VolPack-style).

The shear-warp algorithm's serial speed comes from streaming over a
run-length-encoded volume in storage order.  As in Lacroute's renderer,
the volume is encoded **three times**, once per principal axis, so that
whatever the viewing direction, compositing traverses voxel scanlines
contiguously.

Encoding layout for one principal axis (permuted shape ``(nk, nj, ni)``,
``i`` fastest):

* ``run_lengths`` — one flat ``int32`` array of alternating run lengths
  per scanline, always starting with a (possibly zero-length)
  *transparent* run and alternating transparent/non-transparent;
* ``voxel_opacity`` / ``voxel_color`` — the non-transparent voxels'
  classified records, concatenated in traversal order;
* per-scanline index tables (``(nk, nj)``) giving each scanline's slice
  of both arrays.

These tables are exactly what the memory-system tracer needs to know
which bytes a compositing task touches, without re-walking the runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..transforms.factorization import PERMUTATIONS
from .volume import ClassifiedVolume

__all__ = [
    "RLEVolume",
    "SliceCache",
    "encode",
    "encode_all_axes",
    "BYTES_PER_VOXEL",
    "BYTES_PER_RUN",
    "DEFAULT_SLICE_CACHE_CAPACITY",
]

#: Bytes per encoded non-transparent voxel record (opacity + luminance,
#: two 4-byte words) — used by the address tracer.
BYTES_PER_VOXEL = 8
#: Bytes per run-length table entry.
BYTES_PER_RUN = 4

#: Default bound on cached decoded slices per encoding.  Sized to hold
#: every slice of the proxy-scaled paper volumes (nk <= ~100) so a frame
#: decodes each slice at most once, while keeping worst-case memory for a
#: 96-voxel proxy around 10 MB per axis.
DEFAULT_SLICE_CACHE_CAPACITY = 128


class SliceCache:
    """Bounded LRU of decoded slice planes for one :class:`RLEVolume`.

    Decoding a slice walks every run of ``nj`` scanlines in Python — by
    far the most expensive part of the vectorized compositing kernels —
    yet the decoded planes are pure functions of the (immutable)
    encoding.  Every consumer of one principal axis (the fast whole-frame
    path, the block kernel, each multiprocessing worker) re-reads the
    same ``nk`` planes every frame of an animation, so a small LRU turns
    all but the first frame's decodes into lookups.

    The cache stores the *padded* planes (one transparent border row and
    column on each side) because that is the form both vectorized kernels
    consume; the unpadded view is sliced out on demand.  Cached planes
    are read-only so a stray consumer cannot corrupt the shared state.

    Thread-safety: the threading backend's workers share one cache per
    encoding.  Entry lookups and recency updates were always safe under
    the GIL, but the ``hits``/``misses`` tallies are read-modify-write
    and lost updates under contention — they feed the ``cache_hits`` /
    ``cache_misses`` frame counters, so every operation now runs under
    one lock (the decode a miss triggers dwarfs the lock cost).
    """

    __slots__ = ("capacity", "hits", "misses", "_planes", "_lock")

    def __init__(self, capacity: int = DEFAULT_SLICE_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("slice cache capacity must be >= 1")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._planes: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._lock = threading.Lock()

    def __reduce__(self):
        # Locks don't pickle and cached planes are pure derived state:
        # an unpickled encoding starts with an empty cache of the same
        # capacity (mirrors the lazy rebuild in RLEVolume.slice_cache).
        return (SliceCache, (self.capacity,))

    def __len__(self) -> int:
        return len(self._planes)

    def get(self, k: int) -> tuple[np.ndarray, np.ndarray] | None:
        with self._lock:
            entry = self._planes.get(k)
            if entry is None:
                self.misses += 1
                return None
            self._planes.move_to_end(k)
            self.hits += 1
            return entry

    def put(self, k: int, planes: tuple[np.ndarray, np.ndarray]) -> None:
        with self._lock:
            self._planes[k] = planes
            self._planes.move_to_end(k)
            while len(self._planes) > self.capacity:
                self._planes.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached plane (hit/miss statistics are kept)."""
        with self._lock:
            self._planes.clear()


@dataclass(frozen=True)
class RLEVolume:
    """Run-length encoding of a classified volume for one principal axis."""

    axis: int
    shape_ijk: tuple[int, int, int]
    run_lengths: np.ndarray  # int32, flat
    run_start: np.ndarray  # int64 (nk, nj): first run index of scanline
    run_count: np.ndarray  # int32 (nk, nj): number of alternating runs
    voxel_opacity: np.ndarray  # float32, flat, traversal order
    voxel_color: np.ndarray  # float32, flat
    vox_start: np.ndarray  # int64 (nk, nj)
    vox_count: np.ndarray  # int32 (nk, nj)

    def __post_init__(self) -> None:
        # Per-encoding decoded-slice LRU (a non-field attribute so frozen
        # dataclass semantics — equality, repr, hashing — are unaffected).
        object.__setattr__(self, "_slice_cache", SliceCache())

    @property
    def slice_cache(self) -> SliceCache:
        """This encoding's decoded-slice LRU (created lazily after unpickling)."""
        cache = self.__dict__.get("_slice_cache")
        if cache is None:
            cache = SliceCache()
            object.__setattr__(self, "_slice_cache", cache)
        return cache

    def clear_slice_cache(self) -> None:
        """Invalidate the decoded-slice cache (e.g. on a principal-axis switch)."""
        self.slice_cache.clear()

    # -- basic geometry ----------------------------------------------------

    @property
    def ni(self) -> int:
        return self.shape_ijk[0]

    @property
    def nj(self) -> int:
        return self.shape_ijk[1]

    @property
    def nk(self) -> int:
        return self.shape_ijk[2]

    # -- decoding ------------------------------------------------------------

    def scanline_runs(self, k: int, j: int) -> np.ndarray:
        """Alternating run lengths of scanline ``(k, j)`` (starts transparent)."""
        s = self.run_start[k, j]
        return self.run_lengths[s : s + self.run_count[k, j]]

    def nontransparent_runs(self, k: int, j: int) -> list[tuple[int, int]]:
        """Non-transparent runs of scanline ``(k, j)`` as ``(start, length)``."""
        runs = self.scanline_runs(k, j)
        out = []
        pos = 0
        for idx, length in enumerate(runs):
            if idx % 2 == 1 and length > 0:
                out.append((pos, int(length)))
            pos += int(length)
        return out

    def decode_scanline(self, k: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(opacity, color)`` rows of length ``ni`` for scanline (k, j)."""
        opac = np.zeros(self.ni, dtype=np.float32)
        col = np.zeros(self.ni, dtype=np.float32)
        v = self.vox_start[k, j]
        pos = 0
        for idx, length in enumerate(self.scanline_runs(k, j)):
            length = int(length)
            if idx % 2 == 1 and length > 0:
                opac[pos : pos + length] = self.voxel_opacity[v : v + length]
                col[pos : pos + length] = self.voxel_color[v : v + length]
                v += length
            pos += length
        return opac, col

    def decode_slice(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(opacity, color)`` planes of shape ``(nj, ni)`` for slice k.

        Served from the decoded-slice LRU; the returned planes are
        read-only views shared with other callers — copy before mutating.
        """
        opac, col = self.decode_slice_padded(k)
        return opac[1:-1, 1:-1], col[1:-1, 1:-1]

    def decode_slice_padded(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Dense planes of slice ``k`` with one transparent pad row/column
        on each side — shape ``(nj + 2, ni + 2)``, the form the vectorized
        compositing kernels sample (out-of-volume reads land on the pad).

        Results come from a bounded per-encoding LRU
        (:attr:`slice_cache`) and are read-only.
        """
        k = int(k)
        cache = self.slice_cache
        cached = cache.get(k)
        if cached is not None:
            return cached
        opac = np.zeros((self.nj + 2, self.ni + 2), dtype=np.float32)
        col = np.zeros((self.nj + 2, self.ni + 2), dtype=np.float32)
        for j in range(self.nj):
            opac[j + 1, 1:-1], col[j + 1, 1:-1] = self.decode_scanline(k, j)
        opac.setflags(write=False)
        col.setflags(write=False)
        cache.put(k, (opac, col))
        return opac, col

    # -- size accounting ----------------------------------------------------

    @property
    def encoded_bytes(self) -> int:
        """Approximate memory footprint of the encoding."""
        return (
            self.run_lengths.size * BYTES_PER_RUN
            + self.voxel_opacity.size * BYTES_PER_VOXEL
            + self.run_start.size * 12  # per-scanline index tables
        )

    @property
    def dense_bytes(self) -> int:
        """Footprint of the equivalent dense classified volume."""
        return int(np.prod(self.shape_ijk)) * BYTES_PER_VOXEL

    @property
    def compression_ratio(self) -> float:
        """dense_bytes / encoded_bytes (paper: large for medical data)."""
        return self.dense_bytes / max(1, self.encoded_bytes)


def encode(vol: ClassifiedVolume, axis: int) -> RLEVolume:
    """Run-length encode ``vol`` for principal ``axis`` (0=x, 1=y, 2=z)."""
    if axis not in PERMUTATIONS:
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    perm = PERMUTATIONS[axis]
    # Permuted views, indexed [k][j][i].
    order = (perm[2], perm[1], perm[0])
    opac = np.ascontiguousarray(vol.opacity.transpose(order))
    col = np.ascontiguousarray(vol.color.transpose(order))
    nk, nj, ni = opac.shape

    rows = opac.reshape(nk * nj, ni)
    mask = rows > 0.0

    # Vectorized run detection across all scanlines at once.
    padded = np.zeros((nk * nj, ni + 2), dtype=np.int8)
    padded[:, 1:-1] = mask
    d = np.diff(padded, axis=1)
    srow, scol = np.nonzero(d == 1)  # run starts (inclusive)
    erow, ecol = np.nonzero(d == -1)  # run ends (exclusive)
    # starts/ends pair up in order within each row.
    runs_per_row = np.bincount(srow, minlength=nk * nj)

    run_lengths: list[np.ndarray] = []
    run_start = np.zeros(nk * nj, dtype=np.int64)
    run_count = np.zeros(nk * nj, dtype=np.int32)
    pos = 0
    ptr = 0
    for r in range(nk * nj):
        n = runs_per_row[r]
        run_start[r] = pos
        if n == 0:
            row_runs = np.array([ni], dtype=np.int32)
        else:
            s = scol[ptr : ptr + n]
            e = ecol[ptr : ptr + n]
            ptr += n
            row_runs = np.empty(2 * n + 1, dtype=np.int32)
            row_runs[0] = s[0]
            row_runs[1::2] = e - s
            row_runs[2:-1:2] = s[1:] - e[:-1]
            row_runs[-1] = ni - e[-1]
        run_lengths.append(row_runs)
        run_count[r] = len(row_runs)
        pos += len(row_runs)

    flat_runs = np.concatenate(run_lengths) if run_lengths else np.zeros(0, np.int32)
    vox_count = mask.sum(axis=1).astype(np.int32)
    vox_start = np.zeros(nk * nj, dtype=np.int64)
    np.cumsum(vox_count[:-1], out=vox_start[1:])

    return RLEVolume(
        axis=axis,
        shape_ijk=(ni, nj, nk),
        run_lengths=flat_runs,
        run_start=run_start.reshape(nk, nj),
        run_count=run_count.reshape(nk, nj),
        voxel_opacity=rows[mask].astype(np.float32),
        voxel_color=col.reshape(nk * nj, ni)[mask].astype(np.float32),
        vox_start=vox_start.reshape(nk, nj),
        vox_count=vox_count.reshape(nk, nj),
    )


def encode_all_axes(vol: ClassifiedVolume) -> dict[int, RLEVolume]:
    """Encode for all three principal axes (as VolPack precomputes)."""
    return {axis: encode(vol, axis) for axis in (0, 1, 2)}
