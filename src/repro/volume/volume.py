"""Classified volume container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classify import TransferFunction

__all__ = ["ClassifiedVolume"]


@dataclass(frozen=True)
class ClassifiedVolume:
    """A volume after classification, ready for run-length encoding.

    Attributes
    ----------
    raw:
        Original ``uint8`` voxel values, indexed ``[x, y, z]``.
    opacity, color:
        Classified ``float32`` fields of the same shape; opacity is
        exactly 0 for culled (transparent) voxels.
    """

    raw: np.ndarray
    opacity: np.ndarray
    color: np.ndarray

    def __post_init__(self) -> None:
        if self.raw.ndim != 3:
            raise ValueError("volume must be 3-D")
        if self.opacity.shape != self.raw.shape or self.color.shape != self.raw.shape:
            raise ValueError("classified fields must match the raw shape")

    @classmethod
    def classify(cls, raw: np.ndarray, tf: TransferFunction) -> "ClassifiedVolume":
        """Classify ``raw`` with transfer function ``tf``."""
        raw = np.asarray(raw)
        opacity, color = tf.classify(raw)
        return cls(raw=raw, opacity=opacity, color=color)

    @property
    def shape(self) -> tuple[int, int, int]:
        """Voxel extents ``(nx, ny, nz)``."""
        return self.raw.shape

    @property
    def transparent_fraction(self) -> float:
        """Fraction of voxels culled as transparent (paper: 0.70-0.95)."""
        return float(np.mean(self.opacity == 0.0))
