"""Shared test configuration: a deterministic, deadline-free hypothesis
profile (property tests drive real renders, whose duration varies with
host load)."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
