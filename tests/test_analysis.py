"""Tests for the analysis layer (breakdowns, working sets, harness)."""

import numpy as np
import pytest

from repro.analysis.breakdown import (
    combined_stats,
    format_table,
    miss_breakdown,
    time_breakdown_rows,
)
from repro.analysis.workingset import (
    SweepPoint,
    cache_size_sweep,
    line_size_sweep,
    working_set_size,
)
from repro.core import OldParallelShearWarp
from repro.datasets import mri_brain
from repro.memsim import ccnuma_sim
from repro.parallel import simulate_frame
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def frame():
    r = ShearWarpRenderer(mri_brain((24, 24, 18)), mri_transfer_function())
    return OldParallelShearWarp(r, n_procs=4).render_frame(
        r.view_from_angles(20, 30, 0)
    )


@pytest.fixture(scope="module")
def machine():
    return ccnuma_sim().scaled(1 / 256)


@pytest.fixture(scope="module")
def report(frame, machine):
    return simulate_frame(frame, machine)


class TestBreakdown:
    def test_combined_stats_adds_phases(self, report):
        c = combined_stats(report)
        assert c.total_refs() == (report.composite.stats.total_refs()
                                  + report.warp.stats.total_refs())
        assert c.total_misses() == (report.composite.stats.total_misses()
                                    + report.warp.stats.total_misses())

    def test_miss_breakdown_excludes_cold_by_default(self, report):
        mb = miss_breakdown(report)
        assert "cold" not in mb
        mb_all = miss_breakdown(report, include_cold=True)
        assert "cold" in mb_all

    def test_miss_breakdown_percent_range(self, report):
        for v in miss_breakdown(report, include_cold=True).values():
            assert 0.0 <= v <= 100.0

    def test_time_breakdown_rows(self, report):
        rows = time_breakdown_rows({4: report})
        assert len(rows) == 1
        p, busy, mem, sync = rows[0]
        assert p == 4
        assert busy + mem + sync == pytest.approx(100.0, abs=0.1)

    def test_format_table(self):
        out = format_table(["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in lines[2]


class TestWorkingSet:
    def test_cache_sweep_miss_rate_nonincreasing(self, frame, machine):
        pts = cache_size_sweep(frame, machine, sizes=(512, 4096, 65536))
        rates = [p.miss_rate for p in pts]
        # Larger caches can't have (much) higher miss rates.
        assert rates[-1] <= rates[0] + 0.1

    def test_line_sweep_shear_warp_likes_long_lines(self, frame, machine):
        """Figure 8: miss rate drops with line size (good spatial locality).

        Needs a cache small enough that the volume streams miss (the
        paper's regime); with everything cache-resident only false
        sharing would remain and the trend inverts.
        """
        from dataclasses import replace

        small = replace(machine, cache_bytes=1024)
        pts = line_size_sweep(frame, small, lines=(16, 32))
        # At unit-test volume sizes only the first doubling is free of
        # capacity artifacts; the full 16..256 B sweep is exercised at
        # experiment scale by benchmarks/fig08_old_linesize.py.
        assert pts[1].miss_rate < pts[0].miss_rate

    def test_working_set_knee(self):
        pts = [
            SweepPoint(1024, 20.0, {}),
            SweepPoint(4096, 18.0, {}),
            SweepPoint(16384, 2.0, {}),
            SweepPoint(65536, 1.5, {}),
        ]
        assert working_set_size(pts) == 16384

    def test_working_set_empty_raises(self):
        with pytest.raises(ValueError):
            working_set_size([])


class TestHarness:
    def test_get_renderer_cached(self):
        from repro.analysis.harness import get_renderer

        a = get_renderer("mri128", scale=0.1)
        b = get_renderer("mri128", scale=0.1)
        assert a is b

    def test_record_frames_cached_and_sized(self):
        from repro.analysis.harness import record_frames

        frames = record_frames("mri128", "old", 2, n_frames=2, scale=0.1)
        assert len(frames) == 2
        again = record_frames("mri128", "old", 2, n_frames=2, scale=0.1)
        assert frames is again

    def test_machine_for_scales_cache(self):
        from repro.analysis.harness import machine_for

        m = machine_for("dash", scale=0.125)
        assert m.cache_bytes < 256 * 1024

    def test_speedup_curve_shape(self):
        from repro.analysis.harness import speedup_curve

        pts = speedup_curve("mri128", "old", "challenge", procs=(1, 2), scale=0.1)
        assert [p.n_procs for p in pts] == [1, 2]
        assert pts[0].speedup == pytest.approx(1.0)
        assert pts[1].speedup > 0

    def test_speedup_respects_max_procs(self):
        from repro.analysis.harness import speedup_curve

        pts = speedup_curve("mri128", "old", "challenge", procs=(1, 64), scale=0.1)
        assert [p.n_procs for p in pts] == [1]

    def test_unknown_algorithm_rejected(self):
        from repro.analysis.harness import record_frames

        with pytest.raises(ValueError):
            record_frames("mri128", "fancy", 2, scale=0.1)


class TestCacheForRate:
    def test_smallest_size_reaching_target(self):
        from repro.analysis.workingset import SweepPoint, cache_for_rate

        pts = [SweepPoint(1024, 9.0, {}), SweepPoint(4096, 1.4, {}),
               SweepPoint(16384, 0.2, {})]
        assert cache_for_rate(pts, target_rate=1.5) == 4096

    def test_never_reached_returns_largest(self):
        from repro.analysis.workingset import SweepPoint, cache_for_rate

        pts = [SweepPoint(1024, 9.0, {}), SweepPoint(4096, 5.0, {})]
        assert cache_for_rate(pts, target_rate=1.5) == 4096

    def test_empty_raises(self):
        import pytest

        from repro.analysis.workingset import cache_for_rate

        with pytest.raises(ValueError):
            cache_for_rate([])
