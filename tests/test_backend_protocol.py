"""Tests for the :class:`RenderBackend` protocol (ROADMAP item 5).

Every execution model — mp pool, thread pool, shard fleet — must be
drivable through the same four-member seam (``submit_batch`` /
``result`` / ``close`` / ``capabilities``), and the legacy per-call
kwargs shim must steer callers to :class:`PoolConfig` with a
``DeprecationWarning`` without changing behavior.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.datasets import mri_brain
from repro.parallel import (
    BackendCapabilities,
    FrameSpec,
    MPRenderPool,
    PoolConfig,
    RenderBackend,
    ThreadRenderPool,
    as_frame_specs,
    render_parallel_mp,
    render_parallel_threads,
)
from repro.render import ShearWarpRenderer
from repro.shard import ShardedRenderService
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


def _views(renderer, n):
    return [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n)]


POOL_SHAPES = [
    pytest.param(dict(n_procs=2, backend="thread", profile_period=0),
                 id="thread"),
    pytest.param(dict(n_procs=2, profile_period=0), id="mp"),
    pytest.param(dict(n_procs=1, shards=2, profile_period=0), id="shard"),
]


class TestProtocolConformance:
    @pytest.mark.parametrize("overrides", POOL_SHAPES)
    def test_isinstance_and_capabilities(self, renderer, overrides):
        with repro.open_pool(renderer, **overrides) as pool:
            assert isinstance(pool, RenderBackend)
            caps = pool.capabilities
            assert isinstance(caps, BackendCapabilities)
            assert caps.trace is False and caps.profile is False
            assert caps.shard is (overrides.get("shards", 1) > 1)

    def test_capabilities_reflect_config(self, renderer):
        cfg = PoolConfig(n_procs=2, backend="thread", trace=True,
                         profile_period=3, stealing=True)
        with repro.open_pool(renderer, config=cfg) as pool:
            caps = pool.capabilities
            assert caps.trace and caps.profile and caps.steal
            assert not caps.shard

    @pytest.mark.parametrize("overrides", POOL_SHAPES)
    def test_submit_batch_result_roundtrip(self, renderer, overrides):
        views = _views(renderer, 3)
        specs = [FrameSpec(view=v) for v in views]
        with repro.open_pool(renderer, **overrides) as pool:
            ids = pool.submit_batch(specs)
            assert len(ids) == len(specs)
            # Out-of-order collection is part of the contract.
            results = {f: pool.result(f) for f in reversed(ids)}
        for view, fid in zip(views, ids):
            ref = renderer.render(view)
            assert np.array_equal(results[fid].final.color, ref.final.color)

    @pytest.mark.parametrize("overrides", POOL_SHAPES)
    def test_bare_views_accepted(self, renderer, overrides):
        """``as_frame_specs`` wraps naked views, so pre-protocol call
        sites keep working through the new seam."""
        views = _views(renderer, 2)
        with repro.open_pool(renderer, **overrides) as pool:
            results = [pool.result(f) for f in pool.submit_batch(views)]
        for view, res in zip(views, results):
            ref = renderer.render(view)
            assert np.array_equal(res.final.color, ref.final.color)

    def test_as_frame_specs_passthrough(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        spec = FrameSpec(view=view, timestep=2)
        wrapped = as_frame_specs([spec, view])
        assert wrapped[0] is spec
        assert isinstance(wrapped[1], FrameSpec)
        assert wrapped[1].timestep is None

    def test_shard_service_rejects_caller_regions(self, renderer):
        with repro.open_pool(renderer, n_procs=1, shards=2,
                             profile_period=0) as svc:
            assert isinstance(svc, ShardedRenderService)
            with pytest.raises(ValueError):
                svc.submit(renderer.view_from_angles(20, 30, 0),
                           region=object())


class TestLegacyKwargsDeprecation:
    """Per-call pool kwargs warn and steer to PoolConfig — but still work."""

    def test_mp_pool_ctor_kwargs_warn(self, renderer):
        with pytest.warns(DeprecationWarning, match="PoolConfig"):
            pool = MPRenderPool(renderer, n_procs=1, profile_period=0)
        with pool:
            pass

    def test_thread_pool_ctor_kwargs_warn(self, renderer):
        with pytest.warns(DeprecationWarning, match="PoolConfig"):
            pool = ThreadRenderPool(renderer, n_procs=1, profile_period=0)
        with pool:
            pass

    def test_render_parallel_fns_warn_and_match_config_path(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        with pytest.warns(DeprecationWarning, match="PoolConfig"):
            legacy = render_parallel_threads(renderer, view, n_procs=1)
        cfg = PoolConfig(n_procs=1, profile_period=0)
        modern = render_parallel_threads(renderer, view, config=cfg)
        assert np.array_equal(legacy.final.color, modern.final.color)

    def test_render_parallel_mp_warns(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        with pytest.warns(DeprecationWarning, match="PoolConfig"):
            res = render_parallel_mp(renderer, view, n_procs=1)
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)

    def test_config_path_stays_silent(self, renderer):
        cfg = PoolConfig(n_procs=1, backend="thread", profile_period=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with repro.open_pool(renderer, config=cfg) as pool:
                pool.result(pool.submit_batch(_views(renderer, 1))[0])

    def test_open_pool_overrides_stay_silent(self, renderer):
        """The facade's keyword overrides are the blessed path — they
        build a PoolConfig directly and must never warn."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with repro.open_pool(renderer, n_procs=1, backend="thread",
                                 profile_period=0) as pool:
                pool.result(pool.submit_batch(_views(renderer, 1))[0])
