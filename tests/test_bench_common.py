"""Tests for the shared benchmark infrastructure (``benchmarks/common.py``).

The benchmarks directory is not a package; ``common`` is loaded by file
path the same way the figure scripts find it at run time.
"""

import importlib.util
import os

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def common():
    spec = importlib.util.spec_from_file_location(
        "bench_common", os.path.join(ROOT, "benchmarks", "common.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestHostCPUInfo:
    def test_reports_consistent_counts(self, common):
        info = common.host_cpu_info()
        assert info["host_cpus"] >= 1
        assert info["host_cpus_available"] >= 1
        assert info["multi_core_host"] == (info["host_cpus_available"] > 1)

    def test_survives_missing_sched_getaffinity(self, common, monkeypatch):
        """macOS/Windows have no ``os.sched_getaffinity`` — the report
        must fall back to ``cpu_count`` instead of crashing."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        info = common.host_cpu_info()
        assert info["host_cpus_available"] == info["host_cpus"]

    def test_survives_failing_sched_getaffinity(self, common, monkeypatch):
        """Restricted sandboxes raise OSError from the call itself."""
        def boom(pid):
            raise OSError("not permitted")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        info = common.host_cpu_info()
        assert info["host_cpus_available"] == info["host_cpus"]
