"""Golden-equivalence tests: block kernel vs the per-scanline reference.

The block kernel's contract is *bit-identical* output (np.array_equal,
not allclose) and identical work counters for any contiguous scanline
band, so everything built on it — the fast whole-frame path, the
multiprocessing workers, block-kernel frame recording — inherits the
reference semantics.  Also covers the decoded-slice LRU and the
persistent multiprocessing pool.
"""

import numpy as np
import pytest

from repro.datasets import ct_head, mri_brain, solid_sphere
from repro.parallel.mp_backend import MPRenderPool, render_parallel_mp
from repro.render import (
    BlockRowCounters,
    FinalImage,
    IntermediateImage,
    ShearWarpRenderer,
    WorkCounters,
    composite_image_scanline,
    composite_scanline_block,
    warp_frame,
    warp_frame_fast,
)
from repro.volume import (
    binary_transfer_function,
    ct_transfer_function,
    mri_transfer_function,
)
from repro.volume.rle import DEFAULT_SLICE_CACHE_CAPACITY, SliceCache

COUNTER_FIELDS = (
    "loop_iters",
    "pixels_skipped",
    "run_entries",
    "resample_ops",
    "composite_ops",
)


@pytest.fixture(scope="module")
def mri_renderer():
    return ShearWarpRenderer(mri_brain((24, 24, 18)), mri_transfer_function())


@pytest.fixture(scope="module")
def ct_renderer():
    # The CT phantom's dense bone shells saturate pixels quickly — the
    # early-termination-heavy case.
    return ShearWarpRenderer(ct_head((22, 22, 22)), ct_transfer_function())


def reference_composite(rle, fact, v_lo=None, v_hi=None):
    img = IntermediateImage(fact.intermediate_shape)
    counters = WorkCounters()
    lo = 0 if v_lo is None else v_lo
    hi = img.n_v if v_hi is None else v_hi
    for v in range(lo, hi):
        composite_image_scanline(img, v, rle, fact, counters=counters)
    return img, counters


class TestGoldenEquivalence:
    @pytest.mark.parametrize("angles", [(20, 30, 0), (0, 0, 0), (-35, 55, 10)])
    def test_full_frame_mri(self, mri_renderer, angles):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(*angles))
        rle = mri_renderer.rle_for(fact)
        ref, ref_c = reference_composite(rle, fact)
        got = IntermediateImage(fact.intermediate_shape)
        got_c = WorkCounters()
        composite_scanline_block(got, 0, got.n_v, rle, fact, counters=got_c)
        assert np.array_equal(ref.opacity, got.opacity)
        assert np.array_equal(ref.color, got.color)
        for f in COUNTER_FIELDS:
            assert getattr(ref_c, f) == getattr(got_c, f), f

    @pytest.mark.parametrize("angles", [(35, -25, 5), (10, 80, 0)])
    def test_full_frame_ct_early_termination(self, ct_renderer, angles):
        fact = ct_renderer.factorize_view(ct_renderer.view_from_angles(*angles))
        rle = ct_renderer.rle_for(fact)
        ref, ref_c = reference_composite(rle, fact)
        got = IntermediateImage(fact.intermediate_shape)
        got_c = WorkCounters()
        composite_scanline_block(got, 0, got.n_v, rle, fact, counters=got_c)
        assert np.array_equal(ref.opacity, got.opacity)
        assert np.array_equal(ref.color, got.color)
        # Early termination must actually fire for this to test anything.
        assert ref_c.pixels_skipped > 0
        for f in COUNTER_FIELDS:
            assert getattr(ref_c, f) == getattr(got_c, f), f

    def test_opaque_sphere_terminates_rows(self):
        r = ShearWarpRenderer(solid_sphere((18, 18, 18)), binary_transfer_function(128))
        fact = r.factorize_view(r.view_from_angles(10, 20, 0))
        rle = r.rle_for(fact)
        ref, _ = reference_composite(rle, fact)
        got = IntermediateImage(fact.intermediate_shape)
        composite_scanline_block(got, 0, got.n_v, rle, fact)
        assert np.array_equal(ref.opacity, got.opacity)
        assert np.array_equal(ref.color, got.color)
        assert got.opacity.max() >= got.opaque_threshold  # rows did saturate

    def test_partition_subranges_compose(self, mri_renderer):
        """Compositing a frame as disjoint bands == compositing it whole."""
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        ref, _ = reference_composite(rle, fact)
        got = IntermediateImage(fact.intermediate_shape)
        n_v = got.n_v
        cuts = [0, n_v // 4 + 1, n_v // 2, n_v - 3, n_v]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            composite_scanline_block(got, lo, hi, rle, fact)
        assert np.array_equal(ref.opacity, got.opacity)
        assert np.array_equal(ref.color, got.color)

    def test_band_matches_scanline_loop_on_same_band(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(-15, 40, 10))
        rle = mri_renderer.rle_for(fact)
        n_v = fact.intermediate_shape[0]
        lo, hi = n_v // 3, 2 * n_v // 3
        ref, ref_c = reference_composite(rle, fact, lo, hi)
        got = IntermediateImage(fact.intermediate_shape)
        got_c = WorkCounters()
        composite_scanline_block(got, lo, hi, rle, fact, counters=got_c)
        assert np.array_equal(ref.opacity, got.opacity)
        for f in COUNTER_FIELDS:
            assert getattr(ref_c, f) == getattr(got_c, f), f

    def test_per_row_counters_match_reference(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        n_v = fact.intermediate_shape[0]
        rc = BlockRowCounters(0, n_v)
        img = IntermediateImage(fact.intermediate_shape)
        composite_scanline_block(img, 0, n_v, rle, fact, row_counters=rc)
        ref = IntermediateImage(fact.intermediate_shape)
        for v in range(n_v):
            c = WorkCounters()
            composite_image_scanline(ref, v, rle, fact, counters=c)
            row = rc.row(v)
            for f in COUNTER_FIELDS:
                assert getattr(c, f) == getattr(row, f), (v, f)

    def test_row_counters_range_must_match(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        img = IntermediateImage(fact.intermediate_shape)
        with pytest.raises(ValueError, match="row_counters"):
            composite_scanline_block(
                img, 0, img.n_v, rle, fact, row_counters=BlockRowCounters(1, img.n_v)
            )

    def test_empty_band_is_noop(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        img = IntermediateImage(fact.intermediate_shape)
        composite_scanline_block(img, 5, 5, rle, fact)
        assert not img.opacity.any()


class TestWarpFastBitExact:
    def test_fast_warp_matches_reference(self, mri_renderer):
        for angles in ((20, 30, 0), (-40, 15, 25)):
            fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(*angles))
            rle = mri_renderer.rle_for(fact)
            img = IntermediateImage(fact.intermediate_shape)
            composite_scanline_block(img, 0, img.n_v, rle, fact)
            ref = FinalImage(fact.final_shape)
            warp_frame(ref, img, fact)
            got = FinalImage(fact.final_shape)
            warp_frame_fast(got, img, fact)
            assert np.array_equal(ref.color, got.color)
            assert np.array_equal(ref.alpha, got.alpha)


class TestSliceCache:
    def test_hits_and_misses(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        rle.clear_slice_cache()
        cache = rle.slice_cache
        h0, m0 = cache.hits, cache.misses
        rle.decode_slice(0)
        rle.decode_slice(0)
        rle.decode_slice(1)
        assert cache.misses - m0 == 2
        assert cache.hits - h0 == 1
        assert len(cache) == 2

    def test_cached_planes_are_shared_and_readonly(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        a_o, a_c = rle.decode_slice_padded(2)
        b_o, b_c = rle.decode_slice_padded(2)
        assert a_o is b_o and a_c is b_c
        with pytest.raises(ValueError):
            a_o[0, 0] = 1.0
        # The unpadded view matches the padded interior.
        o, c = rle.decode_slice(2)
        assert np.array_equal(o, a_o[1:-1, 1:-1])
        assert np.array_equal(c, a_c[1:-1, 1:-1])

    def test_decode_matches_scanline_decode(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        k = rle.nk // 2
        o, c = rle.decode_slice(k)
        for j in range(rle.nj):
            ref_o, ref_c = rle.decode_scanline(k, j)
            assert np.array_equal(o[j], ref_o)
            assert np.array_equal(c[j], ref_c)

    def test_lru_eviction(self):
        cache = SliceCache(capacity=2)
        planes = {k: (np.zeros(1), np.zeros(1)) for k in range(3)}
        cache.put(0, planes[0])
        cache.put(1, planes[1])
        assert cache.get(0) is not None  # 0 now most-recent
        cache.put(2, planes[2])  # evicts 1
        assert cache.get(1) is None
        assert cache.get(0) is not None
        assert cache.get(2) is not None
        assert len(cache) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SliceCache(capacity=0)
        assert SliceCache().capacity == DEFAULT_SLICE_CACHE_CAPACITY

    def test_clear_invalidates(self, mri_renderer):
        fact = mri_renderer.factorize_view(mri_renderer.view_from_angles(20, 30, 0))
        rle = mri_renderer.rle_for(fact)
        rle.decode_slice(0)
        assert len(rle.slice_cache) > 0
        rle.clear_slice_cache()
        assert len(rle.slice_cache) == 0

    def test_axis_switch_clears_previous_axis(self, mri_renderer):
        # Straight-on view -> axis 2; rotate 90 degrees about y -> axis 0.
        fact_z = mri_renderer.factorize_view(mri_renderer.view_from_angles(0, 0, 0))
        rle_z = mri_renderer.rle_for(fact_z)
        rle_z.decode_slice(0)
        assert len(rle_z.slice_cache) > 0
        fact_x = mri_renderer.factorize_view(mri_renderer.view_from_angles(0, 90, 0))
        assert fact_x.axis != fact_z.axis
        mri_renderer.rle_for(fact_x)
        assert len(rle_z.slice_cache) == 0
        # Re-prime for other tests (module-scoped fixture).
        mri_renderer.rle_for(fact_z)

    def test_counters_exact_under_thread_hammer(self):
        """Regression: ``hits``/``misses`` are read-modify-write and
        lost updates when the threading backend's workers shared one
        cache without a lock.  Keys 0..3 fit capacity 4, so key 0 is
        never evicted — every ``get(0)`` is a hit and every ``get(99)``
        a miss, making the expected tallies exact."""
        import threading

        cache = SliceCache(capacity=4)
        plane = (np.zeros(1), np.zeros(1))
        cache.put(0, plane)
        n_threads, n_iter = 8, 1500
        barrier = threading.Barrier(n_threads)

        def hammer(tid):
            barrier.wait()  # maximize interleaving
            for i in range(n_iter):
                cache.get(0)
                cache.get(99)
                cache.put(1 + (tid + i) % 3, plane)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits == n_threads * n_iter
        assert cache.misses == n_threads * n_iter
        assert len(cache) <= 4

    def test_cache_survives_unpickling(self):
        import pickle

        vol = mri_brain((12, 12, 10))
        r = ShearWarpRenderer(vol, mri_transfer_function())
        rle = pickle.loads(pickle.dumps(r.rle_by_axis[2]))
        o, c = rle.decode_slice(0)  # lazily re-creates the cache
        assert rle.slice_cache.misses >= 1
        ref_o, ref_c = r.rle_by_axis[2].decode_slice(0)
        assert np.array_equal(o, ref_o)


class TestMPRenderPool:
    @pytest.fixture(scope="class")
    def renderer(self):
        return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())

    def test_animation_bit_exact(self, renderer):
        views = [renderer.view_from_angles(20, 30 + 5 * i, 0) for i in range(4)]
        refs = [renderer.render(v) for v in views]
        with MPRenderPool(renderer, n_procs=2, kernel="block") as pool:
            results = [pool.render(v) for v in views]
        for res, ref in zip(results, refs):
            assert np.array_equal(res.final.color, ref.final.color)
            assert np.array_equal(res.final.alpha, ref.final.alpha)
            assert np.array_equal(res.intermediate.opacity, ref.intermediate.opacity)

    def test_pipelined_submit_out_of_order_results(self, renderer):
        views = [renderer.view_from_angles(10, 15 * i, 0) for i in range(3)]
        refs = [renderer.render(v) for v in views]
        with MPRenderPool(renderer, n_procs=2, buffers=2) as pool:
            handles = [pool.submit(v) for v in views]
            out = {h: pool.result(h) for h in reversed(handles)}
        for h, ref in zip(handles, refs):
            assert np.array_equal(out[h].final.color, ref.final.color)

    def test_scanline_kernel_parity(self, renderer):
        view = renderer.view_from_angles(25, -10, 5)
        ref = renderer.render(view)
        with MPRenderPool(renderer, n_procs=3, kernel="scanline", buffers=1) as pool:
            res = pool.render(view)
        assert np.array_equal(res.final.color, ref.final.color)

    def test_one_shot_wrapper_matches(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=2)
        assert np.array_equal(res.final.color, ref.final.color)
        assert res.n_procs == 2

    def test_validation(self, renderer):
        with pytest.raises(ValueError):
            MPRenderPool(renderer, n_procs=0)
        with pytest.raises(ValueError):
            MPRenderPool(renderer, kernel="nope")
        with pytest.raises(ValueError):
            MPRenderPool(renderer, buffers=0)
        with pytest.raises(RuntimeError):
            with MPRenderPool(renderer, n_procs=1) as pool:
                pool.close()
                pool.submit(np.eye(4))


class TestBlockKernelFrames:
    """The core renderers' kernel knob: same frames, no traces."""

    @pytest.fixture(scope="class")
    def renderer(self):
        return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())

    @pytest.mark.parametrize("algorithm", ["old", "new"])
    def test_frames_match_scanline_kernel(self, renderer, algorithm):
        from repro.core.new_renderer import NewParallelShearWarp
        from repro.core.old_renderer import OldParallelShearWarp

        cls = OldParallelShearWarp if algorithm == "old" else NewParallelShearWarp
        fs = cls(renderer, 2)
        fb = cls(renderer, 2, kernel="block")
        for i in range(2):
            view = renderer.view_from_angles(20, 30 + 3 * i, 0)
            a, b = fs.render_frame(view), fb.render_frame(view)
            assert np.array_equal(a.final.color, b.final.color)
            assert np.array_equal(a.intermediate.opacity, b.intermediate.opacity)
            assert b.kernel == "block"
            assert all(t.trace == [] for t in b.composite_units.values())
            for uid, rec in a.composite_units.items():
                brec = b.composite_units[uid]
                assert rec.cost == brec.cost
                for f in COUNTER_FIELDS:
                    assert getattr(rec.counters, f) == getattr(brec.counters, f)

    def test_block_frames_refuse_simulation(self, renderer):
        from repro.core.new_renderer import NewParallelShearWarp
        from repro.memsim.machine import MACHINES
        from repro.parallel.execution import simulate_frame

        frame = NewParallelShearWarp(renderer, 2, kernel="block").render_frame(
            renderer.view_from_angles(20, 30, 0)
        )
        with pytest.raises(ValueError, match="block"):
            simulate_frame(frame, MACHINES["dash"]())

    def test_harness_simulate_guard(self):
        from repro.analysis.harness import simulate

        with pytest.raises(ValueError, match="scanline"):
            simulate("mri128", "new", "dash", 2, scale=0.1, kernel="block")
