"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mri512" in out
        assert "Origin2000" in out or "origin2000" in out

    def test_render_small(self, capsys, tmp_path):
        out_file = tmp_path / "img.npz"
        rc = main(["render", "--dataset", "mri128", "--scale", "0.12",
                   "--out", str(out_file)])
        assert rc == 0
        with np.load(out_file) as data:
            assert data["color"].ndim == 2
            assert data["alpha"].max() <= 1.0 + 1e-5

    def test_render_without_out(self, capsys):
        assert main(["render", "--dataset", "mri128", "--scale", "0.12"]) == 0
        assert "final image" in capsys.readouterr().out

    def test_render_movie(self, capsys, tmp_path):
        """--movie writes a PNG sequence byte-identical to the serial
        per-timestep reference, and a stats-compatible metrics snapshot."""
        out_dir = tmp_path / "frames"
        metrics = tmp_path / "metrics.json"
        rc = main(["render", "--movie", "--dataset", "beating_heart",
                   "--scale", "0.5", "--frames", "3", "--timesteps", "2",
                   "--procs", "1", "--backend", "thread",
                   "--profile-period", "0",
                   "--movie-out", str(out_dir),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        assert "stage overlap" in capsys.readouterr().out

        from repro.movie import beating_heart_renderer, encode_png, to_gray8
        from repro.render.fast import render_fast

        r = beating_heart_renderer(0.5, timesteps=2)
        for i in range(3):
            view = r.view_from_angles(20.0, 30.0 + i * 3.0, 0.0)
            ref = render_fast(r, view, timestep=i % 2)
            blob = (out_dir / f"frame_{i:04d}.png").read_bytes()
            assert blob == encode_png(to_gray8(np.asarray(ref.final.color)))

        assert main(["stats", str(metrics)]) == 0
        assert "movie/frames_encoded=3" in capsys.readouterr().out

    def test_speedup_tiny(self, capsys):
        rc = main(["speedup", "--dataset", "mri128", "--machine", "challenge",
                   "--scale", "0.12", "--procs", "1,2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "old" in out and "new" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--machine", "cray"])


class TestCLIErrorPaths:
    def test_animation_pool_failure_exits_typed_without_leaks(
            self, monkeypatch, capsys):
        """A mid-batch worker failure with recovery disabled must exit
        non-zero with the typed error *name* on stderr — not a
        traceback — and leave no shared-memory segment behind."""
        import repro.parallel.mp_backend as mpb

        # Worker 0 raises out of frame 1's compositing; retries and
        # serial degradation are off, so the animation fails mid-batch.
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 1, "raise", "composite"))
        shm_dir = "/dev/shm"
        before = (set(os.listdir(shm_dir)) if os.path.isdir(shm_dir)
                  else None)
        rc = main(["render", "--dataset", "mri128", "--scale", "0.08",
                   "--procs", "2", "--frames", "3", "--profile-period", "0",
                   "--max-retries", "0", "--degrade", "off"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error: FrameFailed" in err
        assert "Traceback" not in err
        if before is not None:  # pool teardown unlinked every segment
            assert set(os.listdir(shm_dir)) - before == set()

    def test_stats_on_metrics_snapshot(self, capsys, tmp_path):
        """`repro stats` renders serve metrics snapshots (counters in
        greppable name=value form), not just Chrome traces."""
        import json

        snap = {"kind": "repro-metrics",
                "config": {"max_inflight": 4},
                "histograms": {"serve/latency_s": {
                    "count": 2, "total": 0.2, "mean": 0.1,
                    "p50": 0.1, "p90": 0.19, "max": 0.19}},
                "counters": {"serve/coalesced": 3, "serve/cache_hits": 5},
                "gauges": {"serve/pools": {"value": 1, "max": 2}}}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snap))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro-metrics snapshot" in out
        assert "serve/coalesced=3" in out
        assert "serve/cache_hits=5" in out
        assert "serve/latency_s" in out

    def test_stats_serial_trace_prints_na_overhead(self, capsys, tmp_path):
        """A serial trace has no dispatch-side spans: the overhead line
        must say n/a instead of doing 0-vs-0 arithmetic."""
        trace = tmp_path / "trace.json"
        rc = main(["render", "--dataset", "mri128", "--scale", "0.08",
                   "--trace-out", str(trace)])
        assert rc == 0
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "dispatch overhead: n/a" in out
