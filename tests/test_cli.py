"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mri512" in out
        assert "Origin2000" in out or "origin2000" in out

    def test_render_small(self, capsys, tmp_path):
        out_file = tmp_path / "img.npz"
        rc = main(["render", "--dataset", "mri128", "--scale", "0.12",
                   "--out", str(out_file)])
        assert rc == 0
        with np.load(out_file) as data:
            assert data["color"].ndim == 2
            assert data["alpha"].max() <= 1.0 + 1e-5

    def test_render_without_out(self, capsys):
        assert main(["render", "--dataset", "mri128", "--scale", "0.12"]) == 0
        assert "final image" in capsys.readouterr().out

    def test_speedup_tiny(self, capsys):
        rc = main(["speedup", "--dataset", "mri128", "--machine", "challenge",
                   "--scale", "0.12", "--procs", "1,2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "old" in out and "new" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--machine", "cray"])
