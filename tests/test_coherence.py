"""Tests for the cache-coherence simulator and miss classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.address import AddressSpace
from repro.memsim.coherence import CoherentSystem, MissStats
from repro.memsim.machine import MachineConfig


def tiny_machine(cache_bytes=256, line_bytes=16, assoc=2, centralized=False):
    return MachineConfig(
        name="tiny",
        centralized=centralized,
        cache_bytes=cache_bytes,
        line_bytes=line_bytes,
        assoc=assoc,
        t_local=10.0,
        t_remote2=30.0,
        t_remote3=40.0,
        t_upgrade=5.0,
    )


def make_system(n_procs=2, **kw):
    addr = AddressSpace.layout({"data": 1 << 20}, 4096)
    return CoherentSystem(n_procs, tiny_machine(**kw), addr)


class TestBasicCaching:
    def test_first_access_is_cold_miss(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 16, write=False)
        assert sys_.stats.misses[0]["cold"] == 1

    def test_repeat_access_hits(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 16, write=False)
        sys_.access_range(0, 0, 16, write=False)
        assert sys_.stats.proc_misses(0) == 1
        assert sys_.stats.refs[0] == 8  # 2 x 4 words

    def test_range_spans_lines(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 64, write=False)  # 4 x 16B lines
        assert sys_.stats.proc_misses(0) == 4

    def test_capacity_eviction_causes_replacement_miss(self):
        sys_ = make_system(cache_bytes=64, line_bytes=16, assoc=1)  # 4 lines
        # Touch 2 lines aliasing to the same set (stride = n_sets * line).
        stride = 4 * 16
        sys_.access_range(0, 0, 4)
        sys_.access_range(0, stride, 4)
        sys_.access_range(0, 0, 4)  # evicted by the aliasing line
        assert sys_.stats.misses[0]["replacement"] == 1

    def test_lru_within_set(self):
        sys_ = make_system(cache_bytes=64, line_bytes=16, assoc=2)  # 2 sets
        stride = 2 * 16  # same set
        sys_.access_range(0, 0, 4)
        sys_.access_range(0, stride, 4)
        sys_.access_range(0, 0, 4)  # hit, refresh LRU
        sys_.access_range(0, 2 * stride, 4)  # evicts 'stride', not 0
        sys_.access_range(0, 0, 4)
        assert sys_.stats.misses[0]["replacement"] == 0


class TestSharing:
    def test_true_sharing_detected(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 4, write=False)  # p0 reads word 0
        sys_.access_range(1, 0, 4, write=True)  # p1 writes word 0
        sys_.access_range(0, 0, 4, write=False)  # p0 re-reads -> true
        assert sys_.stats.misses[0]["true"] == 1

    def test_false_sharing_detected(self):
        sys_ = make_system(line_bytes=16)
        sys_.access_range(0, 0, 4, write=False)  # p0 reads word 0
        sys_.access_range(1, 8, 4, write=True)  # p1 writes word 2 (same line)
        sys_.access_range(0, 0, 4, write=False)  # p0 re-reads word 0 -> false
        assert sys_.stats.misses[0]["false"] == 1
        assert sys_.stats.misses[0]["true"] == 0

    def test_write_span_union_across_partial_writes(self):
        """Multiple partial writes by the owner all count for readers."""
        sys_ = make_system(line_bytes=16)
        sys_.access_range(0, 12, 4, write=False)  # p0 reads word 3
        sys_.access_range(1, 12, 4, write=True)  # p1 writes word 3
        sys_.access_range(1, 0, 4, write=True)  # then word 0 (stays owner)
        sys_.access_range(0, 12, 4, write=False)  # p0 re-reads word 3
        assert sys_.stats.misses[0]["true"] == 1

    def test_invalidation_counted(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 4, write=False)
        sys_.access_range(1, 0, 4, write=True)
        assert sys_.stats.invalidations == 1

    def test_write_upgrade_on_shared_line(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 4, write=False)
        sys_.access_range(1, 0, 4, write=False)
        sys_.access_range(0, 0, 4, write=True)  # hit, but needs upgrade
        assert sys_.stats.upgrades[0] == 1

    def test_read_only_sharing_has_no_sharing_misses(self):
        sys_ = make_system()
        for p in (0, 1):
            for _ in range(3):
                sys_.access_range(p, 0, 64, write=False)
        assert sys_.stats.total_misses("true") == 0
        assert sys_.stats.total_misses("false") == 0


class TestLocality:
    def test_centralized_all_local(self):
        sys_ = make_system(centralized=True)
        sys_.access_range(0, 0, 64)
        sys_.access_range(1, 4096 * 3, 64)
        for p in (0, 1):
            assert sys_.stats.kinds[p]["remote2"] == 0
            assert sys_.stats.kinds[p]["remote3"] == 0

    def test_round_robin_page_homes(self):
        sys_ = make_system(n_procs=4)
        lines_per_page = 4096 // 16
        assert sys_.home_of(0) == 0
        assert sys_.home_of(lines_per_page) == 1
        assert sys_.home_of(4 * lines_per_page) == 0

    def test_remote_clean_miss_is_two_hop(self):
        sys_ = make_system(n_procs=2)
        # Page 0 homed at proc 0; proc 1's miss is remote2.
        base = sys_.addr.bases["data"]
        # base is within some page; find a page homed at 0.
        page0 = (base // 4096 + 1) * 4096
        while sys_.home_of(page0 // 16) != 0:
            page0 += 4096
        sys_.access_range(1, page0, 4)
        assert sys_.stats.kinds[1]["remote2"] == 1

    def test_dirty_third_party_is_three_hop(self):
        sys_ = make_system(n_procs=4)
        # Find a page homed at proc 2; writer = proc 1, reader = proc 3.
        a = 4096
        while sys_.home_of(a // 16) != 2:
            a += 4096
        sys_.access_range(1, a, 4, write=True)
        sys_.access_range(3, a, 4, write=False)
        assert sys_.stats.kinds[3]["remote3"] == 1

    def test_dirty_at_home_is_two_hop(self):
        sys_ = make_system(n_procs=4)
        a = 4096
        while sys_.home_of(a // 16) != 2:
            a += 4096
        sys_.access_range(2, a, 4, write=True)  # home itself dirties it
        sys_.access_range(3, a, 4, write=False)
        assert sys_.stats.kinds[3]["remote2"] == 1


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        sys_ = make_system()
        sys_.access_range(0, 0, 64, write=True)
        snap = sys_.snapshot()
        sys_.access_range(1, 0, 64, write=True)  # invalidates p0
        sys_.restore(snap)
        sys_.new_scope()
        sys_.access_range(0, 0, 64, write=True)  # should all hit again
        assert sys_.stats.proc_misses(0) == 0


class TestMissStats:
    def test_miss_rate(self):
        s = MissStats(2)
        s.refs[0] = 100
        s.misses[0]["cold"] = 5
        assert s.miss_rate() == pytest.approx(0.05)
        assert s.miss_rate(include_cold=False) == 0.0

    def test_remote_fraction(self):
        s = MissStats(1)
        s.misses[0]["cold"] = 4
        s.kinds[0]["local"] = 1
        s.kinds[0]["remote2"] = 3
        assert s.remote_fraction() == pytest.approx(0.75)

    def test_empty_stats_zero_rates(self):
        s = MissStats(2)
        assert s.miss_rate() == 0.0
        assert s.remote_fraction() == 0.0


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        addr = AddressSpace.layout({"a": 10000, "b": 5, "c": 123456})
        spans = []
        for r, size in (("a", 10000), ("b", 5), ("c", 123456)):
            base = addr.bases[r]
            spans.append((base, base + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_resolve(self):
        addr = AddressSpace.layout({"a": 100})
        flat, n = addr.resolve("a", 10, 20)
        assert flat == addr.bases["a"] + 10 and n == 20

    def test_region_of_inverse(self):
        addr = AddressSpace.layout({"a": 100, "b": 100})
        assert addr.region_of(addr.bases["a"]) == "a"
        assert addr.region_of(addr.bases["b"] + 50) == "b"

    def test_bases_staggered_across_sets(self):
        """Region bases must not all alias to the same cache set."""
        addr = AddressSpace.layout({f"r{i}": 10000 for i in range(4)})
        offsets = {b % 4096 for b in addr.bases.values()}
        assert len(offsets) == 4

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(1, 100000), min_size=1, max_size=6))
    def test_layout_property(self, sizes):
        regions = {f"r{i}": s for i, s in enumerate(sizes)}
        addr = AddressSpace.layout(regions)
        assert addr.limit >= max(addr.bases[r] + regions[r] for r in regions)
