"""Tests for the stall/contention cost model."""

import numpy as np
import pytest

from repro.memsim.coherence import MissStats
from repro.memsim.costmodel import memory_stalls
from repro.memsim.machine import ccnuma_sim, challenge


def stats_with(n_procs=2, **kinds_per_proc):
    s = MissStats(n_procs)
    for p in range(n_procs):
        for kind, n in kinds_per_proc.items():
            s.kinds[p][kind] = n
    return s


class TestMemoryStalls:
    def test_zero_misses_zero_stalls(self):
        s = MissStats(2)
        model = memory_stalls(s, ccnuma_sim(), np.array([100.0, 100.0]))
        assert np.all(model.stalls == 0)
        assert model.contention == 1.0

    def test_base_costs_per_kind(self):
        m = ccnuma_sim()
        s = stats_with(n_procs=1, local=2, remote2=3, remote3=1)
        model = memory_stalls(s, m, np.array([1e9]))  # huge busy: no contention
        expected = 2 * m.t_local + 3 * m.t_remote2 + 1 * m.t_remote3
        assert model.base_stalls[0] == pytest.approx(expected)
        assert model.stalls[0] == pytest.approx(expected, rel=0.01)

    def test_upgrades_cost(self):
        m = ccnuma_sim()
        s = MissStats(1)
        s.upgrades[0] = 5
        model = memory_stalls(s, m, np.array([1e9]))
        assert model.base_stalls[0] == pytest.approx(5 * m.t_upgrade)

    def test_contention_rises_with_traffic(self):
        m = ccnuma_sim()
        light = stats_with(n_procs=2, remote2=10)
        light.home_bytes = [640, 640]
        heavy = stats_with(n_procs=2, remote2=10)
        heavy.home_bytes = [64000, 0]  # hot home node
        busy = np.array([1000.0, 1000.0])
        f_light = memory_stalls(light, m, busy).contention
        f_heavy = memory_stalls(heavy, m, busy).contention
        assert f_heavy > f_light

    def test_contention_capped(self):
        m = ccnuma_sim()
        s = stats_with(n_procs=2, remote2=2)
        s.home_bytes = [10**9, 0]
        model = memory_stalls(s, m, np.array([1.0, 1.0]))
        assert model.contention <= 6.0

    def test_centralized_uses_total_traffic(self):
        m = challenge()
        s = stats_with(n_procs=2, local=10)
        s.home_bytes = [1280, 1280]
        model = memory_stalls(s, m, np.array([100.0, 100.0]))
        assert model.contention >= 1.0
        assert model.utilization <= 1.0
