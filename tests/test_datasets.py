"""Tests for phantom generation and the resampling tool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    PAPER_DATASETS,
    ct_head,
    density_wedge,
    downsample,
    empty_volume,
    load,
    mri_brain,
    proxy_shape,
    random_blobs,
    resample,
    solid_sphere,
    upsample,
)
from repro.volume import ClassifiedVolume, ct_transfer_function, mri_transfer_function


class TestPhantoms:
    def test_mri_brain_shape_and_dtype(self):
        v = mri_brain((24, 24, 18))
        assert v.shape == (24, 24, 18)
        assert v.dtype == np.uint8

    def test_mri_brain_deterministic_per_seed(self):
        a = mri_brain((16, 16, 12), seed=5)
        b = mri_brain((16, 16, 12), seed=5)
        c = mri_brain((16, 16, 12), seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_mri_transparency_in_paper_range(self):
        """Paper: 70-95% of voxels transparent after classification."""
        v = mri_brain((48, 48, 32))
        cv = ClassifiedVolume.classify(v, mri_transfer_function())
        assert 0.60 <= cv.transparent_fraction <= 0.97

    def test_ct_transparency_in_paper_range(self):
        v = ct_head((48, 48, 48))
        cv = ClassifiedVolume.classify(v, ct_transfer_function())
        assert 0.60 <= cv.transparent_fraction <= 0.985

    def test_mri_has_empty_border(self):
        """Air surrounds the head: corner voxels are zero."""
        v = mri_brain((32, 32, 24))
        assert v[0, 0, 0] == 0 and v[-1, -1, -1] == 0

    def test_solid_sphere_is_symmetric(self):
        v = solid_sphere((20, 20, 20))
        assert np.array_equal(v, v[::-1, :, :])
        assert np.array_equal(v, v.transpose(1, 0, 2))

    def test_empty_volume_is_empty(self):
        assert empty_volume((8, 8, 8)).max() == 0

    def test_random_blobs_density(self):
        v = random_blobs((24, 24, 24), density=0.3)
        frac = np.mean(v > 0)
        assert 0.15 < frac < 0.45

    def test_density_wedge_ramps_across_y(self):
        """Occupancy (hence compositing cost) climbs steeply with y —
        the skew the adaptive-partition benchmark relies on."""
        v = density_wedge((32, 32, 24))
        assert v.shape == (32, 32, 24) and v.dtype == np.uint8
        lo = np.mean(v[:, :8] > 0)
        hi = np.mean(v[:, -8:] > 0)
        assert hi > 3 * lo > 0

    def test_density_wedge_deterministic_per_seed(self):
        a = density_wedge((16, 16, 12), seed=2)
        b = density_wedge((16, 16, 12), seed=2)
        assert np.array_equal(a, b)


class TestResample:
    def test_identity_when_shape_unchanged(self):
        v = mri_brain((16, 16, 12))
        assert np.array_equal(resample(v, v.shape), v)

    def test_upsample_preserves_constant_volume(self):
        v = np.full((8, 8, 8), 113, dtype=np.uint8)
        up = upsample(v, 2.0)
        assert up.shape == (16, 16, 16)
        assert np.all(up == 113)

    def test_endpoints_preserved(self):
        v = np.zeros((8, 8, 8), dtype=np.uint8)
        v[0, 0, 0] = 200
        v[-1, -1, -1] = 100
        up = resample(v, (15, 15, 15))
        assert up[0, 0, 0] == 200
        assert up[-1, -1, -1] == 100

    def test_downsample_shape(self):
        v = mri_brain((16, 16, 16))
        assert downsample(v, 2.0).shape == (8, 8, 8)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            resample(np.zeros((4, 4)), (4, 4, 4))

    def test_rejects_bad_factor(self):
        v = mri_brain((8, 8, 8))
        with pytest.raises(ValueError):
            upsample(v, 0.0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(4, 20))
    def test_values_stay_in_range(self, n):
        v = random_blobs((8, 8, 8), density=0.5)
        out = resample(v, (n, n, n))
        assert out.dtype == np.uint8
        assert out.max() <= v.max() + 1  # interpolation cannot overshoot


class TestRegistry:
    def test_roster_matches_paper(self):
        assert set(PAPER_DATASETS) == {
            "mri128", "mri256", "mri512", "mri640", "ct128", "ct256", "ct512",
        }
        assert PAPER_DATASETS["mri512"].paper_shape == (511, 511, 333)
        assert PAPER_DATASETS["mri256"].paper_shape == (256, 256, 167)

    def test_proxy_shape_scales(self):
        s = proxy_shape("mri512", scale=0.125)
        assert s == (64, 64, 42)

    def test_load_returns_proxy_volume(self):
        v = load("mri128", scale=0.25)
        assert v.shape == (32, 32, 32)
        assert v.dtype == np.uint8

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load("pet999")

    def test_relative_sizes_preserved(self):
        """mri512 proxy stays bigger than mri256 proxy at the same scale."""
        a = np.prod(proxy_shape("mri512", 0.1))
        b = np.prod(proxy_shape("mri256", 0.1))
        assert a > b
