"""Batched submission, pipelining and the shm doorbell (MP backend).

Every dispatch protocol must produce bit-identical images and work
counters to the serial reference and to the classic per-frame pool —
the partitions and the pixels may never depend on *how* frames reach
the workers.  Plus the fault half: a worker killed mid-batch must be
recovered with only the unfinished frames re-dispatched.
"""

import numpy as np
import pytest

import repro.parallel.mp_backend as mpb
from repro.datasets import mri_brain
from repro.parallel.mp_backend import MPRenderPool, PoolConfig
from repro.render import ShearWarpRenderer
from repro.render.fast import render_fast
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


def _views(renderer, n=5):
    return [renderer.view_from_angles(20, 30 + 4 * i, 2 * i) for i in range(n)]


def _assert_identical(res, refs):
    assert len(res) == len(refs)
    for ref, got in zip(refs, res):
        assert np.array_equal(got.final.color, ref.final.color)
        assert np.array_equal(got.final.alpha, ref.final.alpha)
        assert np.array_equal(got.intermediate.color, ref.intermediate.color)
        assert np.array_equal(got.intermediate.opacity, ref.intermediate.opacity)


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("kernel", ["block", "scanline"])
    @pytest.mark.parametrize("stealing", [True, False])
    def test_batched_matches_serial(self, renderer, kernel, stealing):
        """submit_batch == serial, both kernels, stealing on/off,
        profile feedback loop on."""
        views = _views(renderer)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, kernel=kernel, stealing=stealing,
                         profile_period=2)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
        _assert_identical(res, refs)

    def test_batched_matches_perframe_protocol(self, renderer):
        """One batch message == per-frame submits == doorbell-off pool."""
        views = _views(renderer)
        cfg = PoolConfig(n_procs=2, profile_period=2)
        with MPRenderPool(renderer, config=cfg) as pool:
            batched = [pool.result(f) for f in pool.submit_batch(views)]
        with MPRenderPool(renderer, config=cfg.replace(pipeline=False)) as pool:
            handles = [pool.submit(v) for v in views]
            perframe = [pool.result(h) for h in handles]
        with MPRenderPool(renderer, config=cfg.replace(doorbell=False,
                                                       pipeline=False)) as pool:
            handles = [pool.submit(v) for v in views]
            legacy = [pool.result(h) for h in handles]
        # Pixels must agree exactly.  Partition *boundaries* may not:
        # the profile feedback loop calibrates per-row costs with
        # measured CPU time, so band splits after a profiled frame are
        # run-dependent — which is precisely why the images themselves
        # being identical is the invariant worth asserting.
        _assert_identical(batched, perframe)
        _assert_identical(batched, legacy)

    def test_doorbell_off_batched(self, renderer):
        """Batching works with the legacy done-queue completion too."""
        views = _views(renderer, 4)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, doorbell=False)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
        _assert_identical(res, refs)

    def test_batch_deeper_than_buffers(self, renderer):
        """A batch far deeper than the buffer ring streams correctly
        (release-cursor gating + deferred claim seeding)."""
        views = _views(renderer, 8)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, buffers=2, profile_period=3)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
        _assert_identical(res, refs)

    def test_batch_frames_counter_and_metadata(self, renderer, tmp_path):
        views = _views(renderer, 4)
        cfg = PoolConfig(n_procs=2, trace=True)
        with MPRenderPool(renderer, config=cfg) as pool:
            pool.render_animation(views)
            assert pool.metrics.counter("pool/batch_frames").value == 4
            path = tmp_path / "trace.json"
            pool.export_chrome_trace(str(path))
        import json

        meta = json.loads(path.read_text())["otherData"]
        assert meta["batch_frames"] == 4
        assert meta["backend"] == "mp"
        assert meta["doorbell"] is True

    def test_empty_batch(self, renderer):
        with MPRenderPool(renderer, config=PoolConfig(n_procs=2)) as pool:
            assert pool.submit_batch([]) == []
            assert pool.render_animation([]) == []

    def test_pipeline_off_render_animation(self, renderer):
        views = _views(renderer, 3)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, pipeline=False)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            assert pool.metrics.counter("pool/batch_frames").value == 0
        _assert_identical(res, refs)


class TestMidBatchFaults:
    def test_kill_mid_batch_redispatches_only_unfinished(self, renderer,
                                                         monkeypatch):
        """Worker 0 is SIGKILLed compositing frame 2 of a 6-frame batch.

        Frames the parent has already collected must not be re-rendered;
        the unfinished tail is re-dispatched once and everything comes
        back bit-identical.  Frame 0 is always collected by kill time
        (worker 0 rang it before even entering frame 1).  Frame 1 is
        *usually* collected too, but the surviving worker may still be
        inside frame 1's warp when the supervisor stops the set — its
        doorbell not yet rung — in which case retrying frame 1 is the
        correct behaviour, not a double render.
        """
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 2, "kill", "composite"))
        views = _views(renderer, 6)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, buffers=2, max_retries=2,
                         degrade_to_serial=False)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            fc = pool.fault_counters()
        _assert_identical(res, refs)
        assert fc["worker_restarts"] >= 2  # the whole set is respawned
        assert fc["degraded_frames"] == 0
        # The unfinished frames (2..5, plus frame 1 iff its doorbell
        # hadn't been absorbed) were retried — never collected ones.
        assert 4 <= fc["frames_retried"] <= 5
        assert res[0].retries == 0
        assert res[1].retries <= 1
        assert all(r.retries == 1 for r in res[2:])

    def test_raise_mid_batch_recovers_bit_identical(self, renderer,
                                                    monkeypatch):
        """A worker exception mid-batch escalates to pool recovery (the
        retry may not queue behind the rest of the batch) and still
        produces identical frames."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (1, 1, "raise", "composite"))
        views = _views(renderer, 5)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, max_retries=2, degrade_to_serial=False)
        with MPRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            fc = pool.fault_counters()
        _assert_identical(res, refs)
        assert fc["frames_retried"] >= 1
        assert res[0].retries == 0


class TestDispatchObservability:
    def test_dispatch_and_doorbell_spans_recorded(self, renderer):
        views = _views(renderer, 4)
        cfg = PoolConfig(n_procs=2, trace=True, buffers=2)
        with MPRenderPool(renderer, config=cfg) as pool:
            pool.render_animation(views)
            phases = set()
            for tl in pool.timelines:
                phases.update(s.phase for s in tl.spans)
        assert "dispatch" in phases
        # doorbell spans appear only when a worker actually outruns the
        # parent's collection; don't require them, but the phase must be
        # recordable (PHASES registration) — exercised by _await_release
        # whenever the gate blocks.

    def test_pipeline_overlap_metric(self, renderer):
        views = _views(renderer, 6)
        with MPRenderPool(renderer, config=PoolConfig(n_procs=2)) as pool:
            pool.render_animation(views)
            overlap = pool.metrics.counter("pool/pipeline_overlap_s").value
        assert overlap >= 0.0  # > 0 whenever collection overlapped work
