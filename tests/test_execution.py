"""Tests for the hardware execution model (scheduler + memsim + costs)."""

import numpy as np
import pytest

from repro.core import NewParallelShearWarp, OldParallelShearWarp
from repro.datasets import mri_brain
from repro.memsim import ccnuma_sim, challenge, dash
from repro.parallel import simulate_animation, simulate_frame
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((24, 24, 18)), mri_transfer_function())


@pytest.fixture(scope="module")
def machine():
    return ccnuma_sim().scaled(1 / 256)


def frames_for(renderer, algorithm, n_procs, n_frames=2):
    views = [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n_frames)]
    if algorithm == "old":
        f = OldParallelShearWarp(renderer, n_procs)
        return [f.render_frame(v) for v in views]
    f = NewParallelShearWarp(renderer, n_procs)
    return [f.render_frame(v) for v in views]


class TestSimulateFrame:
    def test_report_structure(self, renderer, machine):
        frame = frames_for(renderer, "old", 2)[0]
        rep = simulate_frame(frame, machine)
        assert rep.total_time > 0
        assert rep.composite.span > 0
        assert rep.warp.span > 0
        b = rep.breakdown()
        assert b["total"] == pytest.approx(b["busy"] + b["memory"] + b["sync"], rel=1e-6)

    def test_fractions_sum_to_one(self, renderer, machine):
        frame = frames_for(renderer, "new", 3)[0]
        f = simulate_frame(frame, machine).fractions()
        assert sum(f.values()) == pytest.approx(1.0)

    def test_old_pays_interphase_barrier(self, renderer, machine):
        frame_old = frames_for(renderer, "old", 4)[0]
        rep = simulate_frame(frame_old, machine)
        expected = rep.composite.span + rep.warp.span + 2 * rep.barrier_cycles
        assert rep.total_time == pytest.approx(expected)

    def test_new_chains_phases_per_proc(self, renderer, machine):
        frame = frames_for(renderer, "new", 4)[0]
        rep = simulate_frame(frame, machine)
        chained = rep.composite.proc_totals + rep.warp.proc_totals
        assert rep.total_time == pytest.approx(chained.max() + rep.barrier_cycles)

    def test_more_procs_less_time(self, renderer, machine):
        t1 = simulate_frame(frames_for(renderer, "old", 1)[0], machine).total_time
        t4 = simulate_frame(frames_for(renderer, "old", 4)[0], machine).total_time
        assert t4 < t1

    def test_busy_conserved_across_procs(self, renderer, machine):
        """Total busy cycles don't depend on the processor count."""
        b2 = simulate_frame(frames_for(renderer, "old", 2)[0], machine).breakdown()["busy"]
        b4 = simulate_frame(frames_for(renderer, "old", 4)[0], machine).breakdown()["busy"]
        assert b2 == pytest.approx(b4, rel=1e-6)


class TestSimulateAnimation:
    def test_requires_frames(self, machine):
        with pytest.raises(ValueError):
            simulate_animation([], machine)

    def test_mismatched_procs_rejected(self, renderer, machine):
        f2 = frames_for(renderer, "old", 2)[0]
        f4 = frames_for(renderer, "old", 4)[0]
        with pytest.raises(ValueError):
            simulate_animation([f2, f4], machine)

    def test_steady_state_reduces_cold_misses(self, renderer, machine):
        frames = frames_for(renderer, "old", 2, n_frames=3)
        cold_first = simulate_frame(frames[0], machine)
        warm = simulate_animation(frames, machine)
        from repro.analysis.breakdown import combined_stats

        cold1 = combined_stats(cold_first).total_misses("cold")
        cold3 = combined_stats(warm).total_misses("cold")
        assert cold3 < cold1

    def test_old_warp_phase_shows_true_sharing_when_warm(self, renderer, machine):
        """The phase-interface communication the paper diagnoses."""
        frames = frames_for(renderer, "old", 4, n_frames=3)
        rep = simulate_animation(frames, machine)
        assert rep.warp.stats.total_misses("true") > 0

    def test_new_reduces_interface_misses(self, renderer, machine):
        """New algorithm: warp reads mostly hit in the compositor's cache."""
        old = simulate_animation(frames_for(renderer, "old", 4, 3), machine)
        new = simulate_animation(frames_for(renderer, "new", 4, 3), machine)
        old_warp_misses = sum(old.warp.stats.misses[p]["true"] +
                              old.warp.stats.misses[p]["replacement"]
                              for p in range(4))
        new_warp_misses = sum(new.warp.stats.misses[p]["true"] +
                              new.warp.stats.misses[p]["replacement"]
                              for p in range(4))
        assert new_warp_misses < old_warp_misses


class TestMachineConfigs:
    def test_presets_have_paper_parameters(self):
        d = dash()
        assert d.line_bytes == 16
        assert d.cache_bytes == 256 * 1024
        c = challenge()
        assert c.centralized
        assert c.line_bytes == 128
        s = ccnuma_sim()
        assert (s.t_local, s.t_remote2, s.t_remote3) == (70.0, 210.0, 280.0)

    def test_scaled_preserves_latencies(self):
        d = dash().scaled(0.01)
        assert d.t_local == dash().t_local
        assert d.cache_bytes < dash().cache_bytes

    def test_scaled_floor(self):
        d = dash().scaled(1e-9)
        assert d.cache_bytes >= 4 * d.line_bytes * d.assoc

    def test_barrier_grows_with_procs(self):
        m = ccnuma_sim()
        assert m.barrier_cost(32) > m.barrier_cost(2)

    def test_miss_cost_lookup(self):
        m = dash()
        assert m.miss_cost("local") == 30.0
        with pytest.raises(KeyError):
            m.miss_cost("bogus")
