"""Tests for the vectorized fast path, Phong shading, and volume I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import mri_brain, random_blobs, solid_sphere
from repro.datasets.io import load_den, load_volume, save_den, save_volume
from repro.render import ShearWarpRenderer
from repro.render.fast import composite_frame_fast, render_fast, warp_frame_fast
from repro.render.shading import (
    NormalTable,
    PhongParameters,
    central_gradients,
    shade_volume,
)
from repro.transforms import view_matrix
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((26, 26, 20)), mri_transfer_function())


class TestFastPath:
    def test_matches_reference_exactly(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        fast = render_fast(renderer, view)
        assert np.allclose(fast.intermediate.opacity, ref.intermediate.opacity,
                           atol=1e-6)
        assert np.allclose(fast.intermediate.color, ref.intermediate.color,
                           atol=1e-6)
        assert np.allclose(fast.final.color, ref.final.color, atol=1e-5)
        assert np.allclose(fast.final.alpha, ref.final.alpha, atol=1e-5)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 300), rx=st.floats(-60, 60), ry=st.floats(-60, 60))
    def test_equivalence_property(self, seed, rx, ry):
        vol = random_blobs((12, 12, 12), density=0.5, seed=seed)
        r = ShearWarpRenderer(vol, mri_transfer_function())
        view = view_matrix(rx, ry, 0, r.shape)
        ref = r.render(view)
        fast = render_fast(r, view)
        assert np.allclose(fast.final.alpha, ref.final.alpha, atol=1e-5)

    def test_fast_is_actually_faster(self):
        import time

        r = ShearWarpRenderer(mri_brain((48, 48, 36)), mri_transfer_function())
        view = r.view_from_angles(20, 30, 0)
        t0 = time.perf_counter()
        r.render(view)
        slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        render_fast(r, view)
        fast = time.perf_counter() - t0
        assert fast < slow


class TestShading:
    def test_gradients_shape(self):
        g = central_gradients(np.zeros((4, 5, 6), np.uint8))
        assert g.shape == (4, 5, 6, 3)

    def test_gradients_reject_non_3d(self):
        with pytest.raises(ValueError):
            central_gradients(np.zeros((4, 4)))

    def test_uniform_volume_zero_gradient(self):
        g = central_gradients(np.full((6, 6, 6), 7, np.uint8))
        assert np.allclose(g, 0.0)

    def test_table_values_bounded(self):
        t = NormalTable()
        assert t.table.min() >= 0.0
        # ambient + diffuse + specular can exceed 1 pre-clip; shading clips.
        lum = t.shade(np.ones((3, 3, 3, 3)))
        assert lum.max() <= 1.0

    def test_lit_side_brighter(self):
        """A sphere's surface facing the light shades brighter."""
        vol = solid_sphere((24, 24, 24), radius=0.7, value=200).astype(np.float32)
        g = central_gradients(vol)
        t = NormalTable(light=(1.0, 0.0, 0.0))
        lum = t.shade(g)
        # Sphere surface: gradients point inward; the -x side faces a
        # +x light.  Compare the two surface caps.
        lit = lum[3:6, 12, 12].mean()
        dark = lum[18:21, 12, 12].mean()
        assert lit != pytest.approx(dark)

    def test_flat_regions_get_ambient(self):
        t = NormalTable(params=PhongParameters(ambient=0.33))
        lum = t.shade(np.zeros((2, 2, 2, 3)))
        assert np.allclose(lum, 0.33)

    def test_shade_volume_renders(self):
        raw = mri_brain((20, 20, 16))
        cv = shade_volume(raw, mri_transfer_function())
        r = ShearWarpRenderer.from_classified(cv)
        res = r.render(r.view_from_angles(20, 30, 0))
        assert np.all(np.isfinite(res.final.color))
        assert res.final.alpha.max() > 0.1

    def test_shading_changes_colors_not_opacity(self):
        raw = mri_brain((16, 16, 12))
        tf = mri_transfer_function()
        plain = ShearWarpRenderer(raw, tf).classified
        shaded = shade_volume(raw, tf)
        assert np.array_equal(plain.opacity, shaded.opacity)
        assert not np.allclose(plain.color, shaded.color)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PhongParameters(ambient=-0.1)
        with pytest.raises(ValueError):
            PhongParameters(shininess=0)
        with pytest.raises(ValueError):
            NormalTable(light=(0, 0, 0))
        with pytest.raises(ValueError):
            NormalTable(bits=1)


class TestVolumeIO:
    def test_npz_roundtrip(self, tmp_path):
        vol = random_blobs((9, 8, 7), seed=4)
        path = tmp_path / "vol.npz"
        save_volume(path, vol, name="test", scale=0.5)
        loaded, meta = load_volume(path)
        assert np.array_equal(loaded, vol)
        assert meta == {"name": "test", "scale": 0.5}

    def test_den_roundtrip(self, tmp_path):
        vol = random_blobs((10, 6, 4), seed=9)
        path = tmp_path / "vol.den"
        save_den(path, vol)
        assert np.array_equal(load_den(path), vol)

    def test_den_header_is_16bit_extents(self, tmp_path):
        vol = np.zeros((3, 4, 5), np.uint8)
        path = tmp_path / "v.den"
        save_den(path, vol)
        raw = path.read_bytes()
        assert np.frombuffer(raw[:6], dtype="<u2").tolist() == [3, 4, 5]
        assert len(raw) == 6 + 3 * 4 * 5

    def test_den_truncated_rejected(self, tmp_path):
        path = tmp_path / "bad.den"
        path.write_bytes(b"\x03\x00\x03\x00\x03\x00\x01\x02")
        with pytest.raises(ValueError):
            load_den(path)

    def test_non_3d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_den(tmp_path / "x.den", np.zeros((4, 4), np.uint8))
        with pytest.raises(ValueError):
            save_volume(tmp_path / "x.npz", np.zeros((4, 4), np.uint8))
