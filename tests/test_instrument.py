"""Tests for op counters and trace sinks."""

import pytest

from repro.render.instrument import (
    ListTraceSink,
    Region,
    SegmentedTraceSink,
    TraceSink,
    WorkCounters,
)


class TestWorkCounters:
    def test_merge_accumulates_all_fields(self):
        a = WorkCounters(resample_ops=1, warp_pixels=2)
        b = WorkCounters(resample_ops=10, ray_steps=3)
        a.merge(b)
        assert a.resample_ops == 11
        assert a.warp_pixels == 2
        assert a.ray_steps == 3

    def test_copy_is_independent(self):
        a = WorkCounters(resample_ops=5)
        b = a.copy()
        b.resample_ops += 1
        assert a.resample_ops == 5

    def test_total(self):
        assert WorkCounters(resample_ops=2, loop_iters=3).total() == 5


class TestSinks:
    def test_base_sink_is_noop(self):
        s = TraceSink()
        s.access(Region.FINAL, 0, 8)
        s.set_key(3)  # must not raise

    def test_list_sink_records(self):
        s = ListTraceSink()
        s.access(Region.VOXEL_DATA, 4, 8, write=False)
        s.access(Region.FINAL, 0, 16, write=True)
        assert s.total_bytes() == 24
        recs = s.take()
        assert recs == [(Region.VOXEL_DATA, 4, 8, False), (Region.FINAL, 0, 16, True)]
        assert s.records == []

    def test_list_sink_drops_empty(self):
        s = ListTraceSink()
        s.access(Region.FINAL, 0, 0)
        assert s.records == []

    def test_list_sink_segments_wrap_key_zero(self):
        s = ListTraceSink()
        s.access(Region.FINAL, 0, 8)
        segs = s.take_segments()
        assert len(segs) == 1 and segs[0][0] == 0

    def test_segmented_sink_keys(self):
        s = SegmentedTraceSink()
        s.set_key(7)
        s.access(Region.VOXEL_DATA, 0, 8)
        s.set_key(8)
        s.access(Region.VOXEL_DATA, 8, 8)
        s.access(Region.INTERMEDIATE, 0, 4)
        segs = s.take_segments()
        assert [k for k, _ in segs] == [7, 8]
        assert len(segs[1][1]) == 2

    def test_segmented_sink_skips_empty_segments(self):
        s = SegmentedTraceSink()
        s.set_key(1)
        s.set_key(2)
        s.access(Region.FINAL, 0, 8)
        segs = s.take_segments()
        assert [k for k, _ in segs] == [2]

    def test_segmented_sink_default_key(self):
        s = SegmentedTraceSink()
        s.access(Region.FINAL, 0, 8)
        assert s.take_segments()[0][0] == 0
