"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.core import NewParallelShearWarp, OldParallelShearWarp
from repro.datasets import ct_head, empty_volume, mri_brain, random_blobs
from repro.memsim import ccnuma_sim, dash
from repro.memsim.svm import SVMConfig, SVMSimulator, simulate_frame_svm
from repro.parallel import simulate_animation, simulate_frame
from repro.render import ShearWarpRenderer
from repro.volume import ct_transfer_function, mri_transfer_function


class TestAxisSwitching:
    def test_animation_across_principal_axis_change(self):
        """Rotating past 45 degrees switches the principal axis and the
        RLE encoding; the stateful new renderer must survive the switch
        (its carried profile is in the old axis's coordinates)."""
        r = ShearWarpRenderer(mri_brain((20, 20, 20)), mri_transfer_function())
        new = NewParallelShearWarp(r, n_procs=3)
        axes = set()
        for deg in (30, 40, 50, 60):  # crosses the 45-degree boundary
            view = r.view_from_angles(0, deg, 0)
            frame = new.render_frame(view)
            axes.add(frame.fact.axis)
            ref = r.render(view)
            assert np.allclose(frame.final.color, ref.final.color, atol=1e-5), deg
        assert len(axes) == 2  # the switch actually happened

    def test_all_principal_axes_render(self):
        r = ShearWarpRenderer(random_blobs((14, 16, 18)), mri_transfer_function())
        for angles in ((0, 0, 0), (0, 90, 0), (90, 0, 0)):
            res = r.render(r.view_from_angles(*angles))
            assert np.all(np.isfinite(res.final.color))


class TestDegenerateVolumes:
    def test_empty_volume_through_full_pipeline(self):
        r = ShearWarpRenderer(empty_volume((12, 12, 12)), mri_transfer_function())
        view = r.view_from_angles(15, 25, 0)
        for factory in (OldParallelShearWarp(r, 3), NewParallelShearWarp(r, 3)):
            frame = factory.render_frame(view)
            assert frame.final.alpha.max() == 0.0
            rep = simulate_frame(frame, ccnuma_sim().scaled(0.001))
            assert rep.total_time >= 0

    def test_more_procs_than_scanlines(self):
        r = ShearWarpRenderer(mri_brain((10, 10, 8)), mri_transfer_function())
        view = r.view_from_angles(10, 10, 0)
        ref = r.render(view)
        new = NewParallelShearWarp(r, n_procs=32)
        frame = new.render_frame(view)
        assert np.allclose(frame.final.color, ref.final.color, atol=1e-5)

    def test_tiny_volume_full_stack(self):
        r = ShearWarpRenderer(random_blobs((8, 8, 8), density=0.5),
                              mri_transfer_function())
        views = [r.view_from_angles(5, 10 + 3 * i, 0) for i in range(2)]
        old = OldParallelShearWarp(r, 2)
        frames = [old.render_frame(v) for v in views]
        rep = simulate_animation(frames, dash().scaled(0.001))
        assert rep.total_time > 0


class TestCrossAlgorithmInvariants:
    @pytest.fixture(scope="class")
    def setup(self):
        r = ShearWarpRenderer(ct_head((22, 22, 22)), ct_transfer_function())
        views = [r.view_from_angles(20, 30 + 3 * i, 0) for i in range(3)]
        old = OldParallelShearWarp(r, 4)
        new = NewParallelShearWarp(r, 4)
        return ([old.render_frame(v) for v in views],
                [new.render_frame(v) for v in views])

    def test_same_image_both_algorithms(self, setup):
        old_frames, new_frames = setup
        for fo, fn in zip(old_frames, new_frames):
            assert np.allclose(fo.final.color, fn.final.color, atol=1e-5)

    def test_same_compositing_work_modulo_empty_region(self, setup):
        """New skips empty scanlines; content work must be identical."""
        old_frames, new_frames = setup
        fo, fn = old_frames[1], new_frames[1]
        old_resamples = sum(t.counters.resample_ops
                            for t in fo.composite_units.values())
        new_resamples = sum(t.counters.resample_ops
                            for t in fn.composite_units.values())
        assert old_resamples == new_resamples

    def test_hw_and_svm_agree_on_winner(self, setup):
        """Both platform models should favor the new algorithm here."""
        old_frames, new_frames = setup
        m = ccnuma_sim().scaled(0.002)
        t_old = simulate_animation(old_frames, m).total_time
        t_new = simulate_animation(new_frames, m).total_time
        cfg = SVMConfig().scaled(0.1)
        sim_o, sim_n = SVMSimulator(cfg, 4), SVMSimulator(cfg, 4)
        for fo, fn in zip(old_frames, new_frames):
            svm_old = simulate_frame_svm(fo, cfg, sim_o)
            svm_new = simulate_frame_svm(fn, cfg, sim_n)
        assert t_new < t_old * 1.15  # at worst competitive on hardware
        assert svm_new.total_time < svm_old.total_time
