"""Property-based tests of core rendering invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import random_blobs
from repro.render import IntermediateImage, ShearWarpRenderer
from repro.render.compositing import composite_image_scanline
from repro.transforms import view_matrix
from repro.volume import binary_transfer_function, mri_transfer_function


def small_renderer(seed, density=0.4):
    vol = random_blobs((10, 10, 10), density=density, seed=seed)
    return ShearWarpRenderer(vol, mri_transfer_function())


class TestCompositingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), rx=st.floats(-50, 50), ry=st.floats(-50, 50))
    def test_scanline_order_independence(self, seed, rx, ry):
        """Image scanlines are independent: compositing order across
        scanlines must not change the result (the property that makes
        the scanline partitioning race-free)."""
        r = small_renderer(seed)
        view = view_matrix(rx, ry, 0, r.shape)
        fact = r.factorize_view(view)
        rle = r.rle_for(fact)

        img_fwd = IntermediateImage(fact.intermediate_shape)
        for v in range(img_fwd.n_v):
            composite_image_scanline(img_fwd, v, rle, fact)
        img_rev = IntermediateImage(fact.intermediate_shape)
        for v in reversed(range(img_rev.n_v)):
            composite_image_scanline(img_rev, v, rle, fact)
        assert np.array_equal(img_fwd.opacity, img_rev.opacity)
        assert np.array_equal(img_fwd.color, img_rev.color)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_opacity_monotone_and_bounded(self, seed):
        """Front-to-back over-compositing only increases opacity, never
        past 1."""
        r = small_renderer(seed, density=0.7)
        res = r.render(view_matrix(20, 30, 0, r.shape))
        assert res.intermediate.opacity.min() >= 0.0
        assert res.intermediate.opacity.max() <= 1.0 + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), thr=st.floats(0.3, 0.99))
    def test_early_termination_threshold_never_changes_low_alpha_pixels(self, seed, thr):
        """Pixels that stay below the opaque threshold are bit-identical
        with and without a stricter threshold."""
        r = small_renderer(seed, density=0.8)
        view = view_matrix(10, 20, 0, r.shape)
        fact = r.factorize_view(view)
        rle = r.rle_for(fact)
        strict = IntermediateImage(fact.intermediate_shape, opaque_threshold=thr)
        lax = IntermediateImage(fact.intermediate_shape, opaque_threshold=2.0)
        for v in range(strict.n_v):
            composite_image_scanline(strict, v, rle, fact)
            composite_image_scanline(lax, v, rle, fact)
        below = lax.opacity < thr
        assert np.allclose(strict.opacity[below], lax.opacity[below], atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), value=st.integers(120, 255))
    def test_uniform_volume_uniform_interior(self, seed, value):
        """A constant-value box composites to a flat interior color."""
        vol = np.zeros((10, 10, 10), dtype=np.uint8)
        vol[2:8, 2:8, 2:8] = value
        r = ShearWarpRenderer(vol, binary_transfer_function(100, opacity=0.9))
        res = r.render(np.eye(4))
        interior = res.intermediate.opacity[5, 3:7]
        assert np.allclose(interior, interior[0], atol=1e-6)


class TestWarpInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), rz=st.floats(-40, 40))
    def test_in_plane_rotation_preserves_mass(self, seed, rz):
        """The 2-D warp resamples; total projected alpha is conserved
        up to interpolation loss."""
        r = small_renderer(seed, density=0.6)
        base = r.render(view_matrix(0, 0, 0, r.shape))
        rot = r.render(view_matrix(0, 0, rz, r.shape))
        m0 = base.final.alpha.sum()
        m1 = rot.final.alpha.sum()
        if m0 > 1.0:
            assert m1 == pytest.approx(m0, rel=0.2)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_final_alpha_bounded(self, seed):
        r = small_renderer(seed, density=0.8)
        res = r.render(view_matrix(33, -21, 14, r.shape))
        assert res.final.alpha.max() <= 1.0 + 1e-5
        assert res.final.alpha.min() >= -1e-6
