"""Tests for ``repro.movie`` — time-varying volumes and the movie pipeline.

The hard contract under test: every movie frame is bit-identical to the
per-timestep serial render, on every backend (mp, thread, shard fleet),
at every shard count, including across a mid-movie worker kill.  Around
it: the beating_heart phantom's shape/motion properties, the slice-cache
invalidation rule extended to ``(timestep, axis)`` switches, the
profile loop's behavior when the wedge moves between frames, and the
deterministic PNG/NPZ encoders.
"""

import json
import zlib

import numpy as np
import pytest

import repro
import repro.parallel.mp_backend as mpb
from repro.datasets import beating_heart
from repro.movie import (
    MoviePipeline,
    TimeVaryingRenderer,
    TimeVaryingVolume,
    beating_heart_renderer,
    encode_png,
    movie_frame_specs,
    to_gray8,
)
from repro.parallel.backend import FrameSpec
from repro.render.fast import render_fast
from repro.volume import mri_transfer_function

SHAPE = (20, 20, 16)
T = 3


@pytest.fixture(scope="module")
def renderer():
    return TimeVaryingRenderer(
        beating_heart(SHAPE, timesteps=T), mri_transfer_function()
    )


def _specs(renderer, n, timesteps=T):
    return movie_frame_specs(renderer, n, timesteps=timesteps)


def _refs(renderer, specs):
    return [
        render_fast(renderer, s.view, timestep=s.timestep) for s in specs
    ]


def _assert_bit_identical(results, refs):
    for res, ref in zip(results, refs):
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)


class TestBeatingHeartPhantom:
    def test_shapes_dtype_and_timestep_count(self):
        vols = beating_heart(SHAPE, timesteps=T)
        assert len(vols) == T
        assert all(v.shape == SHAPE and v.dtype == np.uint8 for v in vols)

    def test_timesteps_differ_but_share_texture(self):
        vols = beating_heart(SHAPE, timesteps=4)
        # The wedge moves: consecutive timesteps disagree somewhere.
        assert any(
            not np.array_equal(vols[t], vols[t + 1]) for t in range(3)
        )
        # Same rng draw everywhere: voxels occupied at both timesteps
        # keep their texture value (motion moves the wedge, not the noise).
        a, b = vols[0], vols[2]
        both = (a > 0) & (b > 0)
        assert both.any()
        assert np.array_equal(a[both], b[both])

    def test_wedge_centre_moves_between_timesteps(self):
        vols = beating_heart(SHAPE, timesteps=4, swing=0.9)
        centroids = []
        for v in vols:
            ys = np.nonzero(v)[1]
            centroids.append(ys.mean())
        assert max(centroids) - min(centroids) > 1.0

    def test_rejects_zero_timesteps(self):
        with pytest.raises(ValueError):
            beating_heart(SHAPE, timesteps=0)


class TestTimeVaryingVolume:
    def test_precomputes_all_encodings(self):
        tvv = TimeVaryingVolume(
            beating_heart(SHAPE, timesteps=T), mri_transfer_function()
        )
        assert tvv.n_timesteps == T and tvv.shape == SHAPE
        assert all(set(enc) == {0, 1, 2} for enc in tvv.encodings)

    def test_rejects_mismatched_shapes_and_empty(self):
        tf = mri_transfer_function()
        with pytest.raises(ValueError):
            TimeVaryingVolume([], tf)
        with pytest.raises(ValueError):
            TimeVaryingVolume(
                [np.zeros(SHAPE, np.uint8), np.zeros((8, 8, 8), np.uint8)], tf
            )


class TestSliceCacheInvalidation:
    """Timestep switches reuse the axis-switch invalidation rule."""

    def test_timestep_switch_clears_left_behind_cache(self):
        r = TimeVaryingRenderer(
            beating_heart(SHAPE, timesteps=T), mri_transfer_function()
        )
        view = r.view_from_angles(20, 30, 0)
        fact = r.factorize_view(view)
        rle0 = r.rle_for(fact, timestep=0)
        rle0.decode_slice(0)
        assert len(rle0.slice_cache) == 1
        r.rle_for(fact, timestep=1)  # switch: t0 encoding left behind
        assert len(rle0.slice_cache) == 0
        assert r.timestep_switches == 1

    def test_no_stale_slice_across_timesteps(self):
        """A decoded plane never leaks from timestep t to t' — rendering
        t, then t', then t again gives the same bits as fresh renders."""
        r = TimeVaryingRenderer(
            beating_heart(SHAPE, timesteps=T), mri_transfer_function()
        )
        view = r.view_from_angles(20, 30, 0)
        seq = [0, 1, 0, 2, 1]
        got = [render_fast(r, view, timestep=t) for t in seq]
        fresh = TimeVaryingRenderer(
            beating_heart(SHAPE, timesteps=T), mri_transfer_function()
        )
        for t, res in zip(seq, got):
            ref = render_fast(fresh, view, timestep=t)
            assert np.array_equal(res.final.color, ref.final.color)

    def test_hit_miss_counters_survive_clears(self):
        """``SliceCache.clear`` keeps stats, so switch-heavy movies
        still report consistent hit+miss totals (hits+misses only grow)."""
        r = TimeVaryingRenderer(
            beating_heart(SHAPE, timesteps=2), mri_transfer_function()
        )
        view = r.view_from_angles(20, 30, 0)
        fact = r.factorize_view(view)
        caches = [r.rle_for(fact, timestep=t).slice_cache for t in (0, 1)]
        before = [(c.hits, c.misses) for c in caches]
        for t in (0, 1, 0, 1):
            render_fast(r, view, timestep=t)
        after = [(c.hits, c.misses) for c in caches]
        for (h0, m0), (h1, m1) in zip(before, after):
            assert h1 >= h0 and m1 >= m0
        # Every decode either hit or missed; the clears lost nothing.
        assert sum(h + m for h, m in after) > sum(h + m for h, m in before)

    def test_none_timestep_is_timestep_zero(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        a = render_fast(renderer, view, timestep=None)
        b = render_fast(renderer, view, timestep=0)
        assert np.array_equal(a.final.color, b.final.color)

    def test_timestep_wraps_modulo(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        a = render_fast(renderer, view, timestep=1)
        b = render_fast(renderer, view, timestep=1 + T)
        assert np.array_equal(a.final.color, b.final.color)


class TestMovieBitIdentity:
    """Frames == per-timestep serial render, on every backend."""

    N_FRAMES = 5

    def _run(self, renderer, **overrides):
        specs = _specs(renderer, self.N_FRAMES)
        with repro.open_pool(renderer, **overrides) as pool:
            results = [pool.result(f) for f in pool.submit_batch(specs)]
        _assert_bit_identical(results, _refs(renderer, specs))

    def test_thread_backend(self, renderer):
        self._run(renderer, n_procs=2, backend="thread", profile_period=0)

    def test_mp_backend(self, renderer):
        self._run(renderer, n_procs=2, profile_period=0)

    def test_mp_backend_profiled(self, renderer):
        """The moving wedge churns the profile between frames; the
        re-balanced partitions must not change a single pixel."""
        self._run(renderer, n_procs=2, profile_period=1)

    def test_shard_fleet(self, renderer):
        self._run(renderer, n_procs=1, shards=2, profile_period=0)

    def test_mp_backend_survives_mid_movie_kill(self, renderer, monkeypatch):
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 2, "kill", "composite"))
        specs = _specs(renderer, self.N_FRAMES)
        with repro.open_pool(renderer, n_procs=2, profile_period=0) as pool:
            results = [pool.result(f) for f in pool.submit_batch(specs)]
            counters = pool.fault_counters()
        assert counters["worker_restarts"] >= 1
        assert counters["degraded_frames"] == 0
        _assert_bit_identical(results, _refs(renderer, specs))


class TestProfileLoopAcrossTimesteps:
    """The profile prediction is keyed on (axis, perm) only — a timestep
    switch keeps the prediction live (that is the workload beating_heart
    stresses), and the profiled run stays bit-identical regardless of
    how wrong the moving wedge makes the prediction."""

    def test_profile_survives_timestep_switches(self, renderer):
        switches_before = renderer.timestep_switches
        specs = _specs(renderer, 6)
        with repro.open_pool(
            renderer, n_procs=2, backend="thread", profile_period=1
        ) as pool:
            results = [pool.result(f) for f in pool.submit_batch(specs)]
        # The timestep moved underneath the profile loop, every frame
        # still measured a profile, and no pixel changed.
        assert renderer.timestep_switches > switches_before
        assert all(r.profiled and r.costs is not None for r in results)
        _assert_bit_identical(results, _refs(renderer, specs))

    def test_wedge_swing_moves_partition_boundary(self):
        """A big slow wedge really does shift work between frames: the
        profile-balanced row partition differs across timesteps."""
        r = beating_heart_renderer(0.75, timesteps=2)
        specs = movie_frame_specs(r, 4, timesteps=2)
        with repro.open_pool(
            r, n_procs=2, backend="thread", profile_period=1
        ) as pool:
            results = [pool.result(f) for f in pool.submit_batch(specs)]
        bounds = {
            tuple(res.boundaries)
            for res in results[1:]
            if res.boundaries is not None
        }
        if len(bounds) < 2:
            pytest.skip("wedge too small to move the boundary on this host")


class TestMoviePipeline:
    def test_png_sequence_matches_reference_encoder(self, renderer, tmp_path):
        specs = _specs(renderer, 4)
        with repro.open_pool(
            renderer, n_procs=1, backend="thread", profile_period=0
        ) as pool:
            pipe = MoviePipeline(pool, str(tmp_path), fmt="png")
            manifest = pipe.run(specs)
        refs = _refs(renderer, specs)
        for i, ref in enumerate(refs):
            blob = (tmp_path / f"frame_{i:04d}.png").read_bytes()
            assert blob == encode_png(to_gray8(np.asarray(ref.final.color)))
        assert manifest["n_frames"] == 4
        ov = manifest["stage_overlap"]
        assert ov["wall_s"] > 0 and ov["encode_s"] > 0
        assert ov["overlapped_encode_s"] <= ov["encode_s"]

    def test_npz_sequence_is_lossless(self, renderer, tmp_path):
        specs = _specs(renderer, 2)
        with repro.open_pool(
            renderer, n_procs=1, backend="thread", profile_period=0
        ) as pool:
            MoviePipeline(pool, str(tmp_path), fmt="npz").run(specs)
        for i, ref in enumerate(_refs(renderer, specs)):
            with np.load(tmp_path / f"frame_{i:04d}.npz") as z:
                assert np.array_equal(z["color"], ref.final.color)
                assert np.array_equal(z["alpha"], ref.final.alpha)

    def test_metrics_snapshot_counts_frames(self, renderer, tmp_path):
        specs = _specs(renderer, 3)
        with repro.open_pool(
            renderer, n_procs=1, backend="thread", profile_period=0
        ) as pool:
            pipe = MoviePipeline(pool, str(tmp_path))
            pipe.run(specs)
            snap = pipe.metrics_snapshot()
        assert snap["counters"]["movie/frames_encoded"] == 3
        assert snap["kind"] == "repro-metrics"
        json.dumps(snap)  # wire/disk-safe

    def test_encode_spans_land_on_their_own_track(self, renderer, tmp_path):
        specs = _specs(renderer, 3)
        with repro.open_pool(
            renderer, n_procs=2, backend="thread", profile_period=0,
            trace=True,
        ) as pool:
            pipe = MoviePipeline(pool, str(tmp_path), trace=True)
            pipe.run(specs)
            trace_path = tmp_path / "movie_trace.json"
            pipe.export_chrome_trace(str(trace_path))
        with open(trace_path) as f:
            trace = json.load(f)
        encode_tracks = {
            e["tid"] for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("name") == "encode"
        }
        other_tracks = {
            e["tid"] for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("name") != "encode"
        }
        assert len(encode_tracks) == 1
        assert encode_tracks.isdisjoint(other_tracks)

    def test_rejects_unknown_format(self, renderer, tmp_path):
        with pytest.raises(ValueError):
            MoviePipeline(object(), str(tmp_path), fmt="gif")


class TestPngEncoder:
    def test_valid_png_structure(self):
        gray = np.arange(35, dtype=np.uint8).reshape(5, 7)
        blob = encode_png(gray)
        assert blob.startswith(b"\x89PNG\r\n\x1a\n")
        assert blob.rstrip().endswith(b"IEND\xaeB`\x82")
        w = int.from_bytes(blob[16:20], "big")
        h = int.from_bytes(blob[20:24], "big")
        assert (w, h) == (7, 5)

    def test_idat_roundtrips_pixels(self):
        gray = (np.arange(24, dtype=np.uint8) * 10).reshape(4, 6)
        blob = encode_png(gray)
        start = blob.index(b"IDAT") + 4
        length = int.from_bytes(blob[start - 8:start - 4], "big")
        raw = zlib.decompress(blob[start:start + length])
        rows = [
            raw[r * 7 + 1:(r + 1) * 7] for r in range(4)  # skip filter byte
        ]
        assert np.array_equal(
            np.frombuffer(b"".join(rows), np.uint8).reshape(4, 6), gray
        )

    def test_to_gray8_clips_and_scales(self):
        plane = np.array([[-1.0, 0.0], [0.5, 2.0]], np.float32)
        assert np.array_equal(
            to_gray8(plane), np.array([[0, 0], [128, 255]], np.uint8)
        )

    def test_encoding_is_deterministic(self):
        gray = np.random.default_rng(3).integers(
            0, 255, (9, 9), dtype=np.uint8
        )
        assert encode_png(gray) == encode_png(gray.copy())
