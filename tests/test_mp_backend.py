"""Tests for the real multiprocessing shared-memory backend."""

import numpy as np
import pytest

import repro.parallel.mp_backend as mpb
from repro.core.partition import uniform_contiguous_partition
from repro.datasets import density_wedge, mri_brain, solid_sphere
from repro.parallel.mp_backend import MPRenderPool, render_parallel_mp
from repro.render import ShearWarpRenderer
from repro.volume import binary_transfer_function, mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


class TestMPBackend:
    def test_matches_serial_two_workers(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=2)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)
        assert np.allclose(res.final.alpha, ref.final.alpha, atol=1e-5)

    def test_matches_serial_four_workers(self, renderer):
        view = renderer.view_from_angles(-15, 40, 10)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=4)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)

    def test_single_worker(self, renderer):
        view = renderer.view_from_angles(0, 10, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=1)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)

    def test_sphere_axis_view(self):
        r = ShearWarpRenderer(solid_sphere((16, 16, 16)), binary_transfer_function(128))
        res = render_parallel_mp(r, np.eye(4), n_procs=2)
        cy, cx = res.final.ny // 2, res.final.nx // 2
        assert res.final.alpha[cy, cx] > 0.9

    def test_rejects_zero_workers(self, renderer):
        with pytest.raises(ValueError):
            render_parallel_mp(renderer, np.eye(4), n_procs=0)

    def test_rejects_negative_profile_period(self, renderer):
        with pytest.raises(ValueError):
            MPRenderPool(renderer, n_procs=1, profile_period=-1)


class TestPoolErrors:
    def test_worker_error_attributed_to_its_own_frame(self, renderer,
                                                      monkeypatch):
        """Frame n failing must not poison frame n+1 already in flight.

        The compositing kernel is patched to blow up on each worker's
        *first* call only; the patch reaches the workers through fork, so
        frame 0 fails in every worker while frames 1+ render normally.
        """
        real = mpb.composite_scanline_block
        calls = {"n": 0}  # per-process after fork: each worker counts its own

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected compositing failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(mpb, "composite_scanline_block", flaky)
        v0 = renderer.view_from_angles(20, 30, 0)
        v1 = renderer.view_from_angles(20, 33, 0)
        v2 = renderer.view_from_angles(20, 36, 0)
        # Retries/degradation off: this test is about error *attribution*
        # (the fault-recovery paths are covered in test_mp_faults.py).
        with MPRenderPool(renderer, n_procs=2, buffers=2, profile_period=0,
                          max_retries=0, degrade_to_serial=False) as pool:
            f0 = pool.submit(v0)
            f1 = pool.submit(v1)
            # The sibling collected first still succeeds and is correct.
            res1 = pool.result(f1)
            ref1 = renderer.render(v1)
            assert np.allclose(res1.final.color, ref1.final.color, atol=1e-5)
            # The failed frame raises from its *own* result call...
            with pytest.raises(RuntimeError, match="injected compositing"):
                pool.result(f0)
            # ...idempotently: a re-poll (the serve layer's per-client
            # retry/report path) re-raises the same typed error rather
            # than decaying into KeyError.
            with pytest.raises(RuntimeError, match="injected compositing"):
                pool.result(f0)
            # The pool (and the failed frame's buffer) stays usable.
            res2 = pool.render(v2)
            ref2 = renderer.render(v2)
            assert np.allclose(res2.final.color, ref2.final.color, atol=1e-5)

    def test_failed_submit_leaves_pool_state_clean(self, renderer):
        """A submit that dies on the capacity check must not consume a
        frame id or mark a buffer occupied/dirty."""
        good = renderer.view_from_angles(20, 30, 0)
        bad = good.copy()
        bad[:3, :3] *= 3.0  # upscales the image beyond pool capacity
        with MPRenderPool(renderer, n_procs=2, profile_period=0) as pool:
            with pytest.raises(RuntimeError, match="capacity"):
                pool.submit(bad)
            frame = pool.submit(good)
            assert frame == 0  # the failed submit consumed no frame id
            res = pool.result(frame)
            ref = renderer.render(good)
            assert np.allclose(res.final.color, ref.final.color, atol=1e-5)


class TestAdaptivePartition:
    def _animate(self, renderer, views, profile_period, n_procs=3,
                 kernel="block"):
        with MPRenderPool(renderer, n_procs=n_procs, kernel=kernel,
                          profile_period=profile_period) as pool:
            handles = [pool.submit(v) for v in views]
            return [pool.result(h) for h in handles]

    def test_adaptive_bit_identical_to_uniform(self):
        """Profile-balanced partitions only move scanlines between
        workers — the animation's images must match the uniform split
        bit for bit, even though the boundaries differ.

        Uses the skewed wedge phantom and the scanline kernel: on a
        near-symmetric volume (or under the block kernel at this tiny
        size, where warp time swamps the per-line cost differences) the
        balanced partition can legitimately coincide with the uniform
        split, which would make the boundaries-moved assertion vacuous.
        """
        renderer = ShearWarpRenderer(density_wedge((24, 24, 16)),
                                     mri_transfer_function())
        views = [renderer.view_from_angles(18, 8 + 3 * i, 0)
                 for i in range(6)]
        uni = self._animate(renderer, views, profile_period=0,
                            kernel="scanline")
        ada = self._animate(renderer, views, profile_period=2,
                            kernel="scanline")
        for u, a in zip(uni, ada):
            assert np.array_equal(u.final.color, a.final.color)
            assert np.array_equal(u.final.alpha, a.final.alpha)
            assert np.array_equal(u.intermediate.color, a.intermediate.color)
        assert not any(u.profiled for u in uni)
        assert ada[0].profiled  # no profile exists yet on frame 0
        # On a real (non-flat) volume the measured profile must move at
        # least one boundary away from the uniform split.
        moved = any(
            not np.array_equal(u.boundaries, a.boundaries)
            for u, a in zip(uni, ada)
        )
        assert moved

    def test_reports_boundaries_and_busy_times(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        with MPRenderPool(renderer, n_procs=2, profile_period=3) as pool:
            res = pool.render(view)
        assert res.boundaries is not None and len(res.boundaries) == 3
        assert np.all(np.diff(res.boundaries) >= 0)
        assert res.busy_s is not None and res.busy_s.shape == (2,)
        assert np.all(res.busy_s >= 0)

    def test_axis_switch_invalidates_profile(self, renderer):
        """Crossing a principal-axis boundary must force a uniform
        re-profiling frame: the old profile's scanline coordinates no
        longer exist in the new intermediate image."""
        with MPRenderPool(renderer, n_procs=3, profile_period=100) as pool:
            r0 = pool.render(renderer.view_from_angles(10, 20, 0))
            r1 = pool.render(renderer.view_from_angles(10, 24, 0))
            r2 = pool.render(renderer.view_from_angles(10, 70, 0))
        assert r0.profiled and not r1.profiled
        assert r2.fact.axis != r1.fact.axis  # the switch actually happened
        assert r2.profiled  # invalidation forced a fresh measurement
        uniform = uniform_contiguous_partition(
            int(r2.boundaries[0]), int(r2.boundaries[-1]), 3
        )
        assert np.array_equal(r2.boundaries, uniform)
        ref = renderer.render(renderer.view_from_angles(10, 70, 0))
        assert np.allclose(r2.final.color, ref.final.color, atol=1e-5)
