"""Tests for the real multiprocessing shared-memory backend."""

import numpy as np
import pytest

from repro.datasets import mri_brain, solid_sphere
from repro.parallel.mp_backend import render_parallel_mp
from repro.render import ShearWarpRenderer
from repro.volume import binary_transfer_function, mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


class TestMPBackend:
    def test_matches_serial_two_workers(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=2)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)
        assert np.allclose(res.final.alpha, ref.final.alpha, atol=1e-5)

    def test_matches_serial_four_workers(self, renderer):
        view = renderer.view_from_angles(-15, 40, 10)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=4)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)

    def test_single_worker(self, renderer):
        view = renderer.view_from_angles(0, 10, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view, n_procs=1)
        assert np.allclose(res.final.color, ref.final.color, atol=1e-5)

    def test_sphere_axis_view(self):
        r = ShearWarpRenderer(solid_sphere((16, 16, 16)), binary_transfer_function(128))
        res = render_parallel_mp(r, np.eye(4), n_procs=2)
        cy, cx = res.final.ny // 2, res.final.nx // 2
        assert res.final.alpha[cy, cx] > 0.9

    def test_rejects_zero_workers(self, renderer):
        with pytest.raises(ValueError):
            render_parallel_mp(renderer, np.eye(4), n_procs=0)
