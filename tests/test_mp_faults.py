"""Fault-injection tests for the self-healing multiprocessing pool.

Each test arms the deterministic fault hook (``mpb._TEST_FAULT``, the
monkeypatch twin of the ``REPRO_MP_FAULT`` env knob — it reaches the
workers through fork) to kill, hang or blow up one worker at one phase
of one frame, then asserts the supervisor recovers the animation with
images bit-identical to the serial reference and the recovery counters
telling the truth.  The typed-error and :class:`PoolConfig` API
contracts of the redesign are covered here too.
"""

import threading

import numpy as np
import pytest

import repro
import repro.parallel.mp_backend as mpb
from repro.datasets import mri_brain
from repro.parallel.mp_backend import (
    FrameTimeout,
    MPRenderPool,
    PoolClosed,
    PoolConfig,
    WorkerDied,
    render_parallel_mp,
)
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


def _views(renderer, n):
    return [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n)]


def _animate(renderer, views, **pool_kwargs):
    with MPRenderPool(renderer, **pool_kwargs) as pool:
        handles = [pool.submit(v) for v in views]
        results = [pool.result(h) for h in handles]
        counters = pool.fault_counters()
    return results, counters


def _assert_bit_identical(renderer, views, results):
    for view, res in zip(views, results):
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)


class TestFaultInjection:
    """Kill/hang/raise one worker at each phase; the animation survives."""

    # profile_period=2 makes frame 1 a non-profiled frame and frame 0 a
    # profiled one, so the "profile" phase fault has a frame to hit.
    @pytest.mark.parametrize("phase", mpb.FAULT_PHASES)
    def test_kill_recovers_bit_identical(self, renderer, monkeypatch, phase):
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 1, "kill", phase))
        views = _views(renderer, 4)
        results, counters = _animate(renderer, views, n_procs=2,
                                     profile_period=2)
        _assert_bit_identical(renderer, views, results)
        assert counters["worker_restarts"] >= 2  # the whole set respawned
        assert counters["frames_retried"] >= 1
        assert counters["degraded_frames"] == 0
        assert any(r.retries > 0 for r in results)
        assert not any(r.degraded for r in results)

    @pytest.mark.parametrize("phase", mpb.FAULT_PHASES)
    def test_raise_retries_bit_identical(self, renderer, monkeypatch, phase):
        """An exception leaves the worker set intact: retry, no respawn."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (1, 1, "raise", phase))
        views = _views(renderer, 4)
        results, counters = _animate(renderer, views, n_procs=2,
                                     profile_period=2)
        _assert_bit_identical(renderer, views, results)
        assert counters["frames_retried"] >= 1
        assert counters["worker_restarts"] == 0
        assert results[1].retries >= 1

    @pytest.mark.parametrize("kernel", mpb.COMPOSITE_KERNELS)
    def test_kill_recovery_on_both_kernels(self, renderer, monkeypatch,
                                           kernel):
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "kill", "composite"))
        views = _views(renderer, 3)
        results, counters = _animate(renderer, views, n_procs=2,
                                     kernel=kernel, profile_period=0)
        _assert_bit_identical(renderer, views, results)
        assert counters["worker_restarts"] >= 2

    def test_hang_caught_by_timeout(self, renderer, monkeypatch):
        """A silently hung worker trips the frame deadline, not a hang."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "hang", "composite"))
        views = _views(renderer, 3)
        results, counters = _animate(renderer, views, n_procs=2,
                                     profile_period=0, timeout_s=1.0)
        _assert_bit_identical(renderer, views, results)
        assert counters["worker_restarts"] >= 2
        assert counters["frames_retried"] >= 1

    def test_real_sigkill_mid_animation(self, renderer, monkeypatch):
        """The acceptance scenario: SIGKILL a live worker mid-animation."""
        import os
        import signal

        # Slow worker 0 down so frames are still in flight when the
        # signal lands (same knob the stealing tests use).
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.005))
        views = _views(renderer, 6)
        with MPRenderPool(renderer, n_procs=2, profile_period=0) as pool:
            shm_names = [pool._shm_i.name, pool._shm_f.name]
            handles = [pool.submit(v) for v in views]
            os.kill(pool._workers[0].pid, signal.SIGKILL)
            results = [pool.result(h) for h in handles]
            counters = pool.fault_counters()
        _assert_bit_identical(renderer, views, results)
        assert counters["worker_restarts"] >= 1
        # No shm leak: recovery reused the segments, close unlinked them.
        from multiprocessing import shared_memory as sm
        for name in shm_names:
            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)

    def test_traced_pool_records_recovery(self, renderer, monkeypatch,
                                          tmp_path):
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "kill", "composite"))
        views = _views(renderer, 3)
        with MPRenderPool(renderer, n_procs=2, profile_period=0,
                          trace=True) as pool:
            handles = [pool.submit(v) for v in views]
            results = [pool.result(h) for h in handles]
            path = tmp_path / "fault_trace.json"
            pool.export_chrome_trace(str(path))
        _assert_bit_identical(renderer, views, results)
        from repro.obs import load_chrome_trace, validate_chrome_trace
        trace = load_chrome_trace(str(path))
        assert validate_chrome_trace(trace) == []
        meta = trace["otherData"]
        assert int(meta["worker_restarts"]) >= 2
        assert int(meta["frames_retried"]) >= 1
        # The retried frame carries the supervisor's recover span.
        recovered = [r for r in results if r.retries]
        assert recovered and any(
            s.phase == "recover"
            for r in recovered if r.timeline is not None
            for s in r.timeline.spans
        )


class TestTypedErrors:
    def test_worker_death_raises_typed_error(self, renderer, monkeypatch):
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "kill", "composite"))
        with MPRenderPool(renderer, n_procs=2, profile_period=0,
                          max_retries=0, degrade_to_serial=False) as pool:
            frame = pool.submit(renderer.view_from_angles(20, 30, 0))
            with pytest.raises(WorkerDied):
                pool.result(frame)
            with pytest.raises(WorkerDied):
                pool.result(frame)  # sticky: same typed error on re-poll
            # The pool stays usable after the failure.
            view = renderer.view_from_angles(20, 33, 0)
            res = pool.render(view)
            ref = renderer.render(view)
            assert np.array_equal(res.final.color, ref.final.color)

    def test_timeout_raises_frame_timeout(self, renderer, monkeypatch):
        """result() never blocks past timeout_s: typed error, not a hang."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "hang", "composite"))
        with MPRenderPool(renderer, n_procs=2, profile_period=0,
                          timeout_s=0.5, max_retries=0,
                          degrade_to_serial=False) as pool:
            frame = pool.submit(renderer.view_from_angles(20, 30, 0))
            with pytest.raises(FrameTimeout):
                pool.result(frame)

    def test_degrades_to_serial_bit_identical(self, renderer, monkeypatch):
        """Retries exhausted -> in-parent serial render, same pixels."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "kill", "composite"))
        view = renderer.view_from_angles(20, 30, 0)
        with MPRenderPool(renderer, n_procs=2, profile_period=0,
                          max_retries=0) as pool:
            res = pool.render(view)
            counters = pool.fault_counters()
        assert res.degraded
        assert counters["degraded_frames"] == 1
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)

    def test_close_wakes_result_waiter_with_pool_closed(self, renderer,
                                                        monkeypatch):
        """The old deadlock: close() during an in-flight result()."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 0, "hang", "composite"))
        pool = MPRenderPool(renderer, n_procs=2, profile_period=0)
        frame = pool.submit(renderer.view_from_angles(20, 30, 0))
        caught = []

        def waiter():
            try:
                pool.result(frame)
            except BaseException as exc:  # noqa: BLE001
                caught.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        t.join(0.3)  # let it block on the hung frame
        assert t.is_alive()
        pool.close()
        t.join(10.0)
        assert not t.is_alive()
        assert caught and isinstance(caught[0], PoolClosed)

    def test_submit_on_closed_pool_raises(self, renderer):
        pool = MPRenderPool(renderer, n_procs=1)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.submit(renderer.view_from_angles(20, 30, 0))


class TestNoLeaks:
    def test_fault_recovery_leaks_no_shm(self, renderer, monkeypatch):
        """Recovery respawns against the same segments; close unlinks
        every one of them even after a mid-animation worker death."""
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 1, "kill", "composite"))
        views = _views(renderer, 3)
        pool = MPRenderPool(renderer, n_procs=2, profile_period=0, trace=True)
        names = [pool._shm_i.name, pool._shm_f.name,
                 pool._shm_c.name, pool._shm_t.name]
        handles = [pool.submit(v) for v in views]
        results = [pool.result(h) for h in handles]
        assert pool.fault_counters()["worker_restarts"] >= 2
        pool.close()
        _assert_bit_identical(renderer, views, results)
        from multiprocessing import shared_memory as sm
        for name in names:
            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)


class TestPoolConfig:
    def test_validation_lives_on_the_config(self):
        with pytest.raises(ValueError, match="worker"):
            PoolConfig(n_procs=0)
        with pytest.raises(ValueError, match="kernel"):
            PoolConfig(kernel="simd")
        with pytest.raises(ValueError, match="buffer"):
            PoolConfig(buffers=0)
        with pytest.raises(ValueError, match="profile_period"):
            PoolConfig(profile_period=-1)
        with pytest.raises(ValueError, match="steal_chunk"):
            PoolConfig(steal_chunk=0)
        with pytest.raises(ValueError, match="timeout_s"):
            PoolConfig(timeout_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            PoolConfig(max_retries=-1)
        with pytest.raises(ValueError, match="poll_s"):
            PoolConfig(poll_s=0.0)

    def test_replace_revalidates(self):
        cfg = PoolConfig(n_procs=2)
        assert cfg.replace(n_procs=4).n_procs == 4
        with pytest.raises(ValueError):
            cfg.replace(n_procs=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            PoolConfig().n_procs = 3  # frozen dataclass

    def test_legacy_kwargs_build_the_same_config(self, renderer):
        with MPRenderPool(renderer, n_procs=2, kernel="scanline",
                          profile_period=0, stealing=False) as pool:
            assert pool.config == PoolConfig(n_procs=2, kernel="scanline",
                                             profile_period=0, stealing=False)

    def test_config_and_kwargs_is_an_error(self, renderer):
        with pytest.raises(TypeError, match="not both"):
            MPRenderPool(renderer, n_procs=2, config=PoolConfig())

    def test_legacy_validation_still_raises(self, renderer):
        # Same errors the pre-config pool raised from __init__.
        with pytest.raises(ValueError):
            MPRenderPool(renderer, n_procs=0)
        with pytest.raises(ValueError):
            MPRenderPool(renderer, kernel="nope")

    def test_one_shot_accepts_config(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = render_parallel_mp(renderer, view,
                                 config=PoolConfig(n_procs=2, buffers=2))
        assert res.n_procs == 2
        assert np.array_equal(res.final.color, ref.final.color)


class TestFacade:
    def test_top_level_exports(self):
        assert repro.PoolConfig is PoolConfig
        assert repro.MPRenderPool is MPRenderPool
        assert repro.WorkerDied is WorkerDied

    def test_render_frame(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = repro.render_frame(renderer, view, n_procs=2)
        assert np.array_equal(res.final.color, ref.final.color)

    def test_open_pool_with_overrides(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        cfg = PoolConfig(n_procs=2, profile_period=0)
        with repro.open_pool(renderer, cfg, kernel="scanline") as pool:
            assert pool.kernel == "scanline"
            assert pool.n_procs == 2
            res = pool.render(view)
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)


class TestFaultEnvParsing:
    def test_parses_full_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_FAULT", "1:3:hang:warp")
        assert mpb._fault_from_env() == (1, 3, "hang", "warp")

    def test_phase_defaults_to_composite(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_FAULT", "0:0:kill")
        assert mpb._fault_from_env() == (0, 0, "kill", "composite")

    def test_rejects_bad_kind_and_phase(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_FAULT", "0:0:explode")
        with pytest.raises(ValueError):
            mpb._fault_from_env()
        monkeypatch.setenv("REPRO_MP_FAULT", "0:0:kill:teleport")
        with pytest.raises(ValueError):
            mpb._fault_from_env()

    def test_absent_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_FAULT", raising=False)
        assert mpb._fault_from_env() is None
