"""Tests for chunked task stealing in the MP render pool (paper §4.4).

Stealing moves *who composites which scanlines*, never what gets
composited — so the invariant under test throughout is bit-identity
against the purely static pool, with the dynamic behaviour (steal
counts, busy-time rebalancing, observability counters) layered on top
via the deterministic imbalance-injection hook.
"""

import numpy as np
import pytest

import repro.parallel.mp_backend as mpb
from repro.datasets import density_wedge
from repro.parallel.mp_backend import MPRenderPool
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    # The skewed-load phantom: the worst case for a uniform contiguous
    # split, hence the input where stealing has real work to move.
    return ShearWarpRenderer(density_wedge((24, 24, 16)), mri_transfer_function())


def _render_pool(renderer, view, **kwargs):
    with MPRenderPool(renderer, **kwargs) as pool:
        return pool.render(view)


class TestStealBitIdentity:
    @pytest.mark.parametrize("kernel", ["block", "scanline"])
    def test_stealing_bit_identical_to_static_pool(self, renderer, kernel,
                                                   monkeypatch):
        """Static pool vs. stealing pool under forced steals: every pixel
        of both images must match exactly, for both kernels."""
        view = renderer.view_from_angles(20, 30, 0)
        ref = _render_pool(renderer, view, n_procs=3, kernel=kernel,
                           stealing=False, profile_period=0)
        assert ref.steals == 0 and ref.steal_rows == 0
        # Slow worker 0 down so its siblings actually turn thief (the
        # hook reaches the workers through fork, so set it pre-pool).
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.002))
        res = _render_pool(renderer, view, n_procs=3, kernel=kernel,
                           stealing=True, steal_chunk=2, profile_period=0)
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)
        assert np.array_equal(res.intermediate.color, ref.intermediate.color)
        assert np.array_equal(res.intermediate.opacity, ref.intermediate.opacity)

    def test_stealing_bit_identical_with_profile_loop(self, renderer):
        """Profiled frames ship per-chunk cost fragments; a short
        animation with the feedback loop active must stay bit-identical
        to the static profiled pool frame by frame."""
        views = [renderer.view_from_angles(20, 30 + 4 * i, 0) for i in range(4)]
        for stealing in (False, True):
            with MPRenderPool(renderer, n_procs=2, profile_period=2,
                              stealing=stealing, steal_chunk=2) as pool:
                frames = [pool.submit(v) for v in views]
                results = [pool.result(f) for f in frames]
            if stealing:
                for got, want in zip(results, static):
                    assert np.array_equal(got.final.color, want.final.color)
                    assert np.array_equal(got.final.alpha, want.final.alpha)
                # The feedback loop actually ran (first frame profiled,
                # later frames partitioned from the measured profile).
                assert results[0].profiled
                assert not results[-1].profiled
            else:
                static = results


class TestForcedImbalance:
    def test_steals_happen_and_rebalance_busy_time(self, renderer, monkeypatch):
        """With one worker slowed 4 ms/row, the thief must take work
        (steals > 0) and the slow worker's busy time must drop."""
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.004))
        view = renderer.view_from_angles(20, 30, 0)
        ref = _render_pool(renderer, view, n_procs=2, stealing=False,
                           profile_period=0, trace=True)
        res = _render_pool(renderer, view, n_procs=2, stealing=True,
                           steal_chunk=2, profile_period=0, trace=True)
        assert res.steals > 0
        assert res.steal_rows >= res.steals
        # The slow worker sheds rows to the thief: its busy time (the
        # frame's critical path) must come down, and with it the spread.
        assert max(res.busy_s) < max(ref.busy_s)
        assert res.busy_spread < ref.busy_spread
        assert np.array_equal(res.final.color, ref.final.color)

    def test_steal_counters_flow_through_trace(self, renderer, monkeypatch):
        """The steals/steal_rows the result reports must equal what the
        workers recorded into the span rings, and a steal span must be
        present in the timeline."""
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.004))
        view = renderer.view_from_angles(20, 30, 0)
        with MPRenderPool(renderer, n_procs=2, stealing=True, steal_chunk=2,
                          profile_period=0, trace=True) as pool:
            res = pool.render(view)
            metrics = pool.metrics
        assert res.steals > 0
        totals = res.timeline.counter_totals()
        assert totals["steals"] == res.steals
        assert totals["steal_rows"] == res.steal_rows
        assert "steal" in res.timeline.phase_seconds()
        # Pool-level counters aggregate the same numbers.
        assert metrics.counter("pool/steals").value == res.steals
        assert metrics.counter("pool/steal_rows").value == res.steal_rows


class TestStealDisabled:
    def test_disabled_pool_records_zero_steal_events(self, renderer, monkeypatch):
        """stealing=False must leave no steal trace anywhere, even under
        imbalance: no claim segment, no counters, no spans."""
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.002))
        view = renderer.view_from_angles(20, 30, 0)
        with MPRenderPool(renderer, n_procs=2, stealing=False,
                          profile_period=0, trace=True) as pool:
            assert pool._shm_c is None
            res = pool.render(view)
        assert res.steals == 0 and res.steal_rows == 0
        totals = res.timeline.counter_totals()
        assert "steals" not in totals and "steal_rows" not in totals
        assert "steal" not in res.timeline.phase_seconds()

    def test_single_worker_pool_never_steals(self, renderer):
        """One worker has no victim: the claim machinery is skipped
        entirely (no shm segment) even with stealing=True."""
        view = renderer.view_from_angles(20, 30, 0)
        with MPRenderPool(renderer, n_procs=1, stealing=True) as pool:
            assert pool._shm_c is None
            res = pool.render(view)
        assert res.steals == 0


class TestStealValidation:
    def test_rejects_zero_chunk(self, renderer):
        with pytest.raises(ValueError, match="steal_chunk"):
            MPRenderPool(renderer, n_procs=2, steal_chunk=0)

    def test_render_parallel_mp_passes_stealing_through(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = mpb.render_parallel_mp(renderer, view, n_procs=2, stealing=False)
        res = mpb.render_parallel_mp(renderer, view, n_procs=2, stealing=True,
                                     steal_chunk=1)
        assert np.array_equal(res.final.color, ref.final.color)


class TestClaimShmTeardown:
    def test_failed_init_unlinks_claim_segment(self, renderer, monkeypatch):
        """Construction dying *after* the claim-cursor segment is
        allocated must unlink it along with the image segments."""
        real = mpb.shared_memory.SharedMemory
        made = []
        calls = {"n": 0}

        class Flaky:
            def __new__(cls, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 4:  # shm_i, shm_f, shm_c, then boom
                    raise OSError("injected shm allocation failure")
                seg = real(*args, **kwargs)
                made.append(seg.name)
                return seg

        monkeypatch.setattr(mpb.shared_memory, "SharedMemory", Flaky)
        with pytest.raises(OSError, match="injected"):
            MPRenderPool(renderer, n_procs=2, stealing=True, trace=True)
        assert len(made) == 3
        monkeypatch.undo()
        from multiprocessing import shared_memory as sm
        for name in made:
            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)
