"""Tests for the observability layer (repro.obs) and its wiring."""

import json

import numpy as np
import pytest

import repro.parallel.mp_backend as mpb
from repro.datasets import mri_brain
from repro.obs import (
    COUNTERS,
    PHASES,
    CounterSample,
    FrameTimeline,
    MetricsRegistry,
    RingReader,
    Span,
    SpanRecorder,
    Stopwatch,
    assemble_timelines,
    busy_spread,
    export_chrome_trace,
    load_chrome_trace,
    metrics_from_timelines,
    ring_bytes,
    summarize_trace,
    validate_chrome_trace,
)
from repro.parallel.mp_backend import MPRenderPool, render_parallel_mp
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


class TestRing:
    def test_span_and_counter_round_trip(self):
        rec = SpanRecorder.in_memory(capacity=16, epoch=0.0)
        rec.span(3, "composite", 0.5, 0.75)
        rec.count(3, "rows", 42)
        rec.span(4, "warp", 0.8, 0.9)
        reader = RingReader(rec.cursor, rec.records, pid=7)
        got = reader.drain()
        assert got == [
            Span(7, 3, "composite", 0.5, 0.75),
            CounterSample(7, 3, "rows", 42.0),
            Span(7, 4, "warp", 0.8, 0.9),
        ]
        assert reader.dropped == 0
        assert reader.drain() == []  # incremental: nothing new

    def test_zero_counter_skipped(self):
        rec = SpanRecorder.in_memory(capacity=8)
        rec.count(0, "cache_hits", 0)
        assert rec.written() == 0

    def test_wraparound_reports_dropped(self):
        rec = SpanRecorder.in_memory(capacity=4, epoch=0.0)
        reader = RingReader(rec.cursor, rec.records, pid=0)
        for f in range(10):
            rec.span(f, "decode", float(f), float(f) + 0.5)
        got = reader.drain()
        # Only the newest `capacity` records survive; the loss is counted.
        assert [s.frame for s in got] == [6, 7, 8, 9]
        assert reader.dropped == 6

    def test_shared_buffer_layout_round_trip(self):
        buf = bytearray(2 * ring_bytes(8))
        w0 = SpanRecorder.over(buf, 0, 8)
        w1 = SpanRecorder.over(buf, 1, 8)
        w0.span(0, "composite", 0.0, 1.0)
        w1.count(0, "cache_misses", 5)
        r1 = RingReader.over(buf, 1, 8)
        assert r1.drain() == [CounterSample(1, 0, "cache_misses", 5.0)]

    def test_every_phase_and_counter_encodes(self):
        rec = SpanRecorder.in_memory(capacity=32, epoch=0.0)
        for ph in PHASES:
            rec.span(0, ph, 0.0, 1.0)
        for name in COUNTERS:
            rec.count(0, name, 1)
        got = RingReader(rec.cursor, rec.records, pid=0).drain()
        assert [s.phase for s in got[:len(PHASES)]] == list(PHASES)
        assert [c.name for c in got[len(PHASES):]] == list(COUNTERS)


class TestMetrics:
    def test_busy_spread_values(self):
        assert busy_spread([]) == 0.0
        assert busy_spread([0.0, 0.0]) == 0.0
        assert busy_spread([2.0, 2.0, 2.0]) == 0.0
        assert busy_spread([1.0, 3.0]) == pytest.approx(1.0)  # (3-1)/2

    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.seconds > 0

    def test_registry_histogram_and_gauge(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.histogram("phase/composite").observe(v)
        reg.gauge("pool/queue_depth").set(2)
        reg.gauge("pool/queue_depth").set(1)
        reg.counter("frames").inc()
        snap = reg.snapshot()
        assert snap["histograms"]["phase/composite"]["mean"] == 2.0
        assert snap["gauges"]["pool/queue_depth"]["value"] == 1
        assert snap["gauges"]["pool/queue_depth"]["max"] == 2
        assert snap["counters"]["frames"] == 1
        assert "phase/composite" in reg.format_table()

    def test_metrics_from_timelines(self):
        tl = FrameTimeline(0)
        tl.add(Span(0, 0, "composite", 0.0, 2.0))
        tl.add(Span(1, 0, "composite", 0.0, 1.0))
        tl.add(Span(0, 0, "warp", 2.0, 2.5))
        tl.add(Span(1, 0, "warp", 1.0, 1.5))
        tl.add(CounterSample(0, 0, "rows", 10))
        reg = metrics_from_timelines([tl])
        snap = reg.snapshot()
        assert snap["histograms"]["phase/composite"]["count"] == 2
        assert snap["counters"]["rows"] == 10
        # busy: pid0 = 2.5, pid1 = 1.5 -> spread = 1/2
        assert snap["histograms"]["frame/busy_spread"]["mean"] == pytest.approx(0.5)


class TestTraceExport:
    def _timelines(self):
        tl = FrameTimeline(0)
        tl.add(Span(0, 0, "decode", 0.0, 0.1))
        tl.add(Span(0, 0, "composite", 0.1, 0.6))
        tl.add(Span(0, 0, "profile", 0.3, 0.4))  # nested inside composite
        tl.add(Span(0, 0, "warp", 0.6, 0.8))
        tl.add(CounterSample(0, 0, "rows", 12))
        return [tl]

    def test_round_trip_and_validate(self, tmp_path):
        path = tmp_path / "t.json"
        export_chrome_trace(str(path), self._timelines(), metadata={"k": 1})
        trace = load_chrome_trace(str(path))
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"] == {"k": 1}
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        # Sorted by start time: the nested profile span follows the
        # composite span that encloses it, despite later ring order.
        assert names == ["decode", "composite", "profile", "warp"]

    def test_summarize(self, tmp_path):
        path = tmp_path / "t.json"
        export_chrome_trace(str(path), self._timelines())
        s = summarize_trace(load_chrome_trace(str(path)))
        assert s["n_tracks"] == 1
        assert s["phases"]["composite"]["total_s"] == pytest.approx(0.5)
        assert s["frames"][0][0] == pytest.approx(0.7)  # composite + warp

    def test_validate_rejects_garbage(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or empty"]
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        bad_ts = {
            "traceEvents": [
                {"name": "composite", "ph": "X", "pid": 1, "tid": 0,
                 "ts": 5.0, "dur": 1.0},
                {"name": "warp", "ph": "X", "pid": 1, "tid": 0,
                 "ts": 2.0, "dur": 1.0},
            ]
        }
        assert any("regresses" in p for p in validate_chrome_trace(bad_ts))


class TestMPTracing:
    def _views(self, renderer, n):
        return [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n)]

    def test_traced_animation_exports_valid_trace(self, renderer, tmp_path):
        views = self._views(renderer, 3)
        with MPRenderPool(renderer, n_procs=2, profile_period=1,
                          trace=True) as pool:
            results = [pool.result(pool.submit(v)) for v in views]
            assert len(pool.timelines) == 3
            assert [tl.frame for tl in pool.timelines] == [0, 1, 2]
            path = tmp_path / "trace.json"
            pool.export_chrome_trace(str(path))
            snap = pool.metrics.snapshot()
        trace = load_chrome_trace(str(path))
        assert validate_chrome_trace(trace) == []
        # One named thread track per worker, plus the supervisor's
        # track (n_procs) carrying the parent-side dispatch spans.
        tracks = {e["tid"] for e in trace["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert tracks == {0, 1, 2}
        assert any(e["ph"] == "X" and e["name"] == "dispatch"
                   for e in trace["traceEvents"])
        # Both workers recorded composite and warp spans on every frame.
        for tl in results:
            busy = tl.timeline.busy_by_pid()
            assert set(busy) == {0, 1}
            assert all(b > 0 for b in busy.values())
        # Metrics: phase histograms saw every frame, rows were counted,
        # and the pool-health gauges were set.
        assert snap["histograms"]["phase/composite"]["count"] == 6
        assert snap["histograms"]["phase/warp"]["count"] == 6
        assert snap["counters"]["rows"] > 0
        assert "pool/queue_depth" in snap["gauges"]
        assert "pool/buffer_occupancy" in snap["gauges"]

    def test_tracing_is_bit_identical_to_disabled(self, renderer):
        """The acceptance criterion: tracing must not change the images."""
        views = self._views(renderer, 2)
        def run(trace):
            with MPRenderPool(renderer, n_procs=2, profile_period=1,
                              trace=trace) as pool:
                return [pool.result(pool.submit(v)) for v in views]
        traced, plain = run(True), run(False)
        for t, p in zip(traced, plain):
            assert np.array_equal(t.final.color, p.final.color)
            assert np.array_equal(t.final.alpha, p.final.alpha)
            assert t.timeline is not None
            assert p.timeline is None

    def test_one_shot_trace(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        res = render_parallel_mp(renderer, view, n_procs=2, trace=True)
        assert res.timeline is not None
        assert res.timeline.phase_seconds().keys() >= {"composite", "warp"}
        assert res.busy_spread is not None and res.busy_spread >= 0

    def test_untraced_pool_still_has_metrics(self, renderer):
        with MPRenderPool(renderer, n_procs=2, profile_period=0) as pool:
            pool.render(renderer.view_from_angles(20, 30, 0))
            assert pool.timelines == []
            assert "pool/queue_depth" in pool.metrics.snapshot()["gauges"]

    def test_export_requires_trace(self, renderer, tmp_path):
        with MPRenderPool(renderer, n_procs=1) as pool:
            with pytest.raises(RuntimeError, match="trace=True"):
                pool.export_chrome_trace(str(tmp_path / "t.json"))

    def test_rejects_bad_trace_capacity(self, renderer):
        with pytest.raises(ValueError):
            MPRenderPool(renderer, n_procs=1, trace_capacity=0)


class TestPoolTeardown:
    def test_failed_init_leaks_no_shm(self, renderer, monkeypatch):
        """A pool whose construction dies mid-way must unlink every shm
        segment it already allocated (and not raise from close)."""
        real = mpb.shared_memory.SharedMemory
        made = []
        calls = {"n": 0}

        class Flaky:
            def __new__(cls, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise OSError("injected shm allocation failure")
                seg = real(*args, **kwargs)
                made.append(seg.name)
                return seg

        monkeypatch.setattr(mpb.shared_memory, "SharedMemory", Flaky)
        with pytest.raises(OSError, match="injected"):
            MPRenderPool(renderer, n_procs=2)
        assert len(made) == 1
        monkeypatch.undo()
        from multiprocessing import shared_memory as sm
        with pytest.raises(FileNotFoundError):
            sm.SharedMemory(name=made[0])  # already unlinked

    def test_double_close_is_safe(self, renderer):
        pool = MPRenderPool(renderer, n_procs=1)
        pool.close()
        pool.close()
        pool.__del__()


class TestRendererRecorders:
    def test_serial_render_records_spans(self, renderer):
        rec = SpanRecorder.in_memory()
        ref = renderer.render(renderer.view_from_angles(20, 30, 0))
        got = renderer.render(renderer.view_from_angles(20, 30, 0),
                              recorder=rec, obs_frame=5)
        tls = assemble_timelines([RingReader(rec.cursor, rec.records, pid=0)])
        assert [tl.frame for tl in tls] == [5]
        assert tls[0].phase_seconds().keys() == {"decode", "composite", "warp"}
        assert tls[0].counter_totals()["rows"] == got.intermediate.n_v
        assert np.array_equal(ref.final.color, got.final.color)

    def test_render_fast_records_spans(self, renderer):
        from repro.render.fast import render_fast

        rec = SpanRecorder.in_memory()
        view = renderer.view_from_angles(20, 30, 0)
        ref = render_fast(renderer, view)
        got = render_fast(renderer, view, recorder=rec)
        tls = assemble_timelines([RingReader(rec.cursor, rec.records, pid=0)])
        assert tls[0].phase_seconds().keys() == {"decode", "composite", "warp"}
        assert np.array_equal(ref.final.color, got.final.color)

    def test_traced_frames_harness(self):
        from repro.analysis.harness import traced_frames

        frames, tls = traced_frames("mri128", "new", 2, n_frames=2,
                                    scale=0.1, kernel="block",
                                    profile_period=1)
        assert len(frames) == 2
        assert [tl.frame for tl in tls] == [0, 1]
        phases = tls[0].phase_seconds()
        assert phases.keys() >= {"decode", "composite", "profile", "warp"}
        frames_old, tls_old = traced_frames("mri128", "old", 2, n_frames=1,
                                            scale=0.1, kernel="block")
        assert "composite" in tls_old[0].phase_seconds()


class TestCLITracing:
    def test_render_trace_out_and_stats(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.json"
        rc = main(["render", "--dataset", "mri128", "--scale", "0.1",
                   "--procs", "2", "--frames", "3",
                   "--trace-out", str(path)])
        assert rc == 0
        assert validate_chrome_trace(load_chrome_trace(str(path))) == []
        rc = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "composite" in out and "warp" in out
        assert "busy-spread" in out

    def test_serial_trace_out(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "serial.json"
        rc = main(["render", "--dataset", "mri128", "--scale", "0.1",
                   "--trace-out", str(path)])
        assert rc == 0
        assert validate_chrome_trace(load_chrome_trace(str(path))) == []

    def test_stats_rejects_invalid(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert main(["stats", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
