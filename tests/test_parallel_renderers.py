"""Tests for the old and new parallel renderers (correctness + structure)."""

import numpy as np
import pytest

from repro.core import (
    COMPOSITE,
    WARP,
    NewParallelShearWarp,
    OldParallelShearWarp,
    ProfileSchedule,
)
from repro.datasets import mri_brain, solid_sphere
from repro.render import ShearWarpRenderer
from repro.transforms import view_matrix
from repro.volume import binary_transfer_function, mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((28, 28, 20)), mri_transfer_function())


@pytest.fixture(scope="module")
def view(renderer):
    return renderer.view_from_angles(20, 30, 0)


@pytest.fixture(scope="module")
def serial_result(renderer, view):
    return renderer.render(view)


class TestOldRenderer:
    def test_image_matches_serial(self, renderer, view, serial_result):
        """Parallel task decomposition must not change the image."""
        frame = OldParallelShearWarp(renderer, n_procs=4).render_frame(view)
        assert np.allclose(frame.intermediate.opacity,
                           serial_result.intermediate.opacity, atol=1e-6)
        assert np.allclose(frame.final.color, serial_result.final.color, atol=1e-5)

    def test_all_scanlines_are_tasks(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=3).render_frame(view)
        n_v = frame.intermediate.n_v
        assert sorted(frame.composite_units) == list(range(n_v))
        queued = sorted(uid for q in frame.composite_queues for uid in q)
        assert queued == list(range(n_v))

    def test_interleaved_initial_assignment(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=2, chunk=4).render_frame(view)
        # Proc 0's first chunk is scanlines 0-3, proc 1's is 4-7.
        assert frame.composite_queues[0][:4] == [0, 1, 2, 3]
        assert frame.composite_queues[1][:4] == [4, 5, 6, 7]

    def test_warp_tiles_cover_final_image(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=4, tile=8).render_frame(view)
        ny, nx = frame.final.shape
        seen = np.zeros((ny, nx), dtype=int)
        for t in frame.warp_tasks.values():
            y0, y1, x0, x1 = t.meta
            seen[y0:y1, x0:x1] += 1
        assert np.all(seen == 1)

    def test_costs_positive_for_content_lines(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=2).render_frame(view)
        costs = [t.cost for t in frame.composite_units.values()]
        assert max(costs) > 0
        assert all(c >= 0 for c in costs)

    def test_trace_segments_keyed_by_slice(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=2).render_frame(view)
        busy_task = max(frame.composite_units.values(), key=lambda t: t.cost)
        keys = [k for k, _ in busy_task.trace]
        assert len(keys) == len(set(keys))  # one segment per slice
        assert set(keys) <= set(frame.slice_order)

    def test_rejects_zero_procs(self, renderer):
        with pytest.raises(ValueError):
            OldParallelShearWarp(renderer, n_procs=0)


class TestNewRenderer:
    def test_image_matches_serial(self, renderer, view, serial_result):
        new = NewParallelShearWarp(renderer, n_procs=4)
        frame = new.render_frame(view)
        assert np.allclose(frame.intermediate.opacity,
                           serial_result.intermediate.opacity, atol=1e-6)
        # Final image: every pixel written exactly once by its owner.
        assert np.allclose(frame.final.color, serial_result.final.color, atol=1e-5)
        assert np.allclose(frame.final.alpha, serial_result.final.alpha, atol=1e-5)

    def test_image_matches_serial_many_procs(self, renderer, view, serial_result):
        new = NewParallelShearWarp(renderer, n_procs=13)
        new.render_frame(view)  # profile frame
        frame = new.render_frame(view)
        assert np.allclose(frame.final.color, serial_result.final.color, atol=1e-5)

    def test_contiguous_partitions(self, renderer, view):
        new = NewParallelShearWarp(renderer, n_procs=4)
        frame = new.render_frame(view)
        b = frame.boundaries
        assert len(b) == 5
        assert np.all(np.diff(b) >= 0)
        for pid, q in enumerate(frame.composite_queues):
            assert q == list(range(int(b[pid]), int(b[pid + 1])))

    def test_only_nonempty_region_composited(self, renderer, view):
        """The new algorithm skips the empty image top/bottom."""
        old = OldParallelShearWarp(renderer, n_procs=2).render_frame(view)
        new = NewParallelShearWarp(renderer, n_procs=2).render_frame(view)
        assert len(new.composite_units) < len(old.composite_units)

    def test_first_frame_profiled_and_stored(self, renderer, view):
        new = NewParallelShearWarp(renderer, n_procs=2)
        frame = new.render_frame(view)
        assert frame.profiled
        assert new.last_profile is not None
        assert new.last_profile.total > 0

    def test_profile_period_respected(self, renderer, view):
        new = NewParallelShearWarp(renderer, n_procs=2,
                                   profile_schedule=ProfileSchedule(period=3))
        flags = [new.render_frame(view).profiled for _ in range(6)]
        assert flags == [True, False, False, True, False, False]

    def test_profiled_frames_cost_more(self, renderer, view):
        """Profiling adds 10-15% to compositing cost."""
        new = NewParallelShearWarp(renderer, n_procs=2,
                                   profile_schedule=ProfileSchedule(period=2))
        f_prof = new.render_frame(view)
        f_plain = new.render_frame(view)
        assert f_prof.composite_cost_total > 1.05 * f_plain.composite_cost_total

    def test_profile_balances_second_frame(self, renderer, view):
        new = NewParallelShearWarp(renderer, n_procs=4)
        new.render_frame(view)
        frame = new.render_frame(view)
        costs = np.array([
            sum(frame.composite_units[u].cost for u in q)
            for q in frame.composite_queues
        ])
        assert costs.max() <= costs.mean() * 2.5  # no pathological imbalance

    def test_warp_one_task_per_proc(self, renderer, view):
        new = NewParallelShearWarp(renderer, n_procs=4)
        frame = new.render_frame(view)
        assert sorted(frame.warp_tasks) == [0, 1, 2, 3]
        assert not frame.warp_stealing

    def test_single_proc_degenerates_gracefully(self, renderer, view, serial_result):
        new = NewParallelShearWarp(renderer, n_procs=1)
        frame = new.render_frame(view)
        assert np.allclose(frame.final.color, serial_result.final.color, atol=1e-5)

    def test_rotating_animation_stays_correct(self, renderer):
        """Across a rotation, images keep matching the serial renderer."""
        new = NewParallelShearWarp(renderer, n_procs=5)
        for i in range(4):
            v = renderer.view_from_angles(20, 30 + 5 * i, 0)
            frame = new.render_frame(v)
            ref = renderer.render(v)
            assert np.allclose(frame.final.color, ref.final.color, atol=1e-5), i


class TestFrameStructure:
    def test_counters_totals_positive(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=2).render_frame(view)
        total = frame.counters_total()
        assert total.resample_ops > 0
        assert total.warp_pixels > 0

    def test_phases_labeled(self, renderer, view):
        frame = OldParallelShearWarp(renderer, n_procs=2).render_frame(view)
        assert all(t.phase == COMPOSITE for t in frame.composite_units.values())
        assert all(t.phase == WARP for t in frame.warp_tasks.values())

    def test_region_sizes_cover_trace(self, renderer, view):
        frame = NewParallelShearWarp(renderer, n_procs=3).render_frame(view)
        for task in list(frame.composite_units.values()) + list(frame.warp_tasks.values()):
            for _, records in task.trace:
                for region, start, nbytes, _ in records:
                    assert start + nbytes <= frame.region_sizes[region], region

    def test_trace_bytes_and_touches(self, renderer, view):
        frame = NewParallelShearWarp(renderer, n_procs=2).render_frame(view)
        t = max(frame.composite_units.values(), key=lambda t: t.cost)
        assert t.trace_bytes > 0
        assert t.trace_line_touches > 0
        assert t.trace_line_touches >= t.trace_bytes // 64
