"""Tests for the partitioning strategies (old and new schemes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    contiguous_partition,
    interleaved_chunks,
    line_ownership,
    nested_contiguous_partition,
    partition_sizes,
    round_robin_tiles,
    uniform_contiguous_partition,
)


class TestInterleavedChunks:
    def test_chunks_cover_range_exactly_once(self):
        chunks = interleaved_chunks(5, 50, 4, 3)
        covered = sorted(
            v for proc in chunks for (lo, hi) in proc for v in range(lo, hi)
        )
        assert covered == list(range(5, 50))

    def test_round_robin_assignment(self):
        chunks = interleaved_chunks(0, 24, 4, 3)
        assert chunks[0][0] == (0, 4)
        assert chunks[1][0] == (4, 8)
        assert chunks[2][0] == (8, 12)
        assert chunks[0][1] == (12, 16)

    def test_ragged_tail(self):
        chunks = interleaved_chunks(0, 10, 4, 2)
        all_chunks = [c for proc in chunks for c in proc]
        assert (8, 10) in all_chunks

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            interleaved_chunks(0, 10, 0, 2)
        with pytest.raises(ValueError):
            interleaved_chunks(0, 10, 4, 0)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 200), chunk=st.integers(1, 16), procs=st.integers(1, 32))
    def test_load_spread_property(self, n, chunk, procs):
        """No processor gets more than one chunk above its fair share."""
        chunks = interleaved_chunks(0, n, chunk, procs)
        counts = [sum(hi - lo for lo, hi in proc) for proc in chunks]
        assert sum(counts) == n
        assert max(counts) - min(counts) <= chunk


class TestTiles:
    def test_tiles_cover_image(self):
        tiles = round_robin_tiles((33, 17), 8, 4)
        seen = np.zeros((33, 17), dtype=int)
        for proc in tiles:
            for (y0, y1, x0, x1) in proc:
                seen[y0:y1, x0:x1] += 1
        assert np.all(seen == 1)

    def test_round_robin_balance(self):
        tiles = round_robin_tiles((64, 64), 16, 4)
        counts = [len(p) for p in tiles]
        assert max(counts) - min(counts) <= 1

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            round_robin_tiles((8, 8), 0, 2)


class TestContiguousPartition:
    def test_uniform_profile_gives_even_split(self):
        bounds = contiguous_partition(np.ones(100), 4)
        assert list(bounds) == [0, 25, 50, 75, 100]

    def test_skewed_profile_balances_cost(self):
        # All the cost in the second half: first processors get many
        # cheap lines, later ones few expensive ones.
        profile = np.concatenate([np.full(50, 1.0), np.full(50, 9.0)])
        bounds = contiguous_partition(profile, 2)
        cum = np.cumsum(profile)
        half = cum[-1] / 2
        split = bounds[1]
        # Split within one scanline of the ideal half-cost point.
        ideal = np.searchsorted(cum, half)
        assert abs(split - ideal) <= 1

    def test_v_lo_offset(self):
        bounds = contiguous_partition(np.ones(10), 2, v_lo=100)
        assert bounds[0] == 100 and bounds[-1] == 110

    def test_zero_profile_falls_back_to_uniform(self):
        bounds = contiguous_partition(np.zeros(12), 3)
        assert list(bounds) == [0, 4, 8, 12]

    def test_empty_profile(self):
        bounds = contiguous_partition(np.zeros(0), 3, v_lo=7)
        assert np.all(bounds == 7)

    def test_no_processor_starved_when_enough_lines(self):
        rng = np.random.default_rng(0)
        profile = rng.random(64) ** 4  # highly skewed
        bounds = contiguous_partition(profile, 8)
        assert np.all(partition_sizes(bounds) >= 1)

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            contiguous_partition(np.ones(10), 0)

    def test_all_cost_in_last_line_no_starvation(self):
        # Regression: with the whole cost in the final scanline the
        # cumulative sum hits every cut target only at the last line, so
        # the unclamped searchsorted boundaries all landed on n and the
        # trailing processors got empty partitions.
        profile = np.zeros(10)
        profile[-1] = 100.0
        bounds = contiguous_partition(profile, 4)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert np.all(partition_sizes(bounds) >= 1)

    def test_all_cost_in_last_line_with_offset(self):
        profile = np.zeros(6)
        profile[-1] = 1.0
        bounds = contiguous_partition(profile, 3, v_lo=40)
        assert bounds[0] == 40 and bounds[-1] == 46
        assert np.all(partition_sizes(bounds) >= 1)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 64),
        procs=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_never_starves_property(self, n, procs, seed):
        """Whenever there are at least as many lines as processors, every
        processor gets at least one line — for *any* non-negative profile,
        including ones with all the cost concentrated at either end."""
        rng = np.random.default_rng(seed)
        profile = rng.random(n)
        profile[rng.random(n) < 0.7] = 0.0  # mostly-zero, highly skewed
        bounds = contiguous_partition(profile, procs)
        assert bounds[0] == 0 and bounds[-1] == n
        assert np.all(np.diff(bounds) >= 0)
        if n >= procs:
            assert np.all(partition_sizes(bounds) >= 1)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(8, 300),
        procs=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_balance_property(self, n, procs, seed):
        """Each partition's cost is within one max-scanline of fair share."""
        rng = np.random.default_rng(seed)
        profile = rng.random(n) + 0.01
        bounds = contiguous_partition(profile, procs)
        assert bounds[0] == 0 and bounds[-1] == n
        assert np.all(np.diff(bounds) >= 0)
        total = profile.sum()
        fair = total / procs
        for p in range(procs):
            cost = profile[bounds[p]:bounds[p + 1]].sum()
            assert cost <= fair + profile.max() + 1e-9

    def test_monotone_boundaries(self):
        profile = np.zeros(20)
        profile[0] = 100.0  # all the work in one line
        bounds = contiguous_partition(profile, 5)
        assert np.all(np.diff(bounds) >= 0)

    def test_float_costs_not_truncated(self):
        # Calibrated profiles are fractional seconds.  An int cast would
        # zero them all and silently fall back to the uniform split; the
        # skewed fractional profile below must move the boundary.
        profile = np.full(10, 0.1)
        profile[5:] = 0.9
        bounds = contiguous_partition(profile, 2)
        assert bounds[1] > 5  # not the uniform split point
        # Same split whether a cost arrives as int or equal-valued float.
        ints = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        assert np.array_equal(
            contiguous_partition(ints, 3),
            contiguous_partition(ints.astype(np.float64), 3),
        )

    def test_nan_cost_rejected(self):
        profile = np.ones(10)
        profile[3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            contiguous_partition(profile, 2)


class TestNestedPartition:
    """Two-level shard -> scanline split: the shard service's planner."""

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 128),
        n_shards=st.integers(1, 6),
        n_inner=st.integers(1, 4),
        v_lo=st.integers(0, 50),
        seed=st.integers(0, 1000),
    )
    def test_two_level_split_is_a_cover(self, n, n_shards, n_inner, v_lo,
                                        seed):
        """The composed split covers ``[v_lo, v_lo + n)`` exactly once,
        shard cells nest inside their shard, and whenever there are
        enough scanlines to go around no shard is empty."""
        rng = np.random.default_rng(seed)
        profile = rng.random(n)
        profile[rng.random(n) < 0.5] = 0.0  # skewed, mostly-zero
        outer, inner = nested_contiguous_partition(
            profile, n_shards, n_inner, v_lo=v_lo
        )
        assert outer[0] == v_lo and outer[-1] == v_lo + n
        assert np.all(np.diff(outer) >= 0)
        assert len(inner) == n_shards
        covered = []
        for s in range(n_shards):
            cell = inner[s]
            # Inner boundaries tile exactly the shard's slice.
            assert cell[0] == outer[s] and cell[-1] == outer[s + 1]
            assert np.all(np.diff(cell) >= 0)
            for b in range(n_inner):
                covered.extend(range(int(cell[b]), int(cell[b + 1])))
        # Every scanline lands in exactly one (shard, block) cell.
        assert sorted(covered) == list(range(v_lo, v_lo + n))
        if n >= n_shards:
            assert np.all(partition_sizes(outer) >= 1)  # no empty shard

    def test_fractional_shard_costs_balance(self):
        # All-float profile with the mass at the end: the first shard
        # gets many cheap lines, not half the count.
        profile = np.concatenate([np.full(40, 0.01), np.full(8, 1.0)])
        outer, _ = nested_contiguous_partition(profile, 2, 2)
        assert outer[1] > 30


class TestUniformPartition:
    def test_even_split(self):
        bounds = uniform_contiguous_partition(0, 100, 4)
        assert list(bounds) == [0, 25, 50, 75, 100]

    def test_rounding(self):
        bounds = uniform_contiguous_partition(0, 10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert np.all(np.diff(bounds) >= 3)


class TestLineOwnership:
    def test_interior_lines_owned_by_partition(self):
        bounds = np.array([10, 20, 30, 40])
        owner = line_ownership(bounds, 50)
        assert owner[15] == 0
        assert owner[25] == 1
        assert owner[35] == 2

    def test_boundary_pair_goes_to_smaller_partition(self):
        # Partition 0 has 10 lines, partition 1 has 4: the pair at the
        # boundary (lines 19, 20) belongs to partition 1.
        bounds = np.array([10, 20, 24])
        owner = line_ownership(bounds, 30)
        assert owner[19] == 1
        # Reversed sizes: pair goes to partition 0.
        bounds = np.array([10, 14, 24])
        owner = line_ownership(bounds, 30)
        assert owner[13] == 0

    def test_margins_spread_contiguously(self):
        bounds = np.array([40, 50, 60])
        owner = line_ownership(bounds, 100)
        # Top margin [0, 40) split between the 2 procs in order.
        assert owner[0] == 0
        assert owner[39] == 1
        assert np.all(np.diff(owner[:40]) >= 0)
        # Bottom margin [60, 100) likewise.
        assert owner[60] == 0
        assert owner[99] == 1

    def test_every_line_has_owner(self):
        bounds = np.array([5, 9, 13, 20])
        owner = line_ownership(bounds, 25)
        assert owner.min() >= 0
        assert owner.max() <= 2

    @settings(max_examples=30, deadline=None)
    @given(n_procs=st.integers(1, 8), seed=st.integers(0, 100))
    def test_ownership_total_coverage(self, n_procs, seed):
        rng = np.random.default_rng(seed)
        n_v = 64
        inner = np.sort(rng.choice(np.arange(5, 60), size=n_procs - 1, replace=False)) if n_procs > 1 else np.array([], dtype=int)
        bounds = np.concatenate([[5], inner, [60]]).astype(np.int64)
        owner = line_ownership(bounds, n_v)
        assert len(owner) == n_v
        assert set(np.unique(owner)) <= set(range(n_procs))
