"""Tests for the hardware performance-counter emulation."""

import pytest

from repro.core import OldParallelShearWarp
from repro.datasets import mri_brain
from repro.memsim import origin2000
from repro.memsim.perfcounters import COUNTER_LIMITS, sample_counters
from repro.parallel import simulate_frame
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def report():
    r = ShearWarpRenderer(mri_brain((22, 22, 16)), mri_transfer_function())
    frame = OldParallelShearWarp(r, n_procs=4).render_frame(
        r.view_from_angles(20, 30, 0)
    )
    return simulate_frame(frame, origin2000().scaled(0.002))


class TestCounters:
    def test_counts_match_simulation_totals(self, report):
        c = sample_counters(report)
        assert c.composite.l2_misses == report.composite.stats.total_misses()
        assert c.warp.l2_misses == report.warp.stats.total_misses()
        assert c.composite.cycles == pytest.approx(report.composite.span)

    def test_counters_expose_no_miss_classes(self, report):
        """The point of section 5.5.1: only *counts*, no classes."""
        c = sample_counters(report)
        for phase in c.phases:
            fields = set(phase.__dataclass_fields__)
            assert "l2_misses" in fields
            assert not any("true" in f or "sharing" in f or "conflict" in f
                           for f in fields)

    def test_memory_fraction_coarse_conclusion(self, report):
        c = sample_counters(report)
        assert 0.0 <= c.composite.approx_memory_fraction <= 1.0

    def test_summary_mentions_limitations(self, report):
        text = sample_counters(report).summary()
        for limit in COUNTER_LIMITS:
            assert limit in text

    def test_miss_rate_bounded(self, report):
        c = sample_counters(report)
        assert 0.0 <= c.composite.l2_miss_rate <= 1.0
