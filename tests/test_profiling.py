"""Tests for scanline profiling and the profile schedule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiling import (
    PROFILING_OVERHEAD,
    ProfileSchedule,
    ScanlineProfile,
    scanline_cost,
    scanline_cost_rows,
)
from repro.render import WorkCounters
from repro.render.block import BlockRowCounters


class TestScanlineCost:
    def test_zero_counters_zero_cost(self):
        assert scanline_cost(WorkCounters()) == 0.0

    def test_monotone_in_resamples(self):
        a = WorkCounters(resample_ops=10)
        b = WorkCounters(resample_ops=20)
        assert scanline_cost(b) > scanline_cost(a)

    def test_all_terms_contribute(self):
        base = scanline_cost(WorkCounters())
        for field, val in (("resample_ops", 5), ("run_entries", 5),
                           ("loop_iters", 5), ("pixels_skipped", 5)):
            c = WorkCounters(**{field: val})
            assert scanline_cost(c) > base, field


class TestScanlineCostRows:
    def test_matches_per_row_scanline_cost(self):
        rng = np.random.default_rng(3)
        rows = BlockRowCounters(10, 16)
        for name in ("resample_ops", "run_entries", "loop_iters",
                     "pixels_skipped"):
            getattr(rows, name)[:] = rng.integers(0, 50, size=6)
        out = scanline_cost_rows(rows)
        assert out.dtype == np.float64
        for v in range(10, 16):
            assert out[v - 10] == pytest.approx(scanline_cost(rows.row(v)))

    def test_empty_band(self):
        assert len(scanline_cost_rows(BlockRowCounters(5, 5))) == 0


class TestScanlineProfile:
    def test_cumulative_is_prefix_sum(self):
        p = ScanlineProfile(10, np.array([1.0, 2.0, 3.0]))
        assert list(p.cumulative()) == [1.0, 3.0, 6.0]
        assert p.total == 6.0
        assert p.v_hi == 13

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            ScanlineProfile(0, np.array([1.0, -1.0]))

    def test_trim_empty_strips_margins(self):
        p = ScanlineProfile(5, np.array([0, 0, 3.0, 1.0, 0, 2.0, 0, 0]))
        t = p.trim_empty()
        assert t.v_lo == 7
        assert list(t.costs) == [3.0, 1.0, 0.0, 2.0]

    def test_trim_all_empty(self):
        t = ScanlineProfile(5, np.zeros(4)).trim_empty()
        assert len(t.costs) == 0

    @settings(max_examples=25, deadline=None)
    @given(costs=st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_cumulative_monotone_property(self, costs):
        p = ScanlineProfile(0, np.array(costs))
        cum = p.cumulative()
        assert np.all(np.diff(cum) >= -1e-12)
        assert cum[-1] == pytest.approx(p.total)


class TestProfileSchedule:
    def test_period_one_profiles_everything(self):
        s = ProfileSchedule(period=1)
        for _ in range(4):
            assert s.should_profile()
            s.advance()

    def test_period_k(self):
        s = ProfileSchedule(period=3)
        flags = []
        for _ in range(7):
            flags.append(s.should_profile())
            s.advance()
        assert flags == [True, False, False, True, False, False, True]

    def test_from_rotation_matches_paper_rule(self):
        """Profiles refresh every ~15 degrees of rotation."""
        s = ProfileSchedule.from_rotation(degrees_per_frame=3.0)
        assert s.period == 5
        s = ProfileSchedule.from_rotation(degrees_per_frame=30.0)
        assert s.period == 1

    def test_from_rotation_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ProfileSchedule.from_rotation(0.0)

    def test_overhead_constant_in_paper_range(self):
        assert 0.10 <= PROFILING_OVERHEAD <= 0.15
