"""Tests for the ray-casting baseline and its octree."""

import numpy as np
import pytest

from repro.datasets import mri_brain, solid_sphere
from repro.render import WorkCounters
from repro.render.octree import MinMaxOctree
from repro.render.raycast import (
    RayCastRenderer,
    render_raycast,
    render_raycast_vectorized,
)
from repro.render.serial import ShearWarpRenderer
from repro.transforms import view_matrix
from repro.volume import binary_transfer_function, mri_transfer_function


@pytest.fixture(scope="module")
def sphere_rc():
    return RayCastRenderer.create(solid_sphere((16, 16, 16)), binary_transfer_function(128))


class TestOctree:
    def test_pyramid_shrinks_to_single_cell(self):
        oct_ = MinMaxOctree.build(np.zeros((8, 8, 8), np.float32))
        assert oct_.levels_max[-1].shape == (1, 1, 1)

    def test_max_pooling_is_conservative(self):
        op = np.zeros((8, 8, 8), np.float32)
        op[5, 3, 6] = 0.7
        oct_ = MinMaxOctree.build(op)
        # Every ancestor cell of the hot voxel must be non-empty.
        for level in range(oct_.n_levels):
            assert oct_.cell_max(level, (5, 3, 6)) == pytest.approx(0.7)

    def test_empty_level_finds_coarsest_empty_cell(self):
        op = np.zeros((16, 16, 16), np.float32)
        op[15, 15, 15] = 1.0
        oct_ = MinMaxOctree.build(op)
        # Point far from the hot voxel is inside a large empty cell.
        assert oct_.empty_level((0.5, 0.5, 0.5)) >= 2
        # The hot voxel itself is never empty.
        assert oct_.empty_level((15.0, 15.0, 15.0)) == -1

    def test_skip_exit_advances(self):
        op = np.zeros((16, 16, 16), np.float32)
        oct_ = MinMaxOctree.build(op)
        d = np.array([0.0, 0.0, 1.0])
        o = np.array([1.0, 1.0, 0.0])
        t2 = oct_.skip_exit_t(o, d, 0.0, level=2)
        assert t2 > 3.9  # exits the 4-voxel cell

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            MinMaxOctree.build(np.zeros((4, 4), np.float32))


class TestRayCast:
    def test_sphere_renders_disk(self, sphere_rc):
        final = render_raycast(sphere_rc, np.eye(4))
        cy, cx = final.ny // 2, final.nx // 2
        assert final.alpha[cy, cx] > 0.9
        assert final.alpha[0, 0] == 0.0

    def test_counters_populated(self, sphere_rc):
        c = WorkCounters()
        render_raycast(sphere_rc, np.eye(4), counters=c)
        assert c.ray_steps > 0
        assert c.octree_visits > 0
        assert c.loop_iters > 0

    def test_octree_reduces_samples(self):
        """Space leaping: a mostly-empty volume needs far fewer samples."""
        rc = RayCastRenderer.create(solid_sphere((16, 16, 16), radius=0.25),
                                    binary_transfer_function(128))
        c = WorkCounters()
        render_raycast(rc, np.eye(4), counters=c)
        n_pixels = 18 * 18  # approximate image size
        # Without leaping every ray would take ~16 samples.
        assert c.ray_steps < n_pixels * 16 * 0.6

    def test_vectorized_matches_per_ray(self, sphere_rc):
        view = view_matrix(20, 30, 0, (16, 16, 16))
        a = render_raycast(sphere_rc, view)
        b = render_raycast_vectorized(sphere_rc, view)
        assert a.shape == b.shape
        # The octree path skips only empty space, so images agree closely.
        assert np.allclose(a.alpha, b.alpha, atol=0.02)
        assert np.allclose(a.color, b.color, atol=0.02)

    def test_early_termination(self):
        raw = np.zeros((12, 12, 12), np.uint8)
        raw[:, :, :] = 255  # fully opaque volume
        rc = RayCastRenderer.create(raw, binary_transfer_function(128, opacity=1.0))
        c = WorkCounters()
        render_raycast(rc, np.eye(4), counters=c)
        # Rays terminate after ~1 sample instead of 12.
        assert c.ray_steps < 14 * 14 * 4

    def test_comparable_to_shear_warp(self):
        """Both renderers draw the same brain from the same view."""
        raw = mri_brain((20, 20, 16))
        tf = mri_transfer_function()
        view = view_matrix(15, 25, 0, raw.shape)
        sw = ShearWarpRenderer(raw, tf).render(view).final
        rc = render_raycast_vectorized(RayCastRenderer.create(raw, tf), view)
        # Similar total coverage (projected alpha mass within 25 %).
        assert rc.alpha.sum() == pytest.approx(sw.alpha.sum(), rel=0.25)
