"""Tests for the serial shear-warp renderer (compositing + warp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import empty_volume, mri_brain, solid_sphere
from repro.render import (
    FinalImage,
    IntermediateImage,
    ListTraceSink,
    Region,
    ShearWarpRenderer,
    WorkCounters,
    composite_frame,
    nonempty_scanline_bounds,
    warp_frame,
)
from repro.transforms import view_matrix
from repro.volume import binary_transfer_function, mri_transfer_function


@pytest.fixture(scope="module")
def sphere_renderer():
    return ShearWarpRenderer(solid_sphere((24, 24, 24)), binary_transfer_function(128))


@pytest.fixture(scope="module")
def brain_renderer():
    return ShearWarpRenderer(mri_brain((28, 28, 20)), mri_transfer_function())


class TestCompositing:
    def test_axis_view_sphere_composites_disk(self, sphere_renderer):
        res = sphere_renderer.render(np.eye(4))
        img = res.intermediate
        # The sphere projects to a filled disk of opacity ~1 at the centre.
        cy, cx = img.n_v // 2, img.n_u // 2
        assert img.opacity[cy, cx] > 0.9
        assert img.opacity[0, 0] == 0.0

    def test_opacity_bounded(self, brain_renderer):
        res = brain_renderer.render(view_matrix(20, 30, 0, brain_renderer.shape))
        assert res.intermediate.opacity.max() <= 1.0 + 1e-6
        assert res.intermediate.opacity.min() >= 0.0

    def test_empty_volume_renders_black(self):
        r = ShearWarpRenderer(empty_volume((10, 10, 10)), binary_transfer_function(128))
        res = r.render(view_matrix(15, 25, 5, r.shape))
        assert res.intermediate.opacity.max() == 0.0
        assert res.final.color.max() == 0.0

    def test_front_to_back_occlusion(self):
        """An opaque wall in front hides a wall behind it."""
        raw = np.zeros((8, 8, 8), dtype=np.uint8)
        raw[:, :, 2] = 255  # bright wall nearer z=0
        raw[:, :, 6] = 130  # dimmer wall behind
        r = ShearWarpRenderer(raw, binary_transfer_function(100, opacity=1.0))
        # Identity view: rays go along +z, slice 2 is in front.
        res = r.render(np.eye(4))
        img = res.intermediate
        # Colour should be the front wall's (255-valued) colour everywhere lit.
        lit = img.opacity > 0.5
        assert lit.any()
        expected_front = 255 / 255.0
        assert np.allclose(img.color[lit], expected_front, atol=1e-5)

    def test_early_termination_skips_work(self, sphere_renderer):
        """With an opaque sphere, far slices are skipped."""
        c_on = WorkCounters()
        sphere_renderer.render(np.eye(4), counters=c_on)
        # A sphere of radius 0.7*12 at threshold-1 opacity: most interior
        # pixels saturate after the first slice or two, so resamples must be
        # far fewer than the full n^3 voxel count.
        assert c_on.resample_ops < 24**3 / 2
        assert c_on.pixels_skipped > 0

    def test_restrict_bounds_matches_full(self, brain_renderer):
        view = view_matrix(10, 35, 0, brain_renderer.shape)
        full = brain_renderer.render(view, restrict_bounds=False)
        fast = brain_renderer.render(view, restrict_bounds=True)
        assert np.allclose(full.intermediate.opacity, fast.intermediate.opacity)
        assert np.allclose(full.final.color, fast.final.color)

    def test_nonempty_bounds_bracket_content(self, brain_renderer):
        view = view_matrix(10, 35, 0, brain_renderer.shape)
        fact = brain_renderer.factorize_view(view)
        rle = brain_renderer.rle_for(fact)
        v_lo, v_hi = nonempty_scanline_bounds(rle, fact)
        res = brain_renderer.render(view)
        written = np.nonzero(res.intermediate.opacity.sum(axis=1) > 0)[0]
        assert len(written) > 0
        assert v_lo <= written.min()
        assert v_hi >= written.max() + 1

    def test_counters_accumulate(self, brain_renderer):
        c = WorkCounters()
        brain_renderer.render(view_matrix(0, 20, 0, brain_renderer.shape), counters=c)
        assert c.resample_ops > 0
        assert c.composite_ops == c.resample_ops
        assert c.loop_iters > 0
        assert c.run_entries > 0
        assert c.warp_pixels > 0


class TestWarp:
    def test_warp_identity_view_reproduces_intermediate(self, sphere_renderer):
        """With no rotation the warp is (close to) a translation."""
        res = sphere_renderer.render(np.eye(4))
        inter_mass = res.intermediate.opacity.sum()
        final_mass = res.final.alpha.sum()
        assert final_mass == pytest.approx(inter_mass, rel=0.05)

    def test_rotation_preserves_projected_mass(self, sphere_renderer):
        """A sphere looks the same from any angle (mass within tolerance)."""
        m0 = sphere_renderer.render(np.eye(4)).final.alpha.sum()
        m1 = sphere_renderer.render(
            view_matrix(30, 40, 10, sphere_renderer.shape)
        ).final.alpha.sum()
        assert m1 == pytest.approx(m0, rel=0.1)

    def test_final_image_nonempty_for_content(self, brain_renderer):
        res = brain_renderer.render(view_matrix(25, -30, 15, brain_renderer.shape))
        assert res.final.alpha.max() > 0.3

    @settings(max_examples=15, deadline=None)
    @given(rx=st.floats(-60, 60), ry=st.floats(-60, 60), rz=st.floats(-90, 90))
    def test_render_never_produces_nan_or_overflow(self, rx, ry, rz):
        r = ShearWarpRenderer(solid_sphere((12, 12, 12)), binary_transfer_function(128, 0.8))
        res = r.render(view_matrix(rx, ry, rz, r.shape))
        for arr in (res.intermediate.opacity, res.intermediate.color,
                    res.final.alpha, res.final.color):
            assert np.all(np.isfinite(arr))
        assert res.final.alpha.max() <= 1.0 + 1e-5


class TestTracing:
    def test_trace_regions_cover_pipeline(self, brain_renderer):
        trace = ListTraceSink()
        brain_renderer.render(view_matrix(10, 20, 0, brain_renderer.shape), trace=trace)
        regions = {r[0] for r in trace.records}
        assert Region.RUN_TABLE in regions
        assert Region.VOXEL_DATA in regions
        assert Region.INTERMEDIATE in regions
        assert Region.FINAL in regions

    def test_trace_write_flags(self, brain_renderer):
        trace = ListTraceSink()
        brain_renderer.render(view_matrix(10, 20, 0, brain_renderer.shape), trace=trace)
        # Volume data is read-only; the final image is write-only.
        for region, _, _, write in trace.records:
            if region in (Region.RUN_TABLE, Region.VOXEL_DATA):
                assert not write
            if region == Region.FINAL:
                assert write

    def test_trace_byte_ranges_within_structures(self, brain_renderer):
        view = view_matrix(10, 20, 0, brain_renderer.shape)
        fact = brain_renderer.factorize_view(view)
        rle = brain_renderer.rle_for(fact)
        trace = ListTraceSink()
        res = brain_renderer.render(view, trace=trace)
        from repro.volume import BYTES_PER_RUN, BYTES_PER_VOXEL
        from repro.render import BYTES_PER_PIXEL

        limits = {
            Region.RUN_TABLE: rle.run_lengths.size * BYTES_PER_RUN,
            Region.VOXEL_DATA: rle.voxel_opacity.size * BYTES_PER_VOXEL,
            Region.INTERMEDIATE: res.intermediate.n_v * res.intermediate.n_u * BYTES_PER_PIXEL,
            Region.FINAL: res.final.ny * res.final.nx * BYTES_PER_PIXEL,
        }
        for region, start, nbytes, _ in trace.records:
            assert start >= 0
            assert start + nbytes <= limits[region], region


class TestImages:
    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            IntermediateImage((0, 5))
        with pytest.raises(ValueError):
            FinalImage((5, 0))

    def test_clear_resets(self):
        img = IntermediateImage((4, 4))
        img.opacity[:] = 0.5
        img.clear()
        assert img.opacity.max() == 0.0

    def test_pixel_byte_range(self):
        img = IntermediateImage((4, 10))
        start, nbytes = img.pixel_byte_range(2, 3, 7)
        assert start == (2 * 10 + 3) * 8
        assert nbytes == 4 * 8
