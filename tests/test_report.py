"""Tests for the markdown report assembler."""

from pathlib import Path

from repro.analysis.report import FIGURE_ORDER, collect_results, render_report


class TestReport:
    def test_collect_from_directory(self, tmp_path):
        (tmp_path / "fig04_old_speedups.txt").write_text("TABLE\n")
        results = collect_results(tmp_path)
        assert results == {"fig04_old_speedups": "TABLE"}

    def test_collect_missing_dir(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}

    def test_render_includes_tables_and_flags_missing(self, tmp_path):
        (tmp_path / "fig04_old_speedups.txt").write_text("SPEEDUPS\n")
        text = render_report(tmp_path)
        assert "SPEEDUPS" in text
        assert "*missing" in text  # other figures flagged

    def test_render_includes_unknown_extras(self, tmp_path):
        (tmp_path / "custom_experiment.txt").write_text("EXTRA\n")
        text = render_report(tmp_path)
        assert "custom_experiment" in text and "EXTRA" in text

    def test_figure_order_covers_every_bench_module(self):
        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        modules = {p.stem for p in bench_dir.glob("fig*.py")}
        modules |= {p.stem for p in bench_dir.glob("ablation_*.py")}
        ordered = {name for name, _ in FIGURE_ORDER}
        assert modules <= ordered

    def test_default_dir_resolves_into_repo(self):
        from repro.analysis.report import default_results_dir

        assert default_results_dir().name == "results"
