"""Tests for the event-driven task-stealing scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import ProcSchedule, ScheduleResult, Unit, schedule


def units(costs, start=0):
    return [Unit(uid=start + i, cost=float(c)) for i, c in enumerate(costs)]


class TestBasics:
    def test_single_proc_executes_in_order(self):
        res = schedule([units([3, 1, 2])], allow_stealing=False)
        assert res.procs[0].executed == [0, 1, 2]
        assert res.procs[0].busy == 6.0
        assert res.makespan == 6.0

    def test_no_stealing_makespan_is_max_queue(self):
        res = schedule([units([10]), units([1], start=1)], allow_stealing=False)
        assert res.makespan == 10.0
        assert res.wait_time(1) == 9.0

    def test_every_unit_executed_exactly_once(self):
        q = [units([2, 3, 4]), units([1], start=3), units([5, 5], start=4)]
        res = schedule(q, steal_chunk=1, steal_cost=0.5)
        executed = sorted(u for p in res.procs for u in p.executed)
        assert executed == list(range(6))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            schedule([])
        with pytest.raises(ValueError):
            schedule([units([1])], steal_chunk=0)


class TestStealing:
    def test_idle_proc_steals(self):
        # Proc 1 has nothing; it should steal from proc 0's tail.
        q = [units([1] * 10), []]
        res = schedule(q, steal_chunk=2, steal_cost=0.1)
        assert res.procs[1].steals >= 1
        assert len(res.procs[1].executed) > 0

    def test_stealing_improves_makespan(self):
        q = [units([1] * 20), []]
        with_steal = schedule(q, steal_chunk=2, steal_cost=0.1)
        without = schedule([units([1] * 20), []], allow_stealing=False)
        assert with_steal.makespan < without.makespan

    def test_steal_overhead_charged(self):
        q = [units([1] * 10), []]
        res = schedule(q, steal_chunk=2, steal_cost=5.0)
        assert res.procs[1].steal_overhead >= 5.0
        # Victim pays lock contention too.
        assert res.procs[0].steal_overhead > 0

    def test_fine_grain_stealing_costs_more_sync(self):
        """Paper section 4.4: single-unit steals blow up sync overhead."""
        q1 = [units([1] * 64), [], [], []]
        fine = schedule([list(x) for x in q1], steal_chunk=1, steal_cost=10.0)
        q2 = [units([1] * 64), [], [], []]
        coarse = schedule([list(x) for x in q2], steal_chunk=8, steal_cost=10.0)
        fine_sync = sum(p.steal_overhead for p in fine.procs)
        coarse_sync = sum(p.steal_overhead for p in coarse.procs)
        assert fine_sync > 2 * coarse_sync

    def test_terminates_with_many_idle_procs(self):
        """Regression: steal ping-pong must not livelock."""
        q = [units([5, 5]), [], [], [], [], [], [], []]
        res = schedule(q, steal_chunk=4, steal_cost=1.0)
        assert sorted(u for p in res.procs for u in p.executed) == [0, 1]

    def test_busy_vs_cost_split(self):
        """Unit.cost drives timing; Unit.busy is what's reported."""
        q = [[Unit(0, cost=10.0, busy=4.0)], []]
        res = schedule(q, allow_stealing=False)
        assert res.procs[0].busy == 4.0
        assert res.makespan == 10.0

    @settings(max_examples=40, deadline=None)
    @given(
        n_units=st.integers(1, 60),
        n_procs=st.integers(1, 8),
        chunk=st.integers(1, 8),
        seed=st.integers(0, 99),
    )
    def test_conservation_property(self, n_units, n_procs, chunk, seed):
        """All units run exactly once; busy sums to total cost."""
        import numpy as np

        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.5, 10.0, n_units)
        queues = [[] for _ in range(n_procs)]
        for i, c in enumerate(costs):
            queues[i % n_procs].append(Unit(i, float(c)))
        res = schedule(queues, steal_chunk=chunk, steal_cost=1.0)
        executed = sorted(u for p in res.procs for u in p.executed)
        assert executed == list(range(n_units))
        assert sum(p.busy for p in res.procs) == pytest.approx(costs.sum())
        # Makespan at least the critical path lower bounds.
        assert res.makespan >= costs.max() - 1e-9
        assert res.makespan >= costs.sum() / n_procs - 1e-9

    def test_imbalance_metric(self):
        res = schedule([units([4]), units([4], start=1)], allow_stealing=False)
        assert res.imbalance() == pytest.approx(1.0)
