"""Tests for ``repro.serve`` — the async render-as-a-service front end.

The server-level tests drive a real :class:`RenderServer` over loopback
TCP with :class:`RenderClient` connections, using the tiny ``mri128``
proxy and the thread backend (no fork cost) except where the point *is*
the mp backend's shared memory (the shutdown/no-leak test).  Renders
that must stay in flight deterministically go through a gated
``render_fn`` — the server's injection point — so coalescing and
backpressure are asserted, not raced.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.parallel.mp_backend import MPPoolError, PoolConfig
from repro.serve import (
    AdmissionController,
    CachedFrame,
    FrameCache,
    RenderClient,
    RenderServer,
    ServeConfig,
    ServerBusy,
    canonical_identity,
    request_key,
    response_frames,
)
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_plane,
    encode_plane,
    pack_message,
    unpack_messages,
)

#: Cheapest real workload: tiny proxy volume, one thread-backend worker.
TINY = dict(default_dataset="mri128", default_scale=0.08)


def thread_config(**overrides) -> ServeConfig:
    return ServeConfig(
        pool=PoolConfig(n_procs=1, backend="thread", profile_period=0),
        **TINY,
        **overrides,
    )


def run(coro, timeout=60.0):
    """Drive one async test body with a hang guard."""
    async def guarded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(guarded())


class GatedRender:
    """A ``render_fn`` that blocks on the pool's executor thread until
    released — keeps a render in flight for as long as a test needs."""

    def __init__(self):
        self.calls = 0
        self.release = threading.Event()

    def __call__(self, pool, views):
        self.calls += 1
        assert self.release.wait(30.0), "test forgot to release the gate"
        return RenderServer._pool_render(pool, views)


class TestProtocol:
    def test_roundtrip_across_chunk_boundaries(self):
        msgs = [{"op": "ping"}, {"op": "render", "ry": 30.0, "n": [1, 2]}]
        blob = b"".join(pack_message(m) for m in msgs)
        # Feed the stream one byte at a time: framing must never depend
        # on message boundaries aligning with reads.
        buf = bytearray()
        seen = []
        for i in range(len(blob)):
            buf += blob[i:i + 1]
            got, buf = unpack_messages(buf)
            seen.extend(got)
        assert seen == msgs

    def test_rejects_oversized_frame(self):
        header = (MAX_MESSAGE_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            unpack_messages(bytearray(header))

    def test_plane_roundtrip_is_exact_and_readonly(self):
        plane = np.random.default_rng(0).random((7, 5)).astype(np.float32)
        out = decode_plane(encode_plane(plane))
        assert out.dtype == np.float32 and out.shape == plane.shape
        assert np.array_equal(out, plane)
        with pytest.raises(ValueError):
            out[0, 0] = 1.0

    def test_request_key_is_canonical(self):
        a = canonical_identity("mri128", 0.12, ["binary", 60, 0.8],
                              (20.0, 30.0, 0.0), "block")
        b = canonical_identity("mri128", 0.12, ("binary", 60.0, 0.8),
                              (20, 30, 0), "block")
        assert request_key(a) == request_key(b)
        c = canonical_identity("mri128", 0.12, "mri",
                              (20.0, 30.0, 0.0), "block")
        assert request_key(c) != request_key(a)


class TestAdmission:
    def test_bounds_inflight_with_typed_rejection(self):
        adm = AdmissionController(2)
        adm.acquire()
        adm.acquire()
        with pytest.raises(ServerBusy):
            adm.acquire()
        # ServerBusy slots into the pool's typed-error hierarchy so
        # clients catch it alongside FrameFailed and friends.
        assert issubclass(ServerBusy, MPPoolError)
        adm.release()
        adm.acquire()  # slot freed


class TestFrameCache:
    def _frame(self, seed):
        rng = np.random.default_rng(seed)
        return CachedFrame.from_planes(
            rng.random((4, 4)).astype(np.float32),
            rng.random((4, 4)).astype(np.float32),
        )

    def test_content_address_distinguishes_frames(self):
        a, b = self._frame(0), self._frame(1)
        assert a.sha256 != b.sha256
        again = CachedFrame.from_planes(np.array(a.color), np.array(a.alpha))
        assert again.sha256 == a.sha256
        with pytest.raises(ValueError):
            a.color[0, 0] = 1.0

    def test_lru_eviction_and_counters(self):
        cache = FrameCache(capacity=2)
        f = {k: self._frame(k) for k in range(3)}
        cache.put("a", f[0])
        cache.put("b", f[1])
        assert cache.get("a") is f[0]  # "a" now most recent
        cache.put("c", f[2])  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is f[0] and cache.get("c") is f[2]
        assert cache.hits == 3 and cache.misses == 1


class TestServer:
    def test_coalescing_is_bit_identical(self):
        """Identical in-flight requests share ONE pool render."""
        gate = GatedRender()
        server = RenderServer(thread_config(), render_fn=gate)

        async def body():
            async with server:
                host, port = server.address
                c1 = await RenderClient.connect(host, port)
                c2 = await RenderClient.connect(host, port)
                req = {"op": "render", "ry": 30.0}
                t1 = asyncio.ensure_future(c1.request(dict(req)))
                # Leader registered: any identical request now coalesces.
                while not server._pending:
                    await asyncio.sleep(0.005)
                t2 = asyncio.ensure_future(c2.request(dict(req)))
                while server.metrics.counter("serve/coalesced").value < 1:
                    await asyncio.sleep(0.005)
                gate.release.set()
                r1, r2 = await asyncio.gather(t1, t2)
                await c1.close()
                await c2.close()
                return r1, r2

        r1, r2 = run(body())
        assert r1["status"] == r2["status"] == "ok"
        assert gate.calls == 1
        assert server.metrics.counters["serve/pool_renders"].value == 1
        assert sorted([r1["coalesced"], r2["coalesced"]]) == [False, True]
        assert r1["frames"][0]["sha256"] == r2["frames"][0]["sha256"]
        (c1_, a1), = response_frames(r1)
        (c2_, a2), = response_frames(r2)
        assert np.array_equal(c1_, c2_) and np.array_equal(a1, a2)

    def test_backpressure_rejects_with_server_busy(self):
        """Beyond max_inflight, a *distinct* request is rejected
        immediately with the typed error name on the wire."""
        gate = GatedRender()
        server = RenderServer(thread_config(max_inflight=1),
                              render_fn=gate)

        async def body():
            async with server:
                host, port = server.address
                c1 = await RenderClient.connect(host, port)
                c2 = await RenderClient.connect(host, port)
                t1 = asyncio.ensure_future(
                    c1.request({"op": "render", "ry": 30.0}))
                while not server._pending:
                    await asyncio.sleep(0.005)
                # Different identity: no coalesce, no cache — must render,
                # and the only admission slot is taken.
                busy = await c2.request({"op": "render", "ry": 99.0})
                gate.release.set()
                ok = await t1
                await c1.close()
                await c2.close()
                return ok, busy

        ok, busy = run(body())
        assert ok["status"] == "ok"
        assert busy["status"] == "error"
        assert busy["error"] == "ServerBusy"
        assert server.metrics.counters["serve/rejected"].value == 1

    def test_cache_keys_include_classification(self):
        """Same view, different transfer function: distinct frames and
        no false cache hit; repeats of each are served from cache."""
        server = RenderServer(thread_config())

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                mri = {"op": "render", "ry": 30.0, "classification": "mri"}
                binary = {"op": "render", "ry": 30.0,
                          "classification": ["binary", 60.0, 0.8]}
                r_mri = await c.request(mri)
                r_bin = await c.request(binary)
                r_mri2 = await c.request(dict(mri))
                r_bin2 = await c.request(dict(binary))
                await c.close()
                return r_mri, r_bin, r_mri2, r_bin2

        r_mri, r_bin, r_mri2, r_bin2 = run(body())
        assert all(r["status"] == "ok"
                   for r in (r_mri, r_bin, r_mri2, r_bin2))
        assert not r_mri["cached"] and not r_bin["cached"]
        # The classification reaches the cache key: different pixels.
        assert r_mri["frames"][0]["sha256"] != r_bin["frames"][0]["sha256"]
        assert r_mri2["cached"] and r_bin2["cached"]
        assert r_mri2["frames"][0]["sha256"] == r_mri["frames"][0]["sha256"]
        assert r_bin2["frames"][0]["sha256"] == r_bin["frames"][0]["sha256"]
        (c_a, _), = response_frames(r_mri)
        (c_b, _), = response_frames(r_mri2)
        assert np.array_equal(c_a, c_b)

    def test_animation_frames_cache_individually(self):
        """An animate batch fills the frame cache one frame at a time, so
        a later single-view request for any of its frames hits."""
        server = RenderServer(thread_config())

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                anim = await c.request({"op": "animate", "frames": 3,
                                        "ry": 30.0, "ry_step": 3.0})
                # Frame 1 of the animation == ry 33.0 as a single view.
                single = await c.request({"op": "render", "ry": 33.0})
                await c.close()
                return anim, single

        anim, single = run(body())
        assert anim["status"] == "ok" and len(anim["frames"]) == 3
        assert single["cached"] is True
        assert single["frames"][0]["sha256"] == anim["frames"][1]["sha256"]
        assert server.metrics.counters["serve/pool_renders"].value == 1

    def test_movie_op_serves_timestepped_frames(self):
        """The movie op weaves a timestep into each frame identity, the
        frames match the per-timestep serial reference bit for bit, and
        the encoded-frame counter ticks."""
        server = RenderServer(ServeConfig(
            pool=PoolConfig(n_procs=1, backend="thread", profile_period=0),
            default_dataset="beating_heart", default_scale=0.5,
        ))

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                movie = await c.request({"op": "movie", "frames": 4,
                                         "timesteps": 2, "ry": 30.0,
                                         "ry_step": 0.0})
                again = await c.request({"op": "movie", "frames": 4,
                                         "timesteps": 2, "ry": 30.0,
                                         "ry_step": 0.0})
                await c.close()
                return movie, again

        movie, again = run(body())
        assert movie["status"] == "ok" and len(movie["frames"]) == 4
        shas = [f["sha256"] for f in movie["frames"]]
        # ry_step 0: every frame shares the view, timesteps alternate
        # 0,1,0,1 — so neighbors differ (the timestep reaches the
        # pixels) and frames two apart are the same volume again.
        assert shas[0] != shas[1]
        assert shas[0] == shas[2] and shas[1] == shas[3]
        # The timestep reaches the cache key too, so the repeat hits.
        assert again["cached"] is True
        assert server.metrics.counters["movie/frames_encoded"].value == 8

        from repro.movie import beating_heart_renderer
        from repro.render.fast import render_fast
        from repro.serve.server import DEFAULT_MOVIE_TIMESTEPS

        r = beating_heart_renderer(0.5, timesteps=DEFAULT_MOVIE_TIMESTEPS)
        view = r.view_from_angles(20.0, 30.0, 0.0)
        for i, (color, alpha) in enumerate(response_frames(movie)):
            ref = render_fast(r, view, timestep=i % 2)
            assert np.array_equal(color, ref.final.color)
            assert np.array_equal(alpha, ref.final.alpha)

    def test_render_matches_serial_reference(self):
        """What comes off the wire is the renderer's own image."""
        server = RenderServer(thread_config())

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                resp = await c.request({"op": "render", "rx": 20.0,
                                        "ry": 30.0, "rz": 0.0})
                await c.close()
                return resp

        resp = run(body())
        (color, alpha), = response_frames(resp)
        from repro.serve.server import _default_renderer_factory

        renderer = _default_renderer_factory("mri128", 0.08, "mri")
        ref = renderer.render(renderer.view_from_angles(20.0, 30.0, 0.0))
        assert np.allclose(color, ref.final.color, atol=1e-5)
        assert np.allclose(alpha, ref.final.alpha, atol=1e-5)

    def test_bad_requests_get_typed_errors_not_disconnects(self):
        server = RenderServer(thread_config())

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                bad_op = await c.request({"op": "explode"})
                bad_cls = await c.request({"op": "render",
                                           "classification": "nope"})
                ping = await c.request({"op": "ping"})  # conn still alive
                await c.close()
                return bad_op, bad_cls, ping

        bad_op, bad_cls, ping = run(body())
        assert bad_op["status"] == "error"
        assert bad_cls["status"] == "error"
        assert bad_cls["error"] == "ValueError"
        assert ping["status"] == "ok"

    def test_shutdown_op_can_be_disabled(self):
        server = RenderServer(thread_config(allow_shutdown=False))

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                resp = await c.request({"op": "shutdown"})
                await c.close()
                return resp

        resp = run(body())
        assert resp["status"] == "error"
        assert resp["error"] == "PermissionError"


class TestIdlePoolEviction:
    def test_validation(self):
        with pytest.raises(ValueError, match="idle_pool_s"):
            thread_config(idle_pool_s=0.0)

    def test_idle_pool_is_evicted_and_rebuilt(self):
        """A pool idle past ``idle_pool_s`` is closed and forgotten; the
        next request for its identity transparently rebuilds it."""
        server = RenderServer(thread_config(idle_pool_s=0.05))

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                r1 = await c.request({"op": "render", "ry": 30.0})
                assert r1["status"] == "ok" and server._pools
                # The sweeper runs every idle_pool_s / 4: the idle pool
                # must disappear without any further requests.
                for _ in range(400):
                    if not server._pools:
                        break
                    await asyncio.sleep(0.01)
                evicted = server.metrics.counter("serve/pools_evicted").value
                pools_gone = not server._pools
                # A distinct view (cache miss) forces a fresh pool.
                r2 = await c.request({"op": "render", "ry": 33.0})
                await c.close()
                return pools_gone, evicted, r2

        pools_gone, evicted, r2 = run(body())
        assert pools_gone
        assert evicted >= 1
        assert r2["status"] == "ok"
        assert server.metrics.counters["serve/pool_renders"].value == 2

    def test_busy_pool_survives_the_sweeper(self):
        """A pool with a render in flight is never evicted, no matter
        how long the render outlives ``idle_pool_s``."""
        gate = GatedRender()
        server = RenderServer(thread_config(idle_pool_s=0.05),
                              render_fn=gate)

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                t = asyncio.ensure_future(
                    c.request({"op": "render", "ry": 30.0}))
                while not server._pools:
                    await asyncio.sleep(0.005)
                # Several sweep periods pass while the render is gated.
                await asyncio.sleep(0.3)
                still_there = bool(server._pools)
                evicted = server.metrics.counter("serve/pools_evicted").value
                gate.release.set()
                resp = await t
                await c.close()
                return still_there, evicted, resp

        still_there, evicted, resp = run(body())
        assert still_there
        assert evicted == 0
        assert resp["status"] == "ok"


class TestShardedServe:
    def test_server_drives_a_shard_fleet(self):
        """``pool.shards > 1`` makes the server's pool a shard fleet;
        nothing else about the serving path changes."""
        cfg = ServeConfig(
            pool=PoolConfig(n_procs=1, backend="thread", shards=2,
                            profile_period=0),
            **TINY,
        )
        server = RenderServer(cfg)
        from repro.shard import ShardedRenderService

        async def body():
            async with server:
                host, port = server.address
                c = await RenderClient.connect(host, port)
                resp = await c.request({"op": "render", "rx": 20.0,
                                        "ry": 30.0, "rz": 0.0})
                kinds = [type(pool) for pool, _ in server._pools.values()]
                await c.close()
                return resp, kinds

        resp, kinds = run(body())
        assert resp["status"] == "ok"
        assert kinds == [ShardedRenderService]
        (color, alpha), = response_frames(resp)
        from repro.serve.server import _default_renderer_factory

        renderer = _default_renderer_factory("mri128", 0.08, "mri")
        ref = renderer.render(renderer.view_from_angles(20.0, 30.0, 0.0))
        assert np.allclose(color, ref.final.color, atol=1e-5)
        assert np.allclose(alpha, ref.final.alpha, atol=1e-5)


class TestShutdownNoLeak:
    def test_close_releases_every_shm_segment(self):
        """The mp pools' shared-memory segments are unlinked by
        ``server.close()`` — no leak even with a client connected."""
        cfg = ServeConfig(
            pool=PoolConfig(n_procs=2, profile_period=0), **TINY
        )
        server = RenderServer(cfg)

        async def body():
            await server.start()
            host, port = server.address
            c = await RenderClient.connect(host, port)
            resp = await c.request({"op": "render", "ry": 30.0})
            assert resp["status"] == "ok"
            names = []
            for pool, _ in server._pools.values():
                names += [pool._shm_i.name, pool._shm_f.name]
            # Deliberately close the server with the client still
            # connected: teardown must not depend on polite clients.
            await server.close()
            await c.close()
            return names

        names = run(body())
        assert names, "the render must have created an mp pool"
        from multiprocessing import shared_memory as sm

        for name in names:
            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)
