"""Tests for the sharded multi-pool render service.

The contract under test is the one the merge tree is built on: for any
shard count, backend, kernel and stealing mode, the merged frame is
bit-identical to the serial renderer — including while one shard's
worker set is being killed and recovered, and while the shard-level
feedback loop is moving the shard boundaries between frames.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

import repro
import repro.parallel.mp_backend as mpb
from repro.datasets import mri_brain
from repro.parallel.mp_backend import PoolConfig
from repro.render import ShearWarpRenderer
from repro.shard import (
    ShardConfig,
    ShardedRenderService,
    merge_schedule,
)
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


def _views(renderer, n):
    return [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n)]


def _assert_bit_identical(renderer, views, results):
    for view, res in zip(views, results):
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)


class TestBitIdentity:
    """Merged output == serial output, across the configuration matrix."""

    @pytest.mark.parametrize(
        "backend,shards,stealing,kernel",
        [
            ("mp", 1, True, "block"),
            ("mp", 2, True, "block"),
            ("mp", 2, False, "scanline"),
            ("mp", 4, False, "block"),
            ("thread", 2, True, "scanline"),
            ("thread", 2, False, "block"),
            ("thread", 4, True, "block"),
        ],
    )
    def test_matrix(self, renderer, backend, shards, stealing, kernel):
        views = _views(renderer, 3)
        cfg = PoolConfig(n_procs=2, shards=shards, stealing=stealing,
                         backend=backend, kernel=kernel, profile_period=2)
        with ShardedRenderService(renderer, cfg) as svc:
            results = svc.render_animation(views)
            merges = svc.metrics.counter("shard/merges").value
        _assert_bit_identical(renderer, views, results)
        # A binary merge tree over N shards does N - 1 merges per frame.
        assert merges == (shards - 1) * len(views)

    def test_intermediate_matches_serial(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=0)
        ) as svc:
            res = svc.render(view)
        assert np.array_equal(res.intermediate.color, ref.intermediate.color)
        assert np.array_equal(res.intermediate.opacity, ref.intermediate.opacity)

    def test_result_shape_matches_pool_result(self, renderer):
        """The merged result duck-types a single pool's MPRenderResult."""
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=2)
        ) as svc:
            res = svc.render(renderer.view_from_angles(20, 30, 0))
            assert svc.n_procs == 4
        assert res.n_procs == 4
        assert len(res.busy_s) == 2  # one busy total per shard
        assert not res.degraded and res.retries == 0


class TestShardConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="shard"):
            ShardConfig(shards=0)
        with pytest.raises(ValueError, match="shard_pools"):
            ShardConfig(shards=3, shard_pools=(PoolConfig(), PoolConfig()))

    def test_config_and_overrides_is_an_error(self, renderer):
        with pytest.raises(TypeError, match="overrides"):
            ShardedRenderService(renderer, ShardConfig(shards=2), n_procs=2)

    def test_pool_config_strips_shards(self):
        scfg = ShardConfig(shards=3, pool=PoolConfig(shards=3, n_procs=2))
        for s in range(3):
            assert scfg.pool_config(s).shards == 1

    def test_heterogeneous_fleet_bit_identical(self, renderer):
        """An mp pool and a thread pool can serve one frame together."""
        views = _views(renderer, 2)
        scfg = ShardConfig(
            shards=2,
            shard_pools=(
                PoolConfig(n_procs=2, backend="mp", profile_period=2),
                PoolConfig(n_procs=2, backend="thread", profile_period=2),
            ),
        )
        with ShardedRenderService(renderer, scfg) as svc:
            results = svc.render_animation(views)
        _assert_bit_identical(renderer, views, results)


class TestMergeSchedule:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_every_shard_merges_into_root_exactly_once(self, n):
        steps = [s for rnd in merge_schedule(n) for s in rnd]
        assert len(steps) == n - 1
        # Each non-root shard appears as a source exactly once...
        assert sorted(src for _, src, _ in steps) == list(range(1, n))
        # ...and the subtrees merged into the root tile [1, n) exactly:
        # every shard's owned pixels reach framebuffer 0 exactly once.
        root = sorted(
            s for dst, src, span in steps if dst == 0
            for s in range(src, src + span)
        )
        assert root == list(range(1, n))

    def test_rounds_are_logarithmic(self):
        # Distance between partners doubles per round: ceil(log2(n)) rounds.
        rounds = merge_schedule(8)
        assert len(rounds) == 3
        gaps = [src - dst for rnd in rounds for dst, src, _ in rnd]
        assert gaps == [1, 1, 1, 1, 2, 2, 4]
        # Steps within one round touch disjoint framebuffers.
        for rnd in rounds:
            touched = [i for dst, src, _ in rnd for i in (dst, src)]
            assert len(touched) == len(set(touched))


class TestFacade:
    def test_open_pool_dispatches_on_shards(self, renderer):
        with repro.open_pool(renderer, n_procs=2, shards=2) as svc:
            assert isinstance(svc, ShardedRenderService)
            view = renderer.view_from_angles(20, 30, 0)
            res = svc.render(view)
        ref = renderer.render(view)
        assert np.array_equal(res.final.color, ref.final.color)

    def test_open_pool_accepts_shard_config(self, renderer):
        scfg = ShardConfig(shards=2, pool=PoolConfig(n_procs=2))
        with repro.open_pool(renderer, scfg) as svc:
            assert isinstance(svc, ShardedRenderService)
            assert svc.n_shards == 2

    def test_render_frame_with_shards(self, renderer):
        view = renderer.view_from_angles(20, 30, 0)
        ref = renderer.render(view)
        res = repro.render_frame(renderer, view, n_procs=2, shards=2)
        assert np.array_equal(res.final.color, ref.final.color)

    def test_top_level_exports(self):
        assert repro.ShardConfig is ShardConfig
        assert repro.ShardedRenderService is ShardedRenderService


class TestReshardFeedback:
    """The section 4.2-4.3 loop one level up: profiles move shard bounds."""

    def test_profiled_frames_reshard(self, renderer):
        views = _views(renderer, 4)
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=2)
        ) as svc:
            results = svc.render_animation(views)
            reshards = svc.metrics.counter("shard/reshards").value
            assert svc._planner.profile is not None
        _assert_bit_identical(renderer, views, results)
        # profile_period=2 over 4 frames -> profiled frames 0 and 2 both
        # stitched a cross-shard profile back into the shard planner.
        assert reshards == 2

    def test_axis_switch_invalidates_shard_profile(self, renderer):
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=1)
        ) as svc:
            svc.render(renderer.view_from_angles(5, 5, 0))    # axis A
            svc.render(renderer.view_from_angles(85, 5, 0))   # axis flip
            inval = svc.metrics.counter("shard/reshard_invalidations").value
        assert inval >= 1

    def test_busy_feedback_shrinks_a_slowed_shard(self, renderer,
                                                  monkeypatch):
        """Injected interference on shard 0: op counts can't see it, the
        busy-calibrated profile can — the re-shard shrinks its band."""
        monkeypatch.setenv("REPRO_SHARD_ROW_DELAY", "0:0:0.005")
        views = _views(renderer, 4)
        with ShardedRenderService(
            renderer,
            PoolConfig(n_procs=2, shards=2, stealing=False, profile_period=2),
        ) as svc:
            results = [svc.render(v) for v in views]

        def mid_fraction(res):
            lo, mid, hi = (int(res.boundaries[i]) for i in (0, 1, 2))
            return (mid - lo) / max(1, hi - lo)

        # Frame 0 runs on the uniform split; the busy-calibrated
        # re-shard it feeds back must hand the slowed shard a smaller
        # band for the rest of the animation.
        assert mid_fraction(results[-1]) < mid_fraction(results[0]) - 0.1
        _assert_bit_identical(renderer, views, results)

    def test_bit_identical_under_injected_shard_delay(self, renderer,
                                                      monkeypatch):
        """The chaos knob slows one shard; pixels must not change."""
        monkeypatch.setenv("REPRO_SHARD_ROW_DELAY", "0:0:0.002")
        views = _views(renderer, 3)
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=2)
        ) as svc:
            results = svc.render_animation(views)
        _assert_bit_identical(renderer, views, results)


class TestShardFaultIsolation:
    """Kill one shard's worker mid-animation: siblings never restart."""

    def test_sigkill_one_shard_worker(self, renderer, monkeypatch):
        # Slow shard 1 down so frames are still in flight when the
        # signal lands (the same knob the single-pool kill test uses).
        # The delay and frame count give the animation a wall clock of
        # a second or more, so the early kill cannot race completion.
        monkeypatch.setenv("REPRO_SHARD_ROW_DELAY", "1:0:0.01")
        views = _views(renderer, 8)
        results = []
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=0)
        ) as svc:
            t = threading.Thread(
                target=lambda: results.extend(svc.render_animation(views))
            )
            t.start()
            time.sleep(0.25)
            os.kill(svc._pools[1]._workers[0].pid, signal.SIGKILL)
            t.join(90.0)
            assert not t.is_alive()
            per_shard = svc.shard_fault_counters()
            total = svc.fault_counters()
        _assert_bit_identical(renderer, views, results)
        # The kill was recovered entirely inside shard 1's pool.
        assert per_shard[1]["worker_restarts"] >= 1
        assert per_shard[0]["worker_restarts"] == 0
        assert total["worker_restarts"] == per_shard[1]["worker_restarts"]

    def test_concurrent_recovery_in_every_shard(self, renderer, monkeypatch):
        # Arm the deterministic fault hook before the pools fork: worker
        # 0 of *every* shard SIGKILLs itself at frame 1, so both
        # supervisors respawn their worker sets at the same time.  The
        # respawns stage worker state in the module-global ``_G`` before
        # forking; without the spawn lock the two recoveries could
        # interleave and fork one pool's workers against the other
        # pool's queues and barrier (an intermittent cross-pool wedge).
        monkeypatch.setattr(mpb, "_TEST_FAULT", (0, 1, "kill", "composite"))
        views = _views(renderer, 4)
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, profile_period=2)
        ) as svc:
            results = svc.render_animation(views)
            per_shard = svc.shard_fault_counters()
        _assert_bit_identical(renderer, views, results)
        assert all(c["worker_restarts"] >= 1 for c in per_shard)


class TestTrace:
    def test_shard_trace_exports_and_validates(self, renderer, tmp_path):
        views = _views(renderer, 2)
        with ShardedRenderService(
            renderer,
            PoolConfig(n_procs=2, shards=2, profile_period=2, trace=True),
        ) as svc:
            results = svc.render_animation(views)
            merge_track = sum(p.n_procs + 1 for p in svc._pools)
            path = tmp_path / "shard_trace.json"
            svc.export_chrome_trace(str(path), metadata={"note": "test"})
        _assert_bit_identical(renderer, views, results)
        from repro.obs import load_chrome_trace, validate_chrome_trace
        trace = load_chrome_trace(str(path))
        assert validate_chrome_trace(trace) == []
        meta = trace["otherData"]
        assert meta["backend"] == "shard"
        assert int(meta["shards"]) == 2
        assert int(meta["shard/merges"]) >= 1
        assert meta["note"] == "test"
        # Merge spans live on their own track, above every pool's.
        merge_spans = [
            ev for ev in trace["traceEvents"]
            if ev.get("name") == "merge" and ev.get("ph") == "X"
        ]
        assert merge_spans
        assert all(ev["tid"] == merge_track for ev in merge_spans)

    def test_untraced_service_refuses_export(self, renderer, tmp_path):
        with ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2)
        ) as svc:
            with pytest.raises(RuntimeError, match="trace"):
                svc.export_chrome_trace(str(tmp_path / "x.json"))


class TestNoLeaks:
    def test_close_unlinks_framebuffers_and_pools(self, renderer):
        svc = ShardedRenderService(
            renderer, PoolConfig(n_procs=2, shards=2, backend="mp")
        )
        names = [fb._shm.name for fb in svc._fbs]
        names += [p._shm_i.name for p in svc._pools]
        svc.render(renderer.view_from_angles(20, 30, 0))
        svc.close()
        svc.close()  # idempotent
        from multiprocessing import shared_memory as sm
        for name in names:
            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)


class TestMultiPoolBarrierRegression:
    """Two live mp pools must not alias barrier state (use-after-free).

    Constructing a second pool while the first is rendering used to
    reuse the first barrier's freed shared-heap block, wedging both
    pools' workers mid-frame.  Six lockstep frames across two pools
    reproduce the original hang within a few runs if the parent ever
    drops its barrier reference.
    """

    def test_two_pools_in_lockstep(self, renderer):
        views = _views(renderer, 6)
        cfg = PoolConfig(n_procs=2, shards=2, stealing=False,
                         profile_period=2)
        with ShardedRenderService(renderer, cfg) as svc:
            results = svc.render_animation(views)
        _assert_bit_identical(renderer, views, results)
