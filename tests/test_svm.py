"""Tests for the shared-virtual-memory (HLRC) platform model."""

import numpy as np
import pytest

from repro.core import NewParallelShearWarp, OldParallelShearWarp
from repro.datasets import mri_brain
from repro.memsim.svm import SVMConfig, SVMSimulator, simulate_frame_svm
from repro.render import ShearWarpRenderer
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((24, 24, 18)), mri_transfer_function())


@pytest.fixture(scope="module")
def cfg():
    return SVMConfig().scaled(0.1)


def run_animation(renderer, algorithm, n_procs, cfg, n_frames=3):
    views = [renderer.view_from_angles(20, 30 + 3 * i, 0) for i in range(n_frames)]
    factory = (OldParallelShearWarp if algorithm == "old" else NewParallelShearWarp)(
        renderer, n_procs
    )
    sim = SVMSimulator(cfg, n_procs)
    rep = None
    for v in views:
        rep = simulate_frame_svm(factory.render_frame(v), cfg, sim)
    return rep


class TestProtocol:
    def test_first_touch_homes_do_not_fault(self, cfg):
        sim = SVMSimulator(cfg, 2)
        faults, fetched, diffs = sim.run_interval(
            reads=[{}, {}], writes=[{1: 100}, {2: 100}]
        )
        assert faults.sum() == 0
        assert diffs.sum() == 0  # both are home of what they wrote

    def test_reader_faults_after_remote_write(self, cfg):
        sim = SVMSimulator(cfg, 2)
        sim.run_interval(reads=[{}, {}], writes=[{7: 64}, {}])  # p0 homes page 7
        faults, fetched, _ = sim.run_interval(reads=[{}, {7: 64}], writes=[{}, {}])
        assert faults[1] == 1
        assert fetched[1] == cfg.page_bytes

    def test_reader_does_not_fault_twice_without_new_writes(self, cfg):
        sim = SVMSimulator(cfg, 2)
        sim.run_interval(reads=[{}, {}], writes=[{7: 64}, {}])
        sim.run_interval(reads=[{}, {7: 64}], writes=[{}, {}])
        faults, _, _ = sim.run_interval(reads=[{}, {7: 64}], writes=[{}, {}])
        assert faults[1] == 0

    def test_write_to_non_home_page_makes_diff(self, cfg):
        sim = SVMSimulator(cfg, 2)
        sim.run_interval(reads=[{}, {}], writes=[{7: 64}, {}])
        _, _, diffs = sim.run_interval(reads=[{}, {}], writes=[{}, {7: 64}])
        assert diffs[1] == 1

    def test_multi_writer_page_invalidates_both(self, cfg):
        sim = SVMSimulator(cfg, 3)
        sim.run_interval(reads=[{}, {}, {}], writes=[{9: 10}, {}, {}])  # home p0
        sim.run_interval(reads=[{}, {}, {}], writes=[{9: 10}, {9: 10}, {}])
        # Next frame both writers touch it again: the non-home one faults.
        faults, _, _ = sim.run_interval(
            reads=[{}, {}, {}], writes=[{9: 10}, {9: 10}, {}]
        )
        assert faults[1] == 1
        assert faults[0] == 0  # home always current

    def test_mismatched_procs_rejected(self, renderer, cfg):
        frame = OldParallelShearWarp(renderer, 2).render_frame(
            renderer.view_from_angles(20, 30, 0)
        )
        with pytest.raises(ValueError):
            simulate_frame_svm(frame, cfg, SVMSimulator(cfg, 4))


class TestFrameSimulation:
    def test_breakdown_structure(self, renderer, cfg):
        rep = run_animation(renderer, "old", 4, cfg)
        b = rep.breakdown()
        for key in ("compute", "data", "barrier", "lock", "total"):
            assert key in b
            assert b[key] >= 0
        assert rep.total_time > 0

    def test_new_less_communication_time_than_old(self, renderer, cfg):
        """Contiguous identical partitions => less page-communication
        time (data + barrier).  Raw fault counts can tie at tiny test
        volumes where every page spans several partitions; the *cost*
        comparison is the paper's claim (Figures 21/22)."""
        old = run_animation(renderer, "old", 4, cfg)
        new = run_animation(renderer, "new", 4, cfg)
        old_comm = old.breakdown()["data"] + old.breakdown()["barrier"]
        new_comm = new.breakdown()["data"] + new.breakdown()["barrier"]
        assert new_comm < old_comm

    def test_new_faster_than_old(self, renderer, cfg):
        old = run_animation(renderer, "old", 4, cfg)
        new = run_animation(renderer, "new", 4, cfg)
        assert new.total_time < old.total_time

    def test_old_pays_two_barriers(self, renderer, cfg):
        """Old: composite|barrier|warp|barrier; new: one interval."""
        old = run_animation(renderer, "old", 4, cfg)
        new = run_animation(renderer, "new", 4, cfg)
        assert old.breakdown()["barrier"] > new.breakdown()["barrier"]

    def test_single_proc_has_no_communication(self, renderer, cfg):
        rep = run_animation(renderer, "old", 1, cfg)
        assert rep.faults.sum() == 0  # steady state: everything local

    def test_scaled_config(self):
        base = SVMConfig()
        s = base.scaled(0.25)
        assert s.page_bytes < base.page_bytes
        assert s.fault_cycles < base.fault_cycles
        assert s.page_bytes % 64 == 0

    def test_rejects_zero_procs(self, cfg):
        with pytest.raises(ValueError):
            SVMSimulator(cfg, 0)
