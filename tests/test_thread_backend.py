"""The threading backend: no fork, no pickling, no copies — same pixels.

:class:`ThreadRenderPool` must be bit-identical to the serial renderer
(and therefore to the MP pool) across kernels, stealing, and batched vs
per-frame submission, and must keep the MP pool's error contract
(retry / degrade / FrameFailed) without any process machinery.
"""

import threading

import numpy as np
import pytest

import repro
import repro.parallel.mp_backend as mpb
import repro.parallel.thread_backend as tb
from repro.datasets import mri_brain
from repro.parallel.mp_backend import FrameFailed, PoolClosed, PoolConfig
from repro.parallel.thread_backend import ThreadRenderPool, render_parallel_threads
from repro.render import ShearWarpRenderer
from repro.render.fast import render_fast
from repro.volume import mri_transfer_function


@pytest.fixture(scope="module")
def renderer():
    return ShearWarpRenderer(mri_brain((20, 20, 16)), mri_transfer_function())


def _views(renderer, n=5):
    return [renderer.view_from_angles(20, 30 + 4 * i, 2 * i) for i in range(n)]


def _assert_identical(res, refs):
    assert len(res) == len(refs)
    for ref, got in zip(refs, res):
        assert np.array_equal(got.final.color, ref.final.color)
        assert np.array_equal(got.final.alpha, ref.final.alpha)
        assert np.array_equal(got.intermediate.color, ref.intermediate.color)
        assert np.array_equal(got.intermediate.opacity, ref.intermediate.opacity)


class TestBitIdentity:
    @pytest.mark.parametrize("kernel", ["block", "scanline"])
    @pytest.mark.parametrize("stealing", [True, False])
    def test_matches_serial(self, renderer, kernel, stealing):
        views = _views(renderer)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, kernel=kernel, stealing=stealing,
                         profile_period=2)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
        _assert_identical(res, refs)
        assert all(r.n_procs == 2 for r in res)
        assert all(r.busy_s is not None and (r.busy_s >= 0).all() for r in res)

    def test_batched_matches_perframe(self, renderer):
        views = _views(renderer)
        cfg = PoolConfig(n_procs=2, profile_period=2)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            batched = [pool.result(f) for f in pool.submit_batch(views)]
        with ThreadRenderPool(renderer, config=cfg.replace(pipeline=False)) as pool:
            handles = [pool.submit(v) for v in views]
            perframe = [pool.result(h) for h in handles]
        _assert_identical(batched, perframe)

    def test_forced_steals_stay_identical(self, renderer, monkeypatch):
        """Slow worker 0 down so worker 1 must steal; pixels unchanged."""
        monkeypatch.setattr(mpb, "_TEST_ROW_DELAY", (0, 0.003))
        views = _views(renderer, 3)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, stealing=True, steal_chunk=2)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
        _assert_identical(res, refs)
        assert sum(r.steals for r in res) > 0

    def test_module_level_helper(self, renderer):
        view = renderer.view_from_angles(25, 40, 5)
        ref = render_fast(renderer, view)
        res = render_parallel_threads(renderer, view,
                                      config=PoolConfig(n_procs=2))
        assert np.array_equal(res.final.color, ref.final.color)
        assert np.array_equal(res.final.alpha, ref.final.alpha)

    def test_facade_dispatch(self, renderer):
        """repro.open_pool(backend="thread") returns the thread pool and
        renders the same pixels."""
        view = renderer.view_from_angles(25, 40, 5)
        ref = render_fast(renderer, view)
        with repro.open_pool(renderer, n_procs=2, backend="thread") as pool:
            assert isinstance(pool, ThreadRenderPool)
            res = pool.render(view)
        assert np.array_equal(res.final.color, ref.final.color)


def _flaky_composite(fail_frames, fire_once=True):
    """A _composite_range wrapper raising for chosen frames (thread-safe)."""
    real = tb._composite_range
    lock = threading.Lock()
    fired: set[int] = set()

    def flaky(img, lo, hi, rle, fact, kernel, profiled, rec, frame):
        with lock:
            if frame in fail_frames and (not fire_once or frame not in fired):
                fired.add(frame)
                raise RuntimeError("injected composite failure")
        return real(img, lo, hi, rle, fact, kernel, profiled, rec, frame)

    return flaky


class TestErrorContract:
    def test_retry_recovers_bit_identical(self, renderer, monkeypatch):
        monkeypatch.setattr(tb, "_composite_range", _flaky_composite({1}))
        views = _views(renderer, 4)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, max_retries=2, degrade_to_serial=False)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            fc = pool.fault_counters()
        _assert_identical(res, refs)
        assert fc["frames_retried"] == 1
        assert fc["worker_restarts"] == 0  # threads never die silently
        assert res[1].retries == 1
        assert res[0].retries == 0

    def test_degrade_to_serial(self, renderer, monkeypatch):
        monkeypatch.setattr(
            tb, "_composite_range", _flaky_composite({1}, fire_once=False)
        )
        views = _views(renderer, 3)
        refs = [render_fast(renderer, v) for v in views]
        cfg = PoolConfig(n_procs=2, max_retries=0, degrade_to_serial=True)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            fc = pool.fault_counters()
        # Degraded frame is rendered serially in render_fast — which is
        # the reference — so even the failure path is bit-identical.
        _assert_identical(res, refs)
        assert res[1].degraded is True
        assert res[0].degraded is False and res[2].degraded is False
        assert fc["degraded_frames"] == 1

    def test_frame_failed_surfaces(self, renderer, monkeypatch):
        monkeypatch.setattr(
            tb, "_composite_range", _flaky_composite({1}, fire_once=False)
        )
        views = _views(renderer, 3)
        cfg = PoolConfig(n_procs=2, max_retries=0, degrade_to_serial=False)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            frames = pool.submit_batch(views)
            assert pool.result(frames[0]).n_procs == 2
            with pytest.raises(FrameFailed):
                pool.result(frames[1])
            # The failure is isolated: the rest of the batch still lands.
            assert pool.result(frames[2]).n_procs == 2


class TestLifecycleAndObs:
    def test_closed_pool_raises(self, renderer):
        pool = ThreadRenderPool(renderer, config=PoolConfig(n_procs=2))
        pool.close()
        with pytest.raises(PoolClosed):
            pool.submit(renderer.view_from_angles(20, 30, 0))
        pool.close()  # idempotent

    def test_unknown_frame(self, renderer):
        with ThreadRenderPool(renderer, config=PoolConfig(n_procs=2)) as pool:
            with pytest.raises(KeyError):
                pool.result(99)

    def test_trace_and_chrome_export(self, renderer, tmp_path):
        views = _views(renderer, 4)
        cfg = PoolConfig(n_procs=2, trace=True)
        with ThreadRenderPool(renderer, config=cfg) as pool:
            res = pool.render_animation(views)
            assert pool.metrics.counter("pool/batch_frames").value == 4
            assert len(pool.timelines) == 4
            phases = set()
            for tl in pool.timelines:
                phases.update(s.phase for s in tl.spans)
            assert {"composite", "warp", "barrier", "dispatch"} <= phases
            path = tmp_path / "trace.json"
            pool.export_chrome_trace(str(path))
        assert all(r.timeline is not None for r in res)
        import json

        meta = json.loads(path.read_text())["otherData"]
        assert meta["backend"] == "thread"
        assert meta["doorbell"] is False
        assert meta["batch_frames"] == 4
