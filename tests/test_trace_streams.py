"""Tests for trace-stream building and replay plumbing."""

import numpy as np
import pytest

from repro.core.frame import TaskRecord
from repro.memsim.address import AddressSpace
from repro.memsim.coherence import CoherentSystem
from repro.memsim.machine import ccnuma_sim
from repro.memsim.trace import build_streams, replay_interleaved, stream_page_sets
from repro.parallel.scheduler import ProcSchedule, ScheduleResult
from repro.render import WorkCounters


def task(uid, segments):
    return TaskRecord(uid=uid, phase="composite", pid0=0, cost=1.0,
                      counters=WorkCounters(), trace=segments)


def sched_with(executed_lists):
    procs = [ProcSchedule(pid=i, executed=list(e)) for i, e in enumerate(executed_lists)]
    return ScheduleResult(procs=procs, makespan=1.0)


@pytest.fixture
def addr():
    return AddressSpace.layout({"r": 100000})


class TestBuildStreams:
    def test_task_order_without_keys(self, addr):
        tasks = {
            1: task(1, [(0, [("r", 0, 4, False)])]),
            2: task(2, [(0, [("r", 100, 4, True)])]),
        }
        streams = build_streams(tasks, sched_with([[2, 1]]), addr)
        base = addr.bases["r"]
        assert streams[0] == [(base + 100, 4, True), (base + 0, 4, False)]

    def test_slice_major_interleave(self, addr):
        """With key_order, all tasks' slice-k segments come before k+1."""
        tasks = {
            1: task(1, [(5, [("r", 0, 4, False)]), (6, [("r", 8, 4, False)])]),
            2: task(2, [(5, [("r", 16, 4, False)]), (6, [("r", 24, 4, False)])]),
        }
        streams = build_streams(tasks, sched_with([[1, 2]]), addr, key_order=(5, 6))
        base = addr.bases["r"]
        offsets = [s - base for (s, _, _) in streams[0]]
        assert offsets == [0, 16, 8, 24]  # slice 5 of both, then slice 6

    def test_missing_segments_skipped(self, addr):
        tasks = {1: task(1, [(5, [("r", 0, 4, False)])])}
        streams = build_streams(tasks, sched_with([[1]]), addr, key_order=(4, 5, 6))
        assert len(streams[0]) == 1

    def test_empty_proc_stream(self, addr):
        tasks = {1: task(1, [(0, [("r", 0, 4, False)])])}
        streams = build_streams(tasks, sched_with([[1], []]), addr)
        assert streams[1] == []


class TestReplay:
    def test_round_robin_consumes_everything(self, addr):
        system = CoherentSystem(2, ccnuma_sim().scaled(0.001), addr)
        streams = [
            [(addr.bases["r"], 64, False)] * 3,
            [(addr.bases["r"] + 4096, 64, True)] * 5,
        ]
        replay_interleaved(system, streams)
        assert system.stats.refs[0] == 3 * 16
        assert system.stats.refs[1] == 5 * 16


class TestPageSets:
    def test_page_footprints(self):
        streams = [[(0, 100, False), (4000, 200, True)]]
        reads, writes = stream_page_sets(streams, page_bytes=4096)
        assert reads[0] == {0: 100}
        # The write spans the page boundary: 96 bytes on page 0, 104 on 1.
        assert writes[0] == {0: 96, 1: 104}

    def test_bytes_accumulate(self):
        streams = [[(0, 10, False), (16, 10, False)]]
        reads, _ = stream_page_sets(streams, page_bytes=4096)
        assert reads[0] == {0: 20}

    def test_per_proc_separation(self):
        streams = [[(0, 8, True)], [(8192, 8, True)]]
        _, writes = stream_page_sets(streams, page_bytes=4096)
        assert writes[0] == {0: 8}
        assert writes[1] == {2: 8}
