"""Tests for view matrices and the shear-warp factorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    PERMUTATIONS,
    apply_affine,
    apply_direction,
    factorize,
    identity,
    rotate_x,
    rotate_y,
    rotate_z,
    translate,
    view_matrix,
)

SHAPE = (24, 20, 16)


class TestMatrices:
    def test_identity_is_noop(self):
        p = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(apply_affine(identity(), p), p)

    def test_translate_moves_points(self):
        m = translate(1, 2, 3)
        assert np.allclose(apply_affine(m, [[0, 0, 0]]), [[1, 2, 3]])

    def test_translate_does_not_move_directions(self):
        m = translate(5, 6, 7)
        assert np.allclose(apply_direction(m, (0, 0, 1)), (0, 0, 1))

    def test_rotations_are_orthonormal(self):
        for rot in (rotate_x(33), rotate_y(-71), rotate_z(190)):
            r = rot[:3, :3]
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
            assert np.isclose(np.linalg.det(r), 1.0)

    def test_rotate_z_quarter_turn(self):
        m = rotate_z(90)
        assert np.allclose(apply_affine(m, [[1, 0, 0]]), [[0, 1, 0]], atol=1e-12)

    def test_view_matrix_centred_rotation_fixes_centre(self):
        m = view_matrix(20, 30, 40, SHAPE)
        c = [(n - 1) / 2 for n in SHAPE]
        assert np.allclose(apply_affine(m, [c]), [c], atol=1e-9)

    def test_view_matrix_without_shape_is_pure_rotation(self):
        m = view_matrix(10, 20, 30)
        assert np.allclose(m[:3, 3], 0.0)


class TestFactorization:
    def test_axis_aligned_view_has_zero_shear(self):
        f = factorize(identity(), SHAPE)
        assert f.axis == 2
        assert f.shear_i == pytest.approx(0.0)
        assert f.shear_j == pytest.approx(0.0)
        assert f.intermediate_shape[0] >= SHAPE[1]
        assert f.intermediate_shape[1] >= SHAPE[0]

    def test_principal_axis_tracks_view_direction(self):
        # Looking along object x: rotating so x maps to view z.
        f = factorize(rotate_y(90), SHAPE)
        assert f.axis == 0
        f = factorize(rotate_x(90), SHAPE)
        assert f.axis == 1

    def test_rejects_bad_matrix_shape(self):
        with pytest.raises(ValueError):
            factorize(np.eye(3), SHAPE)

    def test_slice_offsets_nonnegative(self):
        f = factorize(view_matrix(25, 40, 10, SHAPE), SHAPE)
        ks = np.arange(f.shape_ijk[2])
        u_off, v_off = f.slice_offsets(ks)
        assert np.all(u_off >= -1e-9)
        assert np.all(v_off >= -1e-9)

    def test_front_to_back_order_is_a_permutation_of_slices(self):
        f = factorize(view_matrix(25, 40, 10, SHAPE), SHAPE)
        assert sorted(f.k_front_to_back) == list(range(f.shape_ijk[2]))

    def test_voxel_footprint_inside_intermediate_image(self):
        f = factorize(view_matrix(33, -47, 12, SHAPE), SHAPE)
        ni, nj, nk = f.shape_ijk
        for k in (0, nk // 2, nk - 1):
            u_off, v_off = f.slice_offsets(k)
            assert u_off + ni - 1 <= f.intermediate_shape[1] - 1 + 1e-6
            assert v_off + nj - 1 <= f.intermediate_shape[0] - 1 + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(
        rx=st.floats(-85, 85),
        ry=st.floats(-85, 85),
        rz=st.floats(-180, 180),
    )
    def test_shear_coefficients_bounded(self, rx, ry, rz):
        """|s_i|, |s_j| <= 1 because k is the principal axis."""
        f = factorize(view_matrix(rx, ry, rz, SHAPE), SHAPE)
        assert abs(f.shear_i) <= 1.0 + 1e-9
        assert abs(f.shear_j) <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        rx=st.floats(-80, 80),
        ry=st.floats(-80, 80),
        rz=st.floats(-170, 170),
        u=st.floats(0, 10),
        v=st.floats(0, 10),
        k1=st.integers(1, 15),
    )
    def test_projection_independent_of_slice(self, rx, ry, rz, u, v, k1):
        """A sheared-space point's final position must not depend on k."""
        f = factorize(view_matrix(rx, ry, rz, SHAPE), SHAPE)
        p0 = f.project_sheared([[u, v, 0.0]])
        p1 = f.project_sheared([[u, v, float(k1)]])
        assert np.allclose(p0, p1, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(
        rx=st.floats(-80, 80),
        ry=st.floats(-80, 80),
        rz=st.floats(-170, 170),
    )
    def test_warp_matches_direct_projection(self, rx, ry, rz):
        """warp(u, v) == project(sheared point) for points at slice 0."""
        f = factorize(view_matrix(rx, ry, rz, SHAPE), SHAPE)
        uv = np.array([[0.0, 0.0], [3.5, 7.25], [10.0, 2.0]])
        uvk = np.hstack([uv, np.zeros((3, 1))])
        assert np.allclose(f.warp_points(uv), f.project_sheared(uvk), atol=1e-8)

    def test_warp_inverse_roundtrip(self):
        f = factorize(view_matrix(18, 27, -36, SHAPE), SHAPE)
        uv = np.array([[0.0, 0.0], [5.0, 9.0], [12.5, 3.25]])
        assert np.allclose(f.warp_inverse_points(f.warp_points(uv)), uv, atol=1e-9)

    def test_final_image_contains_warped_corners(self):
        f = factorize(view_matrix(18, 27, -36, SHAPE), SHAPE)
        n_v, n_u = f.intermediate_shape
        corners = np.array([[0, 0], [n_u - 1, 0], [0, n_v - 1], [n_u - 1, n_v - 1]])
        mapped = f.warp_points(corners)
        assert np.all(mapped >= -1e-9)
        assert np.all(mapped[:, 0] <= f.final_shape[1] - 1 + 1e-9)
        assert np.all(mapped[:, 1] <= f.final_shape[0] - 1 + 1e-9)

    def test_permutations_are_cyclic(self):
        for axis, perm in PERMUTATIONS.items():
            assert perm[2] == axis
            assert sorted(perm) == [0, 1, 2]
