"""Tests for classification and run-length encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import mri_brain, random_blobs
from repro.volume import (
    OPACITY_EPSILON,
    ClassifiedVolume,
    RLEVolume,
    TransferFunction,
    binary_transfer_function,
    encode,
    encode_all_axes,
    mri_transfer_function,
)


class TestTransferFunction:
    def test_opacity_interpolates_knots(self):
        tf = TransferFunction(opacity_points=((0, 0.0), (100, 0.0), (200, 1.0)))
        assert tf.opacity(150) == pytest.approx(0.5)
        assert tf.opacity(50) == pytest.approx(0.0)

    def test_rejects_nonincreasing_knots(self):
        with pytest.raises(ValueError):
            TransferFunction(opacity_points=((0, 0.0), (0, 1.0)))

    def test_rejects_out_of_range_opacity(self):
        with pytest.raises(ValueError):
            TransferFunction(opacity_points=((0, 0.0), (255, 1.5)))

    def test_rejects_single_knot(self):
        with pytest.raises(ValueError):
            TransferFunction(opacity_points=((0, 0.0),))

    def test_epsilon_cull_zeroes_low_opacity(self):
        tf = TransferFunction(opacity_points=((0, 0.0), (255, OPACITY_EPSILON / 2)))
        a, c = tf.classify(np.array([255], dtype=np.uint8))
        assert a[0] == 0.0 and c[0] == 0.0

    def test_classify_dtype_and_range(self):
        tf = mri_transfer_function()
        vals = np.arange(256, dtype=np.uint8)
        a, c = tf.classify(vals)
        assert a.dtype == np.float32 and c.dtype == np.float32
        assert a.min() >= 0.0 and a.max() <= 1.0
        assert c.min() >= 0.0 and c.max() <= 1.0

    def test_classified_volume_shape_validation(self):
        with pytest.raises(ValueError):
            ClassifiedVolume(
                raw=np.zeros((4, 4, 4), np.uint8),
                opacity=np.zeros((4, 4, 3), np.float32),
                color=np.zeros((4, 4, 4), np.float32),
            )


def _classified(shape=(12, 10, 8), seed=3, density=0.35):
    raw = random_blobs(shape, density=density, seed=seed)
    return ClassifiedVolume.classify(raw, binary_transfer_function(threshold=60))


class TestRLE:
    def test_roundtrip_dense_equals_classified(self):
        """Decoding every scanline reconstructs the classified fields."""
        cv = _classified()
        for axis in (0, 1, 2):
            rle = encode(cv, axis)
            from repro.transforms.factorization import PERMUTATIONS

            perm = PERMUTATIONS[axis]
            order = (perm[2], perm[1], perm[0])
            opac_ref = cv.opacity.transpose(order)
            col_ref = cv.color.transpose(order)
            for k in range(rle.nk):
                o, c = rle.decode_slice(k)
                assert np.array_equal(o, opac_ref[k])
                assert np.array_equal(c, col_ref[k])

    def test_run_lengths_sum_to_scanline_length(self):
        cv = _classified()
        rle = encode(cv, 2)
        for k in range(rle.nk):
            for j in range(rle.nj):
                assert rle.scanline_runs(k, j).sum() == rle.ni

    def test_runs_alternate_starting_transparent(self):
        cv = _classified()
        rle = encode(cv, 1)
        for k in range(rle.nk):
            for j in range(rle.nj):
                dense, _ = rle.decode_scanline(k, j)
                pos = 0
                for idx, length in enumerate(rle.scanline_runs(k, j)):
                    seg = dense[pos : pos + length]
                    if idx % 2 == 0:
                        assert np.all(seg == 0.0)
                    else:
                        assert np.all(seg > 0.0)
                    pos += int(length)

    def test_vox_count_matches_nonzero(self):
        cv = _classified()
        rle = encode(cv, 0)
        assert rle.vox_count.sum() == np.count_nonzero(cv.opacity)

    def test_nontransparent_runs_cover_exactly_nonzeros(self):
        cv = _classified()
        rle = encode(cv, 2)
        for k in range(rle.nk):
            for j in range(rle.nj):
                dense, _ = rle.decode_scanline(k, j)
                covered = np.zeros(rle.ni, dtype=bool)
                for start, length in rle.nontransparent_runs(k, j):
                    covered[start : start + length] = True
                assert np.array_equal(covered, dense > 0)

    def test_empty_volume_single_run(self):
        cv = ClassifiedVolume.classify(
            np.zeros((6, 5, 4), np.uint8), binary_transfer_function(128)
        )
        rle = encode(cv, 2)
        assert rle.voxel_opacity.size == 0
        assert np.all(rle.run_count == 1)
        assert np.all(rle.run_lengths == rle.ni)

    def test_full_volume_compresses_to_one_opaque_run(self):
        raw = np.full((6, 5, 4), 255, np.uint8)
        cv = ClassifiedVolume.classify(raw, binary_transfer_function(128))
        rle = encode(cv, 2)
        assert np.all(rle.run_count == 3)  # [0, ni, 0]
        assert rle.voxel_opacity.size == raw.size

    def test_compression_ratio_large_for_sparse_volume(self):
        """Paper: RLE greatly compresses medical volumes."""
        raw = mri_brain((40, 40, 28))
        cv = ClassifiedVolume.classify(raw, mri_transfer_function())
        rle = encode(cv, 2)
        assert rle.compression_ratio > 1.5

    def test_encode_all_axes_returns_three(self):
        cv = _classified((8, 9, 10))
        rles = encode_all_axes(cv)
        assert set(rles) == {0, 1, 2}
        # shape_ijk is the permuted shape; total voxels identical.
        for axis, rle in rles.items():
            assert np.prod(rle.shape_ijk) == 8 * 9 * 10
            assert rle.voxel_opacity.size == np.count_nonzero(cv.opacity)

    def test_invalid_axis_raises(self):
        with pytest.raises(ValueError):
            encode(_classified((4, 4, 4)), 3)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        density=st.floats(0.05, 0.9),
        axis=st.integers(0, 2),
    )
    def test_roundtrip_property(self, seed, density, axis):
        """RLE encode/decode is lossless for arbitrary volumes."""
        cv = _classified((7, 6, 5), seed=seed, density=density)
        rle = encode(cv, axis)
        from repro.transforms.factorization import PERMUTATIONS

        perm = PERMUTATIONS[axis]
        order = (perm[2], perm[1], perm[0])
        ref = cv.opacity.transpose(order)
        got = np.stack([rle.decode_slice(k)[0] for k in range(rle.nk)])
        assert np.array_equal(got, ref)
